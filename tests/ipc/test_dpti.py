"""DPTI tagged-page-table endpoint: call semantics, peer death, A10."""

import pytest

from repro.errors import PeerResetError
from repro.fault import InvariantAuditor
from repro.ipc.dpti import DptiEndpoint, domain_table
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1)


def _endpoint(kernel, handler):
    server = kernel.spawn_process("dpti-server")
    endpoint = DptiEndpoint(kernel, handler)
    endpoint.bind_owner(server)
    return endpoint, server


def test_call_runs_handler_inline_and_returns_reply(kernel):
    seen = []

    def handler(t, payload):
        seen.append(payload)
        yield t.compute(10.0)
        return payload * 2

    endpoint, server = _endpoint(kernel, handler)
    client = kernel.spawn_process("client")
    got = []

    def body(t):
        reply = yield from endpoint.call(t, 21, size=64, reply_size=8)
        got.append(reply)

    kernel.spawn(client, body)
    kernel.run()
    kernel.check()
    assert seen == [21]
    assert got == [42]
    assert endpoint.calls == 1
    # the owner's tagged context is installed exactly once
    assert list(domain_table(kernel).values()) == [server]


def test_larger_arguments_cost_more_simulated_time(kernel):
    def handler(t, payload):
        yield t.compute(0.0)
        return "ok"

    endpoint, _ = _endpoint(kernel, handler)
    client = kernel.spawn_process("client")
    finished = {}

    def body_for(size, key):
        def body(t):
            yield from endpoint.call(t, None, size=size, reply_size=1)
            finished[key] = t.now()
        return body

    kernel.spawn(client, body_for(0, "small"))
    kernel.run()
    kernel.check()
    small = finished["small"]

    kernel2 = Kernel(num_cpus=1)
    endpoint2, _ = _endpoint(kernel2, handler)
    client2 = kernel2.spawn_process("client")
    kernel2.spawn(client2, body_for(64 * 1024, "big"))
    kernel2.run()
    kernel2.check()
    assert finished["big"] > small


def test_owner_death_mid_call_unwinds_and_retires_the_pcid(kernel):
    def handler(t, payload):
        yield from t.sleep(10_000)
        return "never"

    endpoint, server = _endpoint(kernel, handler)
    client = kernel.spawn_process("client")
    errors = []

    def body(t):
        try:
            yield from endpoint.call(t, "ping", size=128, reply_size=8)
        except PeerResetError as exc:
            errors.append(exc)

    kernel.spawn(client, body)
    kernel.engine.post(5_000, lambda: kernel.kill_process(server))
    kernel.run()
    kernel.check()
    assert len(errors) == 1
    assert endpoint.hung_up
    # the killed owner must not leak a tagged-PT entry (A10)
    assert server not in domain_table(kernel).values()
    assert InvariantAuditor(kernel).audit() == []


def test_call_against_hung_up_endpoint_fails_fast(kernel):
    def handler(t, payload):
        yield t.compute(0.0)
        return "ok"

    endpoint, server = _endpoint(kernel, handler)
    kernel.kill_process(server)
    client = kernel.spawn_process("client")
    errors = []

    def body(t):
        try:
            yield from endpoint.call(t, "ping")
        except PeerResetError as exc:
            errors.append(exc)

    kernel.spawn(client, body)
    kernel.run()
    kernel.check()
    assert len(errors) == 1


def test_handler_swallowing_the_unwind_cannot_hide_the_hangup(kernel):
    def handler(t, payload):
        try:
            yield from t.sleep(10_000)
        except PeerResetError:
            return "swallowed"
        return "never"

    endpoint, server = _endpoint(kernel, handler)
    client = kernel.spawn_process("client")
    errors = []

    def body(t):
        try:
            yield from endpoint.call(t, "ping")
        except PeerResetError as exc:
            errors.append(exc)

    kernel.spawn(client, body)
    kernel.engine.post(5_000, lambda: kernel.kill_process(server))
    kernel.run()
    kernel.check()
    assert len(errors) == 1


def test_rebinding_retires_the_previous_tagged_context(kernel):
    def handler(t, payload):
        yield t.compute(0.0)
        return "ok"

    endpoint, first = _endpoint(kernel, handler)
    first_pcids = set(domain_table(kernel))
    second = kernel.spawn_process("dpti-server-2")
    endpoint.bind_owner(second)
    table = domain_table(kernel)
    assert set(table) != first_pcids
    assert list(table.values()) == [second]


def test_auditor_reports_a_planted_tagged_context_leak(kernel):
    victim = kernel.spawn_process("victim")
    kernel.kill_process(victim)
    domain_table(kernel)[99] = victim
    violations = InvariantAuditor(kernel).audit()
    assert any(v.startswith("A10") and "victim" in v
               for v in violations)
