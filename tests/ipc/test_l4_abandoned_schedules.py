"""The L4 abandoned-reply path under adversarial schedules.

A reply racing its caller's timeout + deregistration must never wake
the wrong rendezvous. The deterministic regression below is the exact
pre-fix reproducer: with the server cross-CPU (reply arrives via the
IPI wake path, ~2 us wake-to-run latency) and a deadline placed just
inside the reply's arrival window, the timed-out caller has already
*re-registered* for its next call when the stale reply lands — without
epoch matching, request N+1 woke with request N's value.

The schedule-exploration tests then drive the same race through the
checker's interleaving strategies: across every explored schedule the
wrong wake must never occur, only clean replies or timeouts.
"""

import pytest

from repro.errors import KernelError, PeerResetError
from repro.ipc import L4Endpoint
from repro.kernel import Kernel
from repro.load.queueing import RequestTimeout, with_deadline


def run_race(*, compute_ns, deadline_ns, requests, client_pin=0,
             server_pin=1):
    """One client looping deadlined calls against a slow server."""
    kernel = Kernel(num_cpus=2)
    client_proc = kernel.spawn_process("client")
    server_proc = kernel.spawn_process("server")
    endpoint = L4Endpoint(kernel)
    endpoint.bind_owner(server_proc)
    log = []

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        while True:
            yield t.compute(compute_ns if msg % 3 == 0 else 100.0)
            caller, msg = yield from endpoint.reply_and_wait(
                t, caller, ("ack", msg))

    def client(t):
        for i in range(requests):
            try:
                reply = yield from with_deadline(
                    t, endpoint.call(t, i), deadline_ns)
            except RequestTimeout:
                log.append(("timeout", i))
            except (PeerResetError, KernelError):
                log.append(("reset", i))
            else:
                log.append(("got", i, reply))

    kernel.spawn(server_proc, server, pin=server_pin, name="srv/w0",
                 daemon=True)
    kernel.spawn(client_proc, client, pin=client_pin, name="cli/c0")
    kernel.run_all()
    return log


def test_stale_reply_never_satisfies_next_call():
    """The pre-fix reproducer: request 0 outlives its deadline, its
    late reply lands while request 1 is registered. Epoch matching must
    drop it — before the fix this logged ('got', 1, ('ack', 0))."""
    log = run_race(compute_ns=2800.0, deadline_ns=3400.0, requests=3)
    assert ("timeout", 0) in log  # the race window actually opened
    for entry in log:
        if entry[0] == "got":
            _tag, i, reply = entry
            assert reply == ("ack", i), \
                f"request {i} woke with the wrong reply {reply!r}"


@pytest.mark.parametrize("compute_ns", [2800.0, 2900.0, 3000.0])
@pytest.mark.parametrize("deadline_ns", [2600.0, 3000.0, 3400.0])
def test_reply_timeout_race_window_sweep(compute_ns, deadline_ns):
    """Sweep the delivery window around the deadline: whatever the
    relative timing, a reply only ever answers its own call epoch."""
    log = run_race(compute_ns=compute_ns, deadline_ns=deadline_ns,
                   requests=6)
    for entry in log:
        if entry[0] == "got":
            _tag, i, reply = entry
            assert reply == ("ack", i)


def test_same_cpu_handoff_immune_to_race():
    """Same-CPU replies hand off atomically; the sweep degenerates to
    plain timeouts and correct replies."""
    log = run_race(compute_ns=2800.0, deadline_ns=3400.0, requests=6,
                   client_pin=0, server_pin=0)
    for entry in log:
        if entry[0] == "got":
            _tag, i, reply = entry
            assert reply == ("ack", i)


def test_l4race_scenario_clean_across_schedules():
    """The checker's l4race scenario — the same race driven through
    the schedule controller — must be finding-free on every explored
    interleaving (this is what CI's check-smoke asserts at scale)."""
    from repro.check.explore import explore_one
    for schedule in range(12):
        result = explore_one("l4race", seed=7, schedule=schedule)
        assert result["findings"] == [], \
            f"schedule {schedule}: {result['findings']}"


def test_l4race_scenario_clean_under_perturbation():
    """Round-robin perturbation explores single-flip neighbours of the
    baseline schedule; the race must stay closed on all of them."""
    from repro.check.explore import explore_one
    for schedule in range(1, 10):
        result = explore_one("l4race", seed=7, schedule=schedule,
                             strategy="perturb")
        assert result["findings"] == [], \
            f"perturb schedule {schedule}: {result['findings']}"
