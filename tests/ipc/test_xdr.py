"""Tests for the XDR marshalling cost model."""

import pytest

from repro import units
from repro.ipc import XDRCodec
from repro.kernel import Kernel
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_encode_decode_roundtrip(kernel, proc):
    codec = XDRCodec(kernel)
    out = []

    def body(t):
        wire = yield from codec.encode(t, 128, payload={"a": 1})
        out.append((yield from codec.decode(t, wire)))

    kernel.spawn(proc, body)
    kernel.run()
    kernel.check()
    assert out == [{"a": 1}]


def test_marshalling_is_user_time(kernel, proc):
    codec = XDRCodec(kernel)

    def body(t):
        yield from codec.encode(t, 64)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    account = kernel.machine.cpus[0].account
    assert account.ns[Block.USER] > 0
    assert account.ns[Block.KERNEL] == 0


def test_cost_grows_with_size(kernel, proc):
    codec = XDRCodec(kernel)
    times = {}

    def body(t, size):
        start = t.now()
        yield from codec.encode(t, size)
        times[size] = t.now() - start

    kernel.spawn(proc, lambda t: body(t, 64))
    kernel.run()
    kernel.spawn(proc, lambda t: body(t, 256 * units.KB))
    kernel.run()
    assert times[256 * units.KB] > times[64] * 20


def test_decode_of_none_is_cheap_and_returns_none(kernel, proc):
    codec = XDRCodec(kernel)
    out = []

    def body(t):
        out.append((yield from codec.decode(t, None)))

    kernel.spawn(proc, body)
    kernel.run()
    kernel.check()
    assert out == [None]


def test_base_cost_matches_model(kernel, proc):
    codec = XDRCodec(kernel)
    elapsed = []

    def body(t):
        start = t.now()
        yield from codec.encode(t, 1)
        elapsed.append(t.now() - start)

    kernel.spawn(proc, body)
    kernel.run()
    expected = kernel.costs.XDR_BASE + kernel.machine.cache.copy_ns(
        1, startup=kernel.costs.MEMCPY_STARTUP)
    assert elapsed[0] == pytest.approx(expected)
