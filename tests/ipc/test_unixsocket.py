"""Tests for UNIX datagram sockets and the path namespace."""

import pytest

from repro.errors import KernelError, ResourceError
from repro.ipc import SocketNamespace
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


@pytest.fixture
def ns():
    return SocketNamespace()


def test_send_recv_roundtrip(kernel, proc, ns):
    server = ns.socket(kernel)
    server.bind("/tmp/server")
    client = ns.socket(kernel)
    got = []

    def client_body(t):
        yield from client.sendto(t, "/tmp/server", 8, payload="hi")

    def server_body(t):
        payload, sender = yield from server.recvfrom(t)
        got.append((payload, sender))

    kernel.spawn(proc, server_body)
    kernel.spawn(proc, client_body)
    kernel.run()
    kernel.check()
    assert got == [("hi", client)]


def test_send_to_unbound_path_refused(kernel, proc, ns):
    client = ns.socket(kernel)

    def body(t):
        yield from client.sendto(t, "/nowhere", 8)

    thread = kernel.spawn(proc, body)
    kernel.run()
    assert isinstance(thread.exception, KernelError)


def test_double_bind_rejected(kernel, ns):
    a = ns.socket(kernel)
    a.bind("/tmp/x")
    b = ns.socket(kernel)
    with pytest.raises(ResourceError):
        b.bind("/tmp/x")


def test_rebind_after_close_allowed(kernel, ns):
    a = ns.socket(kernel)
    a.bind("/tmp/x")
    a.close()
    b = ns.socket(kernel)
    b.bind("/tmp/x")  # no error


def test_datagrams_preserve_order(kernel, proc, ns):
    server = ns.socket(kernel)
    server.bind("/srv")
    client = ns.socket(kernel)
    got = []

    def client_body(t):
        for i in range(4):
            yield from client.sendto(t, "/srv", 4, payload=i)

    def server_body(t):
        for _ in range(4):
            payload, _ = yield from server.recvfrom(t)
            got.append(payload)

    kernel.spawn(proc, client_body)
    kernel.spawn(proc, server_body)
    kernel.run()
    assert got == [0, 1, 2, 3]


def test_buffer_full_rejects_datagram(kernel, proc, ns):
    from repro.ipc.unixsocket import SOCK_BUF_SIZE
    server = ns.socket(kernel)
    server.bind("/srv")
    client = ns.socket(kernel)

    def body(t):
        yield from client.sendto(t, "/srv", SOCK_BUF_SIZE - 1)
        yield from client.sendto(t, "/srv", 4096)

    thread = kernel.spawn(proc, body)
    kernel.run()
    assert isinstance(thread.exception, KernelError)


def test_recv_on_closed_socket_returns_none(kernel, proc, ns):
    sock = ns.socket(kernel)
    sock.bind("/srv")
    got = []

    def body(t):
        got.append((yield from sock.recvfrom(t)))

    kernel.spawn(proc, body)
    kernel.engine.post(100, sock.close)
    kernel.run()
    assert got == [(None, None)]
