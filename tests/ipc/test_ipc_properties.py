"""Property-based tests of IPC data-transport invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import Pipe, Semaphore, SocketNamespace
from repro.kernel import Kernel


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=200_000),
                      min_size=1, max_size=12))
def test_property_pipe_preserves_order_and_payloads(sizes):
    """Any sequence of message sizes (including ones larger than the
    pipe buffer, which stream in chunks) arrives complete and in order."""
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("p")
    pipe = Pipe(kernel)
    received = []

    def writer(t):
        for index, size in enumerate(sizes):
            yield from pipe.write(t, size, payload=(index, size))

    def reader(t):
        for _ in sizes:
            received.append((yield from pipe.read(t)))

    kernel.spawn(proc, writer, pin=0)
    kernel.spawn(proc, reader, pin=1)
    kernel.run()
    kernel.check()
    assert received == [(i, s) for i, s in enumerate(sizes)]
    assert pipe.buffered_bytes == 0


@settings(max_examples=20, deadline=None)
@given(tokens=st.integers(min_value=1, max_value=8),
       waiters=st.integers(min_value=1, max_value=8))
def test_property_semaphore_admits_exactly_value_waiters(tokens, waiters):
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("p")
    sem = Semaphore(kernel, value=tokens)
    admitted = []

    def waiter(t, i):
        yield from sem.wait(t)
        admitted.append(i)

    for i in range(waiters):
        kernel.spawn(proc, lambda t, i=i: waiter(t, i))
    kernel.run(until_ns=50_000_000)
    assert len(admitted) == min(tokens, waiters)


@settings(max_examples=20, deadline=None)
@given(messages=st.lists(
    st.tuples(st.integers(0, 2), st.integers(1, 4096)),
    min_size=1, max_size=10))
def test_property_sockets_deliver_per_destination_in_order(messages):
    """Datagrams fan out to three servers; each sees its own stream in
    sending order."""
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("p")
    ns = SocketNamespace()
    servers = []
    for i in range(3):
        sock = ns.socket(kernel)
        sock.bind(f"/srv/{i}")
        servers.append(sock)
    client = ns.socket(kernel)
    received = {0: [], 1: [], 2: []}
    expected = {0: [], 1: [], 2: []}
    for seq, (dst, size) in enumerate(messages):
        expected[dst].append(seq)

    def sender(t):
        for seq, (dst, size) in enumerate(messages):
            yield from client.sendto(t, f"/srv/{dst}", size, payload=seq)

    def receiver(t, index):
        for _ in expected[index]:
            payload, _ = yield from servers[index].recvfrom(t)
            received[index].append(payload)

    kernel.spawn(proc, sender, pin=0)
    for i in range(3):
        if expected[i]:
            kernel.spawn(proc, lambda t, i=i: receiver(t, i), pin=1)
    kernel.run()
    kernel.check()
    assert received == expected
