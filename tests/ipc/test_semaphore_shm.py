"""Tests for semaphores + shared buffers (the Sem. configuration)."""

import pytest

from repro.ipc import Semaphore, SharedBuffer
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def procs(kernel):
    return kernel.spawn_process("a"), kernel.spawn_process("b")


def test_ping_pong_transfers_payload(kernel, procs):
    proc_a, proc_b = procs
    to_b = Semaphore(kernel)
    to_a = Semaphore(kernel)
    buf = SharedBuffer(kernel, capacity=4096)
    received = []

    def producer(t):
        yield from buf.populate(t, 16, payload="ping")
        yield from to_b.post(t)
        yield from to_a.wait(t)

    def consumer(t):
        yield from to_b.wait(t)
        received.append((yield from buf.consume(t)))
        yield from to_a.post(t)

    kernel.spawn(proc_a, producer, pin=0)
    kernel.spawn(proc_b, consumer, pin=0)
    kernel.run()
    kernel.check()
    assert received == ["ping"]


def test_oversized_message_rejected(kernel, procs):
    buf = SharedBuffer(kernel, capacity=64)

    def body(t):
        yield from buf.populate(t, 128)

    thread = kernel.spawn(procs[0], body)
    kernel.run()
    assert isinstance(thread.exception, ValueError)


def test_semaphore_counts(kernel, procs):
    sem = Semaphore(kernel, value=2)
    order = []

    def waiter(t, i):
        yield from sem.wait(t)
        order.append(i)

    kernel.spawn(procs[0], lambda t: waiter(t, 0))
    kernel.spawn(procs[0], lambda t: waiter(t, 1))
    kernel.run()
    assert sorted(order) == [0, 1]
    assert sem.value == 0


def test_populate_cost_grows_with_size(kernel, procs):
    buf = SharedBuffer(kernel, capacity=1 << 22)
    times = {}

    def body(t, size):
        start = t.now()
        yield from buf.populate(t, size)
        times[size] = t.now() - start

    for size in (64, 64 * 1024):
        kernel.spawn(procs[0], lambda t, s=size: body(t, s))
        kernel.run()
    assert times[64 * 1024] > times[64] * 100


def test_consume_in_place_cheaper_than_copy_out(kernel, procs):
    buf = SharedBuffer(kernel, capacity=1 << 20)
    times = {}

    def body(t, copy_out):
        yield from buf.populate(t, 256 * 1024, payload="x")
        start = t.now()
        yield from buf.consume(t, copy_out=copy_out)
        times[copy_out] = t.now() - start

    kernel.spawn(procs[0], lambda t: body(t, False))
    kernel.run()
    kernel.spawn(procs[0], lambda t: body(t, True))
    kernel.run()
    assert times[True] > times[False]
