"""Tests for L4-style synchronous IPC with direct thread switch."""

import pytest

from repro.ipc import L4Endpoint
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


def make_procs(kernel):
    return kernel.spawn_process("client"), kernel.spawn_process("server")


def run_pingpong(kernel, *, client_pin, server_pin, iters=3):
    client_proc, server_proc = make_procs(kernel)
    endpoint = L4Endpoint(kernel)
    log = []

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        while msg != "stop":
            log.append(("srv", msg))
            caller, msg = yield from endpoint.reply_and_wait(
                t, caller, ("ack", msg))
        yield from endpoint.reply(t, caller, "bye")

    def client(t):
        for i in range(iters):
            reply = yield from endpoint.call(t, i)
            log.append(("cli", reply))
        reply = yield from endpoint.call(t, "stop")
        log.append(("cli", reply))

    kernel.spawn(server_proc, server, pin=server_pin, name="l4srv")
    kernel.spawn(client_proc, client, pin=client_pin, name="l4cli")
    kernel.run()
    kernel.check()
    return log, endpoint


def test_same_cpu_pingpong(kernel):
    log, endpoint = run_pingpong(kernel, client_pin=0, server_pin=0)
    assert log == [("srv", 0), ("cli", ("ack", 0)),
                   ("srv", 1), ("cli", ("ack", 1)),
                   ("srv", 2), ("cli", ("ack", 2)),
                   ("cli", "bye")]
    assert endpoint.calls == 4


def test_cross_cpu_pingpong(kernel):
    log, _ = run_pingpong(kernel, client_pin=0, server_pin=1)
    assert ("srv", 0) in log and ("cli", ("ack", 0)) in log


def test_same_cpu_uses_direct_switch_no_ipi(kernel):
    run_pingpong(kernel, client_pin=0, server_pin=0)
    assert kernel.scheduler.ipi_wakes == 0


def test_cross_cpu_pays_ipis(kernel):
    run_pingpong(kernel, client_pin=0, server_pin=1)
    assert kernel.scheduler.ipi_wakes > 0


def test_l4_much_faster_than_posix_path_same_cpu(kernel):
    """L4 (=CPU) should land well under the Sem. round trip (~1.5us)."""
    client_proc, server_proc = make_procs(kernel)
    endpoint = L4Endpoint(kernel)
    elapsed = []

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        while msg is not None:
            caller, msg = yield from endpoint.reply_and_wait(t, caller, msg)
        yield from endpoint.reply(t, caller, None)

    def client(t):
        yield from endpoint.call(t, "warmup")
        start = t.now()
        for _ in range(10):
            yield from endpoint.call(t, "x")
        elapsed.append((t.now() - start) / 10)
        yield from endpoint.call(t, None)

    kernel.spawn(server_proc, server, pin=0)
    kernel.spawn(client_proc, client, pin=0)
    kernel.run()
    kernel.check()
    assert elapsed[0] < 1200  # well under Sem.'s 1514ns
    assert elapsed[0] > 500   # but far above a bare function call
