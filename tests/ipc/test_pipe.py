"""Tests for pipes: blocking semantics, capacity, copy costs."""

import pytest

from repro import units
from repro.ipc import Pipe
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_write_then_read(kernel, proc):
    pipe = Pipe(kernel)
    got = []

    def writer(t):
        yield from pipe.write(t, 8, payload="hello")

    def reader(t):
        got.append((yield from pipe.read(t)))

    kernel.spawn(proc, writer)
    kernel.spawn(proc, reader)
    kernel.run()
    kernel.check()
    assert got == ["hello"]


def test_read_blocks_until_write(kernel, proc):
    pipe = Pipe(kernel)
    events = []

    def reader(t):
        events.append("read-start")
        yield from pipe.read(t)
        events.append("read-done")

    def writer(t):
        yield t.compute(5000)
        events.append("writing")
        yield from pipe.write(t, 4)

    kernel.spawn(proc, reader, pin=0)
    kernel.spawn(proc, writer, pin=0)
    kernel.run()
    assert events == ["read-start", "writing", "read-done"]


def test_writer_blocks_when_full(kernel, proc):
    pipe = Pipe(kernel, capacity=16)
    events = []

    def writer(t):
        yield from pipe.write(t, 16, payload="first")
        events.append("first-written")
        yield from pipe.write(t, 16, payload="second")
        events.append("second-written")

    def reader(t):
        yield t.compute(20000)
        events.append("draining")
        yield from pipe.read(t)

    kernel.spawn(proc, writer, pin=0)
    kernel.spawn(proc, reader, pin=0)
    kernel.run()
    kernel.check()
    assert events == ["first-written", "draining", "second-written"]


def test_fifo_order(kernel, proc):
    pipe = Pipe(kernel)
    got = []

    def writer(t):
        for i in range(5):
            yield from pipe.write(t, 4, payload=i)

    def reader(t):
        for _ in range(5):
            got.append((yield from pipe.read(t)))

    kernel.spawn(proc, writer)
    kernel.spawn(proc, reader)
    kernel.run()
    assert got == [0, 1, 2, 3, 4]


def test_close_gives_eof_to_blocked_reader(kernel, proc):
    pipe = Pipe(kernel)
    got = []

    def reader(t):
        got.append((yield from pipe.read(t)))

    kernel.spawn(proc, reader)
    kernel.engine.post(1000, pipe.close)
    kernel.run()
    assert got == [None]


def test_large_transfer_costs_more_than_small(kernel, proc):
    times = {}

    def run_transfer(size):
        pipe = Pipe(kernel)

        def writer(t):
            yield from pipe.write(t, size)

        def reader(t):
            start = t.now()
            yield from pipe.read(t)
            times[size] = t.now() - start

        kernel.spawn(proc, writer, pin=0)
        kernel.spawn(proc, reader, pin=0)
        kernel.run()

    run_transfer(64)
    run_transfer(256 * units.KB)
    assert times[256 * units.KB] > times[64] * 10


def test_invalid_write_size(kernel, proc):
    pipe = Pipe(kernel)

    def body(t):
        yield from pipe.write(t, 0)

    thread = kernel.spawn(proc, body)
    kernel.run()
    assert isinstance(thread.exception, ValueError)
