"""Tests for local RPC: dispatch, replies, errors, service threads."""

import pytest

from repro.errors import KernelError
from repro.ipc import RpcClient, RpcServer, SocketNamespace
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def ns():
    return SocketNamespace()


def make_echo_server(kernel, ns, path="/srv/echo"):
    server_proc = kernel.spawn_process("server")
    server = RpcServer(kernel, server_proc, ns, path)

    def echo(t, args):
        yield t.compute(2)
        return 8, ("echo", args)

    def boom(t, args):
        yield t.compute(2)
        return 4, KernelError("handler failed")

    server.register("echo", echo)
    server.register("boom", boom)
    kernel.spawn(server_proc, server.serve_loop, name="svc", pin=1)
    return server


def test_call_returns_handler_result(kernel, ns):
    make_echo_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")
    results = []

    def body(t):
        results.append((yield from client.call(t, "echo", 8, args=42)))
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    kernel.check()
    assert results == [("echo", 42)]


def test_multiple_sequential_calls(kernel, ns):
    server = make_echo_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")

    def body(t):
        for i in range(5):
            yield from client.call(t, "echo", 8, args=i)
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    kernel.check()
    assert client.calls == 5
    assert server.requests_served == 5


def test_error_reply_raises_at_caller(kernel, ns):
    make_echo_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")
    caught = []

    def body(t):
        try:
            yield from client.call(t, "boom", 8)
        except KernelError as exc:
            caught.append(str(exc))
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    assert caught == ["handler failed"]


def test_unknown_proc_raises(kernel, ns):
    make_echo_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")
    caught = []

    def body(t):
        try:
            yield from client.call(t, "missing", 8)
        except KernelError:
            caught.append(True)
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    assert caught == [True]


def test_two_clients_interleave(kernel, ns):
    make_echo_server(kernel, ns)
    done = []

    def make_client(i):
        proc = kernel.spawn_process(f"client{i}")
        client = RpcClient(kernel, proc, ns, "/srv/echo")

        def body(t):
            for j in range(3):
                result = yield from client.call(t, "echo", 8, args=(i, j))
                assert result == ("echo", (i, j))
            done.append(i)

        kernel.spawn(proc, body, pin=0)

    make_client(0)
    make_client(1)
    kernel.run(until_ns=10_000_000)
    assert sorted(done) == [0, 1]


def test_rpc_roundtrip_is_orders_of_magnitude_over_function_call(kernel, ns):
    """§2.2: local RPC is more than 3000x slower than a function call."""
    make_echo_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")
    elapsed = []

    def body(t):
        yield from client.call(t, "echo", 1)  # warm up
        start = t.now()
        yield from client.call(t, "echo", 1)
        elapsed.append(t.now() - start)
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    assert elapsed[0] > 3000 * kernel.costs.FUNC_CALL
