"""Peer-death semantics across the baseline IPC mechanisms: EPIPE,
ECONNRESET tombstones, bounded RPC retransmit, and L4 hangup."""

import pytest

from repro.errors import (KernelError, PeerResetError, PipeBrokenError,
                          SocketTimeout)
from repro.ipc import L4Endpoint, Pipe, RpcClient, RpcServer, SocketNamespace
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def ns():
    return SocketNamespace()


# -- pipes ---------------------------------------------------------------------

def test_write_after_reader_death_raises_epipe(kernel):
    writer_proc = kernel.spawn_process("writer")
    reader_proc = kernel.spawn_process("reader")
    pipe = Pipe(kernel)
    pipe.bind_endpoints(writer=writer_proc, reader=reader_proc)
    errors = []

    def writer(t):
        yield from pipe.write(t, 64, payload="one")
        yield from t.sleep(10_000)
        try:
            yield from pipe.write(t, 64, payload="two")
        except PipeBrokenError as exc:
            errors.append(exc)

    kernel.spawn(writer_proc, writer)
    kernel.engine.post(5_000, lambda: kernel.kill_process(reader_proc))
    kernel.run()
    kernel.check()
    assert len(errors) == 1


def test_blocked_writer_woken_with_epipe_on_reader_death(kernel):
    writer_proc = kernel.spawn_process("writer")
    reader_proc = kernel.spawn_process("reader")
    pipe = Pipe(kernel, capacity=1024)
    pipe.bind_endpoints(writer=writer_proc, reader=reader_proc)
    errors = []

    def writer(t):
        try:
            # 8 KB through a 1 KB buffer with no reader draining it:
            # blocks on a full buffer until the kill delivers EPIPE
            yield from pipe.write(t, 8 * 1024)
        except PipeBrokenError as exc:
            errors.append(exc)

    kernel.spawn(writer_proc, writer)
    kernel.engine.post(5_000, lambda: kernel.kill_process(reader_proc))
    kernel.run()
    kernel.check()
    assert len(errors) == 1
    assert kernel.engine.pending() == 0


def test_reader_gets_eof_when_writer_dies_between_messages(kernel):
    writer_proc = kernel.spawn_process("writer")
    reader_proc = kernel.spawn_process("reader")
    pipe = Pipe(kernel)
    pipe.bind_endpoints(writer=writer_proc, reader=reader_proc)
    got = []

    def writer(t):
        yield from pipe.write(t, 64, payload="only")
        yield t.block("forever")

    def reader(t):
        got.append((yield from pipe.read(t)))
        got.append((yield from pipe.read(t)))  # EOF after the kill

    kernel.spawn(writer_proc, writer)
    kernel.spawn(reader_proc, reader)
    kernel.engine.post(50_000, lambda: kernel.kill_process(writer_proc))
    kernel.run()
    assert got == ["only", None]


def test_reader_reset_when_writer_dies_mid_message(kernel):
    """A large write streams through the buffer in chunks; killing the
    writer mid-stream leaves the frame short — the reader must get a
    reset naming the partial count, not EOF and not a hang."""
    writer_proc = kernel.spawn_process("writer")
    reader_proc = kernel.spawn_process("reader")
    pipe = Pipe(kernel, capacity=4 * 1024)
    pipe.bind_endpoints(writer=writer_proc, reader=reader_proc)
    errors = []

    def writer(t):
        yield from pipe.write(t, 64 * 1024)

    def reader(t):
        yield from t.sleep(2_000)
        try:
            yield from pipe.read(t)
        except PeerResetError as exc:
            errors.append(str(exc))

    kernel.spawn(writer_proc, writer, pin=0)
    kernel.spawn(reader_proc, reader, pin=1)
    kernel.engine.post(8_000, lambda: kernel.kill_process(writer_proc))
    kernel.run()
    assert len(errors) == 1
    assert "bytes delivered" in errors[0]
    assert kernel.engine.pending() == 0


# -- unix sockets --------------------------------------------------------------

def test_tombstone_gives_reset_not_refused(kernel, ns):
    owner = kernel.spawn_process("owner")
    sock = ns.socket(kernel)
    sock.bind("/box")
    sock.bind_owner(owner)
    kernel.kill_process(owner)
    sender_proc = kernel.spawn_process("sender")
    sender = ns.socket(kernel)
    outcomes = []

    def body(t):
        try:
            yield from sender.sendto(t, "/box", 16)
        except PeerResetError:
            outcomes.append("reset")
        try:
            yield from sender.sendto(t, "/never-bound", 16)
        except PeerResetError:
            outcomes.append("reset")
        except KernelError:
            outcomes.append("refused")

    kernel.spawn(sender_proc, body)
    kernel.run()
    kernel.check()
    assert outcomes == ["reset", "refused"]


def test_blocked_receiver_woken_with_reset_on_owner_death(kernel, ns):
    owner = kernel.spawn_process("owner")
    other = kernel.spawn_process("other")
    sock = ns.socket(kernel)
    sock.bind("/box")
    sock.bind_owner(owner)
    errors = []

    def body(t):
        try:
            yield from sock.recvfrom(t)
        except PeerResetError as exc:
            errors.append(exc)

    kernel.spawn(other, body)
    kernel.engine.post(5_000, lambda: kernel.kill_process(owner))
    kernel.run()
    kernel.check()
    assert len(errors) == 1


def test_rebinding_over_a_tombstone_is_allowed(kernel, ns):
    owner = kernel.spawn_process("owner")
    sock = ns.socket(kernel)
    sock.bind("/box")
    sock.bind_owner(owner)
    kernel.kill_process(owner)
    fresh = ns.socket(kernel)
    fresh.bind("/box")  # a restarted service reclaims the name
    assert ns.lookup("/box") is fresh


def test_recvfrom_timeout_raises_and_leaves_no_stale_state(kernel, ns):
    proc = kernel.spawn_process("p")
    sock = ns.socket(kernel)
    sock.bind("/box")
    events = []

    def impatient(t):
        try:
            yield from sock.recvfrom(t, timeout_ns=10_000)
        except SocketTimeout:
            events.append(("timeout", t.now()))

    def patient(t):
        yield from t.sleep(20_000)
        events.append(("got", (yield from sock.recvfrom(t))[0]))

    def sender(t):
        yield from t.sleep(40_000)
        yield from sock.sendto(t, "/box", 16, payload="late")

    kernel.spawn(proc, impatient, pin=0)
    kernel.spawn(proc, patient, pin=0)
    kernel.spawn(proc, sender, pin=1)
    kernel.run()
    kernel.check()
    # the timed-out receiver's stale queue entry must not eat the wake
    # meant for the second receiver
    assert events[0][0] == "timeout" and events[0][1] >= 10_000
    assert events[1] == ("got", "late")
    assert kernel.engine.pending() == 0


def test_recvfrom_success_cancels_timer(kernel, ns):
    proc = kernel.spawn_process("p")
    sock = ns.socket(kernel)
    sock.bind("/box")
    got = []

    def receiver(t):
        got.append((yield from sock.recvfrom(
            t, timeout_ns=100_000_000))[0])

    def sender(t):
        yield from sock.sendto(t, "/box", 16, payload="fast")

    kernel.spawn(proc, receiver, pin=0)
    kernel.spawn(proc, sender, pin=1)
    kernel.run()
    kernel.check()
    assert got == ["fast"]
    assert kernel.engine.pending() == 0
    assert kernel.engine.now() < 100_000_000


# -- rpc -----------------------------------------------------------------------

def _make_server(kernel, ns, path="/srv/echo"):
    server_proc = kernel.spawn_process("server")
    server = RpcServer(kernel, server_proc, ns, path)

    def echo(t, args):
        yield t.compute(2)
        return 8, ("echo", args)

    server.register("echo", echo)
    return server_proc, server


def test_rpc_retransmits_until_server_appears(kernel, ns):
    """rpcgen semantics: the same xid is retransmitted with backoff; a
    late server answers both copies and the client accepts the first
    matching reply, dropping the stale duplicate on the next call."""
    server_proc, server = _make_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo",
                       retries=2, reply_timeout_ns=100_000.0)
    results = []

    def body(t):
        results.append((yield from client.call(t, "echo", 8, args=1)))
        # the retransmitted copy produced a duplicate reply with the old
        # xid: the next call must drop it, not mistake it for its own
        results.append((yield from client.call(t, "echo", 8, args=2)))
        yield from client.shutdown_server(t)

    kernel.spawn(client_proc, body, pin=0)
    # the service thread only starts after the first attempt timed out
    kernel.engine.post(
        120_000, lambda: kernel.spawn(server_proc, server.serve_loop,
                                      name="svc", pin=1))
    kernel.run()
    kernel.check()
    assert results == [("echo", 1), ("echo", 2)]
    assert client.retransmits == 1
    assert server.requests_served == 3  # req1 twice + req2


def test_rpc_retries_exhausted_raises_timeout(kernel, ns):
    # nothing ever binds the path's service loop: all attempts expire
    server_proc, server = _make_server(kernel, ns)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo",
                       retries=1, reply_timeout_ns=10_000.0)
    caught = []

    def body(t):
        try:
            yield from client.call(t, "echo", 8, args=1)
        except SocketTimeout as exc:
            caught.append((exc, t.now()))

    kernel.spawn(client_proc, body, pin=0)
    kernel.run()
    kernel.check()
    assert len(caught) == 1
    # two attempts of 10us plus one 50us backoff elapsed
    assert caught[0][1] >= 2 * 10_000 + 50_000
    assert client.retransmits == 1
    assert kernel.engine.pending() == 0


def test_rpc_default_client_is_unchanged_blocking(kernel, ns):
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo")
    assert client.retries == 0
    assert client.reply_timeout_ns is None


def test_rpc_client_sees_reset_when_server_dies(kernel, ns):
    server_proc, server = _make_server(kernel, ns)
    kernel.spawn(server_proc, server.serve_loop, name="svc", pin=1)
    client_proc = kernel.spawn_process("client")
    client = RpcClient(kernel, client_proc, ns, "/srv/echo",
                       retries=3, reply_timeout_ns=20_000.0)
    caught = []

    def body(t):
        results = yield from client.call(t, "echo", 8, args=1)
        assert results == ("echo", 1)
        yield from t.sleep(100_000)  # outlive the kill below
        try:
            yield from client.call(t, "echo", 8, args=2)
        except PeerResetError as exc:
            caught.append(exc)

    kernel.spawn(client_proc, body, pin=0)
    # kill the server between the two exchanges: the second call's send
    # hits the tombstone and surfaces ECONNRESET instead of blocking
    kernel.engine.post(60_000, lambda: kernel.kill_process(server_proc))
    kernel.run()
    assert len(caught) == 1
    assert kernel.engine.pending() == 0


# -- l4 ------------------------------------------------------------------------

def test_l4_call_after_owner_death_raises(kernel):
    client_proc = kernel.spawn_process("client")
    server_proc = kernel.spawn_process("server")
    endpoint = L4Endpoint(kernel)
    endpoint.bind_owner(server_proc)
    kernel.kill_process(server_proc)
    caught = []

    def body(t):
        try:
            yield from endpoint.call(t, "ping")
        except PeerResetError as exc:
            caught.append(exc)

    kernel.spawn(client_proc, body)
    kernel.run()
    kernel.check()
    assert len(caught) == 1


def test_l4_blocked_caller_woken_on_hangup(kernel):
    client_proc = kernel.spawn_process("client")
    server_proc = kernel.spawn_process("server")
    endpoint = L4Endpoint(kernel)
    endpoint.bind_owner(server_proc)
    caught = []

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        yield t.block("forever")  # takes the request, never replies

    def client(t):
        try:
            yield from endpoint.call(t, "ping")
        except PeerResetError as exc:
            caught.append(exc)

    kernel.spawn(server_proc, server, pin=1, name="l4srv")
    kernel.spawn(client_proc, client, pin=0, name="l4cli")
    kernel.engine.post(50_000, lambda: kernel.kill_process(server_proc))
    kernel.run()
    assert len(caught) == 1
    assert kernel.engine.pending() == 0
