"""Corrupt cache entries must self-heal, never poison or abort a run."""

import json
import os

from repro.runner.cache import CACHE_VERSION, ResultCache
from repro.runner.points import PointSpec
from repro.runner.pool import run_points


def _spec(**kwargs):
    return PointSpec("fig5", "repro.experiments.fig05_sync_calls",
                     dict({"label": "syscall", "iters": 3}, **kwargs))


def _corrupt(cache, spec, text):
    path = cache._path(spec)
    with open(path, "w") as fh:
        fh.write(text)
    return path


def test_truncated_entry_is_a_miss_and_is_unlinked(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    cache.store(spec, {"ok": 1})
    path = _corrupt(cache, spec, '{"version": %d, "resu' % CACHE_VERSION)
    hit, _ = cache.lookup(spec)
    assert not hit
    assert not os.path.exists(path)  # self-healed: bad entry removed


def test_every_wrong_shape_is_healed(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    for bad in ("[]",                                   # not an object
                '"just a string"',                      # not an object
                json.dumps({"version": CACHE_VERSION}),  # no result key
                json.dumps({"version": CACHE_VERSION - 1,
                            "result": 5})):             # stale layout
        cache.store(spec, {"ok": 1})
        path = _corrupt(cache, spec, bad)
        hit, _ = cache.lookup(spec)
        assert not hit, bad
        assert not os.path.exists(path), bad


def test_missing_entry_is_a_plain_miss_without_side_effects(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    hit, value = cache.lookup(_spec())
    assert not hit and value is None
    assert not os.path.exists(str(tmp_path / "c"))  # nothing created


def test_corrupt_entry_recomputes_and_reheals_end_to_end(tmp_path):
    cache = ResultCache(str(tmp_path))
    specs = [_spec(iters=i) for i in (2, 3)]
    cold, _ = run_points(specs, cache=cache)
    _corrupt(cache, specs[0], "{torn")
    healed, stats = run_points(specs, cache=cache)
    assert healed == cold                   # recompute, same numbers
    assert stats.cache_hits == 1 and stats.computed == 1
    hit, value = cache.lookup(specs[0])     # the store healed the entry
    assert hit and value == cold[0]
