"""Byte-identity of the sharded runner vs the original serial paths.

These are the determinism pins for ``--jobs``: a parallel or cached run
must render the exact same text as the untouched in-process code path.
"""

from repro.runner import registry
from repro.runner.cache import ResultCache
from repro.runner.pool import run_points


def _sharded(name, quick, jobs, cache=None):
    specs = registry.specs_for(name, quick)
    results, stats = run_points(specs, jobs=jobs, cache=cache)
    return registry.assemble(name, specs, results), stats


def test_fig5_quick_jobs4_matches_serial_path():
    from repro.experiments.__main__ import _run_fig5
    serial = _run_fig5(True)
    parallel, stats = _sharded("fig5", True, jobs=4)
    assert parallel == serial
    assert stats.jobs == 4 and stats.computed == stats.total


def test_ablation_quick_jobs2_matches_serial_path():
    from repro.experiments.__main__ import _run_ablation
    serial = _run_ablation(True)
    parallel, _stats = _sharded("ablation", True, jobs=2)
    assert parallel == serial


def test_warm_cache_render_is_identical_and_skips_everything(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cold, cold_stats = _sharded("fig2", True, jobs=1, cache=cache)
    warm, warm_stats = _sharded("fig2", True, jobs=1, cache=cache)
    assert warm == cold
    assert cold_stats.computed == cold_stats.total
    assert warm_stats.skipped_fraction >= 0.9


def test_chaos_under_runner_matches_serial():
    from repro.fault import chaos
    serial = chaos.run_chaos(11, 2, quick=True, verify=False)
    sharded = chaos.run_chaos(11, 2, quick=True, verify=False, jobs=2)
    assert sharded.log_text == serial.log_text
    assert chaos.render(sharded) == chaos.render(serial)
    assert sharded.ok and serial.ok
