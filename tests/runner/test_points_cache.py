"""Unit tests for the point runner: specs, cache keys, pool plumbing."""

import json
import os

from repro.hw.costs import CostModel
from repro.runner.cache import ResultCache, package_fingerprint
from repro.runner.points import PointSpec, execute_spec
from repro.runner.pool import RunStats, run_points, summary


def _spec(**kwargs):
    return PointSpec("fig5", "repro.experiments.fig05_sync_calls",
                     dict({"label": "syscall", "iters": 3}, **kwargs))


def test_payload_is_canonical_and_order_insensitive():
    a = PointSpec("x", "m", {"b": 2, "a": 1})
    b = PointSpec("x", "m", {"a": 1, "b": 2})
    assert a.payload() == b.payload()
    assert json.loads(a.payload())["kwargs"] == {"a": 1, "b": 2}


def test_execute_spec_calls_the_module_function():
    result = execute_spec(_spec())
    assert result["label"] == "syscall"
    assert result["mean_ns"] > 0


def test_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    spec = _spec()
    hit, _ = cache.lookup(spec)
    assert not hit
    cache.store(spec, {"mean_ns": 1.5})
    hit, value = cache.lookup(spec)
    assert hit and value == {"mean_ns": 1.5}


def test_cache_key_depends_on_kwargs_and_cost_model(tmp_path):
    default = ResultCache(str(tmp_path))
    assert default.key(_spec()) != default.key(_spec(iters=4))
    recalibrated = ResultCache(str(tmp_path),
                               costs=CostModel(TLS_SWITCH=0.0))
    assert default.key(_spec()) != recalibrated.key(_spec())


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    cache.store(spec, {"ok": 1})
    path = cache._path(spec)
    with open(path, "w") as fh:
        fh.write("{not json")
    hit, _ = cache.lookup(spec)
    assert not hit


def test_non_cacheable_specs_never_touch_disk(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    spec = PointSpec("chaos", "repro.fault.chaos", {}, cacheable=False)
    cache.store(spec, {"x": 1})
    hit, _ = cache.lookup(spec)
    assert not hit
    assert not os.path.exists(str(tmp_path / "c"))


def test_fingerprint_is_stable_within_a_process():
    assert package_fingerprint() == package_fingerprint()
    assert len(package_fingerprint()) == 16


def test_run_points_merges_in_spec_order_with_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    specs = [_spec(iters=i) for i in (2, 3, 4)]
    cold, cold_stats = run_points(specs, jobs=1, cache=cache)
    assert cold_stats.computed == 3 and cold_stats.cache_hits == 0
    warm, warm_stats = run_points(specs, jobs=1, cache=cache)
    assert warm == cold
    assert warm_stats.cache_hits == 3 and warm_stats.computed == 0
    assert warm_stats.skipped_fraction == 1.0


def test_summary_line_reports_skip_percentage():
    line = summary(RunStats(total=45, cache_hits=42, computed=3, jobs=4))
    assert line == ("runner: 45 points, 42 from cache (93% skipped), "
                    "3 computed, jobs=4")
