"""REPORT.md section ordering and header determinism."""

import re

from repro.experiments import report


def test_section_order_is_the_canonical_tuple():
    assert report.SECTION_ORDER == (
        ("Table 1", "table1"),
        ("Figure 2", "fig2"),
        ("Figure 5", "fig5"),
        ("Figure 6", "fig6"),
        ("Figure 7", "fig7"),
        ("Figure 1", "fig1"),
        ("Figure 8", "fig8"),
        ("Figure 9", "fig9"),
        ("Figure 10", "fig10"),
        ("Figure 11", "fig11"),
        ("Figure 12", "fig12"),
        ("In-text extras", "extras"),
    )


def test_every_section_has_params_and_points():
    for _title, name in report.SECTION_ORDER:
        params = report._section_params(name, quick=True)
        assert isinstance(params, dict)
    specs = report._section_specs(quick=True)
    assert [name for _t, name, _s in specs] == \
        [name for _t, name in report.SECTION_ORDER]
    assert all(section_specs for _t, _n, section_specs in specs)


def test_generated_report_is_deterministic_and_ordered(tmp_path,
                                                       monkeypatch):
    # a cheap two-section report exercises the full generate() path
    monkeypatch.setattr(report, "SECTION_ORDER",
                        (("Table 1", "table1"),
                         ("In-text extras", "extras")))
    first = report.generate(str(tmp_path / "a.md"), quick=True)
    second = report.generate(str(tmp_path / "b.md"), quick=True)
    text_a = open(first).read()
    text_b = open(second).read()
    # byte-identical modulo the self-referencing meta path
    assert text_a.replace("a.meta.json", "b.meta.json") == text_b
    headings = re.findall(r"^## (.+)$", text_a, flags=re.M)
    assert headings == ["Table 1", "In-text extras"]
    # no wall-clock leaks into the report body
    assert "s of" not in text_a
    assert not re.search(r"\d{4}-\d{2}-\d{2}T", text_a)
