"""FigureDriver protocol conformance and import-time validation."""

import json

import pytest

from repro.runner import registry
from repro.runner.points import PointSpec
from repro.runner.registry import (SUPPORTED, FigureDriver,
                                   register_figure)


@pytest.mark.parametrize("name", SUPPORTED)
def test_every_supported_figure_registers_a_conforming_driver(name):
    driver = registry.get(name)
    assert isinstance(driver, FigureDriver)
    assert driver.name == name
    for quick in (False, True):
        assert isinstance(driver.cli_params(quick), dict)


@pytest.mark.parametrize("name", SUPPORTED)
def test_quick_specs_are_nonempty_and_cacheable(name):
    specs = registry.specs_for(name, quick=True)
    assert specs
    for spec in specs:
        assert isinstance(spec, PointSpec)
        json.dumps(spec.kwargs)  # the cache-key contract


def test_get_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="fig5"):
        registry.get("fig99")


def _valid_driver(**overrides):
    class Driver:
        name = "proto-test"

        @staticmethod
        def cli_params(quick):
            return {"iters": 1 if quick else 2}

        @staticmethod
        def points(*, iters):
            return [PointSpec("proto-test", __name__, {"iters": iters})]

        @staticmethod
        def compute_point(*, iters):
            return iters

        @staticmethod
        def assemble(specs, results):
            return str(results)

    for key, value in overrides.items():
        setattr(Driver, key, value)
    return Driver


@pytest.fixture
def scratch_registry(monkeypatch):
    monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))


def test_register_accepts_a_valid_driver(scratch_registry):
    cls = register_figure(_valid_driver())
    assert registry.get("proto-test").name == "proto-test"
    assert cls.name == "proto-test"


def test_register_rejects_missing_attrs():
    cls = _valid_driver()
    del cls.assemble
    with pytest.raises(TypeError, match="assemble"):
        register_figure(cls)


def test_register_rejects_non_dict_cli_params():
    cls = _valid_driver(cli_params=staticmethod(lambda quick: ["x"]))
    with pytest.raises(TypeError, match="must return a dict"):
        register_figure(cls)


def test_register_rejects_cli_params_that_do_not_bind():
    cls = _valid_driver(
        cli_params=staticmethod(lambda quick: {"renamed_kw": 1}))
    with pytest.raises(TypeError, match="does not bind"):
        register_figure(cls)


def test_register_rejects_empty_name():
    with pytest.raises(ValueError, match="non-empty"):
        register_figure(_valid_driver(name=""))


def test_register_rejects_duplicate_name_from_other_module(
        scratch_registry):
    register_figure(_valid_driver())
    impostor = _valid_driver()
    impostor.__module__ = "somewhere.else"
    with pytest.raises(ValueError, match="already registered"):
        register_figure(impostor)


def test_reregistration_from_same_module_is_idempotent(scratch_registry):
    cls = _valid_driver()
    register_figure(cls)
    register_figure(cls)  # e.g. importlib.reload of a figure module
    assert registry.get("proto-test").name == "proto-test"
