"""Runner crash-safety: checkpoints, resume, worker retries, stalls.

The point functions live at module level so pool workers (forked on
Linux) can import them by this module's name.
"""

import glob
import os
import time

import pytest

from repro.recovery.checkpoint import CheckpointJournal
from repro.runner.pool import PointFailure, run_points
from repro.runner.points import PointSpec


def ok_point(value):
    return {"value": value}


def boom_point():
    raise RuntimeError("boom")


def crash_once_point(marker):
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        os._exit(13)  # hard-kill the pool worker (BrokenProcessPool)
    return {"survived": True}


def fail_once_point(marker):
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        raise ValueError("transient")
    return {"ok": True}


def always_fail_point():
    raise ValueError("permanent")


def slow_point(seconds):
    time.sleep(seconds)
    return {"slept": seconds}


def _spec(func, **kwargs):
    return PointSpec("crashsafe", __name__, kwargs, func=func)


def test_interrupted_sweep_resumes_without_recompute(tmp_path):
    path = str(tmp_path / "ckpt.jsonl")
    broken = [_spec("ok_point", value=0), _spec("ok_point", value=1),
              _spec("boom_point"), _spec("ok_point", value=3)]
    with pytest.raises(RuntimeError):
        run_points(broken, checkpoint=CheckpointJournal(path))
    # the journal survived the crash with the finished points in it
    recovered = CheckpointJournal(path).load()
    assert set(recovered) == {0, 1}

    fixed = list(broken)
    fixed[2] = _spec("ok_point", value=2)
    results, stats = run_points(fixed, checkpoint=CheckpointJournal(path),
                                resume=True)
    assert results == [{"value": v} for v in range(4)]
    assert stats.resumed == 2 and stats.computed == 2
    assert not os.path.exists(path)  # completion deletes the journal


def test_resumed_results_match_an_uninterrupted_run(tmp_path):
    specs = [_spec("ok_point", value=v) for v in range(4)]
    straight, _ = run_points(specs)

    path = str(tmp_path / "ckpt.jsonl")
    journal = CheckpointJournal(path)
    journal.start(resume=False)
    for index in (0, 2):
        journal.record(index, straight[index])
    journal.close()
    resumed, stats = run_points(specs, checkpoint=CheckpointJournal(path),
                                resume=True)
    assert resumed == straight
    assert stats.resumed == 2 and stats.computed == 2


def test_fresh_run_discards_a_stale_journal(tmp_path):
    path = str(tmp_path / "ckpt.jsonl")
    stale = CheckpointJournal(path)
    stale.start(resume=False)
    stale.record(0, {"value": 99})  # wrong: must not leak into a fresh run
    stale.close()
    results, stats = run_points([_spec("ok_point", value=0)],
                                checkpoint=CheckpointJournal(path))
    assert results == [{"value": 0}]
    assert stats.resumed == 0


def test_cache_hits_are_journaled_too(tmp_path):
    from repro.runner.cache import ResultCache
    cache = ResultCache(str(tmp_path / "cache"))
    specs = [PointSpec("fig5", "repro.experiments.fig05_sync_calls",
                       {"label": "syscall", "iters": 2})]
    run_points(specs, cache=cache)  # warm the cache
    path = str(tmp_path / "ckpt.jsonl")

    class _Sticky(CheckpointJournal):
        def complete(self):  # keep the file so the test can read it
            self.close()

    _results, stats = run_points(specs, cache=cache,
                                 checkpoint=_Sticky(path))
    assert stats.cache_hits == 1
    assert set(CheckpointJournal(path).load()) == {0}


def test_crashed_pool_worker_is_retried(tmp_path):
    marker = str(tmp_path / "crashed")
    specs = [_spec("crash_once_point", marker=marker),
             _spec("ok_point", value=1), _spec("ok_point", value=2)]
    results, stats = run_points(specs, jobs=2)
    assert results[0] == {"survived": True}
    assert results[1:] == [{"value": 1}, {"value": 2}]
    assert stats.retried >= 1


def test_transient_point_failure_is_retried(tmp_path):
    marker = str(tmp_path / "failed")
    specs = [_spec("fail_once_point", marker=marker),
             _spec("ok_point", value=1), _spec("ok_point", value=2)]
    results, stats = run_points(specs, jobs=2)
    assert results[0] == {"ok": True}
    assert stats.retried == 1


def test_persistent_failure_exhausts_retries_and_keeps_journal(tmp_path):
    specs = [_spec("always_fail_point"), _spec("ok_point", value=1)]
    with pytest.raises(PointFailure, match="crashsafe"):
        run_points(specs, jobs=2, retries=1, checkpoint=str(tmp_path))
    # the journal was kept as the --resume handle
    assert glob.glob(str(tmp_path / "checkpoint-*.jsonl"))


def test_stalled_pool_times_out_as_point_failure(tmp_path):
    specs = [_spec("slow_point", seconds=3.0),
             _spec("ok_point", value=1)]
    with pytest.raises(PointFailure, match="stalled"):
        run_points(specs, jobs=2, timeout_s=0.3, retries=0)

def test_point_failure_names_hash_and_replay(tmp_path, monkeypatch):
    """An exhausted point's error must be actionable: the cache hash
    identifies the exact point content, the quoted command replays it."""
    monkeypatch.setenv("REPRO_CHECK_DIR", str(tmp_path / "bundles"))
    specs = [_spec("always_fail_point"), _spec("ok_point", value=1)]
    with pytest.raises(PointFailure) as info:
        run_points(specs, jobs=2, retries=0)
    message = str(info.value)
    assert "cache hash" in message
    assert "check --replay" in message
    from repro.runner.cache import ResultCache
    assert ResultCache().key(specs[0]) in message
    # the quoted bundle exists and replays as a point bundle
    bundles = glob.glob(str(tmp_path / "bundles" / "point-*.json"))
    assert len(bundles) == 1
    from repro.check.bundle import load
    assert load(bundles[0])["kind"] == "point"
    assert load(bundles[0])["spec"]["driver"] == "crashsafe"


def test_point_failure_is_journaled(tmp_path, monkeypatch):
    """The checkpoint journal records the failure (and --resume skips
    the entry instead of mistaking it for a completed point)."""
    import json
    monkeypatch.setenv("REPRO_CHECK_DIR", str(tmp_path / "bundles"))
    specs = [_spec("always_fail_point"), _spec("ok_point", value=1)]
    with pytest.raises(PointFailure):
        run_points(specs, jobs=2, retries=0, checkpoint=str(tmp_path))
    journal_path = glob.glob(str(tmp_path / "checkpoint-*.jsonl"))[0]
    failed = [json.loads(line)
              for line in open(journal_path) if '"failed"' in line]
    assert len(failed) == 1
    assert failed[0]["i"] == 0
    assert failed[0]["failed"]["bundle"].endswith(".json")
    assert "hash" in failed[0]["failed"]
    # a resume sees only genuinely completed points
    recovered = CheckpointJournal(journal_path).load()
    assert 0 not in recovered
