"""fig12_bracket: point structure, dispatch, and the assembled report."""

import json

from repro import units
from repro.experiments import fig12_bracket
from repro.runner.points import execute_spec


def _cheap_specs():
    return fig12_bracket.points(rungs=(800.0,), scenarios=("chain-4",),
                                reps=2, window_ns=0.6 * units.MS,
                                warmup_ns=0.3 * units.MS)


def test_points_split_into_load_and_chain_parts():
    specs = _cheap_specs()
    for spec in specs:
        assert spec.driver == "fig12"
        json.dumps(spec.kwargs)  # cache-key contract
    load = [s for s in specs if s.kwargs["part"] == "load"]
    chain = [s for s in specs if s.kwargs["part"] == "chain"]
    assert {s.kwargs["primitive"] for s in load} == \
        set(fig12_bracket._bracket())
    assert {s.kwargs["primitive"] for s in chain} == \
        set(fig12_bracket._chain_members())
    # Part A sweeps requests big enough to exercise the DMA offload
    assert all(s.kwargs["req_size"] == fig12_bracket.REQ_SIZE
               for s in load)
    assert fig12_bracket.REQ_SIZE >= 16384


def test_chain_rep_seeds_differ():
    specs = [s for s in _cheap_specs() if s.kwargs["part"] == "chain"]
    seeds = {s.kwargs["rep"]: s.kwargs["seed"] for s in specs}
    assert len(set(seeds.values())) == 2


def test_assembled_report_has_both_parts_and_verdicts():
    specs = _cheap_specs()
    report = fig12_bracket.assemble(specs,
                                    [execute_spec(s) for s in specs])
    assert "Part A: open-loop sweep" in report
    assert "Part B: chain compounding" in report
    assert "saturation knees" in report
    for primitive in fig12_bracket._bracket():
        assert f"-- {primitive} " in report
    # a single shallow scenario cannot satisfy the depth floor: the
    # verdict machinery must say so rather than crash or pass vacuously
    for headline in ("dIPC", "dpti", "odIPC"):
        assert (f"{headline} compounding: FAIL (no scenario of depth "
                in report)
