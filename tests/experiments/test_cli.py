"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.__main__ import DEFAULT_SET, RUNNERS, main


def test_runner_registry_covers_every_artifact():
    assert {"table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8",
            "extras", "ablation", "report"} == set(RUNNERS)


def test_default_set_excludes_report():
    assert "report" not in DEFAULT_SET
    assert "fig5" in DEFAULT_SET


def test_unknown_name_is_an_error(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_runs_cheap_experiments(capsys):
    assert main(["table1", "extras", "ablation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "CODOMs" in out
    assert "setjmp" in out
    assert "tls-optimized" in out


def test_cli_runs_fig5_quick(capsys):
    assert main(["fig5", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "64.12x" in out
    assert "dipc_proc_high" in out
