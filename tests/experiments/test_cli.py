"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.__main__ import DEFAULT_SET, RUNNERS, main


def test_runner_registry_covers_every_artifact():
    assert {"table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "extras", "ablation",
            "microbench", "report", "chaos"} == set(RUNNERS)


def test_default_set_excludes_report_chaos_and_microbench():
    assert "report" not in DEFAULT_SET
    assert "chaos" not in DEFAULT_SET
    assert "microbench" not in DEFAULT_SET
    assert "fig5" in DEFAULT_SET
    assert "fig9" in DEFAULT_SET


def test_unknown_name_is_an_error(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_name_under_run_verb_is_an_error(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_runs_cheap_experiments(capsys):
    assert main(["table1", "extras", "ablation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "CODOMs" in out
    assert "setjmp" in out
    assert "tls-optimized" in out


def test_cli_runs_fig5_quick(capsys):
    assert main(["fig5", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "64.12x" in out
    assert "dipc_proc_high" in out


def test_cli_run_verb_matches_bare_form(capsys):
    assert main(["run", "table1"]) == 0
    run_out = capsys.readouterr().out
    assert main(["table1"]) == 0
    bare_out = capsys.readouterr().out
    strip = [line for line in run_out.splitlines()
             if not line.startswith("[")]
    assert strip == [line for line in bare_out.splitlines()
                     if not line.startswith("[")]


def test_cli_accepts_zero_padded_names(capsys):
    assert main(["fig05", "--quick"]) == 0
    assert "dipc_proc_high" in capsys.readouterr().out


def test_cli_accepts_fig09_load_alias():
    from repro.experiments.__main__ import _normalize
    assert _normalize("fig09_load") == "fig9"
    assert _normalize("fig9_load") == "fig9"
    assert _normalize("fig09") == "fig9"


def test_cli_chaos_writes_log_and_verifies(tmp_path, capsys):
    assert main(["chaos", "--seed", "3", "--storms", "1", "--quick",
                 "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "byte-identical injection logs" in captured.out
    assert "all invariants held" in captured.out
    assert "deprecated" in captured.err
    log = (tmp_path / "chaos.log").read_text()
    assert log.startswith("# chaos seed=3 storms=1 quick=1\n")


def test_cli_trace_requires_experiment_name(capsys):
    assert main(["trace"]) == 2
    assert "usage" in capsys.readouterr().err


def test_cli_trace_flag_records_one_experiment_only(capsys):
    assert main(["run", "table1", "extras", "--trace"]) == 2
    assert "one experiment" in capsys.readouterr().err


def test_cli_trace_fig5_writes_artifacts(tmp_path, capsys):
    import csv
    import json

    assert main(["trace", "fig05", "--quick", "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "deprecated" in captured.err
    assert "perfetto" in out
    assert "dipc.proxy_calls" in out

    with open(tmp_path / "trace.json") as handle:
        trace = json.load(handle)
    events = trace["traceEvents"]
    assert events
    span_names = {e["name"] for e in events if e["ph"] == "X"}
    # at least one span per IPC primitive family exercised by fig5
    for expected in ("futex.wait", "pipe.write", "rpc.call", "l4.call"):
        assert expected in span_names, expected
    assert any(name.startswith("dipc:") for name in span_names)

    with open(tmp_path / "spans.csv", newline="") as handle:
        rows = list(csv.reader(handle))
    assert len(rows) > 1

    with open(tmp_path / "meta.json") as handle:
        meta = json.load(handle)
    assert meta["experiment"] == "fig5"
    assert meta["mode"] == "quick"
    assert meta["params"]["traced_runs"] > 0


def test_cli_run_trace_flag_writes_artifacts(tmp_path, capsys):
    import json

    assert main(["run", "fig05", "--quick", "--trace",
                 "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    # the canonical spelling is not deprecated
    assert "deprecated" not in captured.err
    assert "perfetto" in captured.out
    with open(tmp_path / "meta.json") as handle:
        assert json.load(handle)["experiment"] == "fig5"


def test_cli_chaos_flag_storms_table1(capsys):
    # table1 builds kernels without load-server processes: the armed
    # storms record deterministic misses and the figure still renders
    assert main(["run", "table1", "--chaos", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "CODOMs" in out
    assert "chaos:" in out
    assert "seed 5" in out
