"""The bench results history and the --compare regression gate."""

import json

from repro.experiments import bench


def _entry(**overrides):
    payload = {
        "bench_version": 2, "mode": "quick", "points": 100,
        "cold_serial_s": 50.0, "cold_parallel_s": 25.0,
        "warm_cached_s": 0.5, "engine_events_per_sec": 2_000_000,
        "cpu_count": 4,
    }
    payload.update(overrides)
    return payload


def test_append_history_is_append_only(tmp_path):
    d = str(tmp_path)
    first = bench.append_history(_entry(), "aa", history_dir=d)
    second = bench.append_history(_entry(), "bb", history_dir=d)
    assert first.endswith("0001-aa.json")
    assert second.endswith("0002-bb.json")
    names = [name for name, _payload in bench.history_entries(d)]
    assert names == ["0001-aa.json", "0002-bb.json"]


def test_append_never_overwrites_same_label(tmp_path):
    d = str(tmp_path)
    bench.append_history(_entry(points=1), "run", history_dir=d)
    bench.append_history(_entry(points=2), "run", history_dir=d)
    entries = bench.history_entries(d)
    assert len(entries) == 2
    assert [payload["points"] for _name, payload in entries] == [1, 2]


def test_compare_needs_two_entries(tmp_path):
    d = str(tmp_path)
    assert bench.compare(history_dir=d) == 2
    bench.append_history(_entry(), "only", history_dir=d)
    assert bench.compare(history_dir=d) == 2


def test_compare_clean_when_stable(tmp_path, capsys):
    d = str(tmp_path)
    bench.append_history(_entry(), "base", history_dir=d)
    bench.append_history(_entry(cold_serial_s=51.0), "next",
                         history_dir=d)
    assert bench.compare(history_dir=d) == 0
    assert "no regression" in capsys.readouterr().out


def test_compare_flags_engine_regression(tmp_path, capsys):
    d = str(tmp_path)
    bench.append_history(_entry(), "base", history_dir=d)
    bench.append_history(_entry(engine_events_per_sec=1_500_000),
                         "slow", history_dir=d)
    assert bench.compare(history_dir=d) == 1
    assert "REGRESSION: engine_events_per_sec" in \
        capsys.readouterr().out


def test_compare_flags_serial_time_regression(tmp_path):
    d = str(tmp_path)
    bench.append_history(_entry(), "base", history_dir=d)
    bench.append_history(_entry(cold_serial_s=60.0), "slow",
                         history_dir=d)
    assert bench.compare(history_dir=d) == 1


def test_compare_normalizes_per_point(tmp_path):
    # double the points at double the wall-clock: per-point unchanged,
    # raw seconds alone would have screamed regression
    d = str(tmp_path)
    bench.append_history(_entry(), "base", history_dir=d)
    bench.append_history(
        _entry(points=200, cold_serial_s=100.0, warm_cached_s=1.0),
        "grown", history_dir=d)
    assert bench.compare(history_dir=d) == 0


def test_compare_tolerance_loosens_the_gate(tmp_path):
    d = str(tmp_path)
    bench.append_history(_entry(), "base", history_dir=d)
    bench.append_history(_entry(engine_events_per_sec=1_500_000),
                         "slow", history_dir=d)
    assert bench.compare(history_dir=d, tolerance=0.5) == 0


def test_compare_ignores_sub_epsilon_warm_wobble(tmp_path):
    # 0.1ms/point of warm-cache noise is filesystem, not code
    d = str(tmp_path)
    bench.append_history(_entry(warm_cached_s=0.02, points=100), "base",
                         history_dir=d)
    bench.append_history(_entry(warm_cached_s=0.04, points=100), "next",
                         history_dir=d)
    assert bench.compare(history_dir=d) == 0


def test_seeded_repo_history_is_loadable():
    entries = bench.history_entries()
    names = [name for name, _payload in entries]
    assert "0001-pr3.json" in names and "0002-pr6.json" in names
    for _name, payload in entries:
        assert json.dumps(payload)  # JSON-clean
        assert payload["points"] > 0
