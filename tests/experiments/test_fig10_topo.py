"""fig10_topo: decomposition, rendering, and the compounding verdict."""

import json

from repro import units
from repro.experiments import fig10_topo
from repro.load.transports import PRIMITIVES
from repro.runner.points import execute_spec


def _cheap_specs():
    return fig10_topo.points(scenarios=("chain-4", "chain-9"),
                             rungs=(50.0,), reps=2,
                             window_ns=0.6 * units.MS,
                             warmup_ns=0.3 * units.MS)


def test_points_embed_the_topology_and_are_json_safe():
    specs = _cheap_specs()
    assert len(specs) == 2 * len(PRIMITIVES) * 1 * 2
    for spec in specs:
        assert spec.driver == "fig10"
        json.dumps(spec.kwargs)  # cache-key contract
        assert spec.kwargs["topo"]["pattern"] == "chain_branch"
    scenarios = {s.kwargs["scenario"] for s in specs}
    assert scenarios == {"chain-4", "chain-9"}
    # the graph itself keys the cache: scenarios differ in their topo
    hashes = {json.dumps(s.kwargs["topo"], sort_keys=True)
              for s in specs}
    assert len(hashes) == 2


def test_rep_seeds_differ_so_cis_measure_real_variance():
    specs = _cheap_specs()
    seeds = {s.kwargs["rep"]: s.kwargs["seed"] for s in specs}
    assert len(set(seeds.values())) == 2


def test_assembled_report_states_the_compounding_verdict():
    specs = _cheap_specs()
    report = fig10_topo.assemble(specs,
                                 [execute_spec(s) for s in specs])
    for column in ("tput[kops]", "goodput", "p50[us]", "p99[us]",
                   "p999[us]"):
        assert column in report
    assert "-- chain-4: chain_branch n=4 depth=3" in report
    assert "-- chain-9: chain_branch n=9 depth=8" in report
    assert "mean +- 95% CI" in report
    assert "end-to-end p50 speedup vs socket" in report
    # chain-9 is depth 8: the >=5x compounding claim must hold there
    assert "dIPC compounding: PASS (chain-9, depth 8:" in report


def test_verdict_fails_without_a_deep_scenario():
    specs = fig10_topo.points(scenarios=("chain-4",), rungs=(50.0,),
                              reps=1, window_ns=0.6 * units.MS,
                              warmup_ns=0.3 * units.MS)
    report = fig10_topo.assemble(specs,
                                 [execute_spec(s) for s in specs])
    assert "dIPC compounding: FAIL (no scenario of depth >= 8" in report
