"""fig11_isolation: bench coverage, decomposition, the three verdicts."""

import json

from repro import primitives
from repro.experiments import fig11_isolation
from repro.hw.costs import CostModel
from repro.runner.points import execute_spec


def _cheap_specs(sizes=(64,)):
    return fig11_isolation.points(sizes=sizes, iters=3, warmup=1)


def test_points_cover_every_registered_primitive():
    specs = _cheap_specs(sizes=(64, 16384))
    assert len(specs) == 2 * len(primitives.names())
    for spec in specs:
        assert spec.driver == "fig11"
        json.dumps(spec.kwargs)  # cache-key contract
    swept = {s.kwargs["primitive"] for s in specs}
    assert swept == set(primitives.names())


def test_compute_point_reports_the_six_columns():
    spec = _cheap_specs()[0]
    row = execute_spec(spec)
    assert row["mean_ns"] > 0
    assert set(row["blocks"]) >= {b.name
                                  for b in fig11_isolation._COLUMNS}


def test_assembled_report_states_all_three_verdicts():
    threshold = CostModel.default().OFFLOAD_THRESHOLD
    specs = _cheap_specs(sizes=(64, threshold))
    report = fig11_isolation.assemble(specs,
                                      [execute_spec(s) for s in specs])
    for primitive in primitives.names():
        assert primitive in report
    assert ("per-call ordering (every process-switch baseline > dpti "
            "> dIPC): PASS") in report
    assert (f"offload crossover (odIPC <= dIPC at size >= {threshold} "
            "B, identical below): PASS") in report
    assert ("decomposition: block columns sum to the reported busy "
            "totals: PASS") in report


def test_unregistered_primitive_without_a_bench_is_an_error():
    import pytest
    saved = dict(fig11_isolation._BENCHES)
    try:
        del fig11_isolation._BENCHES["dpti"]
        with pytest.raises(RuntimeError, match="dpti"):
            fig11_isolation.points()
    finally:
        fig11_isolation._BENCHES.clear()
        fig11_isolation._BENCHES.update(saved)
