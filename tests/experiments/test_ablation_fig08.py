"""Tests for the ablation module and Figure 8 result helpers."""

import pytest

from repro.apps.oltp import DIPC, IDEAL, IN_MEMORY, LINUX, ON_DISK
from repro.experiments import ablation
from repro.experiments.fig08_oltp import (Fig8Result, PAPER_SPEEDUPS)


class TestAblation:
    def test_stub_ablation_matches_coopt_factor(self):
        row = ablation.stub_ablation()
        assert 1.5 < row.ratio < 2.5  # stack caps are not optimizable

    def test_tracking_ablation_ordering(self):
        warm, cold = ablation.tracking_ablation()
        assert cold.baseline_ns > warm.baseline_ns > warm.variant_ns

    def test_tls_ablation_reproduces_paper_factors(self):
        low, high = ablation.tls_ablation(iters=10)
        assert low.ratio == pytest.approx(3.22, rel=0.05)
        assert high.ratio == pytest.approx(1.54, rel=0.05)

    def test_policy_ablation(self):
        row = ablation.policy_ablation(iters=10)
        assert row.ratio == pytest.approx(8.47, rel=0.10)

    def test_render(self):
        text = ablation.render(ablation.run(iters=8))
        assert "tls-optimized" in text
        assert "asymmetric policy" in text


class TestFig8Helpers:
    def make_result(self):
        result = Fig8Result(IN_MEMORY)
        result.throughput = {
            LINUX: {4: 100.0, 16: 200.0},
            DIPC: {4: 180.0, 16: 390.0},
            IDEAL: {4: 185.0, 16: 400.0},
        }
        return result

    def test_speedup(self):
        result = self.make_result()
        assert result.speedup(DIPC, 4) == pytest.approx(1.8)
        assert result.speedup(IDEAL, 16) == pytest.approx(2.0)

    def test_efficiency(self):
        result = self.make_result()
        assert result.dipc_efficiency(16) == pytest.approx(0.975)

    def test_mean_speedup_is_geometric(self):
        result = self.make_result()
        expected = (1.8 * 1.95) ** 0.5
        assert result.mean_dipc_speedup() == pytest.approx(expected)

    def test_paper_speedups_table_complete(self):
        for storage in (ON_DISK, IN_MEMORY):
            for config in (DIPC, IDEAL):
                table = PAPER_SPEEDUPS[(storage, config)]
                assert set(table) == {4, 16, 64, 256, 512}
        # the famous peak
        assert PAPER_SPEEDUPS[(IN_MEMORY, DIPC)][16] == 5.12
