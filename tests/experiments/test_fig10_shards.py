"""fig10 --shards wiring: cache-keyed specs, identical reports."""

import json

from repro.experiments import fig10_topo


def _mini_points(shards=None):
    return fig10_topo.points(
        scenarios=("chain-4",), rungs=(25.0,), reps=1,
        window_ns=0.4e6, warmup_ns=0.1e6, shards=shards)


def test_unsharded_specs_unchanged():
    for spec in _mini_points():
        assert "shards" not in spec.kwargs
        assert "partition_hash" not in spec.kwargs


def test_sharded_specs_carry_partition_hash():
    for spec in _mini_points(shards=2):
        assert spec.kwargs["shards"] == 2
        assert len(spec.kwargs["partition_hash"]) == 16


def test_partition_hash_differs_by_shard_count():
    two = {spec.kwargs["partition_hash"]
           for spec in _mini_points(shards=2)}
    three = {spec.kwargs["partition_hash"]
             for spec in _mini_points(shards=3)}
    assert two.isdisjoint(three)


def test_sharded_report_identical_to_single_shard():
    one = _mini_points(shards=1)
    two = _mini_points(shards=2)
    results_one = [fig10_topo.compute_point(**dict(spec.kwargs))
                   for spec in one]
    results_two = [fig10_topo.compute_point(**dict(spec.kwargs))
                   for spec in two]
    assert json.dumps(results_one) == json.dumps(results_two)
    assert fig10_topo.assemble(one, results_one) == \
        fig10_topo.assemble(two, results_two)


def test_compute_point_reattaches_scenario_and_rep():
    spec = _mini_points(shards=2)[0]
    point = fig10_topo.compute_point(**dict(spec.kwargs))
    assert point["scenario"] == "chain-4"
    assert point["rep"] == 0
