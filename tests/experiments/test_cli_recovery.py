"""CLI recovery surface: --supervise, --resume, audit exit codes, and
the deprecated-alias warning stream (stderr, never stdout)."""

import glob

import pytest

from repro.experiments.__main__ import main


def test_chaos_audit_violation_exits_nonzero(monkeypatch, capsys):
    from repro.fault.session import ChaosSession
    monkeypatch.setattr(ChaosSession, "audit_kernels",
                        lambda self: ["A1: fake violation"])
    assert main(["run", "table1", "--chaos", "--seed", "5"]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION: A1: fake violation" in out
    assert "chaos audit: FAILED (1 violation(s))" in out


def test_chaos_clean_run_reports_audit_and_exits_zero(capsys):
    assert main(["run", "table1", "--chaos", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "chaos:" in out
    assert "chaos audit: all invariants held" in out


def test_supervise_flag_wraps_the_run_in_a_recovery_session(capsys):
    assert main(["run", "table1", "--supervise", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    # table1 builds no load kernels: 0 supervised, still audited clean
    assert "recovery: 0 kernel(s) supervised" in out
    assert "recovery audit: all invariants held" in out


def test_chaos_alias_warns_on_stderr_not_stdout(tmp_path, capsys):
    assert main(["chaos", "--seed", "3", "--storms", "1", "--quick",
                 "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert "deprecated" not in captured.out  # machine-read stdout stays clean


def test_trace_alias_warns_on_stderr_not_stdout(tmp_path, capsys):
    assert main(["trace", "table1", "--quick",
                 "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert "deprecated" not in captured.out


@pytest.mark.parametrize("conflict", ["--chaos", "--supervise", "--trace"])
def test_resume_conflicts_with_in_process_sessions(conflict, capsys):
    assert main(["run", "fig5", "--quick", "--resume", conflict]) == 2
    assert "--resume" in capsys.readouterr().err


def test_resume_with_no_journal_recomputes_everything(tmp_path, capsys):
    # --resume forces the runner path (jobs=1) and uses --cache-dir for
    # the checkpoint journal; with no journal it is a plain sweep
    assert main(["run", "fig5", "--quick", "--resume", "--no-cache",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "runner:" in out
    assert "dipc_proc_high" in out  # the figure still rendered
    # the completed sweep deleted its journal
    assert not glob.glob(str(tmp_path / "checkpoint-*.jsonl"))
