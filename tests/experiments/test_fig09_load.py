"""fig09_load: decomposition, rendering, and the dIPC-wins verdict."""

import json

from repro import units
from repro.experiments import fig09_load
from repro.load.transports import PRIMITIVES
from repro.runner.points import execute_spec


def _cheap_specs():
    return fig09_load.points(open_rungs=(400.0, 1600.0, 4800.0),
                             closed_clients=(4,),
                             window_ns=1.0 * units.MS,
                             warmup_ns=0.5 * units.MS)


def test_points_cover_every_primitive_and_are_json_safe():
    specs = _cheap_specs()
    assert len(specs) == len(PRIMITIVES) * (3 + 1)
    for spec in specs:
        assert spec.driver == "fig9"
        json.dumps(spec.kwargs)  # cache-key contract
    assert {s.kwargs["primitive"] for s in specs} == set(PRIMITIVES)


def test_assembled_report_shows_curves_and_dipc_saturates_last():
    specs = _cheap_specs()
    report = fig09_load.assemble(specs,
                                 [execute_spec(s) for s in specs])
    for primitive in PRIMITIVES:
        assert f"-- {primitive} " in report
    for column in ("offered[kops]", "tput[kops]", "goodput",
                   "p50[us]", "p95[us]", "p99[us]"):
        assert column in report
    assert "saturation knees" in report
    assert "Closed loop" in report
    # the headline claim: dIPC's knee strictly above every baseline
    assert "dIPC saturates above every baseline: PASS" in report


def test_knees_pick_highest_goodput_rung():
    rows = {"pipe": [
        {"offered_kops": 400.0, "goodput_ratio": 1.0},
        {"offered_kops": 800.0, "goodput_ratio": 0.95},
        {"offered_kops": 1600.0, "goodput_ratio": 0.5},
    ], "dipc": [
        {"offered_kops": 400.0, "goodput_ratio": 0.2},
    ]}
    knees = fig09_load.knees(rows)
    assert knees["pipe"] == 800.0
    assert knees["dipc"] == 0.0  # overloaded even at the lowest rung
