"""Tests for the experiment drivers: structure, rendering, shapes."""

import pytest

from repro.experiments import fig02_ipc_breakdown, fig05_sync_calls
from repro.experiments import fig06_argsize, fig07_driver, table01_arch
from repro.experiments import extras
from repro.sim.stats import Block


class TestTable1:
    def test_rows_render(self):
        rows = table01_arch.run()
        text = table01_arch.render(rows)
        assert "CODOMs" in text and "CHERI" in text
        assert "call + return" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig02_ipc_breakdown.run(iters=12)

    def test_all_bars_present(self, rows):
        assert [r.label for r in rows] == list(fig02_ipc_breakdown.BARS)

    def test_rpc_dominated_by_user_code(self, rows):
        """Figure 2: RPC's block 1 (user) is its largest component."""
        rpc = next(r for r in rows if r.label == "rpc_same_cpu")
        assert rpc.blocks[Block.USER] > rpc.blocks[Block.KERNEL]
        assert rpc.blocks[Block.USER] > 0.4 * rpc.total_ns

    def test_sem_dominated_by_kernel_side(self, rows):
        sem = next(r for r in rows if r.label == "sem_same_cpu")
        kernelish = (sem.blocks[Block.KERNEL] + sem.blocks[Block.SCHED]
                     + sem.blocks[Block.PTSW] + sem.blocks[Block.SYSCALL]
                     + sem.blocks[Block.TRAMPOLINE])
        # §2.2: "About 80% of the time is instead spent in software"
        assert kernelish > 0.8 * sem.total_ns

    def test_cross_cpu_has_idle(self, rows):
        cross = next(r for r in rows if r.label == "sem_cross_cpu")
        assert cross.blocks[Block.IDLE] > 0

    def test_render(self, rows):
        text = fig02_ipc_breakdown.render(rows)
        assert "syscall+2xswapgs+sysret" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig05_sync_calls.run(iters=12)

    def test_order_matches_figure(self, rows):
        assert [r.label for r in rows] == list(fig05_sync_calls.ORDER)

    def test_all_errors_within_15_percent(self, rows):
        for row in rows:
            assert abs(row.error_pct) < 15.0, row

    def test_headline_ratios(self, rows):
        ratios = fig05_sync_calls.headline_ratios(rows)
        assert ratios["dipc_vs_rpc"] == pytest.approx(64.12, rel=0.10)
        assert ratios["dipc_vs_l4"] == pytest.approx(8.87, rel=0.10)
        assert ratios["policy_spread"] == pytest.approx(8.47, rel=0.10)

    def test_render(self, rows):
        text = fig05_sync_calls.render(rows)
        assert "64.12x" in text

    def test_tail_latency_columns(self, rows):
        for row in rows:
            assert row.p50_ns > 0, row
            assert row.p50_ns <= row.p95_ns <= row.p99_ns, row
        assert "p95" in fig05_sync_calls.render(rows)


class TestFig6:
    @pytest.fixture(scope="class")
    def series(self):
        sizes = (1, 4096, 262144)
        return {s.label: s for s in fig06_argsize.run(sizes=sizes,
                                                      iters=6)}

    def test_dipc_stays_flat(self, series):
        added = series["dipc_proc_low"].added_ns
        assert added[262144] < 4 * max(added[1], 1.0)

    def test_copy_primitives_grow(self, series):
        for label in ("pipe_cross_cpu", "rpc_cross_cpu", "sem_cross_cpu"):
            added = series[label].added_ns
            assert added[262144] > added[1] + 10_000, label

    def test_rpc_adds_more_copies_than_pipe_than_sem(self, series):
        big = 262144
        assert series["rpc_cross_cpu"].added_ns[big] > \
            series["pipe_cross_cpu"].added_ns[big] > \
            series["sem_cross_cpu"].added_ns[big]

    def test_distance_grows_with_size(self, series):
        """The figure's annotation: dIPC's advantage grows with size."""
        gap_small = (series["pipe_cross_cpu"].added_ns[1]
                     - series["dipc_proc_high"].added_ns[1])
        gap_big = (series["pipe_cross_cpu"].added_ns[262144]
                   - series["dipc_proc_high"].added_ns[262144])
        assert gap_big > 5 * gap_small

    def test_tail_latency_table(self, series):
        for s in series.values():
            p50, p95, p99 = s.tail_ns[262144]
            assert 0 < p50 <= p95 <= p99, s.label
        text = fig06_argsize.render(list(series.values()))
        assert "tail latency at" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.config: r for r in fig07_driver.run(iters=10)}

    def test_dipc_sustains_latency(self, rows):
        """§7.3: only dIPC sustains Infiniband's low latency (~1%)."""
        assert rows["dipc"].latency_overhead_pct[1] < 3.0

    def test_kernel_driver_about_10_percent(self, rows):
        assert 5.0 <= rows["kernel"].latency_overhead_pct[1] <= 20.0

    def test_ipc_exceeds_100_percent(self, rows):
        assert rows["semaphore"].latency_overhead_pct[1] > 100.0
        assert rows["pipe"].latency_overhead_pct[1] > 100.0

    def test_pipe_worse_than_semaphore(self, rows):
        """§7.3: unnecessary IPC semantics (pipe copies) slow things
        further relative to semaphores."""
        assert rows["pipe"].latency_overhead_pct[64] > \
            rows["semaphore"].latency_overhead_pct[64]

    def test_bandwidth_overhead_large_for_ipc_at_4k(self, rows):
        assert rows["pipe"].bandwidth_overhead_pct[4096] > 40.0
        assert rows["dipc"].bandwidth_overhead_pct[4096] < 5.0


class TestExtras:
    def test_stub_coopt_is_2_5x(self):
        assert extras.stub_coopt().speedup == pytest.approx(2.5)

    def test_crossing_breakeven_is_large(self):
        """§7.5: crossings could be ~14x slower before losing the win;
        our workload gives the same order of magnitude."""
        sens = extras.crossing_cost_sensitivity()
        assert 5.0 <= sens.breakeven_slowdown <= 60.0

    def test_capability_overhead_near_paper(self):
        caps = extras.capability_load_overhead()
        assert caps.modeled_overhead_fraction == pytest.approx(0.12,
                                                               abs=0.05)
        assert caps.residual_speedup > 1.3

    def test_render(self):
        assert "setjmp" in extras.render()
