"""Tests for the simulated NIC + netpipe benchmark (Figure 7's substrate)."""

import pytest

from repro.apps.infiniband import (CONFIG_DIPC, CONFIG_INLINE,
                                   CONFIG_KERNEL, DRIVER_OPS_PER_MSG,
                                   IsolatedDriver, NICModel,
                                   inline_per_call_ns, kernel_per_call_ns)
from repro.apps.netpipe import NetpipeSeries, run_netpipe


@pytest.fixture
def nic():
    return NICModel()


def test_latency_grows_with_size(nic):
    assert nic.one_way_ns(4096) > nic.one_way_ns(1)


def test_round_trip_is_twice_one_way(nic):
    assert nic.round_trip_ns(64) == pytest.approx(2 * nic.one_way_ns(64))


def test_driver_overhead_multiplies_ops(nic):
    driver = IsolatedDriver("x", per_call_ns=100.0)
    assert driver.overhead_per_message_ns() == \
        DRIVER_OPS_PER_MSG * 100.0


def test_inline_per_call_is_a_function_call():
    assert inline_per_call_ns() == pytest.approx(2.0)


def test_kernel_per_call_is_syscallish():
    assert 34.0 <= kernel_per_call_ns() <= 60.0


class TestNetpipe:
    def run_pair(self, nic, per_call):
        baseline = run_netpipe(nic, IsolatedDriver(CONFIG_INLINE,
                                                   inline_per_call_ns()))
        series = run_netpipe(nic, IsolatedDriver("isolated", per_call))
        return baseline, series

    def test_bandwidth_increases_with_size(self, nic):
        series = run_netpipe(nic, IsolatedDriver(CONFIG_INLINE, 2.0))
        bws = [p.bandwidth_bpns for p in series.points]
        assert bws == sorted(bws)

    def test_latency_overhead_shrinks_with_size(self, nic):
        baseline, series = self.run_pair(nic, per_call=1000.0)
        overhead = series.latency_overhead_pct(baseline)
        sizes = sorted(overhead)
        assert overhead[sizes[0]] > overhead[sizes[-1]]

    def test_dipc_overhead_is_about_one_percent(self, nic):
        """§7.3: only dIPC sustains Infiniband's latency, ~1% overhead."""
        baseline, series = self.run_pair(nic, per_call=6.0)  # dIPC Low
        overhead = series.latency_overhead_pct(baseline)
        assert overhead[1] < 3.0

    def test_kernel_overhead_is_about_ten_percent(self, nic):
        baseline, series = self.run_pair(nic, kernel_per_call_ns())
        overhead = series.latency_overhead_pct(baseline)
        assert 5.0 <= overhead[1] <= 20.0

    def test_ipc_overhead_exceeds_100_percent(self, nic):
        baseline, series = self.run_pair(nic, per_call=1514.0)  # Sem.
        overhead = series.latency_overhead_pct(baseline)
        assert overhead[1] > 100.0

    def test_ipc_bandwidth_overhead_large_at_4kb(self, nic):
        baseline, series = self.run_pair(nic, per_call=2032.0)  # Pipe
        overhead = series.bandwidth_overhead_pct(baseline)
        assert overhead[4096] > 40.0

    def test_overheads_relative_to_self_are_zero(self, nic):
        baseline = run_netpipe(nic, IsolatedDriver(CONFIG_INLINE, 2.0))
        assert all(v == pytest.approx(0.0)
                   for v in baseline.latency_overhead_pct(baseline).values())
