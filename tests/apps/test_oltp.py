"""Integration tests for the OLTP harness (small windows: these check
mechanics and orderings; the full Figure 8 numbers live in benchmarks/)."""

import pytest

from repro import units
from repro.apps.oltp import (DIPC, IDEAL, IN_MEMORY, LINUX, ON_DISK,
                             OltpParams, OltpResult, run_oltp)

QUICK = dict(window_ns=40 * units.MS, warmup_ns=25 * units.MS,
             concurrency=8)


def quick_run(config, storage=IN_MEMORY, **overrides):
    params = dict(QUICK)
    params.update(overrides)
    return run_oltp(OltpParams(config=config, storage=storage, **params))


class TestMechanics:
    def test_all_configs_complete_operations(self):
        for config in (LINUX, DIPC, IDEAL):
            result = quick_run(config)
            assert result.operations > 20, config

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            run_oltp(OltpParams(config="bsd"))

    def test_throughput_is_rate_of_operations(self):
        result = quick_run(IDEAL)
        window_min = QUICK["window_ns"] / units.MINUTE
        assert result.throughput_ops_min == pytest.approx(
            result.operations / window_min)

    def test_fractions_sum_to_one(self):
        result = quick_run(LINUX)
        assert result.user_fraction + result.kernel_fraction + \
            result.idle_fraction == pytest.approx(1.0, abs=1e-6)


class TestOrdering:
    """The headline qualitative results, at small scale."""

    def test_ideal_beats_linux(self):
        linux = quick_run(LINUX)
        ideal = quick_run(IDEAL)
        assert ideal.throughput_ops_min > 1.2 * linux.throughput_ops_min

    def test_dipc_close_to_ideal(self):
        """>94% of the ideal system efficiency (abstract)."""
        dipc = quick_run(DIPC)
        ideal = quick_run(IDEAL)
        assert dipc.throughput_ops_min >= 0.94 * ideal.throughput_ops_min

    def test_dipc_latency_far_below_linux(self):
        linux = quick_run(LINUX)
        dipc = quick_run(DIPC)
        assert dipc.mean_latency_ns < 0.7 * linux.mean_latency_ns

    def test_linux_burns_kernel_time_dipc_does_not(self):
        linux = quick_run(LINUX)
        dipc = quick_run(DIPC)
        assert linux.kernel_fraction > 0.10
        assert dipc.kernel_fraction < 0.05


class TestStorageModes:
    def test_on_disk_slower_than_in_memory(self):
        mem = quick_run(IDEAL, IN_MEMORY)
        disk = quick_run(IDEAL, ON_DISK)
        assert disk.throughput_ops_min < mem.throughput_ops_min

    def test_on_disk_has_more_idle(self):
        mem = quick_run(IDEAL, IN_MEMORY, concurrency=4)
        disk = quick_run(IDEAL, ON_DISK, concurrency=4)
        assert disk.idle_fraction > mem.idle_fraction


class TestDipcInternals:
    def test_dipc_run_uses_proxies_not_sockets(self):
        result = quick_run(DIPC)
        # sanity: operations completed with near-zero kernel share means
        # the fast path never entered the kernel IPC layer
        assert result.kernel_fraction < 0.05
        assert result.operations > 0

    def test_deterministic_given_seed(self):
        a = quick_run(IDEAL, seed=5)
        b = quick_run(IDEAL, seed=5)
        assert a.operations == b.operations
        assert a.mean_latency_ns == pytest.approx(b.mean_latency_ns)

    def test_concurrency_scales_ideal_until_saturation(self):
        thr = {c: quick_run(IDEAL, concurrency=c).throughput_ops_min
               for c in (2, 8)}
        assert thr[8] > 1.5 * thr[2]
