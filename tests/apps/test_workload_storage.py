"""Tests for the DVDStore workload generator and the storage engine."""

import pytest

from repro import units
from repro.apps.oltp import (IN_MEMORY, ON_DISK, STANDARD_MIX, Disk,
                             StorageEngine, WorkloadGenerator,
                             mean_cpu_per_op_ns, mean_queries_per_op)
from repro.kernel import Kernel


class TestWorkload:
    def test_mix_is_weighted_and_reproducible(self):
        a = WorkloadGenerator(seed=7)
        b = WorkloadGenerator(seed=7)
        seq_a = [a.next_transaction().name for _ in range(50)]
        seq_b = [b.next_transaction().name for _ in range(50)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1)
        b = WorkloadGenerator(seed=2)
        assert [a.next_transaction().name for _ in range(50)] != \
            [b.next_transaction().name for _ in range(50)]

    def test_all_transactions_appear(self):
        gen = WorkloadGenerator(seed=3)
        names = {gen.next_transaction().name for _ in range(300)}
        assert names == {"login", "browse", "purchase"}

    def test_row_fetch_granularity(self):
        """§7.5: ~211 cross-domain calls per op → ~100 round trips."""
        queries = mean_queries_per_op()
        calls = 2 * (queries + 1)
        assert 100 <= calls <= 250

    def test_cpu_demand_sane(self):
        # ~0.5ms of pure application CPU per op (see workload.py)
        demand = mean_cpu_per_op_ns()
        assert 300 * units.US <= demand <= 900 * units.US

    def test_disk_miss_respects_probability(self):
        gen = WorkloadGenerator(seed=11)
        query = STANDARD_MIX[1].queries[0]
        misses = sum(gen.disk_miss(query) for _ in range(20000))
        assert misses / 20000 == pytest.approx(query.disk_prob, abs=0.01)


class TestDisk:
    def test_requests_serialize(self):
        kernel = Kernel(num_cpus=2)
        proc = kernel.spawn_process("p")
        disk = Disk(kernel, service_ns=1000.0)
        finish = []

        def body(t):
            yield from disk.read(t)
            finish.append(t.now())

        kernel.spawn(proc, body, pin=0)
        kernel.spawn(proc, body, pin=1)
        kernel.run()
        finish.sort()
        assert finish[0] >= 1000
        assert finish[1] >= 2000  # second request queued behind the first
        assert disk.requests == 2

    def test_busy_accounting(self):
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("p")
        disk = Disk(kernel, service_ns=500.0)

        def body(t):
            yield from disk.read(t)

        kernel.spawn(proc, body)
        kernel.run()
        assert disk.busy_ns == 500.0


class TestStorageEngine:
    def test_kv_roundtrip(self):
        kernel = Kernel(num_cpus=1)
        store = StorageEngine(kernel, IN_MEMORY)
        store.put("products", 1, {"title": "dvd"})
        assert store.get("products", 1) == {"title": "dvd"}
        assert store.get("products", 2) is None
        assert store.scan("products") == {1: {"title": "dvd"}}

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            StorageEngine(Kernel(num_cpus=1), "floppy")

    def test_in_memory_access_never_touches_disk(self):
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("p")
        store = StorageEngine(kernel, IN_MEMORY)

        def body(t):
            yield from store.access(t, miss=True)

        kernel.spawn(proc, body)
        kernel.run()
        assert store.disk_reads == 0
        assert kernel.engine.now() < 1000  # no 420us disk wait

    def test_on_disk_miss_blocks_for_service_time(self):
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("p")
        store = StorageEngine(kernel, ON_DISK)

        def body(t):
            yield from store.access(t, miss=True)

        kernel.spawn(proc, body)
        kernel.run()
        assert store.disk_reads == 1
        assert kernel.engine.now() >= kernel.costs.HDD_READ

    def test_on_disk_hit_is_fast(self):
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("p")
        store = StorageEngine(kernel, ON_DISK)

        def body(t):
            yield from store.access(t, miss=False)

        kernel.spawn(proc, body)
        kernel.run()
        assert store.disk_reads == 0
        assert kernel.engine.now() < 1000
