"""Tests for the global virtual address space allocator (§6.1.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ResourceError
from repro.mem.gvas import BLOCK_SIZE, GVAS_BASE, GlobalVAS


def test_block_base_and_ownership():
    gvas = GlobalVAS()
    block = gvas.alloc_block(pid=7)
    assert block.base == GVAS_BASE
    assert block.owner_pid == 7
    assert gvas.blocks_of(7) == [block]


def test_blocks_do_not_overlap():
    gvas = GlobalVAS()
    a = gvas.alloc_block(1)
    b = gvas.alloc_block(2)
    assert a.end <= b.base


def test_suballoc_is_page_aligned_and_within_block():
    gvas = GlobalVAS()
    addr = gvas.suballoc(pid=1, size=100)
    assert addr % units.PAGE_SIZE == 0
    block = gvas.blocks_of(1)[0]
    assert block.contains(addr)


def test_suballoc_reuses_block_until_full():
    gvas = GlobalVAS()
    gvas.suballoc(1, 4096)
    gvas.suballoc(1, 4096)
    assert len(gvas.blocks_of(1)) == 1
    assert gvas.global_allocs == 1


def test_suballoc_grabs_new_block_when_needed():
    gvas = GlobalVAS(block_size=3 * units.PAGE_SIZE)
    gvas.suballoc(1, 2 * units.PAGE_SIZE)
    gvas.suballoc(1, 2 * units.PAGE_SIZE)
    assert len(gvas.blocks_of(1)) == 2


def test_oversized_allocation_rejected():
    gvas = GlobalVAS()
    with pytest.raises(ResourceError):
        gvas.suballoc(1, BLOCK_SIZE + 1)


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        GlobalVAS().suballoc(1, 0)


def test_exhaustion():
    gvas = GlobalVAS(total_blocks=1)
    gvas.alloc_block(1)
    with pytest.raises(ResourceError):
        gvas.alloc_block(2)


def test_owner_lookup_simplistic_and_fast_agree():
    gvas = GlobalVAS()
    gvas.alloc_block(10)
    gvas.alloc_block(20)
    addr = gvas.blocks_of(20)[0].base + 12345
    assert gvas.owner_of(addr, simplistic=True) == 20
    assert gvas.owner_of(addr, simplistic=False) == 20


def test_owner_lookup_miss():
    gvas = GlobalVAS()
    gvas.alloc_block(1)
    assert gvas.owner_of(GVAS_BASE - 1) is None
    assert gvas.owner_of(GVAS_BASE - 1, simplistic=False) is None


def test_release_pid_frees_blocks():
    gvas = GlobalVAS()
    gvas.alloc_block(1)
    gvas.alloc_block(1)
    gvas.alloc_block(2)
    assert gvas.release_pid(1) == 2
    assert gvas.blocks_of(1) == []
    assert len(gvas.blocks) == 1


@given(st.lists(st.integers(min_value=1, max_value=64 * units.KB),
                min_size=1, max_size=40))
def test_property_suballocations_never_overlap(sizes):
    gvas = GlobalVAS(block_size=16 * units.MB)
    spans = []
    for size in sizes:
        addr = gvas.suballoc(1, size)
        spans.append((addr, addr + size))
    spans.sort()
    for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
        assert prev_end <= next_start
