"""Tests for byte-level address-space access (translation, COW, caps)."""

import pytest

from repro import units
from repro.errors import PageFault
from repro.mem.addrspace import AddressSpace, offset_of, vpn_of
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory


@pytest.fixture
def space():
    table = PageTable(PhysicalMemory())
    for vpn in range(4):
        table.map_page(vpn)
    return AddressSpace(table)


def test_vpn_offset_helpers():
    assert vpn_of(0) == 0
    assert vpn_of(4096) == 1
    assert offset_of(4097) == 1


def test_write_read_roundtrip(space):
    space.write(100, b"hello")
    assert space.read(100, 5) == b"hello"


def test_cross_page_write_read(space):
    data = bytes(range(200)) * 30  # 6000 bytes, crosses a page boundary
    space.write(2000, data)
    assert space.read(2000, len(data)) == data


def test_read_unmapped_faults(space):
    with pytest.raises(PageFault):
        space.read(100 * units.PAGE_SIZE, 1)


def test_read_straddling_into_unmapped_faults(space):
    with pytest.raises(PageFault):
        space.read(4 * units.PAGE_SIZE - 2, 4)


def test_write_readonly_faults(space):
    space.table.lookup(0).write = False
    with pytest.raises(PageFault):
        space.write(10, b"x")


def test_read_unreadable_faults(space):
    space.table.lookup(0).read = False
    with pytest.raises(PageFault):
        space.read(10, 1)


def test_write_breaks_cow_transparently(space):
    space.write(10, b"orig")
    space.table.phys.share(space.table.lookup(0).frame)
    space.table.mark_cow()
    space.write(10, b"new!")
    assert space.read(10, 4) == b"new!"
    assert space.table.lookup(0).write


def test_negative_address_faults(space):
    with pytest.raises(PageFault):
        space.read(-1, 1)


class TestCapabilityStorage:
    def test_store_load_roundtrip(self, space):
        space.store_capability(64, "cap-object")
        assert space.load_capability(64) == "cap-object"

    def test_unaligned_store_faults(self, space):
        with pytest.raises(PageFault):
            space.store_capability(65, "cap")

    def test_unaligned_load_faults(self, space):
        with pytest.raises(PageFault):
            space.load_capability(33)

    def test_load_empty_slot_returns_none(self, space):
        assert space.load_capability(96) is None

    def test_byte_write_destroys_overlapping_capability(self, space):
        """§4.2: user code cannot tamper with stored capabilities —
        overwriting the slot with plain bytes invalidates it."""
        space.store_capability(64, "cap-object")
        space.write(70, b"\xff")
        assert space.load_capability(64) is None

    def test_byte_write_elsewhere_preserves_capability(self, space):
        space.store_capability(64, "cap-object")
        space.write(128, b"\xff" * 32)
        assert space.load_capability(64) == "cap-object"
