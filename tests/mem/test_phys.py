"""Tests for the physical frame allocator."""

import pytest

from repro.errors import ResourceError
from repro.mem.phys import PhysicalMemory


def test_alloc_returns_zeroed_frame():
    phys = PhysicalMemory()
    frame = phys.alloc()
    assert bytes(frame.data) == b"\x00" * 4096
    assert frame.refcount == 1


def test_frames_have_unique_numbers():
    phys = PhysicalMemory()
    numbers = {phys.alloc().number for _ in range(100)}
    assert len(numbers) == 100


def test_release_frees_and_recycles():
    phys = PhysicalMemory()
    frame = phys.alloc()
    number = frame.number
    phys.release(frame)
    assert phys.allocated() == 0
    again = phys.alloc()
    assert again.number == number


def test_share_and_release_refcounting():
    phys = PhysicalMemory()
    frame = phys.alloc()
    phys.share(frame)
    assert frame.refcount == 2
    phys.release(frame)
    assert phys.allocated() == 1
    phys.release(frame)
    assert phys.allocated() == 0


def test_double_free_detected():
    phys = PhysicalMemory()
    frame = phys.alloc()
    phys.release(frame)
    with pytest.raises(ResourceError):
        phys.release(frame)


def test_exhaustion():
    phys = PhysicalMemory(total_frames=2)
    phys.alloc()
    phys.alloc()
    with pytest.raises(ResourceError):
        phys.alloc()


def test_copy_frame_deep_copies_data_and_caps():
    phys = PhysicalMemory()
    frame = phys.alloc()
    frame.data[0] = 0xAB
    frame.cap_slots[32] = "sentinel-cap"
    dup = phys.copy_frame(frame)
    assert dup.data[0] == 0xAB
    assert dup.cap_slots[32] == "sentinel-cap"
    dup.data[0] = 0xCD
    assert frame.data[0] == 0xAB


def test_get_unknown_frame():
    with pytest.raises(ResourceError):
        PhysicalMemory().get(12345)
