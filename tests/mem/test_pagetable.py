"""Tests for CODOMs-extended page tables."""

import pytest

from repro.errors import PageFault
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory


@pytest.fixture
def table():
    return PageTable(PhysicalMemory())


def test_map_and_lookup(table):
    pte = table.map_page(5, tag=7, privileged=True, cap_storage=True)
    found = table.lookup(5)
    assert found is pte
    assert found.tag == 7
    assert found.privileged and found.cap_storage


def test_double_map_rejected(table):
    table.map_page(5)
    with pytest.raises(PageFault):
        table.map_page(5)


def test_lookup_unmapped_faults(table):
    with pytest.raises(PageFault):
        table.lookup(9)


def test_unmap_releases_frame(table):
    table.map_page(1)
    assert table.phys.allocated() == 1
    table.unmap_page(1)
    assert table.phys.allocated() == 0
    with pytest.raises(PageFault):
        table.unmap_page(1)


def test_set_tag(table):
    table.map_page(3)
    table.set_tag(3, 42)
    assert table.lookup(3).tag == 42


def test_retag_range_moves_domain(table):
    for vpn in range(10, 14):
        table.map_page(vpn, tag=1)
    table.retag_range(10, 4, old_tag=1, new_tag=2)
    assert all(table.lookup(v).tag == 2 for v in range(10, 14))


def test_retag_range_checks_old_tag_atomically(table):
    table.map_page(10, tag=1)
    table.map_page(11, tag=99)
    with pytest.raises(PageFault):
        table.retag_range(10, 2, old_tag=1, new_tag=2)
    # nothing was changed: the check happens before any retagging
    assert table.lookup(10).tag == 1


def test_mark_cow_only_hits_writable_pages(table):
    writable = table.map_page(1)
    readonly = table.map_page(2, write=False)
    table.mark_cow()
    assert writable.cow and not writable.write
    assert not readonly.cow


def test_break_cow_with_shared_frame_copies(table):
    pte = table.map_page(1)
    pte.frame.data[0] = 7
    table.phys.share(pte.frame)  # someone else references it
    table.mark_cow()
    old_frame = pte.frame
    table.break_cow(1)
    assert pte.frame is not old_frame
    assert pte.frame.data[0] == 7
    assert pte.write and not pte.cow
    assert old_frame.refcount == 1


def test_break_cow_with_exclusive_frame_reuses(table):
    pte = table.map_page(1)
    table.mark_cow()
    old_frame = pte.frame
    table.break_cow(1)
    assert pte.frame is old_frame
    assert pte.write


def test_break_cow_on_non_cow_page_faults(table):
    table.map_page(1)
    with pytest.raises(PageFault):
        table.break_cow(1)


def test_clone_for_fork_shares_frames_cow(table):
    parent_pte = table.map_page(1, tag=3)
    parent_pte.frame.data[0] = 9
    child = table.clone_for_fork()
    child_pte = child.lookup(1)
    assert child_pte.frame is parent_pte.frame
    assert child_pte.frame.refcount == 2
    assert child_pte.tag == 3
    assert parent_pte.cow and child_pte.cow


def test_pages_iterates_sorted(table):
    for vpn in (5, 1, 3):
        table.map_page(vpn)
    assert [vpn for vpn, _ in table.pages()] == [1, 3, 5]
