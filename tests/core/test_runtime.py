"""End-to-end tests for the compiler pass + loader + runtime + resolver:
the Figure 3 workflow written with annotations."""

import pytest

from repro.codoms.apl import Permission
from repro.core import (AnnotatedModule, DipcRuntime, IsolationPolicy,
                        Signature, compile_module)
from repro.errors import DipcError, LoaderError, SignatureMismatch
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def runtime(kernel):
    return DipcRuntime(kernel)


def build_database_module():
    module = AnnotatedModule("database")

    @module.entry("default", Signature(in_regs=1, out_regs=1),
                  iso_callee=IsolationPolicy(dcs_confidentiality=True))
    def query(t, key):
        yield t.compute(10)
        return ("row", key)

    return module


def build_web_module():
    module = AnnotatedModule("web")
    module.import_entry("query", "/dipc/db/query",
                        Signature(in_regs=1, out_regs=1),
                        iso_caller=IsolationPolicy(reg_integrity=True))
    return module


def test_compile_emits_sections():
    image = compile_module(build_database_module(), export_path="/dipc/db")
    assert ".dipc.entries" in image.sections
    assert image.sections[".dipc.entries"] == [("query", "default")]


def test_compile_rejects_entry_in_undeclared_domain():
    module = AnnotatedModule("bad")
    module.entries["x"] = type("E", (), {
        "name": "x", "domain": "ghost", "func": None,
        "signature": Signature(), "iso_callee": IsolationPolicy()})()
    with pytest.raises(LoaderError):
        compile_module(module)


def test_duplicate_entry_rejected():
    module = AnnotatedModule("m")

    @module.entry("default", Signature())
    def f(t):
        yield t.compute(1)

    with pytest.raises(LoaderError):
        @module.entry("default", Signature(), name="f")
        def g(t):
            yield t.compute(1)


def test_full_figure3_workflow(kernel, runtime):
    """Load both modules, call the import: resolution (step A), proxy
    creation (step B), then the call itself (steps 1-3)."""
    db_proc = kernel.spawn_process("database", dipc=True)
    web_proc = kernel.spawn_process("web", dipc=True)
    runtime.enable(db_proc, compile_module(build_database_module(),
                                           export_path="/dipc/db"))
    web_image = runtime.enable(web_proc, compile_module(build_web_module()))
    results = []

    def body(t):
        results.append((yield from web_image.call_import(t, "query", "k1")))
        results.append((yield from web_image.call_import(t, "query", "k2")))

    kernel.spawn(web_proc, body, pin=0)
    kernel.run()
    kernel.check()
    assert results == [("row", "k1"), ("row", "k2")]
    # resolution happened exactly once; the proxy is reused (§3.2)
    assert web_image.imports["query"].resolutions == 1
    assert runtime.manager.proxies_created == 1


def test_import_signature_mismatch_detected_p4(kernel, runtime):
    db_proc = kernel.spawn_process("database", dipc=True)
    web_proc = kernel.spawn_process("web", dipc=True)
    runtime.enable(db_proc, compile_module(build_database_module(),
                                           export_path="/dipc/db"))
    bad_web = AnnotatedModule("web")
    bad_web.import_entry("query", "/dipc/db/query",
                         Signature(in_regs=3, out_regs=1))
    image = runtime.enable(web_proc, compile_module(bad_web))

    def body(t):
        yield from image.call_import(t, "query", 1, 2, 3)

    thread = kernel.spawn(web_proc, body)
    kernel.run()
    assert isinstance(thread.exception, SignatureMismatch)


def test_unresolvable_import_fails(kernel, runtime):
    web_proc = kernel.spawn_process("web", dipc=True)
    module = AnnotatedModule("web")
    module.import_entry("ghost", "/nowhere/ghost", Signature())
    image = runtime.enable(web_proc, compile_module(module))

    def body(t):
        yield from image.call_import(t, "ghost")

    thread = kernel.spawn(web_proc, body)
    kernel.run()
    assert thread.exception is not None


def test_unknown_import_name(kernel, runtime):
    web_proc = kernel.spawn_process("web", dipc=True)
    image = runtime.enable(web_proc, compile_module(AnnotatedModule("web")))

    def body(t):
        yield from image.call_import(t, "missing")

    thread = kernel.spawn(web_proc, body)
    kernel.run()
    assert isinstance(thread.exception, LoaderError)


def test_custom_resolution_hook(kernel, runtime):
    """§6.2.1: programmers can provide their own entry resolution hooks."""
    db_proc = kernel.spawn_process("database", dipc=True)
    web_proc = kernel.spawn_process("web", dipc=True)
    db_image = runtime.enable(
        db_proc, compile_module(build_database_module()))  # not published
    runtime.resolver.register_hook(
        "/dipc/db/query", lambda path: db_image.exports["query"])
    web_image = runtime.enable(web_proc, compile_module(build_web_module()))
    results = []

    def body(t):
        results.append((yield from web_image.call_import(t, "query", "k")))

    kernel.spawn(web_proc, body, pin=0)
    kernel.run()
    kernel.check()
    assert results == [("row", "k")]


def test_perm_annotation_creates_intra_process_grant(kernel, runtime):
    """§2.4/§5.3.1: asymmetric policies — e.g. the PHP interpreter is
    directly readable by the web server, avoiding IPC entirely."""
    proc = kernel.spawn_process("server", dipc=True)
    module = AnnotatedModule("server")
    module.domain("interp")
    module.perm("default", "interp", Permission.WRITE)
    image = runtime.enable(proc, compile_module(module))
    interp_tag = image.domains["interp"].tag
    assert runtime.manager.apls.permission(
        proc.default_tag, interp_tag) is Permission.WRITE
    # and not the other way around: asymmetric
    assert runtime.manager.apls.permission(
        interp_tag, proc.default_tag) is Permission.NIL


def test_loaded_image_bookkeeping(kernel, runtime):
    db_proc = kernel.spawn_process("database", dipc=True)
    image = runtime.enable(db_proc, build_database_module())
    assert "query" in image.exports
    assert runtime.image_of(db_proc) is image
