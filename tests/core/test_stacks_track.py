"""Direct unit tests for dIPC stacks and the process tracker."""

import pytest

from repro.codoms.apl import Permission
from repro.core.api import DipcManager
from repro.core.stacks import DEFAULT_STACK_PAGES, DataStack
from repro.errors import DipcError
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    k = Kernel(num_cpus=2)
    DipcManager(k)
    return k


@pytest.fixture
def manager(kernel):
    return kernel.dipc


class TestDataStack:
    def test_grows_down_from_top(self):
        stack = DataStack(0x1000, 0x1000, owner_thread=None)
        assert stack.sp == stack.top == 0x2000
        frame = stack.push_frame(32)
        assert frame == stack.sp == 0x2000 - 32

    def test_frames_are_16_byte_aligned(self):
        stack = DataStack(0x1000, 0x1000, owner_thread=None)
        stack.push_frame(17)
        assert stack.sp == 0x2000 - 32

    def test_overflow_detected(self):
        stack = DataStack(0x1000, 64, owner_thread=None)
        with pytest.raises(DipcError):
            stack.push_frame(128)

    def test_underflow_detected(self):
        stack = DataStack(0x1000, 0x1000, owner_thread=None)
        with pytest.raises(DipcError):
            stack.pop_frame(16)

    def test_push_pop_roundtrip(self):
        stack = DataStack(0x1000, 0x1000, owner_thread=None)
        stack.push_frame(48)
        stack.pop_frame(48)
        assert stack.sp == stack.top

    def test_contains(self):
        stack = DataStack(0x1000, 0x1000, owner_thread=None)
        assert stack.contains(0x1800)
        assert stack.contains(stack.top)
        assert not stack.contains(0xFFF)


class TestStackManager:
    def test_lazy_allocation_and_caching(self, kernel, manager):
        proc = kernel.spawn_process("p", dipc=True)
        thread = kernel.spawn(proc, lambda t: iter(()), start=False)
        a = manager.stacks.stack_for(thread, proc)
        b = manager.stacks.stack_for(thread, proc)
        assert a is b
        assert manager.stacks.lazy_allocations == 1

    def test_stacks_are_per_thread(self, kernel, manager):
        proc = kernel.spawn_process("p", dipc=True)
        t1 = kernel.spawn(proc, lambda t: iter(()), start=False)
        t2 = kernel.spawn(proc, lambda t: iter(()), start=False)
        assert manager.stacks.stack_for(t1, proc) is not \
            manager.stacks.stack_for(t2, proc)

    def test_stack_guard_cap_is_synchronous(self, kernel, manager):
        proc = kernel.spawn_process("p", dipc=True)
        thread = kernel.spawn(proc, lambda t: iter(()), start=False)
        stack = manager.stacks.stack_for(thread, proc)
        assert stack.guard_cap.synchronous
        assert stack.guard_cap.owner_thread is thread
        assert stack.guard_cap.covers(stack.base, stack.size)

    def test_argument_caps_are_derived_and_bounded(self, kernel, manager):
        proc = kernel.spawn_process("p", dipc=True)
        thread = kernel.spawn(proc, lambda t: iter(()), start=False)
        stack = manager.stacks.stack_for(thread, proc)
        stack.push_frame(64)
        args_cap, unused_cap = manager.stacks.mint_argument_caps(
            thread, stack, 64)
        assert args_cap.base >= stack.base
        assert args_cap.end <= stack.top
        assert unused_cap.base == stack.base
        # revoking the guard kills both (they share the counter)
        stack.guard_cap.revoke()
        assert not args_cap.is_valid()
        assert not unused_cap.is_valid()


class TestProcessTracker:
    def make_thread(self, kernel, proc, pin=0):
        thread = kernel.spawn(proc, lambda t: iter(()), start=False)
        thread.cpu = kernel.machine.cpus[pin]
        return thread

    def drive(self, gen):
        """Run a track sub-generator to completion, ignoring charges."""
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def test_cold_warm_hot_progression(self, kernel, manager):
        src = kernel.spawn_process("src", dipc=True)
        dst = kernel.spawn_process("dst", dipc=True)
        thread = self.make_thread(kernel, src)
        tracker = manager.track
        tid1 = self.drive(tracker.track_call(thread, dst, dst.default_tag))
        state = thread.track_state
        assert state.cold_misses == 1
        tid2 = self.drive(tracker.track_call(thread, dst, dst.default_tag))
        assert state.hot_hits == 1
        assert tid1 == tid2
        assert thread.current_process is dst

    def test_warm_path_after_apl_cache_eviction(self, kernel, manager):
        src = kernel.spawn_process("src", dipc=True)
        dst = kernel.spawn_process("dst", dipc=True)
        thread = self.make_thread(kernel, src)
        tracker = manager.track
        self.drive(tracker.track_call(thread, dst, dst.default_tag))
        # evict the per-thread cache-array entry (simulates reuse of the
        # hardware tag by another domain)
        hw = thread.cpu.apl_cache.hw_tag_of(dst.default_tag)
        thread.track_state.cache_array[hw] = None
        self.drive(tracker.track_call(thread, dst, dst.default_tag))
        assert thread.track_state.warm_hits == 1
        assert thread.track_state.cold_misses == 1

    def test_track_ret_restores(self, kernel, manager):
        src = kernel.spawn_process("src", dipc=True)
        dst = kernel.spawn_process("dst", dipc=True)
        thread = self.make_thread(kernel, src)
        self.drive(manager.track.track_call(thread, dst, dst.default_tag))
        self.drive(manager.track.track_ret(thread, src))
        assert thread.current_process is src

    def test_per_process_tids_are_stable_and_distinct(self, kernel,
                                                      manager):
        src = kernel.spawn_process("src", dipc=True)
        dst_a = kernel.spawn_process("dst-a", dipc=True)
        dst_b = kernel.spawn_process("dst-b", dipc=True)
        thread = self.make_thread(kernel, src)
        tid_a = self.drive(manager.track.track_call(thread, dst_a,
                                                    dst_a.default_tag))
        tid_b = self.drive(manager.track.track_call(thread, dst_b,
                                                    dst_b.default_tag))
        assert thread.per_process_tids[dst_a.pid] == tid_a
        assert thread.per_process_tids[dst_b.pid] == tid_b
