"""Tests for Table 2 objects and isolation policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codoms.apl import Permission
from repro.core.objects import (DomainHandle, EntryDescriptor, EntryHandle,
                                Signature)
from repro.core.policies import IsolationPolicy, effective_policies


class TestSignature:
    def test_valid(self):
        sig = Signature(in_regs=3, out_regs=1, stack_bytes=64)
        assert sig.in_regs == 3

    def test_equality_is_structural(self):
        assert Signature(1, 1, 0) == Signature(1, 1, 0)
        assert Signature(1, 1, 0) != Signature(2, 1, 0)

    @pytest.mark.parametrize("kwargs", [
        {"in_regs": 7}, {"in_regs": -1}, {"out_regs": 3},
        {"stack_bytes": -8},
    ])
    def test_abi_bounds_enforced(self, kwargs):
        with pytest.raises(ValueError):
            Signature(**kwargs)


class TestDomainHandle:
    def test_owner(self):
        handle = DomainHandle(5, Permission.OWNER)
        assert handle.is_owner

    def test_non_owner(self):
        assert not DomainHandle(5, Permission.READ).is_owner


class TestIsolationPolicy:
    def test_low_has_nothing(self):
        assert IsolationPolicy.low().is_low
        assert IsolationPolicy.low().bitmask() == 0

    def test_high_has_everything(self):
        high = IsolationPolicy.high()
        assert all(high.as_tuple())
        assert high.bitmask() == 0b111111

    def test_union(self):
        a = IsolationPolicy(reg_integrity=True)
        b = IsolationPolicy(dcs_integrity=True)
        u = a.union(b)
        assert u.reg_integrity and u.dcs_integrity
        assert not u.stack_confidentiality

    def test_without_stub_properties_keeps_proxy_side(self):
        stripped = IsolationPolicy.high().without_stub_properties()
        assert not stripped.reg_integrity
        assert not stripped.reg_confidentiality
        assert not stripped.stack_integrity
        assert stripped.stack_confidentiality
        assert stripped.dcs_integrity
        assert stripped.dcs_confidentiality

    def test_str(self):
        assert str(IsolationPolicy.low()) == "low"
        assert "reg_int" in str(IsolationPolicy(reg_integrity=True))

    @given(st.tuples(*[st.booleans()] * 6), st.tuples(*[st.booleans()] * 6))
    def test_property_union_commutative_and_monotone(self, a_bits, b_bits):
        a = IsolationPolicy(*a_bits)
        b = IsolationPolicy(*b_bits)
        assert a.union(b) == b.union(a)
        union = a.union(b)
        for mine, combined in zip(a.as_tuple(), union.as_tuple()):
            assert combined or not mine


class TestEffectivePolicies:
    def test_confidentiality_activated_by_either_side(self):
        caller = IsolationPolicy()
        callee = IsolationPolicy(stack_confidentiality=True,
                                 dcs_confidentiality=True)
        eff = effective_policies(caller, callee)
        assert eff.stack_confidentiality
        assert eff.dcs_confidentiality

    def test_caller_integrity_only_from_caller(self):
        caller = IsolationPolicy()
        callee = IsolationPolicy(reg_integrity=True, stack_integrity=True)
        eff = effective_policies(caller, callee)
        assert not eff.reg_integrity
        assert not eff.stack_integrity

    def test_caller_requests_are_honoured(self):
        caller = IsolationPolicy(reg_integrity=True, stack_integrity=True,
                                 dcs_integrity=True)
        eff = effective_policies(caller, IsolationPolicy())
        assert eff.reg_integrity and eff.stack_integrity and eff.dcs_integrity


class TestEntryObjects:
    def test_entry_handle_count(self):
        descriptors = [EntryDescriptor(signature=Signature(1, 1))
                       for _ in range(3)]
        handle = EntryHandle(7, descriptors, owner_pid=1)
        assert handle.count == 3
