"""Kill re-entrancy: kills arriving twice or in any order never unwind a
thread twice, and kill hooks observe each death exactly once (§5.2.1).

Every test arms deadlock detection: the unwind paths under test must
leave no thread silently wedged — a kill that strands a blocked thread
now raises :class:`repro.errors.DeadlockError` instead of returning."""

import pytest

from repro.errors import DeadlockError, RemoteFault

from tests.core.conftest import wire_up_call


def _stuck(t, key):
    yield t.block("never-returns")


def test_double_kill_is_idempotent(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database, func=_stuck)
    caught = []

    def body(t):
        try:
            yield from t.kernel.dipc.call(t, address, "k")
        except RemoteFault as fault:
            caught.append(fault)

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(database))
    kernel.engine.post(5_000, lambda: kernel.kill_process(database))
    kernel.engine.post(6_000, lambda: kernel.kill_process(database))
    kernel.enable_deadlock_detection()
    kernel.run()
    kernel.check()
    # exactly one unwind reached the caller, not one per kill
    assert len(caught) == 1
    assert thread.is_done
    assert thread.kcs.depth == 0


def test_callee_then_caller_kill(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database, func=_stuck)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(database))
    kernel.engine.post(6_000, lambda: kernel.kill_process(web))
    kernel.enable_deadlock_detection()
    kernel.run()
    assert thread.is_done
    assert thread.kcs.depth == 0
    assert not web.alive and not database.alive


def test_caller_then_callee_kill(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database, func=_stuck)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(web))
    kernel.engine.post(6_000, lambda: kernel.kill_process(database))
    kernel.enable_deadlock_detection()
    kernel.run()
    assert thread.is_done
    assert thread.kcs.depth == 0
    assert not web.alive and not database.alive


def test_simultaneous_kill_same_instant(kernel, manager, web, database):
    """Both processes die at the same sim time: whichever kill runs
    first, the shared thread is unwound exactly once."""
    address, _ = wire_up_call(manager, web, database, func=_stuck)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")

    thread = kernel.spawn(web, body, pin=0)

    def kill_both():
        kernel.kill_process(web)
        kernel.kill_process(database)

    kernel.engine.post(5_000, kill_both)
    kernel.enable_deadlock_detection()
    kernel.run()
    assert thread.is_done
    assert thread.kcs.depth == 0


def test_kill_hooks_fire_once_per_death(kernel, manager, web, database):
    deaths = []
    kernel.on_process_kill(lambda p: deaths.append(p.name))
    kernel.kill_process(database)
    kernel.kill_process(database)  # no-op: already dead
    kernel.kill_process(web)
    kernel.run()
    assert deaths == ["database", "web"]


def test_kill_hook_may_kill_another_process(kernel, manager, web, database):
    """A hook cascading the kill (as the chaos pipe teardown does) must
    not recurse forever or double-unwind."""
    deaths = []

    def cascade(process):
        deaths.append(process.name)
        if process is database:
            kernel.kill_process(web)

    kernel.on_process_kill(cascade)
    kernel.kill_process(database)
    kernel.run()
    assert deaths == ["database", "web"]
    assert not web.alive and not database.alive

def test_stranded_thread_raises_deadlock_error(kernel, web):
    """A thread blocked with nothing left to wake it is a structured
    DeadlockError naming the victim and its wait reason, not a silent
    return."""
    def body(t):
        yield t.block("never-signalled")

    kernel.spawn(web, body, pin=0, name="web/stuck")
    kernel.enable_deadlock_detection()
    with pytest.raises(DeadlockError) as info:
        kernel.run()
    assert info.value.victims == [("web/stuck", "never-signalled")]
    assert "never-signalled" in str(info.value)


def test_daemon_thread_is_not_a_deadlock_victim(kernel, web):
    """Server loops parked forever by design (daemon=True) are exempt;
    a kill of their process still drains cleanly."""
    def server(t):
        yield t.block("serve-forever")

    kernel.spawn(web, server, pin=0, daemon=True)
    kernel.enable_deadlock_detection()
    kernel.run()  # must not raise
    kernel.engine.post(1_000, lambda: kernel.kill_process(web))
    kernel.run()
    assert not web.alive
