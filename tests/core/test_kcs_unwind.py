"""Epoch-stamped KCS reclamation: unwind_dead, pop_frame, diagnostics.

Pure unit tests against :class:`repro.core.kcs.KernelControlStack`
with stub processes — the end-to-end behaviour (supervisor rebuilds,
stale replies over real transports) lives in tests/recovery/.
"""

import pytest

from repro.core import kcs
from repro.core.kcs import KCSEntry, KernelControlStack
from repro.errors import DipcError


class _Proc:
    def __init__(self, name, generation=1, alive=True):
        self.name = name
        self.generation = generation
        self.alive = alive


class _Thread:
    def __init__(self, name):
        self.name = name


def _frame(caller, callee=None, caller_gen=None, callee_gen=None):
    return KCSEntry(
        proxy=None, caller_process=caller, caller_tag=None,
        caller_privileged=False, return_address=0,
        saved_stack_pointer=0, callee_process=callee,
        caller_generation=(caller.generation if caller_gen is None
                           else caller_gen),
        callee_generation=(0 if callee is None else
                           callee.generation if callee_gen is None
                           else callee_gen))


def _stack(*frames, owner=None):
    stack = KernelControlStack(owner=owner)
    for frame in frames:
        stack.push(frame)
    return stack


# -- oldest_live_frame_index ------------------------------------------------

def test_oldest_live_frame_index_with_every_caller_dead():
    a, b, c = _Proc("a", alive=False), _Proc("b", alive=False), _Proc("c")
    stack = _stack(_frame(a, b), _frame(b, c))
    assert stack.oldest_live_frame_index() is None


def test_oldest_live_frame_index_skips_dead_inner_callers():
    a, b, c = _Proc("a"), _Proc("b", alive=False), _Proc("c")
    stack = _stack(_frame(a, b), _frame(b, c))
    assert stack.oldest_live_frame_index() == 0


# -- unwind_dead ------------------------------------------------------------

def test_unwind_dead_on_an_empty_stack_is_a_noop():
    stack = KernelControlStack()
    assert stack.unwind_dead(_Proc("victim", alive=False)) == []
    assert stack.pruned_frames == 0


def test_unwind_dead_ignores_uninvolved_chains():
    a, b = _Proc("a"), _Proc("b")
    stack = _stack(_frame(a, b))
    assert stack.unwind_dead(_Proc("other", alive=False)) == []
    assert stack.depth == 1


def test_unwind_dead_prunes_only_above_the_nearest_live_caller():
    # a -> b -> c, kill c: the b->c frame goes, a->b survives (the
    # §5.2.1 delivery point is b, the nearest live caller)
    a, b, c = _Proc("a"), _Proc("b"), _Proc("c", alive=False)
    inner = _frame(b, c)
    stack = _stack(_frame(a, b), inner)
    pruned = stack.unwind_dead(c)
    assert pruned == [inner]
    assert stack.depth == 1
    assert inner.unwound
    assert "c killed" in inner.unwound_reason
    assert stack.pruned_frames == 1


def test_unwind_dead_takes_the_whole_chain_through_the_victim():
    # a -> b -> c, kill b: both frames name b (callee of the first,
    # caller of the second) — everything from the base-most frame up
    # to the top is retired, delivery lands at a
    a, b, c = _Proc("a"), _Proc("b", alive=False), _Proc("c")
    first, second = _frame(a, b), _frame(b, c)
    stack = _stack(first, second)
    pruned = stack.unwind_dead(b)
    assert pruned == [first, second]
    assert stack.depth == 0
    assert stack.pruned_frames == 2


def test_unwind_dead_retires_everything_when_no_caller_survives():
    a, b = _Proc("a", alive=False), _Proc("b", alive=False)
    stack = _stack(_frame(a, b))
    assert len(stack.unwind_dead(b)) == 1
    assert stack.depth == 0


def test_unwind_dead_interleaved_chains_spare_the_unrelated_base():
    # x -> y below the victim's chain: pruning a -> victim must not
    # touch the x -> y frame under it
    x, y, a, v = _Proc("x"), _Proc("y"), _Proc("a"), _Proc("v",
                                                           alive=False)
    base = _frame(x, y)
    stack = _stack(base, _frame(a, v))
    pruned = stack.unwind_dead(v)
    assert len(pruned) == 1
    assert stack.frames() == [base]


# -- pop_frame --------------------------------------------------------------

def test_pop_frame_pops_a_live_frame():
    a, b = _Proc("a"), _Proc("b")
    frame = _frame(a, b)
    stack = _stack(frame)
    assert stack.pop_frame(frame) is True
    assert stack.depth == 0
    assert frame.unwound and frame.unwound_reason == "popped"


def test_pop_frame_drops_a_reply_to_a_pruned_frame():
    # the A8-underflow shape: the kernel already pruned the frame at
    # kill time, then the proxy's return path comes back for it — the
    # reply must be dropped, not pop someone else's frame
    a, v = _Proc("a"), _Proc("v", alive=False)
    frame = _frame(a, v)
    stack = _stack(frame)
    stack.unwind_dead(v)
    assert stack.pop_frame(frame) is False
    assert stack.depth == 0


def test_pop_frame_drops_a_reply_racing_a_rebuild():
    # the callee was killed and respawned between push and return: the
    # generation stamp no longer matches the incarnation
    a, b = _Proc("a"), _Proc("b", generation=2)
    frame = _frame(a, b)
    stack = _stack(frame)
    b.generation = 5  # supervisor rebuilt the pool
    assert stack.pop_frame(frame) is False
    assert "generation mismatch" in frame.unwound_reason
    assert "g5" in frame.unwound_reason
    assert "g2" in frame.unwound_reason
    assert stack.pruned_frames == 1


def test_pop_frame_prunes_frames_abandoned_above_it():
    a, b, c = _Proc("a"), _Proc("b"), _Proc("c")
    outer, inner = _frame(a, b), _frame(b, c)
    stack = _stack(outer, inner)
    assert stack.pop_frame(outer) is True
    assert stack.depth == 0
    assert inner.unwound
    assert "abandoned" in inner.unwound_reason


def test_pop_frame_raises_on_a_frame_it_has_never_seen():
    a, b = _Proc("a"), _Proc("b")
    stack = _stack(_frame(a, b), owner=_Thread("t0"))
    with pytest.raises(DipcError) as err:
        stack.pop_frame(_frame(a, b))
    assert "t0" in str(err.value)
    assert "a(g1)->b(g1)" in str(err.value)


# -- diagnostics ------------------------------------------------------------

def test_underflow_names_the_thread_and_the_pruned_frames():
    v = _Proc("v", alive=False)
    stack = _stack(_frame(_Proc("a", alive=False), v),
                   owner=_Thread("load-server/w3"))
    stack.unwind_dead(v)
    with pytest.raises(IndexError) as err:
        stack.pop()
    message = str(err.value)
    assert message.startswith("KCS underflow")
    assert "load-server/w3" in message
    assert "1 frame(s) pruned" in message


def test_describe_marks_the_dead_and_their_generations():
    a, b = _Proc("a", generation=3), _Proc("b", generation=7,
                                           alive=False)
    frame = _frame(a, b)
    assert frame.describe() == "a(g3)->b†(g7)"
    local = _frame(a)
    assert local.describe() == "a(g3)->local"
    stack = _stack(frame)
    assert stack.describe_chain() == "a(g3)->b†(g7)"
    assert KernelControlStack().describe_chain() == "<empty>"


# -- the legacy switch ------------------------------------------------------

def test_legacy_mode_restores_the_pre_epoch_behaviour(monkeypatch):
    monkeypatch.setattr(kcs, "LEGACY_UNWIND", True)
    a, v = _Proc("a"), _Proc("v", alive=False)
    frame = _frame(a, v)
    stack = _stack(frame)
    # no kill-time pruning ...
    assert stack.unwind_dead(v) == []
    assert stack.depth == 1
    # ... and a raw LIFO pop with the foreign-frame trap
    assert stack.pop_frame(frame) is True
    stack2 = _stack(_frame(a, v), _frame(a, v))
    with pytest.raises(DipcError):
        stack2.pop_frame(stack2.frames()[0])
