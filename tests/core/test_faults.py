"""Crash/kill unwinding across the KCS (§5.2.1, P5) and time-outs (§5.4)."""

import pytest

from repro.core.policies import IsolationPolicy
from repro.core.timeouts import call_with_timeout
from repro.errors import CallTimeout, DipcError, RemoteFault

from tests.core.conftest import wire_up_call


def test_callee_crash_becomes_remote_fault(kernel, manager, web, database):
    def buggy(t, key):
        yield t.compute(1)
        raise ValueError("corrupt row")

    address, _ = wire_up_call(manager, web, database, func=buggy)
    caught = []

    def body(t):
        try:
            yield from t.kernel.dipc.call(t, address, "k")
        except RemoteFault as fault:
            caught.append(fault)
        assert t.kcs.depth == 0  # fully unwound

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert len(caught) == 1
    assert caught[0].origin == "database"
    assert caught[0].unwound_frames == 1


def test_caller_state_restored_after_fault(kernel, manager, web, database):
    def buggy(t, key):
        yield t.compute(1)
        raise RuntimeError("boom")

    address, _ = wire_up_call(manager, web, database, func=buggy)

    def body(t):
        tag_before = t.codoms.current_tag
        try:
            yield from t.kernel.dipc.call(t, address, "k")
        except RemoteFault:
            pass
        assert t.codoms.current_tag == tag_before
        assert t.current_process is web

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_nested_crash_unwinds_one_level(kernel, manager, web, database):
    """web -> database -> storage; storage crashes; database (alive)
    catches the flagged error — the nearest live caller gets it."""
    storage = kernel.spawn_process("storage", dipc=True)

    def exploding(t, key):
        yield t.compute(1)
        raise ValueError("disk on fire")

    inner, _ = wire_up_call(manager, database, storage, func=exploding)
    db_caught = []

    def query(t, key):
        try:
            yield from t.kernel.dipc.call(t, inner, key)
        except RemoteFault as fault:
            db_caught.append(fault.origin)
            return ("degraded", key)

    outer, _ = wire_up_call(manager, web, database, func=query)

    def body(t):
        return (yield from t.kernel.dipc.call(t, outer, "k"))

    thread = kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert db_caught == ["storage"]
    assert thread.result == ("degraded", "k")


def test_nested_crash_skips_dead_intermediate(kernel, manager, web,
                                              database):
    """If the intermediate process dies while the thread is deeper in the
    chain, the unwind skips it and lands at the oldest live caller."""
    storage = kernel.spawn_process("storage", dipc=True)

    def slow_fetch(t, key):
        yield from t.sleep(50_000)
        raise ValueError("storage crashed late")

    inner, _ = wire_up_call(manager, database, storage, func=slow_fetch)

    def query(t, key):
        return (yield from t.kernel.dipc.call(t, inner, key))

    outer, _ = wire_up_call(manager, web, database, func=query)
    caught = []

    def body(t):
        try:
            yield from t.kernel.dipc.call(t, outer, "k")
        except RemoteFault as fault:
            caught.append(fault.unwound_frames)
        assert t.kcs.depth == 0

    kernel.spawn(web, body, pin=0)
    # kill the intermediate while the thread sleeps inside storage
    kernel.engine.post(10_000, lambda: database.exit(-9))
    kernel.run()
    kernel.check()
    assert caught == [2]  # unwound through database's dead frame


def test_kill_of_callee_process_unwinds_visitors(kernel, manager, web,
                                                 database):
    """§5.2.1: killing a process cannot simply terminate threads visiting
    it — the caller (web) survives with a flagged error."""
    def stuck(t, key):
        yield t.block("never-returns")

    address, _ = wire_up_call(manager, web, database, func=stuck)
    caught = []

    def body(t):
        try:
            yield from t.kernel.dipc.call(t, address, "k")
        except RemoteFault as fault:
            caught.append(fault)

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(database))
    kernel.run()
    kernel.check()
    assert thread.is_done
    assert len(caught) == 1
    assert not database.alive
    assert web.alive


def test_kill_of_home_process_terminates_thread_abroad(kernel, manager,
                                                       web, database):
    def stuck(t, key):
        yield t.block("never-returns")

    address, _ = wire_up_call(manager, web, database, func=stuck)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(web))
    kernel.run()
    # no live caller remains: the thread dies with the unhandled fault
    assert thread.is_done
    assert thread.exception is not None


class TestTimeouts:
    def wire_slow_entry(self, kernel, manager, web, database, delay_ns):
        def slow(t, key):
            yield from t.sleep(delay_ns)
            return ("late", key)

        return wire_up_call(
            manager, web, database,
            caller_policy=IsolationPolicy.high(),
            callee_policy=IsolationPolicy.high(), func=slow)

    def test_fast_call_completes_normally(self, kernel, manager, web,
                                          database):
        _, proxy = self.wire_slow_entry(kernel, manager, web, database,
                                        1_000)
        results = []

        def body(t):
            results.append((yield from call_with_timeout(
                t, proxy, ("k",), timeout_ns=1_000_000)))

        kernel.spawn(web, body, pin=0)
        kernel.run()
        kernel.check()
        assert results == [("late", "k")]

    def test_timeout_raises_and_splits(self, kernel, manager, web,
                                       database):
        _, proxy = self.wire_slow_entry(kernel, manager, web, database,
                                        10_000_000)
        caught = []
        after = []

        def body(t):
            try:
                yield from call_with_timeout(t, proxy, ("k",),
                                             timeout_ns=100_000)
            except CallTimeout as exc:
                caught.append(exc)
            after.append(t.now())

        kernel.spawn(web, body, pin=0)
        kernel.run()
        kernel.check()
        assert len(caught) == 1
        # the caller resumed at the timeout, not after the 10ms callee
        assert after[0] < 1_000_000
        # ... while the split callee half ran to completion and died
        assert kernel.engine.now() >= 10_000_000

    def test_timeout_requires_stack_confidentiality(self, kernel, manager,
                                                    web, database):
        address, proxy = wire_up_call(manager, web, database)  # Low policy
        failures = []

        def body(t):
            try:
                yield from call_with_timeout(t, proxy, ("k",),
                                             timeout_ns=1_000)
            except DipcError as exc:
                failures.append(exc)

        kernel.spawn(web, body, pin=0)
        kernel.run()
        kernel.check()
        assert len(failures) == 1

    def test_callee_error_before_timeout_propagates(self, kernel, manager,
                                                    web, database):
        def buggy(t, key):
            yield t.compute(1)
            raise ValueError("boom")

        _, proxy = wire_up_call(
            manager, web, database,
            caller_policy=IsolationPolicy.high(),
            callee_policy=IsolationPolicy.high(), func=buggy)
        caught = []

        def body(t):
            try:
                yield from call_with_timeout(t, proxy, ("k",),
                                             timeout_ns=1_000_000)
            except RemoteFault as exc:
                caught.append(exc)

        kernel.spawn(web, body, pin=0)
        kernel.run()
        kernel.check()
        assert len(caught) == 1
