"""Edge cases for entry resolution and the loader."""

import pytest

from repro.codoms.apl import Permission
from repro.core import (AnnotatedModule, DipcRuntime, IsolationPolicy,
                        Signature, compile_module)
from repro.core.annotations import STUB_COOPT_FACTOR, caller_stub_charges
from repro.errors import DipcError, LoaderError
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def runtime(kernel):
    return DipcRuntime(kernel)


def simple_db_module():
    module = AnnotatedModule("db")

    @module.entry("default", Signature(in_regs=1, out_regs=1))
    def get(t, key):
        yield t.compute(5)
        return key

    return module


class TestResolution:
    def test_double_publish_rejected(self, kernel, runtime):
        proc = kernel.spawn_process("db", dipc=True)
        image = runtime.enable(proc, compile_module(
            simple_db_module(), export_path="/dipc/db"))
        with pytest.raises(DipcError):
            runtime.resolver.publish(proc, "/dipc/db/get",
                                     image.exports["get"])

    def test_resolution_counts(self, kernel, runtime):
        db = kernel.spawn_process("db", dipc=True)
        web = kernel.spawn_process("web", dipc=True)
        runtime.enable(db, compile_module(simple_db_module(),
                                          export_path="/dipc/db"))
        web_module = AnnotatedModule("web")
        web_module.import_entry("get", "/dipc/db/get",
                                Signature(in_regs=1, out_regs=1))
        image = runtime.enable(web, compile_module(web_module))

        def body(t):
            for i in range(3):
                yield from image.call_import(t, "get", i)

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()
        assert runtime.resolver.resolutions == 1  # resolved exactly once

    def test_failing_hook_raises(self, kernel, runtime):
        web = kernel.spawn_process("web", dipc=True)
        runtime.resolver.register_hook("/x", lambda path: None)

        def body(t):
            yield from runtime.resolver.resolve(t, "/x")

        thread = kernel.spawn(web, body)
        kernel.run()
        assert isinstance(thread.exception, DipcError)

    def test_publisher_survives_many_resolvers(self, kernel, runtime):
        db = kernel.spawn_process("db", dipc=True)
        runtime.enable(db, compile_module(simple_db_module(),
                                          export_path="/dipc/db"))
        results = []

        def resolver_body(t, i):
            handle = yield from runtime.resolver.resolve(t, "/dipc/db/get")
            results.append(handle)

        web = kernel.spawn_process("web", dipc=True)
        for i in range(4):
            kernel.spawn(web, lambda t, i=i: resolver_body(t, i))
        kernel.run()
        kernel.check()
        assert len(results) == 4
        assert len({id(h) for h in results}) == 1  # same handle to all


class TestLoaderEdges:
    def test_perm_referencing_unknown_domain(self, kernel, runtime):
        proc = kernel.spawn_process("p", dipc=True)
        module = AnnotatedModule("m")
        module.perms.append(type("P", (), {
            "src": "ghost", "dst": "default",
            "perm": Permission.READ})())
        module.domains.append("default")
        with pytest.raises(LoaderError):
            runtime.enable(proc, compile_module(module))

    def test_duplicate_import_rejected(self):
        module = AnnotatedModule("m")
        module.import_entry("x", "/a/x", Signature())
        with pytest.raises(LoaderError):
            module.import_entry("x", "/b/x", Signature())

    def test_enable_requires_dipc_process(self, kernel, runtime):
        legacy = kernel.spawn_process("legacy", dipc=False)
        with pytest.raises(DipcError):
            runtime.enable(legacy, compile_module(simple_db_module()))


class TestStubCharges:
    def drain(self, gen):
        total = 0.0
        for effect in gen:
            total += effect.ns
        return total

    def make_thread(self, kernel):
        proc = kernel.spawn_process("p")
        return kernel.spawn(proc, lambda t: iter(()), start=False)

    def test_optimized_stubs_are_cheaper(self, kernel):
        thread = self.make_thread(kernel)
        policy = IsolationPolicy(reg_integrity=True,
                                 reg_confidentiality=True)
        slow = (self.drain(caller_stub_charges(thread, policy,
                                               optimized=False,
                                               before=True))
                + self.drain(caller_stub_charges(thread, policy,
                                                 optimized=False,
                                                 before=False)))
        fast = (self.drain(caller_stub_charges(thread, policy,
                                               optimized=True,
                                               before=True))
                + self.drain(caller_stub_charges(thread, policy,
                                                 optimized=True,
                                                 before=False)))
        assert slow / fast == pytest.approx(STUB_COOPT_FACTOR)

    def test_low_policy_stub_is_free(self, kernel):
        thread = self.make_thread(kernel)
        assert self.drain(caller_stub_charges(
            thread, IsolationPolicy.low(), optimized=True,
            before=True)) == 0.0
