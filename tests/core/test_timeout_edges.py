"""call_with_timeout edge cases (§5.4): late-callee errors, split
reaping, and timer hygiene on every exit path."""

import pytest

from repro.core.policies import IsolationPolicy
from repro.core.timeouts import call_with_timeout
from repro.errors import CallTimeout

from tests.core.conftest import wire_up_call


def _wire(manager, web, database, func):
    return wire_up_call(manager, web, database,
                        caller_policy=IsolationPolicy.high(),
                        callee_policy=IsolationPolicy.high(), func=func)


def _find_split(kernel):
    splits = [t for p in kernel.processes for t in p.threads
              if t.is_split_half]
    assert len(splits) == 1
    return splits[0]


def test_fast_path_cancels_timer(kernel, manager, web, database):
    """When the callee beats the clock the timer must not keep the
    engine alive: the run drains long before the timeout would fire."""
    def quick(t, key):
        yield from t.sleep(1_000)
        return ("row", key)

    _, proxy = _wire(manager, web, database, quick)
    results = []

    def body(t):
        results.append((yield from call_with_timeout(
            t, proxy, ("k",), timeout_ns=50_000_000)))

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert results == [("row", "k")]
    assert kernel.engine.pending() == 0
    assert kernel.engine.now() < 50_000_000  # did not wait out the timer
    assert _find_split(kernel).is_done


def test_callee_error_after_timeout_is_swallowed(kernel, manager, web,
                                                 database):
    """The caller already took CallTimeout; the split half's late crash
    is deleted with it at the proxy, never delivered anywhere."""
    def slow_bomb(t, key):
        yield from t.sleep(500_000)
        raise ValueError("exploded after the caller gave up")

    _, proxy = _wire(manager, web, database, slow_bomb)
    caught = []

    def body(t):
        try:
            yield from call_with_timeout(t, proxy, ("k",),
                                         timeout_ns=10_000)
        except CallTimeout as exc:
            caught.append(exc)

    thread = kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()  # the late ValueError crashed no thread
    assert len(caught) == 1
    assert thread.is_done and thread.exception is None
    split = _find_split(kernel)
    assert split.is_done
    assert split.kcs.depth == 0  # unwound before deletion
    assert kernel.engine.pending() == 0


def test_caller_killed_while_waiting_cancels_timer(kernel, manager, web,
                                                   database):
    def stuck(t, key):
        yield t.block("never-returns")

    _, proxy = _wire(manager, web, database, stuck)

    def body(t):
        yield from call_with_timeout(t, proxy, ("k",),
                                     timeout_ns=10_000_000)

    thread = kernel.spawn(web, body, pin=0)
    kernel.engine.post(5_000, lambda: kernel.kill_process(web))
    kernel.engine.post(6_000, lambda: kernel.kill_process(database))
    kernel.run()
    assert thread.is_done
    # the 10ms timer was cancelled by the unwind, not left to fire
    assert kernel.engine.pending() == 0
    assert kernel.engine.now() < 10_000_000


def test_nonpositive_timeout_rejected(kernel, manager, web, database):
    _, proxy = _wire(manager, web, database, None)

    def body(t):
        with pytest.raises(ValueError):
            yield from call_with_timeout(t, proxy, ("k",), timeout_ns=0)
        with pytest.raises(ValueError):
            yield from call_with_timeout(t, proxy, ("k",), timeout_ns=-5.0)

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_back_to_back_timeouts_reap_every_split(kernel, manager, web,
                                                database):
    def slow(t, key):
        yield from t.sleep(200_000)
        return ("late", key)

    _, proxy = _wire(manager, web, database, slow)
    timeouts = []

    def body(t):
        for _ in range(3):
            try:
                yield from call_with_timeout(t, proxy, ("k",),
                                             timeout_ns=10_000)
            except CallTimeout as exc:
                timeouts.append(exc)

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert len(timeouts) == 3
    splits = [t for p in kernel.processes for t in p.threads
              if t.is_split_half]
    assert len(splits) == 3
    assert all(s.is_done for s in splits)
    assert kernel.engine.pending() == 0
