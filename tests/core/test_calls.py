"""End-to-end cross-process dIPC calls: functionality, security, tracking."""

import pytest

from repro.codoms.apl import Permission
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.errors import AccessFault, DipcError

from tests.core.conftest import wire_up_call


def run_call(kernel, process, address, *args, repeat=1):
    results = []

    def body(t):
        for _ in range(repeat):
            results.append((yield from t.kernel.dipc.call(t, address,
                                                          *args)))

    kernel.spawn(process, body, pin=0)
    kernel.run()
    kernel.check()
    return results


def test_call_crosses_processes_and_returns(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database)
    results = run_call(kernel, web, address, "key-1")
    assert results == [("row", "key-1")]


def test_call_without_grant_is_denied_p1(kernel, manager, web, database):
    """A process that never received a grant cannot call the proxy."""
    address, _ = wire_up_call(manager, web, database)
    intruder = kernel.spawn_process("intruder", dipc=True)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "key")

    thread = kernel.spawn(intruder, body)
    kernel.run()
    assert isinstance(thread.exception, AccessFault)


def test_call_to_unknown_address_rejected(kernel, manager, web, database):
    wire_up_call(manager, web, database)

    def body(t):
        yield from t.kernel.dipc.call(t, 0xDEAD000, "key")

    thread = kernel.spawn(web, body)
    kernel.run()
    assert isinstance(thread.exception, DipcError)


def test_kcs_balanced_after_calls(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database)

    def body(t):
        for _ in range(5):
            yield from t.kernel.dipc.call(t, address, "k")
        assert t.kcs.depth == 0
        assert t.kcs.max_depth_seen == 1

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_caller_domain_restored_after_call(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database)

    def body(t):
        before = t.codoms.current_tag
        yield from t.kernel.dipc.call(t, address, "k")
        assert t.codoms.current_tag == before
        assert not t.codoms.privileged

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_current_process_switches_during_call(kernel, manager, web,
                                              database):
    observed = []

    def spy(t, key):
        observed.append(t.current_process.name)
        yield t.compute(1)
        return key

    address, _ = wire_up_call(manager, web, database, func=spy)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")
        observed.append(t.current_process.name)

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert observed == ["database", "web"]


def test_per_process_tids_differ(kernel, manager, web, database):
    """§5.2.1: primary threads appear with different identifiers on each
    process."""
    address, _ = wire_up_call(manager, web, database)

    def body(t):
        yield from t.kernel.dipc.call(t, address, "k")
        assert database.pid in t.per_process_tids
        assert t.per_process_tids[database.pid] != t.tid

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_track_cold_then_hot_path(kernel, manager, web, database):
    address, _ = wire_up_call(manager, web, database)
    stats = []

    def body(t):
        for _ in range(4):
            yield from t.kernel.dipc.call(t, address, "k")
        stats.append((t.track_state.cold_misses, t.track_state.hot_hits))

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    cold, hot = stats[0]
    assert cold == 1       # first call takes the upcall
    assert hot == 3        # the rest hit the cache array


def test_nested_cross_process_calls(kernel, manager, web, database):
    """web -> database -> storage: two proxies on one KCS."""
    storage = kernel.spawn_process("storage", dipc=True)

    def fetch(t, key):
        yield t.compute(2)
        return f"disk:{key}"

    inner_address, _ = wire_up_call(manager, database, storage, func=fetch)

    def query(t, key):
        low = yield from t.kernel.dipc.call(t, inner_address, key)
        return ("row", low)

    outer_address, _ = wire_up_call(manager, web, database, func=query)
    depth_seen = []

    def body(t):
        result = yield from t.kernel.dipc.call(t, outer_address, "k")
        depth_seen.append(t.kcs.max_depth_seen)
        return result

    thread = kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert thread.result == ("row", "disk:k")
    assert depth_seen == [2]


def test_same_process_domain_call_has_no_track(kernel, manager, web):
    """dIPC also isolates components inside one process (§3, Fig. 5's
    same-process bars): no current switch, no TLS switch."""
    sandbox_dom = manager.dom_create(web)

    def helper(t, x):
        yield t.compute(1)
        return x * 2

    descriptor = EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                                 func=helper, name="helper")
    handle = manager.entry_register(web, sandbox_dom, [descriptor])
    request = [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1))]
    proxy_handle, proxies = manager.entry_request(web, handle, request)
    manager.grant_create(manager.dom_default(web), proxy_handle)
    assert not proxies[0].cross_process

    def body(t):
        result = yield from t.kernel.dipc.call(t, request[0].address, 21)
        assert result == 42
        assert t.track_state is None  # never tracked

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_high_policy_call_uses_separate_stack_and_dcs(kernel, manager, web,
                                                      database):
    seen = []

    def nosy(t, key):
        # with stack confidentiality the callee runs on its own stack
        stack = t.kernel.dipc.stacks.stack_for(t, database)
        seen.append(stack)
        yield t.compute(1)
        return key

    address, proxy = wire_up_call(
        manager, web, database,
        caller_policy=IsolationPolicy.high(),
        callee_policy=IsolationPolicy.high(), func=nosy)
    assert proxy.policy.stack_confidentiality

    def body(t):
        caller_stack = t.kernel.dipc.stacks.stack_for(t, web)
        yield from t.kernel.dipc.call(t, address, "k")
        assert seen[0] is not caller_stack

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_dcs_integrity_hides_caller_entries(kernel, manager, web, database):
    from repro.codoms.capability import mint_from_apl

    leaked = []

    def snoop(t, key):
        # the callee tries to pop the caller's spilled capability
        try:
            leaked.append(t.codoms.dcs.pop())
        except Exception:
            leaked.append(None)
        yield t.compute(1)
        return key

    address, _ = wire_up_call(
        manager, web, database,
        caller_policy=IsolationPolicy(dcs_integrity=True), func=snoop)

    def body(t):
        secret = mint_from_apl(Permission.WRITE, 0x1000, 64,
                               Permission.READ, synchronous=True,
                               owner_thread=t)
        t.codoms.dcs.push(secret)
        yield from t.kernel.dipc.call(t, address, "k")
        assert t.codoms.dcs.pop() is secret  # still there afterwards

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert leaked == [None]
