"""Shared fixtures: a kernel with two dIPC-enabled processes (Web and
Database, mirroring Figure 3) and an exported 'query' entry point."""

import pytest

from repro.codoms.apl import Permission
from repro.core.api import DipcManager
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def manager(kernel):
    return DipcManager(kernel)


@pytest.fixture
def web(kernel, manager):
    return kernel.spawn_process("web", dipc=True)


@pytest.fixture
def database(kernel, manager):
    return kernel.spawn_process("database", dipc=True)


def make_query_entry(manager, database, *, policy=None, func=None):
    """Register a one-entry 'query' array in the database's default domain."""
    if func is None:
        def func(t, key):  # the exported implementation
            yield t.compute(5)
            return ("row", key)

    descriptor = EntryDescriptor(
        signature=Signature(in_regs=1, out_regs=1),
        policy=policy or IsolationPolicy(),
        func=func, name="query")
    dom = manager.dom_default(database)
    return manager.entry_register(database, dom, [descriptor])


def wire_up_call(manager, web, database, *, caller_policy=None,
                 callee_policy=None, func=None):
    """Full A-B setup of Figure 3: register, request, grant. Returns the
    proxy entry address the web process can call."""
    handle = make_query_entry(manager, database, policy=callee_policy,
                              func=func)
    request = [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                               policy=caller_policy or IsolationPolicy(),
                               name="query")]
    proxy_handle, proxies = manager.entry_request(web, handle, request)
    manager.grant_create(manager.dom_default(web), proxy_handle)
    return request[0].address, proxies[0]
