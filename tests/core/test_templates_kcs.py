"""Tests for proxy templates (§6.1.1) and the KCS."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.kcs import KCSEntry, KernelControlStack
from repro.core.objects import Signature
from repro.core.policies import IsolationPolicy
from repro.core.templates import (TemplateLibrary, stack_class,
                                  template_universe_size)


class _FakeProcess:
    def __init__(self, alive=True, name="p"):
        self.alive = alive
        self.name = name


def frame(caller_alive=True, proxy=None):
    return KCSEntry(proxy=proxy, caller_process=_FakeProcess(caller_alive),
                    caller_tag=1, caller_privileged=False,
                    return_address=0x1000, saved_stack_pointer=0x2000)


class TestTemplates:
    def test_universe_is_about_12k(self):
        """§6.1.1: the master template produces 'around 12K templates'."""
        assert 9_000 <= template_universe_size() <= 13_000

    def test_stack_class_bucketing(self):
        assert stack_class(0) == 0
        assert stack_class(1) == 64
        assert stack_class(64) == 64
        assert stack_class(65) == 512
        assert stack_class(100_000) == 4096

    def test_memoization(self):
        lib = TemplateLibrary()
        a = lib.get(Signature(1, 1), IsolationPolicy.high(), True)
        b = lib.get(Signature(1, 1), IsolationPolicy.high(), True)
        assert a is b
        assert lib.generated == 1

    def test_low_policy_template_is_minimal(self):
        lib = TemplateLibrary()
        low = lib.get(Signature(), IsolationPolicy.low(), False)
        assert "track_call" not in low.steps
        assert "stack_switch" not in low.steps
        assert "dcs_adjust" not in low.steps
        assert low.steps[0] == "entry_check"
        assert low.steps[-1] == "return"

    def test_cross_process_template_tracks_and_switches_tls(self):
        lib = TemplateLibrary()
        template = lib.get(Signature(), IsolationPolicy.low(), True)
        assert "track_call" in template.steps
        assert "track_ret" in template.steps
        assert template.steps.count("tls_switch") == 2

    def test_high_template_has_all_policy_steps(self):
        lib = TemplateLibrary()
        template = lib.get(Signature(2, 1, 128), IsolationPolicy.high(),
                           True)
        for step in ("stack_locate", "stack_switch", "stack_copy_args",
                     "dcs_adjust", "dcs_switch"):
            assert step in template.steps

    def test_sizes_are_in_the_600b_ballpark(self):
        """§6.1.1: templates average around 600 B."""
        lib = TemplateLibrary()
        sizes = [
            lib.get(Signature(i % 7, i % 3, (i * 37) % 800),
                    IsolationPolicy.high() if i % 2 else
                    IsolationPolicy.low(), bool(i % 2)).size_bytes
            for i in range(40)
        ]
        average = sum(sizes) / len(sizes)
        assert 300 <= average <= 900

    def test_stub_properties_do_not_change_proxy_template(self):
        lib = TemplateLibrary()
        stub_only = IsolationPolicy(reg_integrity=True,
                                    reg_confidentiality=True,
                                    stack_integrity=True)
        a = lib.key_for(Signature(), stub_only, False)
        b = lib.key_for(Signature(), IsolationPolicy.low(), False)
        assert a == b

    @given(st.integers(0, 6), st.integers(0, 2), st.integers(0, 8192),
           st.booleans())
    def test_property_every_template_is_well_formed(self, in_regs, out_regs,
                                                    stack, cross):
        lib = TemplateLibrary()
        template = lib.get(Signature(in_regs, out_regs, stack),
                           IsolationPolicy.high(), cross)
        assert template.size_bytes > 0
        assert template.relocations >= 3
        assert template.steps.count("kcs_push") == 1
        assert template.steps.count("kcs_pop") == 1


class TestKCS:
    def test_push_pop(self):
        kcs = KernelControlStack()
        entry = frame()
        kcs.push(entry)
        assert kcs.depth == 1
        assert kcs.peek() is entry
        assert kcs.pop() is entry
        assert kcs.depth == 0

    def test_underflow(self):
        with pytest.raises(IndexError):
            KernelControlStack().pop()

    def test_overflow(self):
        kcs = KernelControlStack(limit=2)
        kcs.push(frame())
        kcs.push(frame())
        with pytest.raises(OverflowError):
            kcs.push(frame())

    def test_max_depth_tracking(self):
        kcs = KernelControlStack()
        kcs.push(frame())
        kcs.push(frame())
        kcs.pop()
        assert kcs.max_depth_seen == 2

    def test_oldest_live_frame_skips_dead_callers(self):
        kcs = KernelControlStack()
        kcs.push(frame(caller_alive=True))    # index 0 (bottom)
        kcs.push(frame(caller_alive=False))   # index 1
        kcs.push(frame(caller_alive=False))   # index 2 (top)
        assert kcs.oldest_live_frame_index() == 0

    def test_oldest_live_frame_prefers_nearest(self):
        kcs = KernelControlStack()
        kcs.push(frame(caller_alive=True))
        kcs.push(frame(caller_alive=True))
        assert kcs.oldest_live_frame_index() == 1

    def test_no_live_frame(self):
        kcs = KernelControlStack()
        kcs.push(frame(caller_alive=False))
        assert kcs.oldest_live_frame_index() is None

    def test_processes_in_chain_deduplicates(self):
        kcs = KernelControlStack()
        shared = _FakeProcess(name="shared")
        entry_a = frame()
        entry_a.callee_process = shared
        entry_b = frame()
        entry_b.callee_process = shared
        kcs.push(entry_a)
        kcs.push(entry_b)
        chain = kcs.processes_in_chain()
        assert chain.count(shared) == 1
