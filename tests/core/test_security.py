"""The security model §5.1, property by property (P1-P5).

These tests overlap deliberately with the per-module suites: this file
is the executable statement of the paper's security model, organized so
each property has its own evidence.
"""

import pytest

from repro.codoms.apl import Permission
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.errors import (AccessFault, EntryAlignmentFault,
                          PermissionDenied, RemoteFault, SignatureMismatch)

from tests.core.conftest import make_query_entry, wire_up_call


class TestP1_ExplicitGrants:
    """P1: processes can only access each other's code and data when the
    accessee explicitly grants that right."""

    def test_fresh_processes_cannot_touch_each_other(self, kernel, manager,
                                                     web, database):
        db_data = database.alloc_bytes(4096)
        database.space.write(db_data, b"secret")

        def body(t):
            kernel.access.read(t.codoms, db_data, 6, t)
            yield t.compute(1)

        thread = kernel.spawn(web, body)
        kernel.run()
        assert isinstance(thread.exception, AccessFault)

    def test_explicit_grant_opens_access(self, kernel, manager, web,
                                         database):
        db_data = database.alloc_bytes(4096)
        database.space.write(db_data, b"public")
        read_handle = manager.dom_copy(manager.dom_default(database),
                                       Permission.READ)
        manager.grant_create(manager.dom_default(web), read_handle)
        got = []

        def body(t):
            got.append(kernel.access.read(t.codoms, db_data, 6, t))
            yield t.compute(1)

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()
        assert got == [b"public"]

    def test_grant_is_directional(self, kernel, manager, web, database):
        """web->database access does not imply database->web."""
        manager.grant_create(manager.dom_default(web),
                             manager.dom_copy(manager.dom_default(database),
                                              Permission.READ))
        web_data = web.alloc_bytes(4096)

        def body(t):
            kernel.access.read(t.codoms, web_data, 1, t)
            yield t.compute(1)

        thread = kernel.spawn(database, body)
        kernel.run()
        assert isinstance(thread.exception, AccessFault)

    def test_delegation_cannot_amplify(self, manager, database):
        read = manager.dom_copy(manager.dom_default(database),
                                Permission.READ)
        with pytest.raises(PermissionDenied):
            manager.dom_copy(read, Permission.OWNER)

    def test_revoked_grant_closes_access(self, kernel, manager, web,
                                         database):
        db_data = database.alloc_bytes(4096)
        grant = manager.grant_create(
            manager.dom_default(web),
            manager.dom_copy(manager.dom_default(database),
                             Permission.READ))
        manager.grant_revoke(grant)

        def body(t):
            kernel.access.read(t.codoms, db_data, 1, t)
            yield t.compute(1)

        thread = kernel.spawn(web, body)
        kernel.run()
        assert isinstance(thread.exception, AccessFault)


class TestP2_EntryPointsOnly:
    """P2: inter-process calls always enter through exported, aligned
    entry points, with a valid callee state."""

    def test_call_lands_on_registered_entry(self, kernel, manager, web,
                                            database):
        address, _ = wire_up_call(manager, web, database)
        results = []

        def body(t):
            results.append((yield from t.kernel.dipc.call(t, address,
                                                          "k")))

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()
        assert results == [("row", "k")]

    def test_unaligned_jump_into_proxy_rejected(self, kernel, manager, web,
                                                database):
        """CODOMs alignment forces calls to the proxy's first
        instruction; a jump into its middle faults."""
        address, _ = wire_up_call(manager, web, database)

        def body(t):
            kernel.access.check_call(t.codoms, address + 8, t)
            yield t.compute(1)

        thread = kernel.spawn(web, body)
        kernel.run()
        assert isinstance(thread.exception, EntryAlignmentFault)

    def test_call_permission_gives_no_data_access_to_proxy(self, kernel,
                                                           manager, web,
                                                           database):
        address, _ = wire_up_call(manager, web, database)

        def body(t):
            kernel.access.read(t.codoms, address, 8, t)  # read proxy code
            yield t.compute(1)

        thread = kernel.spawn(web, body)
        kernel.run()
        assert isinstance(thread.exception, AccessFault)


class TestP3_ReturnsAreSafe:
    """P3: calls return to the expected point with the caller's state."""

    def test_state_restored_even_when_callee_meddles(self, kernel, manager,
                                                     web, database):
        def meddler(t, key):
            # the callee scribbles on what it can reach; the KCS copy of
            # the caller's state is out of its reach
            t.codoms.privileged = False
            yield t.compute(1)
            return key

        address, _ = wire_up_call(manager, web, database, func=meddler)

        def body(t):
            tag = t.codoms.current_tag
            sp_stack = t.kernel.dipc.stacks.stack_for(t, web)
            sp = sp_stack.sp
            yield from t.kernel.dipc.call(t, address, "k")
            assert t.codoms.current_tag == tag
            assert not t.codoms.privileged
            assert sp_stack.sp == sp

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()

    def test_kcs_balances_across_nested_and_faulting_calls(self, kernel,
                                                           manager, web,
                                                           database):
        calls = {"n": 0}

        def flaky(t, key):
            calls["n"] += 1
            yield t.compute(1)
            if calls["n"] % 2:
                raise RuntimeError("intermittent")
            return key

        address, _ = wire_up_call(manager, web, database, func=flaky)

        def body(t):
            for _ in range(6):
                try:
                    yield from t.kernel.dipc.call(t, address, "k")
                except RemoteFault:
                    pass
            assert t.kcs.depth == 0

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()


class TestP4_SignatureAgreement:
    def test_mismatch_rejected_at_request_time(self, manager, web,
                                               database):
        handle = make_query_entry(manager, database)
        with pytest.raises(SignatureMismatch):
            manager.entry_request(web, handle, [EntryDescriptor(
                signature=Signature(in_regs=4, out_regs=2))])

    def test_stack_size_is_part_of_the_contract(self, manager, web,
                                                database):
        handle = make_query_entry(manager, database)
        with pytest.raises(SignatureMismatch):
            manager.entry_request(web, handle, [EntryDescriptor(
                signature=Signature(in_regs=1, out_regs=1,
                                    stack_bytes=64))])


class TestP5_FaultContainment:
    """P5: a process failing its own policy hurts only itself."""

    def test_callee_crash_never_reaches_other_processes(self, kernel,
                                                        manager, web,
                                                        database):
        def crasher(t, key):
            yield t.compute(1)
            raise MemoryError("heap corruption in the database")

        address, _ = wire_up_call(manager, web, database, func=crasher)
        outcomes = []

        def body(t):
            try:
                yield from t.kernel.dipc.call(t, address, "k")
            except RemoteFault as fault:
                outcomes.append(("fault", fault.origin))
            yield t.compute(10)
            outcomes.append(("alive", t.current_process.name))

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()
        assert outcomes == [("fault", "database"), ("alive", "web")]
        assert web.alive and database.alive

    def test_sloppy_caller_stub_hurts_only_the_caller(self, kernel,
                                                      manager, web,
                                                      database):
        """A caller that skips register/stack isolation only loses its
        own guarantees: the callee still executes correctly and its own
        policy (enforced in the proxy) still holds."""
        observed = []

        def strict_callee(t, key):
            observed.append(
                t.kernel.dipc.stacks.stack_for(t, database))
            yield t.compute(1)
            return key

        # caller requests *nothing* (a 'broken' stub); callee demands
        # stack confidentiality — the proxy enforces it regardless
        address, proxy = wire_up_call(
            manager, web, database,
            caller_policy=IsolationPolicy(),
            callee_policy=IsolationPolicy(stack_confidentiality=True),
            func=strict_callee)
        assert proxy.policy.stack_confidentiality

        def body(t):
            caller_stack = t.kernel.dipc.stacks.stack_for(t, web)
            result = yield from t.kernel.dipc.call(t, address, "k")
            assert result == "k"
            assert observed[0] is not caller_stack

        kernel.spawn(web, body)
        kernel.run()
        kernel.check()
