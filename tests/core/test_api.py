"""Tests for Table 2's operations: the dIPC OS interface."""

import pytest

from repro import units
from repro.codoms.apl import Permission
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.errors import DipcError, PermissionDenied, SignatureMismatch

from tests.core.conftest import make_query_entry


class TestDomainOps:
    def test_dom_default_is_owner_of_default_tag(self, manager, web):
        handle = manager.dom_default(web)
        assert handle.is_owner
        assert handle.tag == web.default_tag

    def test_dom_create_returns_fresh_isolated_domain(self, manager, web):
        a = manager.dom_create(web)
        b = manager.dom_create(web)
        assert a.tag != b.tag
        # P1: new domains are in no APL
        assert manager.apls.permission(web.default_tag, a.tag) is \
            Permission.NIL

    def test_dom_ops_require_dipc_enabled(self, kernel, manager):
        legacy = kernel.spawn_process("legacy", dipc=False)
        with pytest.raises(DipcError):
            manager.dom_default(legacy)

    def test_dom_copy_downgrades(self, manager, web):
        owner = manager.dom_create(web)
        read = manager.dom_copy(owner, Permission.READ)
        assert read.tag == owner.tag
        assert read.perm is Permission.READ

    def test_dom_copy_cannot_upgrade(self, manager, web):
        owner = manager.dom_create(web)
        read = manager.dom_copy(owner, Permission.READ)
        with pytest.raises(PermissionDenied):
            manager.dom_copy(read, Permission.WRITE)

    def test_dom_mmap_tags_pages(self, kernel, manager, web):
        dom = manager.dom_create(web)
        addr = manager.dom_mmap(web, dom, 2 * units.PAGE_SIZE)
        pte = kernel.shared_table.lookup(addr // units.PAGE_SIZE)
        assert pte.tag == dom.tag

    def test_dom_mmap_requires_owner(self, manager, web):
        dom = manager.dom_create(web)
        read = manager.dom_copy(dom, Permission.READ)
        with pytest.raises(PermissionDenied):
            manager.dom_mmap(web, read, units.PAGE_SIZE)

    def test_dom_remap_moves_pages(self, kernel, manager, web):
        src = manager.dom_create(web)
        dst = manager.dom_create(web)
        addr = manager.dom_mmap(web, src, units.PAGE_SIZE)
        manager.dom_remap(web, dst, src, addr, units.PAGE_SIZE)
        pte = kernel.shared_table.lookup(addr // units.PAGE_SIZE)
        assert pte.tag == dst.tag

    def test_dom_remap_requires_both_owner(self, manager, web):
        src = manager.dom_create(web)
        dst = manager.dom_copy(manager.dom_create(web), Permission.WRITE)
        addr = manager.dom_mmap(web, src, units.PAGE_SIZE)
        with pytest.raises(PermissionDenied):
            manager.dom_remap(web, dst, src, addr, units.PAGE_SIZE)


class TestGrants:
    def test_grant_installs_apl_edge(self, manager, web, database):
        src = manager.dom_default(web)
        dst = manager.dom_copy(manager.dom_default(database),
                               Permission.READ)
        grant = manager.grant_create(src, dst)
        assert manager.apls.permission(web.default_tag,
                                       database.default_tag) is \
            Permission.READ
        assert grant.perm is Permission.READ

    def test_owner_handle_grants_write(self, manager, web, database):
        """§5.2.2: an OWNER dst handle translates to WRITE in CODOMs."""
        grant = manager.grant_create(manager.dom_default(web),
                                     manager.dom_default(database))
        assert grant.perm is Permission.WRITE

    def test_grant_requires_owner_src(self, manager, web, database):
        src = manager.dom_copy(manager.dom_default(web), Permission.WRITE)
        with pytest.raises(PermissionDenied):
            manager.grant_create(src, manager.dom_default(database))

    def test_grant_revoke(self, manager, web, database):
        grant = manager.grant_create(
            manager.dom_default(web),
            manager.dom_copy(manager.dom_default(database),
                             Permission.READ))
        manager.grant_revoke(grant)
        assert manager.apls.permission(web.default_tag,
                                       database.default_tag) is \
            Permission.NIL
        manager.grant_revoke(grant)  # idempotent


class TestEntryOps:
    def test_register_assigns_aligned_addresses(self, manager, database):
        handle = make_query_entry(manager, database)
        address = handle.entries[0].address
        assert address is not None
        assert address % 64 == 0

    def test_register_requires_owner(self, manager, database):
        dom = manager.dom_copy(manager.dom_default(database),
                               Permission.WRITE)
        with pytest.raises(PermissionDenied):
            manager.entry_register(database, dom, [EntryDescriptor(
                signature=Signature(), func=lambda t: iter(()))])

    def test_register_requires_implementation(self, manager, database):
        dom = manager.dom_default(database)
        with pytest.raises(DipcError):
            manager.entry_register(database, dom, [EntryDescriptor(
                signature=Signature())])

    def test_register_rejects_empty(self, manager, database):
        with pytest.raises(DipcError):
            manager.entry_register(database, manager.dom_default(database),
                                   [])

    def test_request_checks_signatures_p4(self, manager, web, database):
        handle = make_query_entry(manager, database)
        bad = [EntryDescriptor(signature=Signature(in_regs=2, out_regs=1),
                               name="query")]
        with pytest.raises(SignatureMismatch):
            manager.entry_request(web, handle, bad)

    def test_request_checks_count_p4(self, manager, web, database):
        handle = make_query_entry(manager, database)
        with pytest.raises(SignatureMismatch):
            manager.entry_request(web, handle, [])

    def test_request_returns_call_handle_and_sets_addresses(
            self, manager, web, database):
        handle = make_query_entry(manager, database)
        request = [EntryDescriptor(signature=Signature(in_regs=1,
                                                       out_regs=1),
                                   name="query")]
        proxy_handle, proxies = manager.entry_request(web, handle, request)
        assert proxy_handle.perm is Permission.CALL
        assert request[0].address is not None
        assert request[0].address % 64 == 0
        assert len(proxies) == 1
        assert proxies[0].cross_process

    def test_request_merges_policies_by_union(self, manager, web, database):
        handle = make_query_entry(
            manager, database,
            policy=IsolationPolicy(dcs_confidentiality=True))
        request = [EntryDescriptor(
            signature=Signature(in_regs=1, out_regs=1),
            policy=IsolationPolicy(reg_integrity=True), name="query")]
        _, proxies = manager.entry_request(web, handle, request)
        assert proxies[0].stub_policy.reg_integrity
        assert proxies[0].stub_policy.dcs_confidentiality

    def test_proxy_pages_are_privileged(self, kernel, manager, web,
                                        database):
        handle = make_query_entry(manager, database)
        request = [EntryDescriptor(signature=Signature(in_regs=1,
                                                       out_regs=1))]
        _, proxies = manager.entry_request(web, handle, request)
        vpn = proxies[0].entry_address // units.PAGE_SIZE
        pte = kernel.shared_table.lookup(vpn)
        assert pte.privileged
        assert pte.execute


class TestHandleDelegationViaFds:
    def test_handles_travel_as_file_descriptors(self, manager, web,
                                                database):
        """§5.2.2: processes pass each other domain handles as fds."""
        read_handle = manager.dom_copy(manager.dom_default(database),
                                       Permission.READ)
        fd = database.fdtable.install(read_handle)
        # ... handed over a socket; the web process then retrieves it
        received = database.fdtable.get(fd)
        grant = manager.grant_create(manager.dom_default(web), received)
        assert grant.perm is Permission.READ
