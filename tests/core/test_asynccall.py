"""Tests for asynchronous dIPC calls (§5.4)."""

import pytest

from repro.core.asynccall import Future, call_async
from repro.errors import DipcError, RemoteFault

from tests.core.conftest import wire_up_call


def test_async_call_overlaps_with_caller_work(kernel, manager, web,
                                              database):
    def slow_query(t, key):
        yield from t.sleep(10_000)
        return ("row", key)

    _, proxy = wire_up_call(manager, web, database, func=slow_query)
    timeline = []

    def body(t):
        future = call_async(t, proxy, "k", pin=1)
        yield t.compute(2_000)  # caller keeps working meanwhile
        timeline.append(("worked", t.now()))
        result = yield from future.wait(t)
        timeline.append(("joined", t.now()))
        return result

    thread = kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert thread.result == ("row", "k")
    assert timeline[0][1] < 10_000      # caller progressed before callee
    assert timeline[1][1] >= 10_000     # join waited for the callee


def test_async_fault_delivered_at_wait(kernel, manager, web, database):
    def buggy(t, key):
        yield t.compute(1)
        raise ValueError("nope")

    _, proxy = wire_up_call(manager, web, database, func=buggy)
    caught = []

    def body(t):
        future = call_async(t, proxy, "k")
        try:
            yield from future.wait(t)
        except RemoteFault as fault:
            caught.append(fault)

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert len(caught) == 1


def test_poll_without_blocking(kernel, manager, web, database):
    address, proxy = wire_up_call(manager, web, database)
    polls = []

    def body(t):
        future = call_async(t, proxy, "k")
        polls.append(future.poll())
        yield from t.sleep(50_000)
        polls.append(future.poll())

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert polls == [False, True]


def test_multiple_waiters(kernel, manager, web, database):
    def slow(t, key):
        yield from t.sleep(5_000)
        return key

    _, proxy = wire_up_call(manager, web, database, func=slow)
    results = []

    def make_waiter(future):
        def waiter(t):
            results.append((yield from future.wait(t)))
        return waiter

    def body(t):
        future = call_async(t, proxy, "shared")
        t.kernel.spawn(web, make_waiter(future))
        t.kernel.spawn(web, make_waiter(future))
        results.append((yield from future.wait(t)))

    kernel.spawn(web, body)
    kernel.run()
    kernel.check()
    assert results == ["shared"] * 3


def test_wait_after_completion_returns_immediately(kernel, manager, web,
                                                   database):
    _, proxy = wire_up_call(manager, web, database)

    def body(t):
        future = call_async(t, proxy, "k")
        yield from t.sleep(100_000)
        start = t.now()
        yield from future.wait(t)
        assert t.now() == start  # no blocking, already done

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()


def test_double_completion_rejected(kernel):
    future = Future(kernel)
    future._complete(value=1)
    with pytest.raises(DipcError):
        future._complete(value=2)
