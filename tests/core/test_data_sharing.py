"""Data-sharing patterns of §5.2.2: capabilities for transient zero-copy
argument passing, domain grants for long-lived shared pools, and direct
code access that bypasses proxies."""

import pytest

from repro.codoms.apl import Permission
from repro.core.objects import EntryDescriptor, Signature
from repro.errors import AccessFault

from tests.core.conftest import wire_up_call


def test_capability_passes_buffer_by_reference(kernel, manager, web,
                                               database):
    """The headline zero-copy pattern: the caller mints a capability over
    its buffer; the callee reads the caller's memory directly — no
    marshalling, no copies, revoked on return."""
    buf = web.alloc_bytes(4096)
    web.space.write(buf, b"SELECT * FROM dvds")
    seen = []

    def query(t, request):
        cap, addr, size = request
        t.codoms.install_cap(0, cap)   # callee loads the capability
        seen.append(kernel.access.read(t.codoms, addr, size, t))
        t.codoms.install_cap(0, None)
        yield t.compute(1)
        return "ok"

    address, _ = wire_up_call(manager, web, database, func=query)

    def body(t):
        cap = kernel.access.mint(t.codoms, buf, 4096, Permission.READ,
                                 synchronous=True, thread=t)
        yield from t.kernel.dipc.call(t, address, (cap, buf, 18))
        cap.revoke()  # transient: dead the moment the caller says so
        assert not cap.is_valid()

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert seen == [b"SELECT * FROM dvds"]


def test_callee_cannot_use_capability_after_revocation(kernel, manager,
                                                       web, database):
    stash = {}

    def thief(t, request):
        stash["cap"], stash["addr"] = request
        yield t.compute(1)
        return "ok"

    address, _ = wire_up_call(manager, web, database, func=thief)
    denied = []

    def snoop(t, _):
        t.codoms.install_cap(0, stash["cap"])
        try:
            kernel.access.read(t.codoms, stash["addr"], 4, t)
        except AccessFault:
            denied.append(True)
        yield t.compute(1)
        return "done"

    address2, _ = wire_up_call(manager, web, database, func=snoop)

    def body(t):
        buf = web.alloc_bytes(4096)
        cap = kernel.access.mint(t.codoms, buf, 64, Permission.READ,
                                 synchronous=False)
        yield from t.kernel.dipc.call(t, address, (cap, buf))
        cap.revoke()
        # the callee stashed the capability; after revocation it is dead
        yield from t.kernel.dipc.call(t, address2, None)

    kernel.spawn(web, body, pin=0)
    kernel.run()
    kernel.check()
    assert denied == [True]


def test_long_lived_pool_via_domain_grant(kernel, manager, web, database):
    """§5.2.2's pattern: allocate a dynamic data structure into its own
    domain and grant the peer direct access — no per-call capabilities."""
    pool_dom = manager.dom_create(database)
    pool = manager.dom_mmap(database, pool_dom, 8192)
    database.space.write(pool, b"shared-index")
    # the database hands the web process a read handle (over an fd)
    fd = database.fdtable.install(manager.dom_copy(pool_dom,
                                                   Permission.READ))
    handle = database.fdtable.get(fd)
    manager.grant_create(manager.dom_default(web), handle)
    got = []

    def body(t):
        got.append(kernel.access.read(t.codoms, pool, 12, t))
        # read-only: writes are still refused
        with pytest.raises(AccessFault):
            kernel.access.write(t.codoms, pool, b"xx", t)
        yield t.compute(1)

    kernel.spawn(web, body)
    kernel.run()
    kernel.check()
    assert got == [b"shared-index"]


def test_direct_code_access_bypasses_proxies(kernel, manager, web,
                                             database):
    """§5.2.2: granting direct access to code means calls skip the proxy
    — the callee code then executes *as the caller's process* (caller's
    uid, caller's fd table). Intentional, hence safe under P1."""
    web.uid = 1001
    database.uid = 2002
    # the database intentionally exposes its helper-code domain
    helper_dom = manager.dom_create(database)
    code_addr = manager.dom_mmap(database, helper_dom, 4096, execute=True)
    manager.grant_create(manager.dom_default(web),
                         manager.dom_copy(helper_dom, Permission.READ))
    observed = []

    def body(t):
        # jump straight into the database's code: no proxy, no
        # track_process_call — current stays the web process
        kernel.access.check_call(t.codoms, code_addr + 24, t)
        observed.append((t.current_process.name, t.current_process.uid,
                         t.codoms.current_tag))
        yield t.compute(1)

    kernel.spawn(web, body)
    kernel.run()
    kernel.check()
    name, uid, tag = observed[0]
    assert name == "web"          # still accounted to the caller
    assert uid == 1001            # caller's POSIX identity
    assert tag == helper_dom.tag  # but executing the callee's code
