"""Tests for the units helpers and the error hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors, units


class TestUnits:
    def test_time_constants(self):
        assert units.US == 1_000
        assert units.MS == 1_000_000
        assert units.SECOND == 1_000_000_000
        assert units.MINUTE == 60 * units.SECOND

    def test_conversions(self):
        assert units.ns_to_ms(2_500_000) == 2.5
        assert units.ns_to_us(1_500) == 1.5

    def test_pages_for(self):
        assert units.pages_for(0) == 0
        assert units.pages_for(1) == 1
        assert units.pages_for(4096) == 1
        assert units.pages_for(4097) == 2

    def test_pages_for_negative(self):
        with pytest.raises(ValueError):
            units.pages_for(-1)

    def test_align_helpers(self):
        assert units.align_up(5, 8) == 8
        assert units.align_up(8, 8) == 8
        assert units.align_down(15, 8) == 8
        assert units.is_aligned(64, 64)
        assert not units.is_aligned(65, 64)

    def test_align_rejects_non_power_of_two(self):
        for fn in (units.align_up, units.align_down, units.is_aligned):
            with pytest.raises(ValueError):
                fn(10, 3)

    def test_human_size(self):
        assert units.human_size(4) == "4B"
        assert units.human_size(2048) == "2KB"
        assert units.human_size(units.MB) == "1MB"

    def test_human_time(self):
        assert units.human_time(5) == "5.00ns"
        assert units.human_time(1500) == "1.50us"
        assert units.human_time(2.5 * units.MS) == "2.50ms"
        assert units.human_time(1.5 * units.SECOND) == "1.50s"

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from([1, 2, 8, 64, 4096]))
    def test_property_align_up_is_aligned_and_minimal(self, value, align):
        up = units.align_up(value, align)
        assert up >= value
        assert units.is_aligned(up, align)
        assert up - value < align


class TestErrorHierarchy:
    def test_protection_faults_are_repro_errors(self):
        for cls in (errors.AccessFault, errors.PrivilegeFault,
                    errors.CapabilityFault, errors.EntryAlignmentFault,
                    errors.PageFault):
            assert issubclass(cls, errors.ProtectionFault)
            assert issubclass(cls, errors.ReproError)

    def test_dipc_errors(self):
        for cls in (errors.PermissionDenied, errors.SignatureMismatch,
                    errors.RemoteFault, errors.CallTimeout,
                    errors.LoaderError):
            assert issubclass(cls, errors.DipcError)

    def test_kernel_errors(self):
        for cls in (errors.InvalidSyscall, errors.ResourceError,
                    errors.DeadProcessError, errors.WouldBlock):
            assert issubclass(cls, errors.KernelError)

    def test_access_fault_payload(self):
        fault = errors.AccessFault("no", address=0x123, domain=7,
                                   kind="write")
        assert fault.address == 0x123
        assert fault.domain == 7
        assert fault.kind == "write"

    def test_remote_fault_payload(self):
        fault = errors.RemoteFault("x", origin="db", unwound_frames=2)
        assert fault.origin == "db"
        assert fault.unwound_frames == 2

    def test_page_fault_payload(self):
        fault = errors.PageFault("x", address=4096, write=True)
        assert fault.address == 4096
        assert fault.write
