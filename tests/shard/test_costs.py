"""Lookahead derivation from the hw cost model."""

import pytest

from repro.hw.cache import CacheModel
from repro.hw.costs import CostModel
from repro.shard.costs import (edge_legs, lookahead_ns, reply_leg_ns,
                               request_leg_ns)
from repro.shard.partition import CLIENT, partition_spec

from tests.shard.workloads import topo_spec

COSTS = CostModel.default()
CACHE = CacheModel()


def test_primitive_leg_ordering_matches_fig5():
    # the per-hop gap the paper measures: dIPC ~ns, L4 fast-path,
    # then the kernel-mediated primitives
    legs = {primitive: request_leg_ns(COSTS, CACHE, primitive, 128)
            for primitive in ("pipe", "socket", "rpc", "l4", "dipc")}
    assert legs["dipc"] < legs["l4"] < legs["pipe"]
    assert legs["pipe"] < legs["socket"] < legs["rpc"]
    assert all(leg > 0.0 for leg in legs.values())


def test_reply_leg_positive_and_small_for_dipc():
    assert 0.0 < reply_leg_ns(COSTS, CACHE, "dipc") < \
        reply_leg_ns(COSTS, CACHE, "socket")


def test_unknown_primitive_rejected():
    with pytest.raises(ValueError):
        request_leg_ns(COSTS, CACHE, "carrier-pigeon", 128)


def test_edge_legs_cover_every_edge_and_client():
    spec = topo_spec("chain")
    legs, reply = edge_legs(spec, primitive="socket",
                            client_req_size=128)
    assert (CLIENT, 0) in legs
    for edge in spec.edges:
        assert (edge.src, edge.dst) in legs
    assert reply > 0.0


@pytest.mark.parametrize("primitive", ["socket", "dipc"])
def test_lookahead_is_min_over_cut(primitive):
    spec = topo_spec("mesh")
    partition = partition_spec(spec, 3, seed=0)
    lookahead = lookahead_ns(spec, partition, primitive=primitive,
                             client_req_size=128)
    legs, reply = edge_legs(spec, primitive=primitive,
                            client_req_size=128)
    expected = min(min(legs[edge], reply)
                   for edge in partition.cut_edges(spec))
    assert lookahead == expected


def test_lookahead_none_without_cut_edges():
    spec = topo_spec("chain")
    partition = partition_spec(spec, 1, seed=0)
    assert lookahead_ns(spec, partition, primitive="socket",
                        client_req_size=128) is None


def test_new_primitive_legs_slot_into_the_fig5_ordering():
    legs = {primitive: request_leg_ns(COSTS, CACHE, primitive, 128)
            for primitive in ("l4", "dipc", "dpti", "odipc")}
    # dpti avoids the thread switch but still traps: between dIPC
    # and the L4 fast path
    assert legs["dipc"] < legs["dpti"] < legs["l4"]
    # below the offload threshold odIPC copies inline, exactly as dIPC
    assert legs["odipc"] == pytest.approx(legs["dipc"])


def test_odipc_leg_adds_the_dma_transfer_above_the_threshold():
    # lookahead must not promise arrival before the DMA engine is done:
    # above the threshold the leg grows by the visible offload cost
    size = COSTS.OFFLOAD_THRESHOLD
    assert request_leg_ns(COSTS, CACHE, "odipc", size) == pytest.approx(
        request_leg_ns(COSTS, CACHE, "dipc", size)
        + COSTS.offload_copy_ns(size))
