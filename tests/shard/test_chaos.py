"""Sharded runs under seeded service-outage storms."""

import json

from repro.fault.session import ChaosSession
from repro.shard.model import storm_plan
from repro.shard.runner import run_shard_point

from tests.shard.workloads import point_kwargs


def _canon(result: dict) -> str:
    return json.dumps(result, sort_keys=True)


def _stormy(kwargs, shards, seed=11):
    with ChaosSession(seed=seed) as session:
        result = run_shard_point(dict(kwargs), shards=shards)
        violations = session.audit_kernels()
        summary = session.summary()
    return result, violations, summary


def test_storm_identical_across_shard_counts():
    kwargs = point_kwargs("chain")
    r1, v1, _ = _stormy(kwargs, 1)
    r2, v2, _ = _stormy(kwargs, 2)
    r4, v4, _ = _stormy(kwargs, 4)
    assert v1 == v2 == v4 == []
    assert _canon(r1) == _canon(r2) == _canon(r4)


def test_storm_actually_injects_and_audits_clean():
    result, violations, summary = _stormy(point_kwargs("chain"), 2)
    assert violations == []
    assert result["worker_crashes"] > 0
    assert result["worker_restarts"] > 0
    assert "sharded run(s) stormed" in summary


def test_storm_seed_changes_outages():
    kwargs = point_kwargs("chain")
    base, _, _ = _stormy(kwargs, 2, seed=11)
    other, _, _ = _stormy(kwargs, 2, seed=12)
    assert _canon(base) != _canon(other)


def test_session_registers_shard_runs():
    with ChaosSession(seed=11) as session:
        run_shard_point(point_kwargs("chain"), shards=2)
        run_shard_point(point_kwargs("fanout"), shards=2)
        assert len(session.shard_runs) == 2
        summaries = [summary for summary, _v in session.shard_runs]
        assert all(s["shards"] == 2 for s in summaries)
        # the second run draws a distinct derived storm seed
        assert summaries[0]["chaos_seed"] != summaries[1]["chaos_seed"]


def test_storm_plan_deterministic_and_bounded():
    from repro.shard.model import ShardParams
    from repro.topo.spec import TopoSpec
    kwargs = point_kwargs("chain")
    spec = TopoSpec.from_dict(kwargs["topo"]).validate()
    params = ShardParams.from_kwargs(kwargs)
    first = storm_plan(spec, params, 123)
    second = storm_plan(spec, params, 123)
    assert first == second
    for node, t_down, t_up, _idx in first:
        assert 0 <= node < spec.n
        assert 0.0 < t_down < t_up
