"""Shared workload builders for the repro.shard test suite."""

from repro import units
from repro.topo import generate

#: (pattern label, generate args) for the determinism matrix
TOPOLOGIES = {
    "chain": ("chain_branch", 8, {}),
    "fanout": ("par_fanout", 8, {}),
    "mesh": ("mesh", 12, {"width": 3, "seed": 3}),
}


def topo_spec(label):
    pattern, n, kwargs = TOPOLOGIES[label]
    return generate(pattern, n, **kwargs)


def point_kwargs(label="chain", primitive="socket", *,
                 offered_kops=400.0, window_ms=0.5, seed=42):
    """One small-but-busy topology point (finishes in well under a
    second per shard count on one core)."""
    return {
        "primitive": primitive, "mode": "open", "policy": "shed",
        "arrivals": "poisson", "offered_kops": offered_kops,
        "n_clients": 4, "n_conns": 8, "n_workers": 2,
        "queue_depth": 16, "req_size": 128,
        "deadline_ns": 2.0 * units.MS, "num_cpus": 8,
        "warmup_ns": 0.2 * units.MS,
        "window_ns": window_ms * units.MS,
        "seed": seed, "topo": topo_spec(label).to_dict()}
