"""Partitioner: determinism, balance, canonical hashing."""

from repro.shard.partition import (CLIENT, edge_weights, node_weights,
                                   partition_spec, visit_rates)
from repro.topo.spec import ROOT

from tests.shard.workloads import topo_spec


def test_visit_rates_root_is_one():
    spec = topo_spec("chain")
    rates = visit_rates(spec)
    assert rates[ROOT] == 1.0
    assert all(rate > 0.0 for rate in rates.values())


def test_partition_deterministic_and_dense():
    spec = topo_spec("mesh")
    first = partition_spec(spec, 4, seed=3)
    second = partition_spec(spec, 4, seed=3)
    assert first == second
    assert first.partition_hash() == second.partition_hash()
    # dense, first-seen shard ids along the topological order
    seen = []
    for node_id in spec.topological_order():
        shard = first.assign[node_id]
        if shard not in seen:
            seen.append(shard)
    assert seen == list(range(first.n_shards))


def test_partition_hash_depends_on_seed_and_count():
    spec = topo_spec("mesh")
    base = partition_spec(spec, 2, seed=0).partition_hash()
    assert partition_spec(spec, 3, seed=0).partition_hash() != base
    assert partition_spec(spec, 2, seed=9).partition_hash() != base


def test_shard_count_clamped_to_node_count():
    spec = topo_spec("chain")
    partition = partition_spec(spec, 64, seed=0)
    assert partition.n_shards <= spec.n
    assert all(len(partition.nodes_of(s)) >= 1
               for s in range(partition.n_shards))


def test_client_colocated_with_root():
    spec = topo_spec("mesh")
    partition = partition_spec(spec, 4, seed=0)
    assert partition.shard_of(CLIENT) == partition.shard_of(ROOT)


def test_balance_within_tolerance():
    spec = topo_spec("mesh")
    partition = partition_spec(spec, 2, seed=0)
    weights = node_weights(spec)
    loads = [sum(weights[n] for n in partition.nodes_of(s))
             for s in range(partition.n_shards)]
    target = sum(weights.values()) / partition.n_shards
    assert max(loads) <= target * 1.6  # coarse sanity, not the knob


def test_cut_weight_consistent_with_cut_edges():
    spec = topo_spec("mesh")
    partition = partition_spec(spec, 3, seed=1)
    weights = edge_weights(spec)
    assert partition.cut_weight(spec) == sum(
        weights[edge] for edge in partition.cut_edges(spec))
    single = partition_spec(spec, 1, seed=1)
    assert single.cut_edges(spec) == []
