"""Per-shard checkpoints: crash mid-sweep, resume mid-window."""

import json
import os

import pytest

from repro.shard import runner as shard_runner
from repro.shard.runner import run_shard_point

from tests.shard.workloads import point_kwargs


def _canon(result: dict) -> str:
    return json.dumps(result, sort_keys=True)


def test_checkpoint_written_and_cleaned(tmp_path):
    kwargs = point_kwargs("chain")
    result = run_shard_point(dict(kwargs), shards=2,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=50)
    # a clean finish removes its checkpoint
    assert list(tmp_path.glob("shard-*.json")) == []
    assert result["completed"] > 0


def test_resume_after_crash_matches_uninterrupted(tmp_path,
                                                  monkeypatch):
    kwargs = point_kwargs("chain")
    uninterrupted = run_shard_point(dict(kwargs), shards=2)

    real_write = shard_runner._write_checkpoint
    writes = {"n": 0}

    def crashing_write(path, key, windows, states):
        real_write(path, key, windows, states)
        writes["n"] += 1
        if writes["n"] == 3:
            raise KeyboardInterrupt("simulated operator kill")

    monkeypatch.setattr(shard_runner, "_write_checkpoint",
                        crashing_write)
    with pytest.raises(KeyboardInterrupt):
        run_shard_point(dict(kwargs), shards=2,
                        checkpoint_dir=str(tmp_path),
                        checkpoint_every=50)
    monkeypatch.setattr(shard_runner, "_write_checkpoint", real_write)

    leftovers = list(tmp_path.glob("shard-*.json"))
    assert len(leftovers) == 1  # the crash left a checkpoint behind

    resumed = run_shard_point(dict(kwargs), shards=2,
                              checkpoint_dir=str(tmp_path),
                              resume=True, checkpoint_every=50)
    assert _canon(resumed) == _canon(uninterrupted)
    assert list(tmp_path.glob("shard-*.json")) == []


def test_resume_ignores_foreign_checkpoint(tmp_path):
    kwargs = point_kwargs("chain")
    expected = run_shard_point(dict(kwargs), shards=2)
    # a checkpoint whose embedded key does not match is ignored, not
    # restored: the point recomputes from scratch
    from repro.shard.model import ShardParams
    from repro.shard.partition import partition_spec
    from repro.topo.spec import TopoSpec
    spec = TopoSpec.from_dict(kwargs["topo"]).validate()
    partition = partition_spec(
        spec, 2, seed=ShardParams.from_kwargs(kwargs).seed)
    key = shard_runner.checkpoint_key(kwargs, 2, partition)
    path = tmp_path / f"shard-{key}.json"
    path.write_text(json.dumps(
        {"key": "0000000000000000", "windows": 10, "states": []}))
    resumed = run_shard_point(dict(kwargs), shards=2,
                              checkpoint_dir=str(tmp_path),
                              resume=True)
    assert _canon(resumed) == _canon(expected)


def test_checkpoint_key_sensitive_to_point_and_partition():
    from repro.shard.model import ShardParams
    from repro.shard.partition import partition_spec
    from repro.topo.spec import TopoSpec
    kwargs = point_kwargs("chain")
    spec = TopoSpec.from_dict(kwargs["topo"]).validate()
    seed = ShardParams.from_kwargs(kwargs).seed
    partition = partition_spec(spec, 2, seed=seed)
    base = shard_runner.checkpoint_key(kwargs, 2, partition)
    other_kwargs = point_kwargs("chain", seed=7)
    assert shard_runner.checkpoint_key(other_kwargs, 2,
                                       partition) != base
    assert shard_runner.checkpoint_key(kwargs, 3, partition) != base
