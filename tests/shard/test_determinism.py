"""The central PDES-lite contract: byte-identical for any shard count
and either transport."""

import json

import pytest

from repro.shard.runner import run_shard_point

from tests.shard.workloads import point_kwargs


def _canon(result: dict) -> str:
    return json.dumps(result, sort_keys=True)


@pytest.mark.parametrize("label", ["chain", "fanout", "mesh"])
def test_sharded_byte_identical_to_single_shard(label):
    kwargs = point_kwargs(label)
    serial = run_shard_point(dict(kwargs), shards=1)
    two = run_shard_point(dict(kwargs), shards=2)
    four = run_shard_point(dict(kwargs), shards=4)
    assert _canon(serial) == _canon(two) == _canon(four)


def test_dipc_primitive_identical_across_shards():
    kwargs = point_kwargs("chain", primitive="dipc")
    serial = run_shard_point(dict(kwargs), shards=1)
    sharded = run_shard_point(dict(kwargs), shards=2)
    assert _canon(serial) == _canon(sharded)


def test_transports_agree():
    kwargs = point_kwargs("mesh")
    info_in, info_mp = {}, {}
    inproc = run_shard_point(dict(kwargs), shards=2,
                             mode="inprocess", info_sink=info_in)
    viamp = run_shard_point(dict(kwargs), shards=2,
                            mode="processes", info_sink=info_mp)
    assert info_in["transport"] == "inprocess"
    assert info_mp["transport"] == "processes"
    assert _canon(inproc) == _canon(viamp)


def test_rerun_is_deterministic():
    kwargs = point_kwargs("fanout")
    first = run_shard_point(dict(kwargs), shards=3)
    second = run_shard_point(dict(kwargs), shards=3)
    assert _canon(first) == _canon(second)


def test_seed_changes_the_point():
    base = run_shard_point(point_kwargs("chain"), shards=2)
    other = run_shard_point(point_kwargs("chain", seed=7), shards=2)
    assert _canon(base) != _canon(other)


def test_result_shape_matches_load_point_schema():
    result = run_shard_point(point_kwargs("chain"), shards=2)
    # the exact key set LoadResult.to_point() produces, so the fig10
    # assemble/report code paths need no sharding awareness
    assert set(result) == {
        "primitive", "mode", "policy", "offered_kops", "n_clients",
        "offered_seen", "completed", "shed", "failed",
        "throughput_kops", "goodput_ratio", "mean_ns", "p50_ns",
        "p95_ns", "p99_ns", "p999_ns", "max_ns", "cpu_busy_fraction",
        "peak_backlog", "backlog_at_end", "worker_crashes",
        "worker_restarts", "pool_rebuilds", "breaker_fast_fails",
        "reclamation_violations"}
    assert result["completed"] > 0
    assert result["p50_ns"] > 0.0


def test_info_sink_reports_window_protocol():
    info = {}
    run_shard_point(point_kwargs("chain"), shards=2, info_sink=info)
    assert info["shards"] == 2
    assert info["windows"] > 1
    assert info["lookahead_ns"] > 0.0
    assert info["events"] > 0
    assert info["violations"] == []
    assert len(info["partition_hash"]) == 16
