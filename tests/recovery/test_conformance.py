"""The kill-point conformance harness (repro.recovery.conformance).

Covers the matrix/spec plumbing, the probe -> kill-event derivation,
the dynamic ``killpoint-*`` scenario family, and — the point of the
whole harness — that every phase x primitive cell on the chain pattern
comes back clean, with the ``rebuild`` phase genuinely double-killing
(first incarnation, then the rebuilt pool).
"""

import pytest

from repro import primitives
from repro.recovery import conformance


# -- matrix / spec plumbing -------------------------------------------------

def test_quick_matrix_covers_every_phase_and_primitive():
    cells = conformance.matrix(quick=True)
    assert len(cells) == len(conformance.PHASES) * len(primitives.names())
    assert len(set(cells)) == len(cells)
    assert {pattern for _, _, pattern in cells} == {"chain"}
    assert {phase for phase, _, _ in cells} == set(conformance.PHASES)
    assert {prim for _, prim, _ in cells} == set(primitives.names())


def test_full_matrix_adds_the_fanout_and_mesh_patterns():
    cells = conformance.matrix()
    assert len(cells) == (len(conformance.PHASES)
                          * len(primitives.names())
                          * len(conformance.PATTERNS))
    assert {pattern for _, _, pattern in cells} == set(conformance.PATTERNS)


def test_specs_are_cacheable_conformance_points():
    specs = conformance.specs_for(conformance.matrix(quick=True), seed=3)
    assert len(specs) == len(conformance.matrix(quick=True))
    for spec in specs:
        assert spec.driver == "conformance"
        assert spec.cacheable
        assert spec.kwargs["seed"] == 3


# -- probe marks -> kill events ---------------------------------------------

_MARKS = {"call:enter": 10, "serve:0:enter": 20, "serve:1:enter": 26,
          "serve:2:enter": 30, "serve:0:exit": 40, "call:exit": 50}


def test_kill_events_land_in_phase_order():
    events = {phase: conformance.kill_events_for(phase, _MARKS)
              for phase in ("precall", "inproxy", "midcallee", "midreply")}
    assert events["precall"] == [10]
    assert events["inproxy"] == [15]       # midway caller -> root serve
    assert events["midcallee"] == [30]     # the deepest serve() entered
    assert events["midreply"] == [45]      # midway root exit -> call exit
    assert (events["precall"] < events["inproxy"] < events["midcallee"]
            < events["midreply"])


def test_missing_marks_mean_no_kill_not_a_crash():
    assert conformance.kill_events_for("precall", {}) == []
    assert conformance.kill_events_for("inproxy", {"call:enter": 5}) == []
    assert conformance.kill_events_for(
        "midreply", {"serve:0:exit": 5}) == []


def test_rebuild_phase_needs_its_own_probe():
    with pytest.raises(ValueError):
        conformance.kill_events_for("rebuild", _MARKS)


# -- the killpoint-* scenario family ----------------------------------------

def test_killpoint_scenarios_resolve_by_name():
    from repro.check import scenarios
    target = conformance.cell_target("midcallee", "dipc", "chain")
    assert target == "killpoint-midcallee-dipc-chain"
    assert scenarios.is_scenario(target)
    scenario = scenarios.get(target)
    assert scenario.name == target
    assert scenario.default_n == conformance.pattern_default_n("chain")


def test_killpoint_rejects_unknown_coordinates():
    from repro.check import scenarios
    for bogus in ("killpoint-nophase-dipc-chain",
                  "killpoint-midcallee-noprim-chain",
                  "killpoint-midcallee-dipc-nopattern",
                  "killpoint-midcallee-dipc"):
        assert not scenarios.is_scenario(bogus)
        with pytest.raises(KeyError):
            scenarios.get(bogus)
    # the family is dynamic — it never pollutes the static listing
    assert not any(name.startswith("killpoint-")
                   for name in scenarios.names())


# -- cells ------------------------------------------------------------------

def test_midcallee_cell_is_clean_and_deterministic():
    first = conformance.run_cell(phase="midcallee", primitive="dipc",
                                 pattern="chain")
    again = conformance.run_cell(phase="midcallee", primitive="dipc",
                                 pattern="chain")
    assert first["findings"] == []
    assert first["kill_events"]
    assert first == again


@pytest.mark.parametrize("primitive", sorted(primitives.names()))
def test_rebuild_cell_drops_the_stale_reply_per_primitive(primitive):
    """Kill the root mid-callee, then kill the *rebuilt* root the moment
    the supervisor finishes the pool rebuild: any first-incarnation
    reply still in flight must be dropped by the generation stamp, for
    every registered primitive."""
    cell = conformance.run_cell(phase="rebuild", primitive=primitive,
                                pattern="chain")
    assert cell["findings"] == []
    assert len(cell["kill_events"]) == 2, \
        f"{primitive}: expected double kill, got {cell['kill_events']}"
    assert cell["notes"] == []


@pytest.mark.parametrize("phase", conformance.PHASES)
def test_every_phase_is_clean_on_the_chain(phase):
    cell = conformance.run_cell(phase=phase, primitive="dipc",
                                pattern="chain")
    assert cell["findings"] == []
    assert cell["kill_events"]


@pytest.mark.parametrize("pattern", conformance.PATTERNS)
def test_midcallee_is_clean_on_every_pattern(pattern):
    cell = conformance.run_cell(phase="midcallee", primitive="dipc",
                                pattern=pattern)
    assert cell["findings"] == []
    assert cell["kill_events"]


def test_goodput_floor_is_optional_for_storm_workloads():
    # the topostorm scenario runs this workload under arbitrary storms,
    # where zero goodput is legal; the floor only applies to cells
    findings = conformance.run_cell_workload("dipc", "chain",
                                             goodput_floor=None)
    assert findings == []
