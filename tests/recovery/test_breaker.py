"""CircuitBreaker state machine: closed -> open -> half-open."""

import pytest

from repro.recovery.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerOpen,
                                    CircuitBreaker)


def test_validation_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker("b", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("b", recovery_ns=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker("b", half_open_probes=0)


def test_breaker_open_is_a_survivable_kernel_error():
    from repro.errors import KernelError
    from repro.load.queueing import LOAD_SURVIVABLE
    assert issubclass(BreakerOpen, KernelError)
    assert isinstance(BreakerOpen("x"), LOAD_SURVIVABLE)


def test_consecutive_failures_trip_at_threshold():
    breaker = CircuitBreaker("b", failure_threshold=3)
    for t in (10.0, 20.0):
        breaker.record_failure(t)
        assert breaker.state == CLOSED
    breaker.record_failure(30.0)
    assert breaker.state == OPEN
    assert breaker.transitions == [(30.0, CLOSED, OPEN)]


def test_success_resets_the_consecutive_count():
    breaker = CircuitBreaker("b", failure_threshold=2)
    breaker.record_failure(1.0)
    breaker.record_success(2.0)  # failures are no longer consecutive
    breaker.record_failure(3.0)
    assert breaker.state == CLOSED
    assert breaker.consecutive_failures == 1


def test_open_fast_fails_until_recovery_elapses():
    breaker = CircuitBreaker("b", failure_threshold=1, recovery_ns=100.0)
    breaker.record_failure(50.0)
    assert breaker.state == OPEN
    assert not breaker.allow(60.0)
    assert not breaker.allow(149.0)
    assert breaker.fast_fails == 2
    # recovery window elapsed: the next request is the half-open probe
    assert breaker.allow(150.0)
    assert breaker.state == HALF_OPEN


def test_half_open_admits_a_bounded_probe_count():
    breaker = CircuitBreaker("b", failure_threshold=1, recovery_ns=100.0,
                             half_open_probes=2)
    breaker.record_failure(0.0)
    assert breaker.allow(100.0)   # probe 1 (the transition itself)
    assert breaker.allow(101.0)   # probe 2
    assert not breaker.allow(102.0)  # probes exhausted: fast-fail
    assert breaker.fast_fails == 1


def test_probe_success_closes_and_probe_failure_reopens():
    breaker = CircuitBreaker("b", failure_threshold=1, recovery_ns=100.0)
    breaker.record_failure(0.0)
    assert breaker.allow(100.0)
    breaker.record_success(110.0)
    assert breaker.state == CLOSED

    breaker.record_failure(200.0)     # trips again (threshold 1)
    assert breaker.allow(300.0)       # half-open probe
    breaker.record_failure(310.0)     # probe failed: back to open...
    assert breaker.state == OPEN
    assert breaker.opened_at_ns == 310.0  # ...with a restarted clock
    assert not breaker.allow(400.0)
    assert breaker.allow(410.0)


def test_transition_log_is_deterministic_text():
    seen = []
    breaker = CircuitBreaker(
        "pipe/0", failure_threshold=1, recovery_ns=100.0,
        on_transition=lambda b, t, old, new: seen.append((t, old, new)))
    breaker.record_failure(42.0)
    breaker.allow(142.0)
    breaker.record_success(150.0)
    assert breaker.log_lines() == [
        "[          42ns] breaker pipe/0: closed -> open",
        "[         142ns] breaker pipe/0: open -> half_open",
        "[         150ns] breaker pipe/0: half_open -> closed",
    ]
    assert seen == [(42.0, CLOSED, OPEN), (142.0, OPEN, HALF_OPEN),
                    (150.0, HALF_OPEN, CLOSED)]
