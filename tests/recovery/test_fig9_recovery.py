"""Fig. 9 under supervision: kill storms must not sink goodput.

The PR-5 acceptance gate: with the server pool supervised and circuit
breakers armed, a seeded kill storm that takes the whole server process
down mid-window recovers to >= 90% of the no-fault goodput, with zero
A9 reclamation violations on the corpse.
"""

import pytest

from repro import units
from repro.fault.session import ChaosSession
from repro.load import LoadParams, run_load_point
from repro.recovery import RecoverySession, RestartPolicy


def _params(**overrides):
    base = dict(primitive="pipe", mode="open", policy="shed",
                offered_kops=400.0, warmup_ns=0.5 * units.MS,
                window_ns=2.0 * units.MS, deadline_ns=50_000.0, seed=42)
    base.update(overrides)
    return LoadParams(**base)


class _KillStorm(ChaosSession):
    """Deterministic storm: SIGKILL the whole server process at 0.8ms."""

    def attach(self, kernel):
        from repro.fault import FaultInjector, FaultPlan, FaultRule
        plan = FaultPlan([FaultRule("kill_process", "load-server",
                                    at_ns=0.8 * units.MS)])
        injector = FaultInjector(kernel, plan, storm=len(self.injectors))
        injector.arm()
        self.injectors.append(injector)


class _WorkerCrash(ChaosSession):
    """Deterministic storm: crash server worker w0 at 0.7ms."""

    def attach(self, kernel):
        from repro.fault import FaultInjector, FaultPlan, FaultRule
        plan = FaultPlan([FaultRule("crash_thread", "load-server/w0",
                                    at_ns=0.7 * units.MS, param=0)])
        injector = FaultInjector(kernel, plan, storm=len(self.injectors))
        injector.arm()
        self.injectors.append(injector)


@pytest.mark.parametrize("primitive", ["pipe", "dipc"])
def test_supervised_pool_recovers_goodput_after_kill_storm(primitive):
    base = run_load_point(_params(primitive=primitive))
    with _KillStorm() as storm:
        result = run_load_point(_params(primitive=primitive,
                                        supervise=True, breaker=True,
                                        check=False))
    assert storm.total_injections >= 1
    assert result.pool_rebuilds >= 1
    assert result.reclamation_violations == 0
    # the acceptance bar: supervised goodput >= 90% of the no-fault run
    assert result.completed >= 0.9 * base.completed


def test_crashed_worker_is_restarted_not_rebuilt():
    base = run_load_point(_params())
    with _WorkerCrash() as storm:
        result = run_load_point(_params(supervise=True, check=False))
    assert storm.total_injections >= 1
    assert result.worker_restarts >= 1
    assert result.pool_rebuilds == 0
    assert result.completed >= 0.9 * base.completed


def test_supervision_is_invisible_without_faults():
    plain = run_load_point(_params())
    supervised = run_load_point(_params(supervise=True, breaker=True))
    assert supervised.completed == plain.completed
    assert supervised.worker_restarts == 0
    assert supervised.pool_rebuilds == 0
    assert supervised.breaker_fast_fails == 0
    assert supervised.reclamation_violations == 0


def test_breaker_fast_fails_while_the_pool_is_down():
    # hold the rebuild back half the remaining window so the breakers
    # have something to protect against: repeated deadline failures on
    # a dead server trip them, and fast-fails skip the transport
    slow = RestartPolicy(backoff_base_ns=500_000.0,
                         backoff_cap_ns=500_000.0)
    with _KillStorm(), RecoverySession(seed=7, policy=slow) as session:
        result = run_load_point(_params(check=False))
    assert result.breaker_fast_fails > 0
    assert session.total_fast_fails == result.breaker_fast_fails
    assert result.completed > 0  # served before the kill (and after)


def test_recovery_session_forces_supervision_and_is_deterministic():
    def run_once():
        with _KillStorm(), RecoverySession(seed=7) as session:
            result = run_load_point(_params(check=False))
        return result.to_point(), session.event_log(), session.summary()

    point_a, log_a, summary_a = run_once()
    point_b, log_b, summary_b = run_once()
    assert point_a == point_b
    assert log_a == log_b and log_a  # identical and non-empty
    assert summary_a == summary_b
    assert point_a["pool_rebuilds"] >= 1
    assert summary_a.startswith("recovery: 1 kernel(s) supervised")
