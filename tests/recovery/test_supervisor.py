"""Supervisor: restarts, rebuilds, budgets, watchdog, determinism."""

import pytest

from repro.kernel import Kernel
from repro.recovery.supervisor import (ONE_FOR_ALL, RestartPolicy,
                                       Supervisor)

#: no watchdog: these tests drive every event explicitly, and a
#: self-reposting heartbeat would keep the engine running forever
QUIET = dict(heartbeat_ns=0.0, jitter=0.0)


def _parked(t):
    yield t.block("parked")


def _short_lived(t):
    yield from t.sleep(1_000)


class _Slot:
    """A self-re-adopting worker slot, the way the transports wire it."""

    def __init__(self, kernel, supervisor, process, body=_parked,
                 name="w0"):
        self.kernel = kernel
        self.supervisor = supervisor
        self.process = process
        self.body = body
        self.name = name
        self.spawned = []

    def spawn(self):
        thread = self.kernel.spawn(self.process, self.body,
                                   name=f"srv/{self.name}")
        self.spawned.append(thread)
        self.supervisor.adopt(self.name, thread, self.spawn)
        return thread


def test_policy_validation():
    with pytest.raises(ValueError):
        RestartPolicy(strategy="all_for_one")
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=0)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_base_ns=0.0)
    with pytest.raises(ValueError):
        RestartPolicy(jitter=1.0)


def test_backoff_is_exponential_capped_and_jitter_bounded():
    import random
    policy = RestartPolicy(backoff_base_ns=1_000.0, backoff_factor=2.0,
                           backoff_cap_ns=4_000.0, jitter=0.0)
    rng = random.Random(1)
    assert [policy.backoff_ns(a, rng) for a in range(4)] == \
        [1_000.0, 2_000.0, 4_000.0, 4_000.0]
    jittered = RestartPolicy(backoff_base_ns=1_000.0, jitter=0.25)
    for attempt in range(5):
        delay = jittered.backoff_ns(attempt, rng)
        nominal = min(1_000.0 * 2.0 ** attempt, jittered.backoff_cap_ns)
        assert 0.75 * nominal <= delay <= 1.25 * nominal


def test_exited_worker_is_respawned_after_backoff():
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("srv")
    supervisor = Supervisor(kernel, policy=RestartPolicy(**QUIET), seed=3)
    slot = _Slot(kernel, supervisor, proc)
    # first generation exits after 1000ns; the replacement parks forever
    first = kernel.spawn(proc, _short_lived, name="srv/w0")
    slot.spawned.append(first)
    supervisor.adopt("w0", first, slot.spawn)
    kernel.run()
    assert supervisor.worker_restarts == 1
    assert len(slot.spawned) == 2 and not slot.spawned[1].is_done
    assert any("restart w0 attempt=1" in event
               for event in supervisor.events)
    assert any("w0 restarted" in event for event in supervisor.events)
    assert kernel.engine.pending() == 0  # quiet engine after recovery


def test_same_seed_runs_produce_identical_event_logs():
    def run_once():
        kernel = Kernel(num_cpus=2)
        proc = kernel.spawn_process("srv")
        supervisor = Supervisor(
            kernel, policy=RestartPolicy(heartbeat_ns=0.0), seed=9)
        slot = _Slot(kernel, supervisor, proc)
        first = kernel.spawn(proc, _short_lived, name="srv/w0")
        supervisor.adopt("w0", first, slot.spawn)
        kernel.run()
        return supervisor.events
    assert run_once() == run_once()


def test_restart_budget_exhaustion_gives_up_without_a_pool():
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("srv")
    policy = RestartPolicy(max_restarts=3, window_ns=1e9,
                           backoff_base_ns=1_000.0,
                           backoff_cap_ns=4_000.0, **QUIET)
    supervisor = Supervisor(kernel, policy=policy, seed=1)
    slot = _Slot(kernel, supervisor, proc, body=_short_lived)
    first = kernel.spawn(proc, _short_lived, name="srv/w0")
    supervisor.adopt("w0", first, slot.spawn)
    kernel.run()  # crash loop: every replacement also exits
    assert supervisor.gave_up
    assert supervisor.worker_restarts == 3  # budget spent, then stop
    assert supervisor.escalations >= 1
    assert any("budget exhausted" in event
               for event in supervisor.events)
    assert any("giving up" in event for event in supervisor.events)
    assert kernel.engine.pending() == 0


def test_killed_pool_process_triggers_audited_rebuild():
    kernel = Kernel(num_cpus=2)
    supervisor = Supervisor(kernel, policy=RestartPolicy(**QUIET), seed=2)
    procs = [kernel.spawn_process("srv")]
    kernel.spawn(procs[0], _parked, name="srv/w0")

    def rebuild():
        procs.append(kernel.spawn_process("srv"))
        kernel.spawn(procs[-1], _parked, name="srv/w0")

    supervisor.watch_pool(lambda: procs[-1], rebuild)
    kernel.engine.post(5_000.0, lambda: kernel.kill_process(procs[0]))
    kernel.run()
    assert supervisor.pool_rebuilds == 1
    assert len(procs) == 2 and procs[1].alive
    assert supervisor.audit_violations == []
    assert any("reclamation audit clean" in event
               for event in supervisor.events)
    assert any("pool rebuilt" in event for event in supervisor.events)


def test_one_for_all_worker_death_tears_down_the_live_pool():
    kernel = Kernel(num_cpus=2)
    policy = RestartPolicy(strategy=ONE_FOR_ALL, **QUIET)
    supervisor = Supervisor(kernel, policy=policy, seed=4)
    procs = [kernel.spawn_process("srv")]
    worker = kernel.spawn(procs[0], _parked, name="srv/w0")
    supervisor.adopt("w0", worker, lambda: None)

    def rebuild():
        procs.append(kernel.spawn_process("srv"))
        thread = kernel.spawn(procs[-1], _parked, name="srv/w0")
        supervisor.adopt("w0", thread, lambda: None)

    supervisor.watch_pool(lambda: procs[-1], rebuild)
    kernel.engine.post(2_000.0,
                       lambda: kernel.scheduler.cancel(worker))
    kernel.run()
    # the sibling-sharing pool was killed before the rebuild
    assert not procs[0].alive
    assert procs[1].alive
    assert supervisor.pool_rebuilds == 1
    assert supervisor.worker_restarts == 0
    assert any("one-for-all pool restart" in event
               for event in supervisor.events)


def test_watchdog_notices_a_child_adopted_dead():
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("srv")
    dead = kernel.spawn(proc, _short_lived, name="srv/w0")
    kernel.run()
    assert dead.is_done
    # no exit hook will ever fire for this corpse: only the heartbeat
    # can notice the silence
    policy = RestartPolicy(heartbeat_ns=10_000.0, jitter=0.0)
    supervisor = Supervisor(kernel, policy=policy, seed=5)
    slot = _Slot(kernel, supervisor, proc)
    supervisor.adopt("w0", dead, slot.spawn)
    kernel.run(until_ns=kernel.engine.now() + 30_000.0)
    assert supervisor.worker_restarts == 1
    assert len(slot.spawned) == 1 and not slot.spawned[0].is_done
    assert any("watchdog: missed heartbeat from w0" in event
               for event in supervisor.events)
    supervisor.stop()
    kernel.run()
    assert kernel.engine.pending() == 0  # stop() cancelled the heartbeat


def test_stop_cancels_pending_restart_timers():
    kernel = Kernel(num_cpus=2)
    proc = kernel.spawn_process("srv")
    policy = RestartPolicy(backoff_base_ns=50_000.0,
                           backoff_cap_ns=50_000.0, **QUIET)
    supervisor = Supervisor(kernel, policy=policy, seed=6)
    slot = _Slot(kernel, supervisor, proc)
    first = kernel.spawn(proc, _short_lived, name="srv/w0")
    supervisor.adopt("w0", first, slot.spawn)
    # stand down before the 50us backoff elapses: no restart happens
    kernel.engine.post(2_000.0, supervisor.stop)
    kernel.run()
    assert supervisor.worker_restarts == 0
    assert slot.spawned == []
    assert kernel.engine.pending() == 0
