"""The fig10/fig12 seed-11 kill storm, pinned as a tier-1 regression.

Seed 11 is where the random chaos storms first caught the nested
crash-unwind bug: the storm kills the topology root mid-chain, the
supervisor rebuilds the pool while nested dIPC calls are in flight,
and pre-fix the thread popped someone else's KCS frame (the A8
underflow) while the pre-rebuild reclamation audit found stale frames
naming the corpse. Post-fix both figures must come back clean under
exactly that storm; under the ``LEGACY_UNWIND`` switch the historical
failure must still reproduce, so this file keeps honest evidence that
the harness would catch a regression.
"""

import pytest

from repro.core import kcs
from repro.fault.session import ChaosSession
from repro.recovery.session import RecoverySession


def _storm(run_figure):
    """Run one figure under the seed-11 kill storm with supervision;
    returns every audit violation (chaos A1-A10 + recovery)."""
    with ChaosSession(seed=11) as chaos, \
            RecoverySession(seed=11) as recovery:
        run_figure()
    violations = list(chaos.audit_kernels())
    violations.extend(f"recovery {v}"
                      for v in recovery.audit_violations())
    return violations


def test_fig10_seed11_supervised_storm_holds_every_invariant():
    from repro.experiments import fig10_topo
    assert _storm(lambda: fig10_topo.run(True)) == []


def test_fig12_seed11_supervised_storm_holds_every_invariant():
    from repro.experiments import fig12_bracket
    assert _storm(lambda: fig12_bracket.run(True)) == []


def test_fig10_seed11_reproduces_the_a8_underflow_pre_fix(monkeypatch):
    """The pre-fix failure, kept alive behind LEGACY_UNWIND: without
    kill-time pruning and generation stamps, the same storm must still
    produce the A8 underflow and stale-frame reclamation violations —
    proof the seed-11 gate actually guards the fix."""
    monkeypatch.setattr(kcs, "LEGACY_UNWIND", True)
    from repro.experiments import fig10_topo
    violations = _storm(lambda: fig10_topo.run(True))
    assert violations, "LEGACY_UNWIND no longer reproduces the bug"
    text = "\n".join(violations)
    assert "KCS underflow: return without call" in text
    assert "still references dead process" in text
    # the hardened diagnostics name the thread and the incarnation
    assert "thread load-clients/" in text
    assert "(gen " in text
