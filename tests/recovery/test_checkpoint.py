"""CheckpointJournal: append-only crash-safe sweep progress."""

import json
import os

import pytest

from repro.recovery.checkpoint import CheckpointJournal
from repro.runner.points import PointSpec


def _journal(tmp_path):
    return CheckpointJournal(str(tmp_path / "ckpt.jsonl"))


def test_round_trip_records_and_recovers(tmp_path):
    journal = _journal(tmp_path)
    assert journal.start(resume=False) == {}
    journal.record(0, {"mean_ns": 1.5})
    journal.record(3, [1, 2, 3])
    journal.close()
    assert journal.exists
    assert _journal(tmp_path).load() == {0: {"mean_ns": 1.5},
                                         3: [1, 2, 3]}


def test_torn_tail_line_is_skipped_not_fatal(tmp_path):
    journal = _journal(tmp_path)
    journal.start(resume=False)
    journal.record(0, "done")
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"i":1,"result":"tr')  # died mid-write
    assert _journal(tmp_path).load() == {0: "done"}


def test_wrong_shape_lines_are_skipped(tmp_path):
    journal = _journal(tmp_path)
    with open(journal.path, "w") as handle:
        handle.write("\n".join([
            json.dumps({"i": 0, "result": "good"}),
            json.dumps([1, 2]),                 # not an object
            json.dumps({"i": "zero", "result": 1}),  # non-int index
            json.dumps({"i": -1, "result": 1}),      # negative index
            json.dumps({"i": 2}),                    # missing result
            "",                                       # blank line
        ]) + "\n")
    assert journal.load() == {0: "good"}


def test_fresh_start_discards_a_stale_journal(tmp_path):
    stale = _journal(tmp_path)
    stale.start(resume=False)
    stale.record(0, "stale")
    stale.close()
    fresh = _journal(tmp_path)
    assert fresh.start(resume=False) == {}  # not resuming: discarded
    fresh.close()
    assert _journal(tmp_path).load() == {}


def test_resume_start_returns_prior_results(tmp_path):
    first = _journal(tmp_path)
    first.start(resume=False)
    first.record(1, 42)
    first.close()
    second = _journal(tmp_path)
    assert second.start(resume=True) == {1: 42}
    second.record(2, 43)  # appends after the recovered entries
    second.close()
    assert _journal(tmp_path).load() == {1: 42, 2: 43}


def test_complete_unlinks_but_close_keeps(tmp_path):
    journal = _journal(tmp_path)
    journal.start(resume=False)
    journal.record(0, 1)
    journal.close()
    assert journal.exists  # close() keeps the --resume handle
    journal.complete()
    assert not journal.exists


def test_record_before_start_raises(tmp_path):
    with pytest.raises(RuntimeError):
        _journal(tmp_path).record(0, 1)


def test_for_specs_binds_the_journal_to_the_exact_sweep(tmp_path):
    specs_a = [PointSpec("fig5", "m", {"iters": 2}),
               PointSpec("fig5", "m", {"iters": 3})]
    specs_b = [PointSpec("fig5", "m", {"iters": 2}),
               PointSpec("fig5", "m", {"iters": 4})]
    root = str(tmp_path)
    same = CheckpointJournal.for_specs(root, specs_a)
    again = CheckpointJournal.for_specs(root, specs_a)
    other = CheckpointJournal.for_specs(root, specs_b)
    assert same.path == again.path
    assert same.path != other.path
    assert os.path.basename(same.path).startswith("checkpoint-")
    assert same.path.endswith(".jsonl")


def test_start_creates_missing_directories(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "deep" / "ckpt.jsonl"))
    journal.start(resume=False)
    journal.record(0, 1)
    journal.close()
    assert journal.exists
