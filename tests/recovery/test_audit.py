"""A9 reclamation audit: nothing of a dead process may linger."""

import pytest

from repro.errors import InvariantViolation
from repro.fault import InvariantAuditor
from repro.kernel import Kernel
from repro.recovery.audit import (ReclamationAudit, domain_tags_of,
                                  reclamation_violations)


def _two_dipc_procs():
    from repro.core.api import DipcManager
    kernel = Kernel(num_cpus=2)
    DipcManager(kernel)  # registers itself as kernel.dipc
    a = kernel.spawn_process("a", dipc=True)
    b = kernel.spawn_process("b", dipc=True)
    return kernel, a, b


def test_domain_tags_cover_default_and_created_domains():
    kernel, a, _b = _two_dipc_procs()
    handle = kernel.dipc.dom_create(a)
    tags = domain_tags_of(a)
    assert a.default_tag in tags
    assert handle.tag in tags


def test_unreclaimed_grant_of_a_dead_process_is_a_violation():
    kernel, a, b = _two_dipc_procs()
    da = kernel.dipc.dom_create(a)
    db = kernel.dipc.dom_create(b)
    kernel.dipc.grant_create(da, db)
    # simulate a buggy kill path: the process dies but nothing revokes
    b.exit()
    violations = reclamation_violations(kernel, b)
    assert len(violations) == 1
    assert "not revoked" in violations[0]
    assert "dead process b" in violations[0]
    with pytest.raises(InvariantViolation):
        ReclamationAudit(kernel).assert_clean()


def test_kill_process_reclaims_grants_in_both_directions():
    kernel, a, b = _two_dipc_procs()
    da = kernel.dipc.dom_create(a)
    db = kernel.dipc.dom_create(b)
    kernel.dipc.grant_create(da, db)  # out of b's view: a -> b
    kernel.dipc.grant_create(db, da)  # and from b: b -> a
    kernel.kill_process(b)
    assert reclamation_violations(kernel, b) == []
    ReclamationAudit(kernel).assert_clean()
    # both grants were revoked, not just the ones b sourced
    assert all(g.revoked for g in kernel.dipc.grants)


def test_invariant_auditor_folds_the_check_in_as_a9():
    kernel, a, b = _two_dipc_procs()
    da = kernel.dipc.dom_create(a)
    db = kernel.dipc.dom_create(b)
    kernel.dipc.grant_create(da, db)
    b.exit()
    violations = InvariantAuditor(kernel).audit()
    assert any(v.startswith("A9: ") and "not revoked" in v
               for v in violations)


def test_clean_kill_passes_the_full_auditor():
    kernel, a, b = _two_dipc_procs()
    da = kernel.dipc.dom_create(a)
    db = kernel.dipc.dom_create(b)
    kernel.dipc.grant_create(da, db)
    kernel.kill_process(b)
    InvariantAuditor(kernel).assert_clean()
