"""RequestQueue, AdmissionGate, and with_deadline semantics."""

import pytest

from repro.errors import KernelError
from repro.kernel import Kernel
from repro.load.queueing import (AdmissionGate, RequestQueue,
                                 RequestTimeout, with_deadline)


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("loadq")


def _consumer(queue, got):
    def consumer(t):
        while True:
            item = yield from queue.get(t)
            if item is None:
                return
            got.append(item)
            yield t.compute(100)
    return consumer


def test_validation_rejects_bad_depth_and_policy(kernel):
    with pytest.raises(ValueError):
        RequestQueue(kernel, depth=0, policy="shed")
    with pytest.raises(ValueError):
        RequestQueue(kernel, depth=4, policy="balloon")
    with pytest.raises(ValueError):
        AdmissionGate(kernel, depth=0, policy="block")
    with pytest.raises(ValueError):
        AdmissionGate(kernel, depth=4, policy="balloon")


def test_shed_queue_drops_burst_past_depth(kernel, proc):
    queue = RequestQueue(kernel, depth=2, policy="shed")
    got, accepted = [], []

    def producer(t):
        yield t.compute(10)  # let the consumer park in get() first
        accepted.extend(queue.put(i) for i in range(5))
        queue.close()

    kernel.spawn(proc, _consumer(queue, got), name="loadq/c")
    kernel.spawn(proc, producer, name="loadq/p")
    kernel.run()
    # the burst lands in one engine step: two fit, three are shed
    assert accepted == [True, True, False, False, False]
    assert queue.shed == 3
    assert got == [0, 1]
    assert queue.peak_depth == 2


def test_block_queue_delivers_every_arrival_in_order(kernel, proc):
    queue = RequestQueue(kernel, depth=2, policy="block")
    got = []

    def producer(t):
        yield t.compute(10)
        assert all(queue.put(i) for i in range(5))
        queue.close()

    kernel.spawn(proc, _consumer(queue, got), name="loadq/c")
    kernel.spawn(proc, producer, name="loadq/p")
    kernel.run()
    assert got == [0, 1, 2, 3, 4]
    assert queue.shed == 0
    assert queue.peak_depth > 2  # block exceeds the nominal depth


def test_close_wakes_parked_consumer_with_none(kernel, proc):
    queue = RequestQueue(kernel, depth=2, policy="shed")
    got = []

    def closer(t):
        yield t.compute(500)
        queue.close()

    kernel.spawn(proc, _consumer(queue, got), name="loadq/c")
    kernel.spawn(proc, closer, name="loadq/x")
    kernel.run()
    assert got == []
    assert kernel.engine.pending() == 0  # the consumer exited cleanly


def test_gate_shed_rejects_when_full(kernel, proc):
    gate = AdmissionGate(kernel, depth=1, policy="shed")
    results = []

    def holder(t):
        assert (yield from gate.admit(t))
        yield from t.sleep(5_000)
        gate.release()

    def late(t):
        yield from t.sleep(1_000)  # arrive while the holder is inside
        results.append((yield from gate.admit(t)))
        if results[-1]:
            gate.release()

    kernel.spawn(proc, holder, name="loadq/h")
    kernel.spawn(proc, late, name="loadq/l")
    kernel.run()
    assert results == [False]
    assert gate.shed == 1
    assert gate.in_flight == 0


def test_gate_block_admits_waiters_fifo(kernel, proc):
    gate = AdmissionGate(kernel, depth=1, policy="block")
    order = []

    def client(t, cid):
        yield from t.sleep(1_000 * (cid + 1))  # stagger arrival order
        assert (yield from gate.admit(t))
        order.append(cid)
        yield from t.sleep(10_000)  # hold the slot so the rest queue up
        gate.release()

    for cid in range(3):
        kernel.spawn(proc, lambda t, cid=cid: client(t, cid),
                     name=f"loadq/c{cid}")
    kernel.run()
    assert order == [0, 1, 2]
    assert gate.peak_in_flight == 1
    assert gate.in_flight == 0


def test_gate_release_without_admit_raises(kernel):
    gate = AdmissionGate(kernel, depth=1, policy="block")
    with pytest.raises(KernelError):
        gate.release()


def test_deadline_expires_stuck_request_and_runs_cleanup(kernel, proc):
    cleaned, outcome = [], []

    def stuck(t):
        while True:
            yield t.block("stuck-forever")

    def request(t):
        try:
            yield from with_deadline(t, stuck(t), 2_000.0,
                                     cleanup=lambda: cleaned.append(True))
        except RequestTimeout:
            outcome.append("timeout")

    kernel.spawn(proc, request, name="loadq/r")
    kernel.run()
    assert outcome == ["timeout"]
    assert cleaned == [True]


def test_deadline_timer_cancelled_when_subgen_finishes_first(kernel, proc):
    results = []

    def quick(t):
        yield t.compute(100)
        return "ok"

    def request(t):
        results.append((yield from with_deadline(t, quick(t), 1_000_000.0)))

    kernel.spawn(proc, request, name="loadq/r")
    kernel.run()
    assert results == ["ok"]
    assert kernel.engine.pending() == 0  # no stale timer left behind
