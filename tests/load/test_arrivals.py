"""Seeded arrival-process determinism and statistics."""

import pytest

from repro.load.arrivals import (OpenLoopArrivals, ThinkTimes,
                                 derive_client_seed)


def _gaps(process, n=1000, *, rate=1e-4, seed=42, client=0):
    arrivals = OpenLoopArrivals(process=process, rate_per_ns=rate,
                                seed=seed, client_id=client)
    return [arrivals.next_gap_ns() for _ in range(n)]


def test_same_seed_same_client_is_byte_identical():
    assert _gaps("poisson") == _gaps("poisson")


def test_different_clients_are_independent_streams():
    assert _gaps("poisson", client=0) != _gaps("poisson", client=1)


def test_different_seeds_differ():
    assert _gaps("poisson", seed=1) != _gaps("poisson", seed=2)


def test_uniform_process_is_deterministic_at_the_mean():
    gaps = _gaps("uniform", n=50, rate=2e-4)
    assert all(gap == 5_000.0 for gap in gaps)


def test_poisson_mean_converges_to_rate_inverse():
    gaps = _gaps("poisson", n=4000, rate=1e-4)
    mean = sum(gaps) / len(gaps)
    assert abs(mean - 10_000.0) / 10_000.0 < 0.1


def test_client_seeds_are_collision_free_for_realistic_counts():
    seen = {derive_client_seed(seed, client)
            for seed in range(64) for client in range(256)}
    assert len(seen) == 64 * 256


def test_think_times_deterministic_and_positive():
    a = ThinkTimes(mean_ns=20_000.0, seed=7, client_id=3)
    b = ThinkTimes(mean_ns=20_000.0, seed=7, client_id=3)
    xs = [a.next_think_ns() for _ in range(100)]
    assert xs == [b.next_think_ns() for _ in range(100)]
    assert all(x > 0 for x in xs)


def test_unknown_process_and_bad_rate_rejected():
    with pytest.raises(ValueError):
        OpenLoopArrivals(process="bursty", rate_per_ns=1e-4,
                         seed=1, client_id=0)
    with pytest.raises(ValueError):
        OpenLoopArrivals(process="poisson", rate_per_ns=0.0,
                         seed=1, client_id=0)
