"""scheduler.cancel unwinding vs with_deadline transport cleanup.

A thread killed (scheduler.cancel / kill_process) while a
``with_deadline`` timer is armed must unwind cleanly: the timer is
cancelled, the transport cleanup is not double-run, and no wait-queue
slot (RequestQueue waiter, AdmissionGate in-flight count) leaks.
"""

import pytest

from repro.kernel import Kernel
from repro.load.queueing import (AdmissionGate, RequestQueue,
                                 RequestTimeout, with_deadline)


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("loadq")


def _stuck(t):
    while True:
        yield t.block("stuck-forever")


def test_cancelled_thread_unwinds_deadline_without_cleanup(kernel, proc):
    queue = RequestQueue(kernel, depth=4, policy="block")
    cleaned = []

    def runner(t):
        yield from with_deadline(t, queue.get(t), 50_000.0,
                                 cleanup=lambda: cleaned.append(True))

    thread = kernel.spawn(proc, runner, name="loadq/r")
    kernel.engine.post(1_000.0, lambda: kernel.scheduler.cancel(thread))
    kernel.run()
    assert thread.is_done
    assert cleaned == []            # the deadline never fired
    assert not queue._waiters       # get() unhooked the corpse
    assert kernel.engine.pending() == 0  # timer cancelled on unwind


def test_cancel_after_expiry_runs_cleanup_exactly_once(kernel, proc):
    cleaned, outcome = [], []

    def runner(t):
        try:
            yield from with_deadline(t, _stuck(t), 2_000.0,
                                     cleanup=lambda: cleaned.append(True))
        except RequestTimeout:
            outcome.append("timeout")
            yield from _stuck(t)  # park again, to be cancelled later

    thread = kernel.spawn(proc, runner, name="loadq/r")
    kernel.engine.post(5_000.0, lambda: kernel.scheduler.cancel(thread))
    kernel.run()
    assert outcome == ["timeout"]
    assert cleaned == [True]        # expiry path ran it; cancel did not
    assert thread.is_done
    assert kernel.engine.pending() == 0


def test_kill_process_releases_gate_slot_under_deadline(kernel):
    victim = kernel.spawn_process("victim")
    gate = AdmissionGate(kernel, depth=1, policy="block")

    def client(t):
        admitted = yield from gate.admit(t)
        try:
            yield from with_deadline(t, _stuck(t), 1_000_000.0)
        finally:
            if admitted:
                gate.release()  # the closed-loop client contract

    kernel.spawn(victim, client, name="victim/c")
    kernel.engine.post(3_000.0, lambda: kernel.kill_process(victim))
    kernel.run()
    assert not victim.alive
    assert gate.in_flight == 0      # the slot came back on unwind
    assert kernel.engine.pending() == 0


def test_kill_process_unhooks_gate_waiters_under_deadline(kernel):
    holder_proc = kernel.spawn_process("holder")
    victim = kernel.spawn_process("victim")
    gate = AdmissionGate(kernel, depth=1, policy="block")

    def holder(t):
        assert (yield from gate.admit(t))
        yield from t.sleep(50_000)
        gate.release()

    def waiter(t):
        admitted = yield from with_deadline(t, gate.admit(t), 1_000_000.0)
        if admitted:
            gate.release()

    kernel.spawn(holder_proc, holder, name="holder/h")
    kernel.spawn(victim, waiter, name="victim/w")
    # kill the waiter while it is parked in the gate's FIFO
    kernel.engine.post(3_000.0, lambda: kernel.kill_process(victim))
    kernel.run()
    assert not gate._waiters        # admit() unhooked the corpse
    assert gate.in_flight == 0      # holder released; waiter never took
    assert kernel.engine.pending() == 0


def test_deadline_timer_survivors_do_not_cross_talk(kernel, proc):
    """Two requests under deadlines; one is cancelled, the other must
    still time out normally (its timer is untouched by the unwind)."""
    outcomes = []

    def runner(t, tag):
        try:
            yield from with_deadline(t, _stuck(t), 10_000.0)
        except RequestTimeout:
            outcomes.append(f"{tag}-timeout")

    alive = kernel.spawn(proc, lambda t: runner(t, "alive"),
                         name="loadq/alive")
    doomed = kernel.spawn(proc, lambda t: runner(t, "doomed"),
                          name="loadq/doomed")
    assert alive is not doomed
    kernel.engine.post(1_000.0,
                       lambda: kernel.scheduler.cancel(doomed))
    kernel.run()
    assert outcomes == ["alive-timeout"]
    assert kernel.engine.pending() == 0
