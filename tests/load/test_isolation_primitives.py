"""Load points through the new isolation primitives (dpti, odipc)."""

import pytest

from repro import units
from repro.fault import InvariantAuditor
from repro.load import LoadParams, run_load_point


def _params(**overrides):
    base = dict(primitive="dpti", mode="open", policy="shed",
                offered_kops=200.0, warmup_ns=0.5 * units.MS,
                window_ns=1.0 * units.MS, seed=42)
    base.update(overrides)
    return LoadParams(**base)


@pytest.mark.parametrize("primitive", ["dpti", "odipc"])
def test_drained_run_completes_and_leaves_a_clean_kernel(primitive):
    kernels = []
    result = run_load_point(
        _params(primitive=primitive, max_requests_per_client=20,
                drain=True),
        keep_kernel=kernels)
    assert result.completed > 0
    assert result.backlog_at_end == 0
    assert result.worker_crashes == 0
    InvariantAuditor(kernels[0]).assert_clean()


@pytest.mark.parametrize("primitive", ["dpti", "odipc"])
def test_identical_params_give_byte_identical_points(primitive):
    a = run_load_point(_params(primitive=primitive)).to_point()
    b = run_load_point(_params(primitive=primitive)).to_point()
    assert a == b
    assert a["completed"] > 0


def test_in_process_primitives_skip_the_pipe_buffer_check():
    # 16 KiB requests overflow half the pipe buffer with the default
    # pools — kernel-mediated primitives must still be rejected ...
    with pytest.raises(ValueError, match="pipe buffer"):
        run_load_point(_params(primitive="socket", req_size=16384))
    # ... but in-process primitives park no bytes in kernel pipes, so
    # the same request size is legal and completes
    for primitive in ("dipc", "dpti", "odipc"):
        result = run_load_point(_params(primitive=primitive,
                                        req_size=16384,
                                        offered_kops=100.0))
        assert result.completed > 0
