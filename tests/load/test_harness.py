"""End-to-end load points: determinism, queueing laws, fault survival."""

import pytest

from repro import units
from repro.fault import InvariantAuditor
from repro.fault.session import ChaosSession
from repro.load import LoadParams, run_load_point


def _params(**overrides):
    base = dict(primitive="pipe", mode="open", policy="shed",
                offered_kops=400.0, warmup_ns=0.5 * units.MS,
                window_ns=1.0 * units.MS, seed=42)
    base.update(overrides)
    return LoadParams(**base)


def test_bad_params_rejected():
    with pytest.raises(ValueError):
        run_load_point(_params(mode="sideways"))
    with pytest.raises(ValueError):
        run_load_point(_params(drain=True))  # needs a request limit
    with pytest.raises(ValueError):
        run_load_point(_params(req_size=64 * 1024))


def test_identical_params_give_byte_identical_points():
    a = run_load_point(_params()).to_point()
    b = run_load_point(_params()).to_point()
    assert a == b
    assert a["completed"] > 0


def test_uniform_arrivals_honour_the_offered_rate():
    result = run_load_point(_params(arrivals="uniform",
                                    offered_kops=400.0))
    window_s = 1.0 * units.MS / units.SECOND
    expected = 400.0 * 1e3 * window_s
    assert abs(result.offered_seen - expected) / expected < 0.05


def test_p99_is_monotone_in_offered_load():
    p99s = [run_load_point(_params(policy="block",
                                   offered_kops=kops)).p99_ns
            for kops in (400.0, 1200.0, 2400.0)]
    assert all(p99s[i] <= p99s[i + 1] * 1.05 for i in range(2))
    assert p99s[-1] > 2.0 * p99s[0]  # past the knee queueing dominates


def test_shed_bounds_backlog_where_block_lets_it_grow():
    shed = run_load_point(_params(offered_kops=2400.0))
    block = run_load_point(_params(policy="block",
                                   offered_kops=2400.0))
    assert shed.shed > 0
    assert shed.peak_backlog <= 32  # the default queue depth
    assert block.shed == 0
    assert block.peak_backlog > 32


def test_closed_loop_throughput_tracks_littles_law():
    results = [run_load_point(_params(mode="closed", policy="block",
                                      n_clients=n, think_ns=20_000.0))
               for n in (2, 8)]
    for n, result in zip((2, 8), results):
        # Little's law: N clients cycling through think + response time
        expected_kops = n / (20_000.0 + result.mean_ns) * 1e6
        assert abs(result.throughput_kops - expected_kops) \
            / expected_kops < 0.2
    assert results[1].throughput_kops > 2.0 * results[0].throughput_kops


def test_drained_run_leaves_a_clean_kernel():
    kernels = []
    result = run_load_point(
        _params(max_requests_per_client=20, drain=True),
        keep_kernel=kernels)
    assert result.backlog_at_end == 0
    assert result.worker_crashes == 0
    InvariantAuditor(kernels[0]).assert_clean()


class _OneWorkerDown(ChaosSession):
    """Deterministic storm: crash server worker w0 mid-window."""

    def attach(self, kernel):
        from repro.fault import FaultInjector, FaultPlan, FaultRule
        plan = FaultPlan([FaultRule("crash_thread", "load-server/w0",
                                    at_ns=0.7 * units.MS, param=0)])
        injector = FaultInjector(kernel, plan, storm=len(self.injectors))
        injector.arm()
        self.injectors.append(injector)


@pytest.mark.parametrize("policy", ["shed", "block"])
def test_killed_worker_sheds_cleanly_instead_of_wedging(policy):
    with _OneWorkerDown() as session:
        result = run_load_point(_params(policy=policy,
                                        deadline_ns=20_000.0,
                                        check=False))
    assert session.total_injections >= 1
    assert result.worker_crashes >= 1
    # the surviving pipe shard keeps completing requests (no wedge)...
    assert result.completed > 0.3 * result.offered_seen
    # ...while requests routed at the dead worker fail by deadline
    assert result.failed > 0
