"""Unit tests for breakdowns and running statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import (Block, Breakdown, RunningStats, geometric_mean)


class TestBreakdown:
    def test_starts_empty(self):
        assert Breakdown().total() == 0.0

    def test_add_and_total(self):
        bd = Breakdown()
        bd.add(Block.USER, 10)
        bd.add(Block.KERNEL, 5)
        assert bd.total() == 15

    def test_total_excluding_idle(self):
        bd = Breakdown()
        bd.add(Block.USER, 10)
        bd.add(Block.IDLE, 90)
        assert bd.total() == 100
        assert bd.total(include_idle=False) == 10

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Breakdown().add(Block.USER, -1)

    def test_merge(self):
        a, b = Breakdown(), Breakdown()
        a.add(Block.USER, 1)
        b.add(Block.USER, 2)
        b.add(Block.SCHED, 3)
        a.merge(b)
        assert a.ns[Block.USER] == 3
        assert a.ns[Block.SCHED] == 3

    def test_by_mode_classification(self):
        bd = Breakdown()
        bd.add(Block.USER, 1)
        for block in (Block.SYSCALL, Block.TRAMPOLINE, Block.KERNEL,
                      Block.SCHED, Block.PTSW):
            bd.add(block, 2)
        bd.add(Block.IDLE, 7)
        modes = bd.by_mode()
        assert modes == {"user": 1, "kernel": 10, "idle": 7}

    def test_fractions_sum_to_one(self):
        bd = Breakdown()
        bd.add(Block.USER, 3)
        bd.add(Block.KERNEL, 7)
        assert math.isclose(sum(bd.fractions().values()), 1.0)

    def test_fractions_of_empty(self):
        assert all(v == 0 for v in Breakdown().fractions().values())

    def test_scaled(self):
        bd = Breakdown()
        bd.add(Block.USER, 4)
        half = bd.scaled(0.5)
        assert half.ns[Block.USER] == 2
        assert bd.ns[Block.USER] == 4  # original untouched

    def test_copy_is_independent(self):
        bd = Breakdown()
        bd.add(Block.USER, 4)
        dup = bd.copy()
        dup.add(Block.USER, 1)
        assert bd.ns[Block.USER] == 4


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0
        assert stats.variance == 0

    def test_mean_and_stddev(self):
        stats = RunningStats()
        stats.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert math.isclose(stats.mean, 5.0)
        assert math.isclose(stats.stddev, math.sqrt(32 / 7))

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3, 1, 4, 1, 5])
        assert stats.minimum == 1
        assert stats.maximum == 5

    def test_relative_stddev(self):
        stats = RunningStats()
        stats.extend([100.0, 100.0, 100.0])
        assert stats.relative_stddev() == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=200))
    def test_matches_two_pass_formulas(self, values):
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert math.isclose(stats.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(stats.variance, var, rel_tol=1e-6, abs_tol=1e-3)


class TestGeometricMean:
    def test_basic(self):
        assert math.isclose(geometric_mean([2, 8]), 4.0)

    def test_single(self):
        assert geometric_mean([7]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=50))
    def test_bounded_by_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
