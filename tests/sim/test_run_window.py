"""Window-bounded execution and content-keyed tie-breaks (PDES-lite)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_run_window_strict_upper_bound():
    engine = Engine()
    fired = []
    for t in (1.0, 2.0, 3.0, 4.0):
        engine.post_at(t, lambda t=t: fired.append(t))
    processed = engine.run_window(3.0)
    assert fired == [1.0, 2.0]  # 3.0 is NOT inside [now, 3.0)
    assert processed == 2
    assert engine.now() == 3.0


def test_run_window_advances_clock_when_queue_drains_early():
    engine = Engine()
    engine.post_at(1.0, lambda: None)
    engine.run_window(50.0)
    assert engine.now() == 50.0
    # the next window may start exactly at the previous end
    engine.run_window(50.0)
    assert engine.now() == 50.0


def test_run_window_rejects_past_end():
    engine = Engine()
    engine.post_at(10.0, lambda: None)
    engine.run_window(20.0)
    with pytest.raises(SimulationError):
        engine.run_window(5.0)


def test_run_window_events_posted_inside_window_fire():
    engine = Engine()
    fired = []

    def chain():
        fired.append(engine.now())
        if engine.now() < 4.0:
            engine.post(1.0, chain)

    engine.post_at(1.0, chain)
    engine.run_window(3.5)
    assert fired == [1.0, 2.0, 3.0]
    # the 4.0 event parked beyond the window fires in the next one
    engine.run_window(10.0)
    assert fired == [1.0, 2.0, 3.0, 4.0]


def test_keyed_ties_fire_in_key_order_not_posting_order():
    engine = Engine()
    fired = []
    engine.post_at(5.0, lambda: fired.append("b"), key=(1, (0, 1)))
    engine.post_at(5.0, lambda: fired.append("a"), key=(0, (0, 1)))
    engine.post_at(5.0, lambda: fired.append("c"), key=(2, (0, 1)))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_unkeyed_ties_keep_posting_order():
    engine = Engine()
    fired = []
    for name in "abc":
        engine.post(5.0, lambda n=name: fired.append(n))
    engine.run()
    assert fired == list("abc")


def test_keyed_vs_unkeyed_tie_falls_back_to_seq():
    engine = Engine()
    fired = []
    engine.post_at(5.0, lambda: fired.append("unkeyed"))
    engine.post_at(5.0, lambda: fired.append("keyed"), key=(0, (0,)))
    engine.run()
    assert fired == ["unkeyed", "keyed"]


def test_next_event_time_skips_cancelled():
    engine = Engine()
    handle = engine.post_at(3.0, lambda: None)
    engine.post_at(7.0, lambda: None)
    assert engine.next_event_time() == 3.0
    engine.cancel(handle)
    assert engine.next_event_time() == 7.0


def test_key_cleared_on_freelist_reuse():
    engine = Engine()
    fired = []
    engine.post_at(1.0, lambda: fired.append("x"), key=(9, (1,)))
    engine.run_window(2.0)
    # the retired event's slot must not leak its key into this one
    for name in "ab":
        engine.post(1.0, lambda n=name: fired.append(n))
    engine.run_window(5.0)
    assert fired == ["x", "a", "b"]
