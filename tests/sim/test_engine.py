"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now() == 0.0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.post(30, lambda: fired.append("c"))
    engine.post(10, lambda: fired.append("a"))
    engine.post(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_posting_order():
    engine = Engine()
    fired = []
    for name in "abcde":
        engine.post(5, lambda n=name: fired.append(n))
    engine.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.post(42.5, lambda: seen.append(engine.now()))
    engine.run()
    assert seen == [42.5]
    assert engine.now() == 42.5


def test_post_during_run_is_processed():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.post(5, lambda: fired.append("second"))

    engine.post(10, first)
    engine.run()
    assert fired == ["first", "second"]
    assert engine.now() == 15


def test_cancel_prevents_firing():
    engine = Engine()
    fired = []
    event = engine.post(10, lambda: fired.append("x"))
    engine.post(5, lambda: engine.cancel(event))
    engine.run()
    assert fired == []


def test_cancel_twice_is_harmless():
    engine = Engine()
    event = engine.post(10, lambda: None)
    engine.cancel(event)
    engine.cancel(event)
    engine.run()


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    fired = []
    engine.post(10, lambda: fired.append("early"))
    engine.post(100, lambda: fired.append("late"))
    engine.run(until_ns=50)
    assert fired == ["early"]
    assert engine.now() == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_queue_drains():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run(until_ns=1000)
    assert engine.now() == 1000


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.post(-1, lambda: None)


def test_post_at_in_past_rejected():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.post_at(5, lambda: None)


def test_pending_counts_only_live_events():
    engine = Engine()
    keep = engine.post(10, lambda: None)
    drop = engine.post(20, lambda: None)
    engine.cancel(drop)
    assert engine.pending() == 1
    assert keep is not drop


def test_max_events_budget():
    engine = Engine()
    fired = []
    for i in range(5):
        engine.post(i + 1, lambda i=i: fired.append(i))
    engine.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_events_processed_counter():
    engine = Engine()
    for i in range(3):
        engine.post(i, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_run_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.post(1, reenter)
    engine.run()
    assert len(errors) == 1
