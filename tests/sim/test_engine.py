"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now() == 0.0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.post(30, lambda: fired.append("c"))
    engine.post(10, lambda: fired.append("a"))
    engine.post(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_posting_order():
    engine = Engine()
    fired = []
    for name in "abcde":
        engine.post(5, lambda n=name: fired.append(n))
    engine.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.post(42.5, lambda: seen.append(engine.now()))
    engine.run()
    assert seen == [42.5]
    assert engine.now() == 42.5


def test_post_during_run_is_processed():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.post(5, lambda: fired.append("second"))

    engine.post(10, first)
    engine.run()
    assert fired == ["first", "second"]
    assert engine.now() == 15


def test_cancel_prevents_firing():
    engine = Engine()
    fired = []
    event = engine.post(10, lambda: fired.append("x"))
    engine.post(5, lambda: engine.cancel(event))
    engine.run()
    assert fired == []


def test_cancel_twice_is_harmless():
    engine = Engine()
    event = engine.post(10, lambda: None)
    engine.cancel(event)
    engine.cancel(event)
    engine.run()


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    fired = []
    engine.post(10, lambda: fired.append("early"))
    engine.post(100, lambda: fired.append("late"))
    engine.run(until_ns=50)
    assert fired == ["early"]
    assert engine.now() == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_queue_drains():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run(until_ns=1000)
    assert engine.now() == 1000


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.post(-1, lambda: None)


def test_post_at_in_past_rejected():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.post_at(5, lambda: None)


def test_pending_counts_only_live_events():
    engine = Engine()
    keep = engine.post(10, lambda: None)
    drop = engine.post(20, lambda: None)
    engine.cancel(drop)
    assert engine.pending() == 1
    assert keep is not drop


def test_max_events_budget():
    engine = Engine()
    fired = []
    for i in range(5):
        engine.post(i + 1, lambda i=i: fired.append(i))
    engine.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_events_processed_counter():
    engine = Engine()
    for i in range(3):
        engine.post(i, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_run_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.post(1, reenter)
    engine.run()
    assert len(errors) == 1


def test_max_events_does_not_skip_clock_past_pending_work():
    # A max_events stop must not advance the clock to until_ns when
    # events before until_ns are still queued — resuming would otherwise
    # fire them "in the past".
    engine = Engine()
    fired = []
    for i in range(4):
        engine.post(10 * (i + 1), lambda i=i: fired.append(i))
    engine.run(until_ns=100, max_events=2)
    assert fired == [0, 1]
    assert engine.now() == 30  # clamped to the next pending event (t=30)
    engine.run(until_ns=100)
    assert fired == [0, 1, 2, 3]
    assert engine.now() == 100


def test_max_events_with_until_advances_when_queue_drains():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run(until_ns=500, max_events=5)
    assert engine.now() == 500


def test_run_until_skips_cancelled_head_when_advancing():
    engine = Engine()
    dead = engine.post(20, lambda: None)
    engine.post(80, lambda: None)
    engine.cancel(dead)
    engine.run(until_ns=50, max_events=0)
    # the cancelled event at t=20 must not pin the clock
    assert engine.now() == 50


def test_cancel_after_fire_is_harmless():
    engine = Engine()
    fired = []
    event = engine.post(5, lambda: fired.append("x"))
    engine.run()
    engine.cancel(event)  # too late; must not corrupt bookkeeping
    assert fired == ["x"]
    assert engine.pending() == 0
    engine.post(1, lambda: None)
    assert engine.pending() == 1


def test_pending_is_exact_under_heavy_cancellation():
    engine = Engine()
    events = [engine.post(i + 1, lambda: None) for i in range(200)]
    for event in events[::2]:
        engine.cancel(event)
    assert engine.pending() == 100
    engine.run()
    assert engine.events_processed == 100


def test_prune_shrinks_internal_queue():
    engine = Engine()
    events = [engine.post(i + 1, lambda: None) for i in range(128)]
    for event in events[:100]:
        engine.cancel(event)
    # >half cancelled on a >=64-entry queue triggers the lazy prune
    assert len(engine._queue) < 128
    assert engine.pending() == 28
    fired = []
    engine.post(1000, lambda: fired.append("tail"))
    engine.run()
    assert fired == ["tail"]
    assert engine.events_processed == 29
