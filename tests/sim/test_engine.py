"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now() == 0.0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.post(30, lambda: fired.append("c"))
    engine.post(10, lambda: fired.append("a"))
    engine.post(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_posting_order():
    engine = Engine()
    fired = []
    for name in "abcde":
        engine.post(5, lambda n=name: fired.append(n))
    engine.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.post(42.5, lambda: seen.append(engine.now()))
    engine.run()
    assert seen == [42.5]
    assert engine.now() == 42.5


def test_post_during_run_is_processed():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.post(5, lambda: fired.append("second"))

    engine.post(10, first)
    engine.run()
    assert fired == ["first", "second"]
    assert engine.now() == 15


def test_cancel_prevents_firing():
    engine = Engine()
    fired = []
    event = engine.post(10, lambda: fired.append("x"))
    engine.post(5, lambda: engine.cancel(event))
    engine.run()
    assert fired == []


def test_cancel_twice_is_harmless():
    engine = Engine()
    event = engine.post(10, lambda: None)
    engine.cancel(event)
    engine.cancel(event)
    engine.run()


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    fired = []
    engine.post(10, lambda: fired.append("early"))
    engine.post(100, lambda: fired.append("late"))
    engine.run(until_ns=50)
    assert fired == ["early"]
    assert engine.now() == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_queue_drains():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run(until_ns=1000)
    assert engine.now() == 1000


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.post(-1, lambda: None)


def test_post_at_in_past_rejected():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.post_at(5, lambda: None)


def test_pending_counts_only_live_events():
    engine = Engine()
    keep = engine.post(10, lambda: None)
    drop = engine.post(20, lambda: None)
    engine.cancel(drop)
    assert engine.pending() == 1
    assert keep is not drop


def test_max_events_budget():
    engine = Engine()
    fired = []
    for i in range(5):
        engine.post(i + 1, lambda i=i: fired.append(i))
    engine.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_events_processed_counter():
    engine = Engine()
    for i in range(3):
        engine.post(i, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_run_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.post(1, reenter)
    engine.run()
    assert len(errors) == 1


def test_max_events_does_not_skip_clock_past_pending_work():
    # A max_events stop must not advance the clock to until_ns when
    # events before until_ns are still queued — resuming would otherwise
    # fire them "in the past".
    engine = Engine()
    fired = []
    for i in range(4):
        engine.post(10 * (i + 1), lambda i=i: fired.append(i))
    engine.run(until_ns=100, max_events=2)
    assert fired == [0, 1]
    assert engine.now() == 30  # clamped to the next pending event (t=30)
    engine.run(until_ns=100)
    assert fired == [0, 1, 2, 3]
    assert engine.now() == 100


def test_max_events_with_until_advances_when_queue_drains():
    engine = Engine()
    engine.post(10, lambda: None)
    engine.run(until_ns=500, max_events=5)
    assert engine.now() == 500


def test_run_until_skips_cancelled_head_when_advancing():
    engine = Engine()
    dead = engine.post(20, lambda: None)
    engine.post(80, lambda: None)
    engine.cancel(dead)
    engine.run(until_ns=50, max_events=0)
    # the cancelled event at t=20 must not pin the clock
    assert engine.now() == 50


def test_cancel_after_fire_is_harmless():
    engine = Engine()
    fired = []
    event = engine.post(5, lambda: fired.append("x"))
    engine.run()
    engine.cancel(event)  # too late; must not corrupt bookkeeping
    assert fired == ["x"]
    assert engine.pending() == 0
    engine.post(1, lambda: None)
    assert engine.pending() == 1


def test_pending_is_exact_under_heavy_cancellation():
    engine = Engine()
    events = [engine.post(i + 1, lambda: None) for i in range(200)]
    for event in events[::2]:
        engine.cancel(event)
    assert engine.pending() == 100
    engine.run()
    assert engine.events_processed == 100


def test_prune_shrinks_internal_queue():
    engine = Engine()
    events = [engine.post(i + 1, lambda: None) for i in range(128)]
    for event in events[:100]:
        engine.cancel(event)
    # >half cancelled on a >=64-entry queue triggers the lazy prune
    assert len(engine._queue) < 128
    assert engine.pending() == 28
    fired = []
    engine.post(1000, lambda: fired.append("tail"))
    engine.run()
    assert fired == ["tail"]
    assert engine.events_processed == 29


# -- hot-path hardening: freelist, bookkeeping, clamp interleaving ----------

def _bookkeeping_exact(engine):
    return sum(1 for e in engine._queue if e.cancelled) \
        == engine._cancelled_in_queue


def test_clamp_cancel_interleaving():
    """_next_live_time, run(), step() and _prune() share the cancelled-
    event accounting; interleaving them must keep it exact."""
    engine = Engine()
    fired = []
    events = [engine.post(10 * (i + 1), lambda i=i: fired.append(i))
              for i in range(40)]
    for event in events[:5]:          # cancel the whole leading edge
        engine.cancel(event)
    engine.run(until_ns=5, max_events=0)   # clamp discards dead heads
    assert engine.now() == 5
    assert _bookkeeping_exact(engine)
    assert engine.pending() == 35
    engine.run(max_events=3)               # fire 5..7 (t=60..80)
    assert fired == [5, 6, 7]
    for event in events[10:30]:            # cancel a mid-queue band
        engine.cancel(event)
    assert _bookkeeping_exact(engine)
    engine.run(until_ns=95, max_events=0)  # clamp again: head t=90 live
    assert engine.now() == 90
    assert engine.step()                   # fires 8 (t=90)
    assert fired == [5, 6, 7, 8]
    for event in events[30:]:              # push past the prune threshold
        engine.cancel(event)
    assert _bookkeeping_exact(engine)
    engine.run(until_ns=10_000)
    assert fired == [5, 6, 7, 8, 9]
    assert engine.pending() == 0
    assert _bookkeeping_exact(engine)


def test_callback_triggered_prune_does_not_stall_run():
    """A callback may cancel enough events to trigger _prune() while
    run() is mid-loop; the rebuilt heap must keep draining."""
    engine = Engine()
    fired = []
    victims = [engine.post(50 + i, lambda: fired.append("victim"))
               for i in range(100)]

    def massacre():
        fired.append("massacre")
        for event in victims:
            engine.cancel(event)

    engine.post(1, massacre)
    engine.post(200, lambda: fired.append("tail"))
    engine.run()
    assert fired == ["massacre", "tail"]
    assert engine.pending() == 0
    assert _bookkeeping_exact(engine)


def test_freelist_recycles_unreferenced_events():
    engine = Engine()
    count = 600

    def tick():
        if engine.events_processed < count:
            engine.post(1.0, tick)

    engine.post(0.0, tick)
    engine.run()
    assert engine.events_processed == count
    # handles were never kept, so popped events must have been pooled
    assert engine._freelist
    from repro.sim.engine import _FREELIST_MAX
    assert len(engine._freelist) <= _FREELIST_MAX


def test_held_handles_are_never_recycled():
    engine = Engine()
    held = [engine.post(i + 1, lambda: None) for i in range(20)]
    engine.run()
    assert engine._freelist == []          # every handle is still alive
    assert all(e.popped for e in held)


def test_stale_cancel_cannot_kill_a_recycled_event():
    """A handle kept after its event fired must stay inert even once
    the freelist is in play and new events are being scheduled."""
    engine = Engine()
    fired = []
    stale = engine.post(1, lambda: fired.append("old"))
    engine.post(2, lambda: fired.append("churn"))   # unheld -> recyclable
    engine.run()
    fresh = engine.post(5, lambda: fired.append("new"))
    engine.cancel(stale)                   # must be a no-op
    assert not fresh.cancelled
    engine.run()
    assert fired == ["old", "churn", "new"]
    assert _bookkeeping_exact(engine)


def test_recycled_event_reuse_preserves_order_and_identity():
    engine = Engine()
    fired = []

    def burst(tag, n):
        for i in range(n):
            engine.post(float(i), lambda t=tag, i=i: fired.append((t, i)))

    burst("a", 50)
    engine.run()
    burst("b", 50)                         # reuses pooled events
    engine.run()
    assert fired == [("a", i) for i in range(50)] \
        + [("b", i) for i in range(50)]
