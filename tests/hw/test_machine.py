"""Tests for the machine/CPU layer: accounting, idle tracking, IPIs."""

import pytest

from repro.errors import SimulationError
from repro.hw.machine import Machine
from repro.sim.stats import Block


def test_machine_defaults():
    machine = Machine()
    assert machine.num_cpus == 4
    assert machine.now() == 0.0


def test_needs_at_least_one_cpu():
    with pytest.raises(SimulationError):
        Machine(0)


def test_cpu_charge_accumulates():
    machine = Machine(1)
    cpu = machine.cpus[0]
    cpu.charge(Block.USER, 10)
    cpu.charge(Block.USER, 5)
    assert cpu.account.ns[Block.USER] == 15


def test_idle_interval_accounting():
    machine = Machine(1)
    cpu = machine.cpus[0]
    cpu.begin_idle(100.0)
    span = cpu.end_idle(250.0)
    assert span == 150.0
    assert cpu.account.ns[Block.IDLE] == 150.0


def test_end_idle_without_begin_is_zero():
    machine = Machine(1)
    assert machine.cpus[0].end_idle(50.0) == 0.0


def test_flush_idle_keeps_interval_open():
    machine = Machine(1)
    cpu = machine.cpus[0]
    cpu.begin_idle(0.0)
    cpu.flush_idle(100.0)
    assert cpu.account.ns[Block.IDLE] == 100.0
    assert cpu.idle_since == 100.0  # still idle
    cpu.flush_idle(150.0)
    assert cpu.account.ns[Block.IDLE] == 150.0


def test_ipi_charges_both_sides_and_delays():
    machine = Machine(2)
    src, dst = machine.cpus
    delivered = []
    machine.send_ipi(src, dst, lambda: delivered.append(machine.now()))
    assert src.account.ns[Block.KERNEL] == machine.costs.IPI_SEND
    machine.engine.run()
    assert delivered == [machine.costs.IPI_FLIGHT]
    assert dst.account.ns[Block.KERNEL] == machine.costs.IPI_HANDLE


def test_ipi_ends_target_idle():
    machine = Machine(2)
    src, dst = machine.cpus
    dst.begin_idle(0.0)
    machine.send_ipi(src, dst, lambda: None)
    machine.engine.run()
    assert dst.account.ns[Block.IDLE] == pytest.approx(machine.costs.IPI_FLIGHT)


def test_ipi_to_self_rejected():
    machine = Machine(2)
    with pytest.raises(SimulationError):
        machine.send_ipi(machine.cpus[0], machine.cpus[0], lambda: None)


def test_total_account_merges_cpus():
    machine = Machine(2)
    machine.cpus[0].charge(Block.USER, 10)
    machine.cpus[1].charge(Block.USER, 20)
    machine.cpus[1].charge(Block.SCHED, 5)
    merged = machine.total_account()
    assert merged.ns[Block.USER] == 30
    assert merged.ns[Block.SCHED] == 5


def test_utilization():
    machine = Machine(2)
    machine.cpus[0].charge(Block.USER, 50)
    machine.cpus[1].charge(Block.KERNEL, 50)
    assert machine.utilization(100) == pytest.approx(0.5)


def test_reset_accounts():
    machine = Machine(1)
    machine.cpus[0].charge(Block.USER, 10)
    machine.reset_accounts()
    assert machine.cpus[0].account.total() == 0
