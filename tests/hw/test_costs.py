"""The cost model's internal anchors and paper-headline ratios."""

import pytest

from repro.hw.costs import CostModel, FIG5_TARGETS_NS


@pytest.fixture
def costs():
    return CostModel.default()


def test_function_call_under_2ns(costs):
    assert costs.FUNC_CALL <= 2.0


def test_empty_syscall_is_34ns(costs):
    # §2.2: "an empty system call in Linux takes around 34ns"
    assert costs.syscall_empty() == pytest.approx(34.0)


def test_syscall_blocks_decompose(costs):
    assert costs.syscall_empty() == (costs.SYSCALL_HW +
                                     costs.SYSCALL_TRAMPOLINE +
                                     costs.SYSCALL_MINWORK)


def test_domain_switch_is_free(costs):
    # ISCA'14: crossing domains has negligible performance impact
    assert costs.DOMAIN_SWITCH == 0.0
    assert costs.APL_CACHE_HIT < 1.0


def test_fig5_headline_ratios():
    t = FIG5_TARGETS_NS
    # dIPC is 64.12x faster than local RPC (abstract)
    assert t["rpc_same_cpu"] / t["dipc_proc_high"] == pytest.approx(64.12, rel=0.01)
    # 8.87x faster than L4 (abstract)
    assert t["l4_same_cpu"] / t["dipc_proc_high"] == pytest.approx(8.87, rel=0.01)
    # asymmetric policies: up to 8.47x difference (§7.2)
    assert t["dipc_high"] / t["dipc_low"] == pytest.approx(8.47, rel=0.01)
    # 120.67x: dIPC+proc Low vs RPC (§7.2)
    assert t["rpc_same_cpu"] / t["dipc_proc_low"] == pytest.approx(120.67, rel=0.01)
    # 14.16x: dIPC+proc High vs Sem (§7.2)
    assert t["sem_same_cpu"] / t["dipc_proc_high"] == pytest.approx(14.16, rel=0.01)


def test_tls_switch_share_matches_paper(costs):
    """§7.2: optimizing the TLS segment switch would improve dIPC+proc
    performance by 1.54x-3.22x."""
    tls = 2 * costs.TLS_SWITCH
    low = FIG5_TARGETS_NS["dipc_proc_low"]
    high = FIG5_TARGETS_NS["dipc_proc_high"]
    assert low / (low - tls) == pytest.approx(3.22, rel=0.05)
    assert high / (high - tls) == pytest.approx(1.54, rel=0.05)


def test_dipc_low_composition(costs):
    assert costs.FUNC_CALL + costs.PROXY_MIN_CALL + costs.PROXY_MIN_RET == \
        pytest.approx(FIG5_TARGETS_NS["dipc_low"])


def test_sem_same_cpu_per_side_composition(costs):
    """One side of the Sem (=CPU) ping-pong must cost half the round trip."""
    per_side = (
        2 * costs.TOUCH_ARG + costs.USER_STUB / 3  # user work
        + costs.SYSCALL_HW + costs.SYSCALL_TRAMPOLINE + costs.FUTEX_WAKE_WORK
        + costs.SYSCALL_HW + costs.SYSCALL_TRAMPOLINE + costs.FUTEX_WAIT_WORK
        + costs.FUTEX_RESUME
        + costs.CTX_SWITCH + costs.PT_SWITCH
    )
    assert per_side == pytest.approx(FIG5_TARGETS_NS["sem_same_cpu"] / 2,
                                     rel=0.02)


def test_cross_cpu_wake_is_expensive(costs):
    # §2.2: cross-CPU is dominated by IPIs + idle-loop scheduling
    assert costs.cross_cpu_wake() > 3 * costs.same_cpu_switch()


def test_apl_cache_miss_much_slower_than_hit(costs):
    assert costs.APL_CACHE_MISS > 100 * costs.APL_CACHE_HIT


def test_cycle_time(costs):
    assert costs.cycle == pytest.approx(1 / 3.1)


def test_track_upcall_dwarfs_fast_path(costs):
    # cold path executes a syscall in the target's management thread
    assert costs.TRACK_UPCALL > 100 * costs.TRACK_PROCESS_CALL
    assert costs.TRACK_TREE_LOOKUP > costs.TRACK_PROCESS_CALL


def test_disk_modes(costs):
    assert costs.HDD_READ > 0
    assert costs.TMPFS_READ == 0.0


def test_targets_cover_all_fig5_bars():
    expected = {"func", "syscall", "dipc_low", "dipc_high", "sem_same_cpu",
                "sem_cross_cpu", "pipe_same_cpu", "pipe_cross_cpu",
                "dipc_proc_low", "dipc_proc_high", "rpc_same_cpu",
                "rpc_cross_cpu", "dipc_user_rpc", "l4_same_cpu"}
    assert set(FIG5_TARGETS_NS) == expected


def test_dpti_sits_between_dipc_and_a_trap_heavy_baseline(costs):
    # a tagged-PT switch trap must cost more than dIPC's trusted proxy
    # path but avoid the full context-switch machinery of L4/pipes
    dipc_rt = costs.dipc_call_leg_ns() + costs.dipc_return_leg_ns()
    dpti_rt = costs.dpti_call_leg_ns() + costs.dpti_return_leg_ns()
    assert dipc_rt < dpti_rt
    assert dpti_rt < FIG5_TARGETS_NS["l4_same_cpu"]


def test_dpti_return_leg_halves_the_kernel_gate(costs):
    assert costs.dpti_return_leg_ns() == pytest.approx(
        0.5 * costs.DPTI_KERNEL_PATH + costs.DPTI_SWITCH
        + costs.SYSCALL_HW)


def test_offload_copy_zero_below_one_byte(costs):
    assert costs.offload_copy_ns(0) == 0.0
    assert costs.offload_copy_ns(-4096) == 0.0


def test_offload_overlap_hides_the_call_leg(costs):
    # small transfers finish inside the proxy-call window: only the
    # submission cost remains visible
    tiny = 16 * costs.DMA_BYTES_PER_NS  # 16ns of DMA, window is ~73ns
    assert costs.offload_copy_ns(int(tiny)) == pytest.approx(
        costs.DMA_SUBMIT)
    # huge transfers degenerate to submission + (dma - hidden window)
    big = 1 << 20
    assert costs.offload_copy_ns(big) == pytest.approx(
        costs.DMA_SUBMIT + big / costs.DMA_BYTES_PER_NS
        - costs.dipc_call_leg_ns())


def test_offload_threshold_is_the_crossover_point(costs):
    from repro.hw.cache import CacheModel
    cache = CacheModel()
    thr = costs.OFFLOAD_THRESHOLD
    # at the threshold the DMA engine beats touching the bytes inline;
    # one power-of-two below, the fixed submission cost still loses
    assert costs.offload_copy_ns(thr) < cache.touch_ns(thr)
    assert costs.offload_copy_ns(thr // 2) > cache.touch_ns(thr // 2)
