"""Tests for the copy-bandwidth cache model (drives Figure 6's knees)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.hw.cache import CacheModel


@pytest.fixture
def cache():
    return CacheModel()


def test_tiers_are_monotonically_slower(cache):
    assert cache.l1_bw > cache.l2_bw > cache.llc_bw > cache.dram_bw


def test_bandwidth_tier_selection(cache):
    assert cache.bandwidth_for(1 * units.KB) == cache.l1_bw
    assert cache.bandwidth_for(64 * units.KB) == cache.l2_bw
    assert cache.bandwidth_for(1 * units.MB) == cache.llc_bw
    assert cache.bandwidth_for(64 * units.MB) == cache.dram_bw


def test_boundaries_inclusive(cache):
    assert cache.bandwidth_for(cache.l1_size) == cache.l1_bw
    assert cache.bandwidth_for(cache.l1_size + 1) == cache.l2_bw


def test_zero_copy_is_free(cache):
    assert cache.copy_ns(0) == 0.0


def test_copy_includes_startup(cache):
    assert cache.copy_ns(1, startup=3.0) == pytest.approx(3.0 + 1 / cache.l1_bw)


def test_footprint_override(cache):
    # a pipe bounces data through a 64KB kernel buffer: large copies keep
    # L2-class bandwidth rather than falling off the LLC cliff
    big = 4 * units.MB
    capped = cache.copy_ns(big, footprint=64 * units.KB)
    uncapped = cache.copy_ns(big)
    assert capped < uncapped


def test_negative_size_rejected(cache):
    with pytest.raises(ValueError):
        cache.copy_ns(-1)


def test_touch_is_half_a_copy(cache):
    size = 16 * units.KB
    assert cache.touch_ns(size) == pytest.approx(
        (cache.copy_ns(size, startup=0.0)) / 2)


@given(st.integers(min_value=1, max_value=32 * units.MB))
def test_copy_monotonic_in_size(size):
    cache = CacheModel()
    assert cache.copy_ns(size + 1) >= cache.copy_ns(size)


@given(st.integers(min_value=1, max_value=32 * units.MB))
def test_copy_time_positive(size):
    assert CacheModel().copy_ns(size) > 0
