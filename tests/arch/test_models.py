"""Tests for the Table 1 architecture comparison."""

import pytest

from repro.arch import (CHERI, CODOMs, ConventionalCPU, MMP, table1)


def test_codoms_switch_is_a_call():
    model = CODOMs()
    assert model.switch_ns() == pytest.approx(model.costs.FUNC_CALL)


def test_codoms_has_cheapest_switch():
    rows = {row.name: row.switch_ns for row in table1()}
    assert rows["CODOMs"] < rows["MMP"]
    assert rows["CODOMs"] < rows["Conventional CPU"]
    assert rows["CODOMs"] < rows["CHERI"]


def test_cheri_pays_exceptions():
    model = CHERI()
    assert model.switch_ns() == 2 * model.costs.EXCEPTION
    # §4.1: exceptions are worse than even the conventional syscall path
    assert model.switch_ns() > ConventionalCPU().switch_ns()


def test_mmp_pipeline_flush_beats_syscall_path():
    assert MMP().switch_ns() < ConventionalCPU().switch_ns()


def test_capability_data_is_size_independent():
    model = CODOMs()
    assert model.data_ns(64) == model.data_ns(1 << 20)


def test_conventional_data_scales_with_size():
    model = ConventionalCPU()
    assert model.data_ns(1 << 20) > model.data_ns(64) * 100


def test_mmp_large_data_prefers_table_writes():
    model = MMP()
    big = 1 << 22
    assert model.data_ns(big) == 2 * model.costs.MMP_PROT_WRITE


def test_table1_has_four_rows_with_ops_text():
    rows = table1()
    assert len(rows) == 4
    assert all(row.switch_ops and row.data_ops for row in rows)
    assert [row.name for row in rows] == \
        ["Conventional CPU", "CHERI", "MMP", "CODOMs"]
