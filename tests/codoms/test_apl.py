"""Tests for APLs and the permission lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codoms.apl import APL, APLRegistry, Permission


class TestPermission:
    def test_ordering(self):
        assert (Permission.NIL < Permission.CALL < Permission.READ <
                Permission.WRITE < Permission.OWNER)

    def test_owner_maps_to_write_in_hardware(self):
        assert Permission.OWNER.hardware() is Permission.WRITE

    def test_call_grants_only_calls(self):
        perm = Permission.CALL
        assert perm.allows_call()
        assert not perm.allows_read()
        assert not perm.allows_write()
        assert not perm.allows_arbitrary_jump()

    def test_read_grants_arbitrary_jump(self):
        # §4.1: Read "allows reading ... as well as call/jump into
        # arbitrary addresses"
        assert Permission.READ.allows_arbitrary_jump()
        assert not Permission.READ.allows_write()

    def test_write_implies_read(self):
        assert Permission.WRITE.allows_read()
        assert Permission.WRITE.allows_call()


class TestAPL:
    def test_default_is_nil(self):
        apl = APL(tag=1)
        assert apl.permission_to(2) is Permission.NIL

    def test_implicit_self_write(self):
        apl = APL(tag=1)
        assert apl.permission_to(1) is Permission.WRITE

    def test_grant_and_revoke(self):
        apl = APL(tag=1)
        apl.grant(2, Permission.READ)
        assert apl.permission_to(2) is Permission.READ
        apl.revoke(2)
        assert apl.permission_to(2) is Permission.NIL

    def test_grant_owner_installs_write(self):
        apl = APL(tag=1)
        apl.grant(2, Permission.OWNER)
        assert apl.permission_to(2) is Permission.WRITE

    def test_version_bumps_on_change(self):
        apl = APL(tag=1)
        before = apl.version
        apl.grant(2, Permission.CALL)
        assert apl.version > before

    def test_nil_grant_removes_entry(self):
        apl = APL(tag=1)
        apl.grant(2, Permission.CALL)
        apl.grant(2, Permission.NIL)
        assert len(apl) == 0


class TestAPLRegistry:
    def test_lazily_creates_apls(self):
        reg = APLRegistry()
        assert reg.permission(1, 2) is Permission.NIL
        reg.apl_of(1).grant(2, Permission.CALL)
        assert reg.permission(1, 2) is Permission.CALL

    def test_untagged_pages_unreachable_across(self):
        reg = APLRegistry()
        assert reg.permission(None, 1) is Permission.NIL
        assert reg.permission(1, None) is Permission.NIL
        assert reg.permission(None, None) is Permission.WRITE

    def test_drop_tag_scrubs_everywhere(self):
        reg = APLRegistry()
        reg.apl_of(1).grant(3, Permission.WRITE)
        reg.apl_of(2).grant(3, Permission.READ)
        reg.drop_tag(3)
        assert reg.permission(1, 3) is Permission.NIL
        assert reg.permission(2, 3) is Permission.NIL

    def test_figure4_scenario(self):
        """The paper's Figure 4: A may call into B's entry points; B has
        read access to C; A cannot touch C at all."""
        reg = APLRegistry()
        reg.apl_of("A").grant("B", Permission.CALL)
        reg.apl_of("B").grant("C", Permission.READ)
        assert reg.permission("A", "B").allows_call()
        assert not reg.permission("A", "B").allows_read()
        assert reg.permission("B", "C").allows_arbitrary_jump()
        assert reg.permission("A", "C") is Permission.NIL


@given(st.sampled_from(list(Permission)))
def test_property_hardware_clamp_idempotent(perm):
    assert perm.hardware().hardware() is perm.hardware()


@given(st.sampled_from(list(Permission)), st.sampled_from(list(Permission)))
def test_property_grant_then_query_returns_hardware_perm(p1, p2):
    apl = APL(tag=0)
    apl.grant(1, p1)
    apl.grant(1, p2)
    assert apl.permission_to(1) is p2.hardware()
