"""Tests for the Domain Capability Stack and its privileged base register."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codoms.apl import Permission
from repro.codoms.capability import mint_from_apl
from repro.codoms.dcs import DCSPool, DomainCapabilityStack
from repro.errors import CapabilityFault


def cap(n=0):
    return mint_from_apl(Permission.WRITE, 0x1000 * (n + 1), 16,
                         Permission.READ, synchronous=True,
                         owner_thread=None)


def test_push_pop_lifo():
    dcs = DomainCapabilityStack()
    a, b = cap(0), cap(1)
    dcs.push(a)
    dcs.push(b)
    assert dcs.pop() is b
    assert dcs.pop() is a


def test_pop_empty_faults():
    with pytest.raises(CapabilityFault):
        DomainCapabilityStack().pop()


def test_only_capabilities_allowed():
    with pytest.raises(CapabilityFault):
        DomainCapabilityStack().push("not a capability")


def test_overflow():
    dcs = DomainCapabilityStack(limit=2)
    dcs.push(cap(0))
    dcs.push(cap(1))
    with pytest.raises(CapabilityFault):
        dcs.push(cap(2))


def test_base_register_hides_caller_entries():
    """DCS integrity (§5.2.3): the proxy raises the base so the callee
    cannot pop the caller's spilled capabilities."""
    dcs = DomainCapabilityStack()
    caller_cap, arg_cap = cap(0), cap(1)
    dcs.push(caller_cap)
    old_base = dcs.set_base(dcs.raw_depth)
    dcs.push(arg_cap)
    assert dcs.pop() is arg_cap
    with pytest.raises(CapabilityFault):
        dcs.pop()  # caller's entry is below the base
    dcs.set_base(old_base)
    assert dcs.pop() is caller_cap


def test_peek_respects_base():
    dcs = DomainCapabilityStack()
    dcs.push(cap(0))
    dcs.set_base(1)
    with pytest.raises(CapabilityFault):
        dcs.peek()


def test_set_base_bounds_checked():
    dcs = DomainCapabilityStack()
    with pytest.raises(CapabilityFault):
        dcs.set_base(-1)
    with pytest.raises(CapabilityFault):
        dcs.set_base(1)


def test_visible_lists_only_above_base():
    dcs = DomainCapabilityStack()
    below, above = cap(0), cap(1)
    dcs.push(below)
    dcs.set_base(1)
    dcs.push(above)
    assert dcs.visible() == [above]


def test_depth_counts_visible_entries():
    dcs = DomainCapabilityStack()
    dcs.push(cap(0))
    dcs.push(cap(1))
    dcs.set_base(1)
    assert dcs.depth == 1
    assert dcs.raw_depth == 2


class TestDCSPool:
    def test_acquire_release_reuses(self):
        pool = DCSPool()
        dcs = pool.acquire()
        pool.release(dcs)
        assert pool.acquire() is dcs
        assert pool.allocated == 1

    def test_released_stack_is_wiped(self):
        """DCS confidentiality must hold across borrowers."""
        pool = DCSPool()
        dcs = pool.acquire()
        dcs.push(cap(0))
        dcs.set_base(1)
        pool.release(dcs)
        fresh = pool.acquire()
        assert fresh.raw_depth == 0
        assert fresh.base == 0


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=100))
def test_property_depth_never_negative(ops):
    dcs = DomainCapabilityStack()
    expected = 0
    for op in ops:
        if op == "push":
            dcs.push(cap())
            expected += 1
        else:
            try:
                dcs.pop()
                expected -= 1
            except CapabilityFault:
                assert expected == 0
    assert dcs.raw_depth == expected
