"""Property-based end-to-end checks of the CODOMs access engine against
an independent oracle written straight from the paper's §4.1 rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.codoms.access import AccessEngine, CodomsContext
from repro.codoms.apl import APLRegistry, Permission
from repro.errors import AccessFault, EntryAlignmentFault, ProtectionFault
from repro.mem.addrspace import AddressSpace
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory

NUM_DOMAINS = 4
PAGES_PER_DOMAIN = 2
PAGE = units.PAGE_SIZE

perm_strategy = st.sampled_from([Permission.NIL, Permission.CALL,
                                 Permission.READ, Permission.WRITE])


def build_system(grants):
    """grants: dict[(src, dst)] -> Permission over NUM_DOMAINS domains."""
    table = PageTable(PhysicalMemory())
    for dom in range(NUM_DOMAINS):
        for page in range(PAGES_PER_DOMAIN):
            table.map_page(dom * PAGES_PER_DOMAIN + page, tag=dom,
                           execute=True)
    apls = APLRegistry()
    for (src, dst), perm in grants.items():
        if src != dst:
            apls.apl_of(src).grant(dst, perm)
    return AccessEngine(AddressSpace(table), apls)


def oracle_data(grants, src, dst, write):
    """§4.1: implicit write to own pages; else the APL entry decides."""
    if src == dst:
        return True
    perm = grants.get((src, dst), Permission.NIL)
    return perm.allows_write() if write else perm.allows_read()


def oracle_call(grants, src, dst, aligned):
    if src == dst:
        return True
    perm = grants.get((src, dst), Permission.NIL)
    if perm.allows_arbitrary_jump():
        return True
    return perm.allows_call() and aligned


grants_strategy = st.dictionaries(
    keys=st.tuples(st.integers(0, NUM_DOMAINS - 1),
                   st.integers(0, NUM_DOMAINS - 1)),
    values=perm_strategy, max_size=12)


@settings(max_examples=150, deadline=None)
@given(grants=grants_strategy,
       src=st.integers(0, NUM_DOMAINS - 1),
       dst=st.integers(0, NUM_DOMAINS - 1),
       write=st.booleans(),
       offset=st.integers(0, PAGE - 16))
def test_property_data_access_matches_oracle(grants, src, dst, write,
                                             offset):
    engine = build_system(grants)
    ctx = CodomsContext(tag=src)
    addr = dst * PAGES_PER_DOMAIN * PAGE + offset
    expected = oracle_data(grants, src, dst, write)
    try:
        engine.check_data(ctx, addr, 8, write=write)
        allowed = True
    except AccessFault:
        allowed = False
    assert allowed == expected


@settings(max_examples=150, deadline=None)
@given(grants=grants_strategy,
       src=st.integers(0, NUM_DOMAINS - 1),
       dst=st.integers(0, NUM_DOMAINS - 1),
       offset=st.integers(0, PAGE - 1))
def test_property_control_transfer_matches_oracle(grants, src, dst,
                                                  offset):
    engine = build_system(grants)
    ctx = CodomsContext(tag=src)
    addr = dst * PAGES_PER_DOMAIN * PAGE + offset
    aligned = addr % engine.entry_align == 0
    expected = oracle_call(grants, src, dst, aligned)
    try:
        engine.check_call(ctx, addr)
        allowed = True
    except (AccessFault, EntryAlignmentFault):
        allowed = False
    assert allowed == expected
    if allowed:
        assert ctx.current_tag == dst  # landing switches the domain


@settings(max_examples=80, deadline=None)
@given(grants=grants_strategy,
       src=st.integers(0, NUM_DOMAINS - 1),
       dst=st.integers(0, NUM_DOMAINS - 1),
       want=st.sampled_from([Permission.CALL, Permission.READ,
                             Permission.WRITE]))
def test_property_minting_never_amplifies_apl(grants, src, dst, want):
    """A capability minted by src over dst's pages can never authorize
    more than src's APL does."""
    engine = build_system(grants)
    ctx = CodomsContext(tag=src)
    base = dst * PAGES_PER_DOMAIN * PAGE
    try:
        cap = engine.mint(ctx, base, 64, want)
    except ProtectionFault:
        return  # refusing is always safe
    # if minting succeeded, every access the cap grants must also be
    # granted by the APL rules the cap was derived from
    if cap.grants(base, 8, write=True):
        assert oracle_data(grants, src, dst, write=True)
    if cap.grants(base, 8, write=False):
        assert oracle_data(grants, src, dst, write=False)
