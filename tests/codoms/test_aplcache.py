"""Tests for the 32-entry per-hardware-thread APL cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codoms.aplcache import APL_CACHE_ENTRIES, APLCache, APLCacheMiss


def test_cache_has_32_entries():
    assert APL_CACHE_ENTRIES == 32
    assert APLCache().capacity == 32


def test_miss_raises_then_fill_hits():
    cache = APLCache()
    with pytest.raises(APLCacheMiss):
        cache.lookup(7)
    hw = cache.fill(7)
    assert cache.lookup(7) == hw
    assert cache.hits == 1 and cache.misses == 1


def test_hw_tags_fit_in_5_bits():
    """§4.3: the 32-entry cache yields a 5-bit hardware domain tag."""
    cache = APLCache()
    hw_tags = {cache.fill(tag) for tag in range(32)}
    assert len(hw_tags) == 32
    assert all(0 <= hw < 32 for hw in hw_tags)


def test_fill_is_idempotent():
    cache = APLCache()
    assert cache.fill(5) == cache.fill(5)


def test_lru_eviction():
    cache = APLCache(entries=2)
    cache.fill(1)
    cache.fill(2)
    cache.lookup(1)      # 2 becomes LRU
    cache.fill(3)        # evicts 2
    assert cache.contains(1) and cache.contains(3)
    assert not cache.contains(2)


def test_evicted_hw_tag_is_recycled():
    cache = APLCache(entries=2)
    cache.fill(1)
    hw2 = cache.fill(2)
    cache.fill(1)  # keep 1 hot
    hw3 = cache.fill(3)  # evicts 2
    assert hw3 == hw2


def test_hw_tag_of_uncached_returns_none():
    cache = APLCache()
    cache.fill(1)
    assert cache.hw_tag_of(1) is not None
    assert cache.hw_tag_of(99) is None


def test_invalidate():
    cache = APLCache()
    cache.fill(1)
    cache.invalidate(1)
    assert not cache.contains(1)
    cache.invalidate(1)  # harmless twice


def test_swap_out_and_in_for_context_switch():
    cache = APLCache()
    hw = cache.fill(9)
    saved = cache.swap_out()
    assert cache.occupancy() == 0
    cache.fill(55)
    cache.swap_in(saved)
    assert cache.hw_tag_of(9) == hw
    assert not cache.contains(55)


def test_swap_in_frees_remaining_slots():
    cache = APLCache(entries=4)
    cache.fill(1)
    saved = cache.swap_out()
    cache.swap_in(saved)
    for tag in (2, 3, 4):
        cache.fill(tag)
    assert cache.occupancy() == 4


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=300))
def test_property_never_exceeds_capacity_and_tags_unique(tags):
    cache = APLCache()
    for tag in tags:
        cache.fill(tag)
        assert cache.occupancy() <= cache.capacity
    seen = [cache.hw_tag_of(t) for t in set(tags) if cache.contains(t)]
    assert len(seen) == len(set(seen))
