"""Tests for transient capabilities: attenuation, revocation, thread binding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codoms.apl import Permission
from repro.codoms.capability import (CAP_REGISTERS, CAP_SIZE_BYTES,
                                     Capability, mint_from_apl)
from repro.errors import CapabilityFault

THREAD_A = object()
THREAD_B = object()


def make_cap(base=0x1000, size=0x1000, perm=Permission.WRITE, *,
             synchronous=True, thread=THREAD_A):
    return mint_from_apl(Permission.WRITE, base, size, perm,
                         synchronous=synchronous, owner_thread=thread)


def test_constants_match_paper():
    assert CAP_REGISTERS == 8       # "8 per-thread capability registers"
    assert CAP_SIZE_BYTES == 32     # "they occupy 32B"


def test_grants_within_range():
    cap = make_cap()
    assert cap.grants(0x1000, 16, write=True)
    assert cap.grants(0x1FFF, 1, write=False)


def test_denies_outside_range():
    cap = make_cap()
    assert not cap.grants(0xFFF, 1, write=False)
    assert not cap.grants(0x1FF0, 32, write=False)  # runs past the end


def test_read_cap_denies_write():
    cap = make_cap(perm=Permission.READ)
    assert cap.grants(0x1000, 1, write=False)
    assert not cap.grants(0x1000, 1, write=True)


def test_call_cap_denies_data_access():
    cap = make_cap(perm=Permission.CALL)
    assert not cap.grants(0x1000, 1, write=False)
    assert cap.grants_call(0x1000)


def test_mint_cannot_amplify_apl_authority():
    with pytest.raises(CapabilityFault):
        mint_from_apl(Permission.READ, 0, 16, Permission.WRITE,
                      synchronous=True, owner_thread=THREAD_A)


def test_mint_rejects_empty_range():
    with pytest.raises(CapabilityFault):
        make_cap(size=0)


def test_mint_rejects_nil():
    with pytest.raises(CapabilityFault):
        make_cap(perm=Permission.NIL)


class TestDerivation:
    def test_narrowing_ok(self):
        parent = make_cap()
        child = parent.derive(base=0x1100, size=0x100, perm=Permission.READ)
        assert child.grants(0x1100, 1, write=False)
        assert not child.grants(0x1000, 1, write=False)

    def test_widening_range_rejected(self):
        parent = make_cap()
        with pytest.raises(CapabilityFault):
            parent.derive(base=0x0F00, size=0x100)
        with pytest.raises(CapabilityFault):
            parent.derive(base=0x1F00, size=0x200)

    def test_amplifying_permission_rejected(self):
        parent = make_cap(perm=Permission.READ)
        with pytest.raises(CapabilityFault):
            parent.derive(perm=Permission.WRITE)


class TestRevocation:
    def test_immediate_revocation(self):
        cap = make_cap()
        assert cap.is_valid()
        cap.revoke()
        assert not cap.is_valid()
        assert not cap.grants(0x1000, 1, write=False)

    def test_revoking_parent_kills_derived(self):
        """§4.2: revocation counters give immediate revocation, unlike
        GC-based capability systems."""
        parent = make_cap()
        child = parent.derive(size=0x10)
        parent.revoke()
        assert not child.is_valid()

    def test_cannot_derive_from_revoked(self):
        cap = make_cap()
        cap.revoke()
        with pytest.raises(CapabilityFault):
            cap.derive(size=0x10)

    def test_independent_roots_unaffected(self):
        a, b = make_cap(), make_cap()
        a.revoke()
        assert b.is_valid()


class TestThreadBinding:
    def test_synchronous_cap_bound_to_thread(self):
        cap = make_cap(synchronous=True, thread=THREAD_A)
        assert cap.grants(0x1000, 1, write=False, thread=THREAD_A)
        assert not cap.grants(0x1000, 1, write=False, thread=THREAD_B)
        assert not cap.grants_call(0x1000, thread=THREAD_B)

    def test_asynchronous_cap_crosses_threads(self):
        cap = make_cap(synchronous=False, thread=THREAD_A)
        assert cap.grants(0x1000, 1, write=False, thread=THREAD_B)


@given(
    base=st.integers(min_value=0, max_value=2**40),
    size=st.integers(min_value=1, max_value=2**20),
    sub_lo=st.integers(min_value=0, max_value=2**20),
    sub_len=st.integers(min_value=1, max_value=2**20),
)
def test_property_derived_range_is_subset(base, size, sub_lo, sub_len):
    parent = mint_from_apl(Permission.WRITE, base, size, Permission.WRITE,
                           synchronous=True, owner_thread=THREAD_A)
    new_base = base + sub_lo
    try:
        child = parent.derive(base=new_base, size=sub_len)
    except CapabilityFault:
        assert new_base < base or new_base + sub_len > base + size
    else:
        assert child.base >= parent.base
        assert child.end <= parent.end


@given(perm=st.sampled_from([Permission.CALL, Permission.READ,
                             Permission.WRITE]),
       want=st.sampled_from([Permission.CALL, Permission.READ,
                             Permission.WRITE]))
def test_property_derivation_never_amplifies(perm, want):
    parent = mint_from_apl(Permission.WRITE, 0, 64, perm,
                           synchronous=True, owner_thread=THREAD_A)
    try:
        child = parent.derive(perm=want)
    except CapabilityFault:
        assert want > perm
    else:
        assert child.perm <= parent.perm
