"""Tests for the code-centric access engine — the crux of CODOMs (§4.1).

Builds the paper's Figure 4 layout: domain A (pages 1,2,4,7), domain B
(page 3, entry points), domain C (pages 0,5,6); A's APL grants CALL to B,
B's APL grants READ to C.
"""

import pytest

from repro import units
from repro.codoms.access import AccessEngine, CodomsContext
from repro.codoms.apl import APLRegistry, Permission
from repro.errors import (AccessFault, CapabilityFault, EntryAlignmentFault,
                          PrivilegeFault)
from repro.mem.addrspace import AddressSpace
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory

PAGE = units.PAGE_SIZE
TAG_A, TAG_B, TAG_C = 1, 2, 3


@pytest.fixture
def system():
    table = PageTable(PhysicalMemory())
    layout = {0: TAG_C, 1: TAG_A, 2: TAG_A, 3: TAG_B, 4: TAG_A,
              5: TAG_C, 6: TAG_C, 7: TAG_A}
    for vpn, tag in layout.items():
        table.map_page(vpn, tag=tag, execute=True)
    apls = APLRegistry()
    apls.apl_of(TAG_A).grant(TAG_B, Permission.CALL)
    apls.apl_of(TAG_B).grant(TAG_C, Permission.READ)
    engine = AccessEngine(AddressSpace(table), apls)
    return engine


@pytest.fixture
def ctx_a():
    return CodomsContext(tag=TAG_A)


@pytest.fixture
def ctx_b():
    return CodomsContext(tag=TAG_B)


def addr(vpn, off=0):
    return vpn * PAGE + off


class TestDataAccess:
    def test_own_domain_full_access(self, system, ctx_a):
        system.write(ctx_a, addr(1, 10), b"hi")
        assert system.read(ctx_a, addr(1, 10), 2) == b"hi"

    def test_call_permission_gives_no_data_access(self, system, ctx_a):
        with pytest.raises(AccessFault):
            system.read(ctx_a, addr(3), 1)
        with pytest.raises(AccessFault):
            system.write(ctx_a, addr(3), b"x")

    def test_read_permission_allows_reads_not_writes(self, system, ctx_b):
        system.read(ctx_b, addr(5), 4)
        with pytest.raises(AccessFault):
            system.write(ctx_b, addr(5), b"x")

    def test_unrelated_domain_fully_isolated(self, system, ctx_a):
        with pytest.raises(AccessFault):
            system.read(ctx_a, addr(0), 1)

    def test_page_ro_bit_honoured_despite_apl_write(self, system):
        """§4.1: an APL with write access will not allow writing into a
        read-only page of that domain."""
        system.apls.apl_of(TAG_A).grant(TAG_C, Permission.WRITE)
        system.space.table.lookup(0).write = False
        ctx = CodomsContext(tag=TAG_A)
        system.read(ctx, addr(0), 1)
        with pytest.raises(AccessFault):
            system.write(ctx, addr(0), b"x")

    def test_capability_fallback_grants_access(self, system, ctx_a):
        cap = system.mint(CodomsContext(tag=TAG_C), addr(0), 16,
                          Permission.WRITE)
        ctx_a.install_cap(0, cap)
        system.write(ctx_a, addr(0), b"ok")
        assert system.read(ctx_a, addr(0), 2) == b"ok"

    def test_revoked_capability_stops_granting(self, system, ctx_a):
        cap = system.mint(CodomsContext(tag=TAG_C), addr(0), 16,
                          Permission.READ)
        ctx_a.install_cap(0, cap)
        system.read(ctx_a, addr(0), 1)
        cap.revoke()
        with pytest.raises(AccessFault):
            system.read(ctx_a, addr(0), 1)

    def test_all_eight_registers_are_checked(self, system, ctx_a):
        cap = system.mint(CodomsContext(tag=TAG_C), addr(0), 16,
                          Permission.READ)
        ctx_a.install_cap(7, cap)
        system.read(ctx_a, addr(0), 1)

    def test_cross_domain_counter(self, system, ctx_b):
        before = system.cross_domain_accesses
        system.read(ctx_b, addr(5), 1)   # cross-domain (B -> C)
        system.read(ctx_b, addr(3), 1)   # own domain
        assert system.cross_domain_accesses == before + 1


class TestControlTransfer:
    def test_call_to_aligned_entry_point(self, system, ctx_a):
        new_tag = system.check_call(ctx_a, addr(3, 0))
        assert new_tag == TAG_B
        assert ctx_a.current_tag == TAG_B

    def test_call_to_unaligned_address_faults(self, system, ctx_a):
        with pytest.raises(EntryAlignmentFault):
            system.check_call(ctx_a, addr(3, 17))

    def test_read_permission_allows_arbitrary_jump(self, system, ctx_b):
        system.check_call(ctx_b, addr(5, 17))
        assert ctx_b.current_tag == TAG_C

    def test_no_permission_no_call(self, system, ctx_a):
        with pytest.raises(AccessFault):
            system.check_call(ctx_a, addr(0, 0))

    def test_figure4_transitivity(self, system, ctx_a):
        """A calls B; now running as B, the thread may jump into C, which
        A could never reach directly (Figure 4's walkthrough)."""
        system.check_call(ctx_a, addr(3, 0))
        system.check_call(ctx_a, addr(5, 64))
        assert ctx_a.current_tag == TAG_C

    def test_call_via_call_capability_needs_alignment(self, system, ctx_a):
        cap = system.mint(CodomsContext(tag=TAG_C), addr(0), PAGE,
                          Permission.CALL)
        ctx_a.install_cap(0, cap)
        system.check_call(ctx_a, addr(0, 64))
        ctx_a.current_tag = TAG_A
        with pytest.raises(AccessFault):
            system.check_call(ctx_a, addr(0, 65))

    def test_non_executable_page_fetch_faults(self, system, ctx_a):
        system.space.table.lookup(2).execute = False
        with pytest.raises(AccessFault):
            system.check_call(ctx_a, addr(2, 0))

    def test_privilege_follows_priv_cap_bit(self, system, ctx_a):
        """The privileged-capability bit switches privilege implicitly."""
        system.space.table.lookup(3).privileged = True
        assert not ctx_a.privileged
        system.check_call(ctx_a, addr(3, 0))
        assert ctx_a.privileged
        system.check_privileged(ctx_a)  # no fault

    def test_privileged_instruction_denied_otherwise(self, system, ctx_a):
        with pytest.raises(PrivilegeFault):
            system.check_privileged(ctx_a, "wrmsr")


class TestMinting:
    def test_mint_over_own_pages(self, system, ctx_a):
        cap = system.mint(ctx_a, addr(1), 2 * PAGE, Permission.WRITE)
        assert cap.grants(addr(2, 100), 4, write=True)

    def test_mint_cannot_exceed_apl(self, system, ctx_a):
        with pytest.raises(CapabilityFault):
            system.mint(ctx_a, addr(0), 16, Permission.READ)

    def test_mint_range_spanning_mixed_authority_takes_min(self, system,
                                                           ctx_b):
        # pages 5-6 belong to C, which B may only READ: WRITE mint fails
        with pytest.raises(CapabilityFault):
            system.mint(ctx_b, addr(5), 2 * PAGE, Permission.WRITE)
        cap = system.mint(ctx_b, addr(5), 2 * PAGE, Permission.READ)
        assert cap.grants(addr(6, 8), 1, write=False)
        # a range straddling into domain A (page 4) carries B's NIL to A
        with pytest.raises(CapabilityFault):
            system.mint(ctx_b, addr(3), 2 * PAGE, Permission.READ)

    def test_mint_over_readonly_page_caps_at_read(self, system, ctx_a):
        system.space.table.lookup(1).write = False
        with pytest.raises(CapabilityFault):
            system.mint(ctx_a, addr(1), 16, Permission.WRITE)
