"""Tests for wake placement, cache-hotness and newidle stealing — the
scheduler mechanics behind §7.4's imbalance observations."""

import pytest

from repro.kernel import Kernel
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_cache_hot_wakee_stays_on_busy_last_cpu(kernel, proc):
    """A thread that just ran is cache-hot: waking it targets its last
    CPU even when that CPU is busy and another is idle."""
    def pingpong(t):
        while True:
            value = yield t.block("wait")
            if value == "stop":
                return

    wakee = kernel.spawn(proc, pingpong, name="wakee")

    def hog(t):
        yield t.compute(200_000)

    def driver(t):
        # let the wakee run once (on CPU0) so it becomes cache-hot there
        yield t.compute(10)
        t.kernel.wake(wakee, "first", from_thread=t)
        yield t.compute(10)
        yield from t.sleep(1000)
        # now occupy CPU0 and wake the (hot) wakee again
        t.kernel.spawn(proc, hog, pin=0, name="hog")
        yield from t.sleep(1000)
        t.kernel.wake(wakee, "second")
        yield from t.sleep(1000)
        assert wakee.state == "runnable"
        assert wakee in t.kernel.scheduler.runqueues[0]
        t.kernel.wake(wakee, "stop")

    kernel.spawn(proc, driver, pin=0, name="driver")
    kernel.run(until_ns=1_000_000)


def test_cold_thread_is_stolen_by_idle_cpu(kernel, proc):
    """newidle balancing pulls runnable threads that are no longer
    cache-hot."""
    migration = kernel.costs.SCHED_MIGRATION_COST

    def worker(t):
        yield t.compute(100)

    def hog(t):
        yield t.compute(3 * migration)

    kernel.spawn(proc, hog, pin=None, name="hog")
    # a second thread lands behind the hog; once it turns cold, CPU1
    # (idle) steals it
    victim = kernel.spawn(proc, worker, name="victim")
    kernel.run()
    assert victim.is_done
    assert kernel.scheduler.steals >= 0  # stealing may or may not trigger
    # crucially the victim did not wait for the whole hog
    assert kernel.engine.now() >= 3 * migration


def test_pinned_threads_are_never_stolen(kernel, proc):
    def hog(t):
        yield t.compute(5 * kernel.costs.SCHED_MIGRATION_COST)

    def worker(t):
        yield t.compute(100)

    kernel.spawn(proc, hog, pin=0, name="hog")
    pinned = kernel.spawn(proc, worker, pin=0, name="pinned")
    kernel.run()
    assert pinned.last_cpu_index == 0
    assert kernel.scheduler.steals == 0


def test_steal_counter_increments_when_stealing_happens(kernel, proc):
    """Force a clean steal: one CPU holds a long-running thread plus a
    *cold* queued thread; the other CPU is idle and pulls it."""
    def hog(t):
        yield t.compute(10 * kernel.costs.SCHED_MIGRATION_COST)

    def late_worker(t):
        yield t.compute(1000)

    kernel.spawn(proc, hog, pin=None, name="hog")

    def spawn_cold():
        thread = kernel.spawn(proc, late_worker, name="cold", start=False)
        # force placement behind the hog on CPU0 despite CPU1 being free
        thread.state = "runnable"
        kernel.scheduler.runqueues[0].append(thread)
        # CPU1 is idle but only re-checks at its next dispatch; poke it
        # via a short-lived thread that finishes immediately
        kernel.spawn(proc, lambda t: iter(()), pin=1, name="poke")

    kernel.engine.post(10_000, spawn_cold)
    kernel.run()
    assert kernel.scheduler.steals >= 1


def test_conservation_across_many_threads(kernel, proc):
    """Total accounted time (busy + idle) equals CPUs x wall clock."""
    def body(t, n):
        for _ in range(n):
            yield t.compute(500)
            yield from t.sleep(300)

    for i in range(6):
        kernel.spawn(proc, lambda t, i=i: body(t, 3 + i))
    kernel.run()
    kernel.machine.flush_idle()
    total = kernel.machine.total_account().total()
    wall = kernel.engine.now() * kernel.machine.num_cpus
    assert total == pytest.approx(wall, rel=1e-6)
