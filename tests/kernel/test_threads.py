"""Tests for thread execution, blocking, joining and time charging."""

import pytest

from repro.kernel import Kernel
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_thread_runs_and_returns(kernel, proc):
    def body(t):
        yield t.compute(100)
        return 42

    thread = kernel.spawn(proc, body)
    kernel.run()
    assert thread.is_done
    assert thread.result == 42


def test_compute_advances_time_and_charges_user(kernel, proc):
    def body(t):
        yield t.compute(250)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    assert kernel.engine.now() >= 250
    assert kernel.machine.cpus[0].account.ns[Block.USER] == 250


def test_syscall_charges_all_three_blocks(kernel, proc):
    def body(t):
        yield from t.syscall(6.0)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    account = kernel.machine.cpus[0].account
    assert account.ns[Block.SYSCALL] == kernel.costs.SYSCALL_HW
    assert account.ns[Block.TRAMPOLINE] == kernel.costs.SYSCALL_TRAMPOLINE
    assert account.ns[Block.KERNEL] == 6.0


def test_block_and_wake_passes_value(kernel, proc):
    got = []

    def sleeper(t):
        value = yield t.block("test")
        got.append(value)

    thread = kernel.spawn(proc, sleeper)

    def waker(t):
        yield t.compute(50)
        t.kernel.wake(thread, "payload", from_thread=t)

    kernel.spawn(proc, waker)
    kernel.run()
    assert got == ["payload"]


def test_sleep_blocks_for_duration(kernel, proc):
    wake_times = []

    def body(t):
        yield from t.sleep(1000)
        wake_times.append(t.now())

    kernel.spawn(proc, body)
    kernel.run()
    assert wake_times and wake_times[0] >= 1000


def test_join_returns_result(kernel, proc):
    def worker(t):
        yield t.compute(10)
        return "done"

    results = []

    def joiner(t):
        worker_thread = t.kernel.spawn(proc, worker)
        results.append((yield from t.join(worker_thread)))

    kernel.spawn(proc, joiner)
    kernel.run()
    assert results == ["done"]


def test_join_reraises_exception(kernel, proc):
    def crasher(t):
        yield t.compute(1)
        raise ValueError("boom")

    caught = []

    def joiner(t):
        crash_thread = t.kernel.spawn(proc, crasher)
        try:
            yield from t.join(crash_thread)
        except ValueError as exc:
            caught.append(str(exc))

    kernel.spawn(proc, joiner)
    kernel.run()
    assert caught == ["boom"]


def test_crash_is_recorded_and_check_raises(kernel, proc):
    def body(t):
        yield t.compute(1)
        raise RuntimeError("unhandled")

    kernel.spawn(proc, body)
    kernel.run()
    assert len(kernel.crashed_threads) == 1
    with pytest.raises(RuntimeError):
        kernel.check()


def test_pinned_threads_stay_on_their_cpu(kernel, proc):
    def body(t):
        for _ in range(5):
            yield t.compute(10)
            yield t.yield_cpu()

    a = kernel.spawn(proc, body, pin=0)
    b = kernel.spawn(proc, body, pin=1)
    kernel.run()
    assert a.last_cpu_index == 0
    assert b.last_cpu_index == 1
    assert kernel.machine.cpus[0].account.ns[Block.USER] == 50
    assert kernel.machine.cpus[1].account.ns[Block.USER] == 50


def test_unpinned_threads_spread_across_idle_cpus(kernel, proc):
    def body(t):
        yield t.compute(1000)

    threads = [kernel.spawn(proc, body) for _ in range(2)]
    kernel.run()
    assert {t.last_cpu_index for t in threads} == {0, 1}


def test_idle_time_is_accounted(kernel, proc):
    def body(t):
        yield from t.sleep(10000)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    idle = kernel.machine.cpus[0].account.ns[Block.IDLE]
    assert idle >= 9000  # most of the 10us was idle


def test_non_effect_yield_is_a_crash(kernel, proc):
    def body(t):
        yield "garbage"

    thread = kernel.spawn(proc, body)
    kernel.run()
    assert isinstance(thread.exception, TypeError)


def test_wake_is_level_triggered_and_idempotent(kernel, proc):
    def body(t):
        yield t.compute(5)

    thread = kernel.spawn(proc, body)
    kernel.wake(thread)  # extra wake while runnable is harmless
    kernel.run()
    assert thread.is_done


def test_spawn_on_dead_process_rejected(kernel, proc):
    proc.exit(0)
    from repro.errors import DeadProcessError
    with pytest.raises(DeadProcessError):
        kernel.spawn(proc, lambda t: iter(()))
