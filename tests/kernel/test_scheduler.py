"""Tests for scheduling: context switches, preemption, IPI wakes, kills."""

import pytest

from repro.kernel import Kernel
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_context_switch_charges_block5(kernel, proc):
    def body(t):
        yield t.compute(10)
        yield from t.sleep(100)
        yield t.compute(10)

    kernel.spawn(proc, body, pin=0)
    kernel.spawn(proc, body, pin=0)
    kernel.run()
    assert kernel.scheduler.context_switches > 0
    assert kernel.machine.cpus[0].account.ns[Block.SCHED] > 0


def test_page_table_switch_charged_across_processes(kernel):
    pa = kernel.spawn_process("a")
    pb = kernel.spawn_process("b")

    def body(t):
        for _ in range(3):
            yield t.compute(10)
            yield t.yield_cpu()

    kernel.spawn(pa, body, pin=0)
    kernel.spawn(pb, body, pin=0)
    kernel.run()
    assert kernel.machine.cpus[0].account.ns[Block.PTSW] > 0


def test_no_page_table_switch_within_one_process(kernel, proc):
    def body(t):
        for _ in range(3):
            yield t.compute(10)
            yield t.yield_cpu()

    kernel.spawn(proc, body, pin=0)
    kernel.spawn(proc, body, pin=0)
    kernel.run()
    assert kernel.machine.cpus[0].account.ns[Block.PTSW] == 0


def test_timeslice_preemption_interleaves_cpu_hogs(kernel, proc):
    slice_ns = kernel.costs.TIMESLICE

    def hog(t):
        yield t.compute(3 * slice_ns)

    kernel.spawn(proc, hog, pin=0, name="hog-a")
    kernel.spawn(proc, hog, pin=0, name="hog-b")
    kernel.run()
    assert kernel.scheduler.preemptions >= 2


def test_single_thread_never_preempted(kernel, proc):
    def hog(t):
        yield t.compute(10 * kernel.costs.TIMESLICE)

    kernel.spawn(proc, hog, pin=0)
    kernel.run()
    assert kernel.scheduler.preemptions == 0


def test_cross_cpu_wake_of_idle_cpu_uses_ipi(kernel, proc):
    def sleeper(t):
        yield t.block("wait")

    target = kernel.spawn(proc, sleeper, pin=1)

    def waker(t):
        yield t.compute(10)
        t.kernel.wake(target, from_thread=t)
        yield t.compute(10)

    kernel.spawn(proc, waker, pin=0)
    kernel.run()
    assert kernel.scheduler.ipi_wakes == 1
    # target CPU paid the IPI handling + idle-exit scheduling
    account = kernel.machine.cpus[1].account
    assert account.ns[Block.KERNEL] >= kernel.costs.IPI_HANDLE
    assert account.ns[Block.SCHED] >= kernel.costs.IDLE_WAKE_SCHED


def test_same_cpu_wake_has_no_ipi(kernel, proc):
    def sleeper(t):
        yield t.block("wait")

    target = kernel.spawn(proc, sleeper, pin=0)

    def waker(t):
        yield t.compute(10)
        t.kernel.wake(target, from_thread=t)
        yield t.compute(10)

    kernel.spawn(proc, waker, pin=0)
    kernel.run()
    assert kernel.scheduler.ipi_wakes == 0
    assert target.is_done


def test_time_conservation_on_busy_cpu(kernel, proc):
    """Busy + idle time on a CPU must equal elapsed wall-clock."""
    def body(t):
        yield t.compute(500)
        yield from t.sleep(300)
        yield t.compute(200)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    cpu = kernel.machine.cpus[0]
    assert cpu.account.total() == pytest.approx(kernel.engine.now(), rel=1e-9)


def test_kill_process_cancels_threads(kernel):
    victim_proc = kernel.spawn_process("victim")

    def forever(t):
        while True:
            yield t.compute(100)

    def blocked(t):
        yield t.block("never")

    runner = kernel.spawn(victim_proc, forever, pin=0)
    waiter = kernel.spawn(victim_proc, blocked, pin=1)
    kernel.engine.post(1000, lambda: kernel.kill_process(victim_proc))
    kernel.run()
    assert runner.is_done
    assert waiter.is_done
    assert not victim_proc.alive


def test_runnable_count(kernel, proc):
    def hog(t):
        yield t.compute(10 * kernel.costs.TIMESLICE)

    kernel.spawn(proc, hog, pin=0)
    kernel.spawn(proc, hog, pin=0)
    kernel.spawn(proc, hog, pin=0)
    kernel.engine.run(max_events=4)
    assert kernel.scheduler.runnable_count() >= 1
