"""Tests for per-process resource accounting (§5.2.1) and shared-library
virtual copies (§6.1.3)."""

import pytest

from repro import units
from repro.core.api import DipcManager
from repro.errors import LoaderError
from repro.kernel import Kernel

from tests.core.conftest import wire_up_call


@pytest.fixture
def kernel():
    k = Kernel(num_cpus=2)
    DipcManager(k)
    return k


class TestCpuAccounting:
    def test_plain_thread_bills_its_own_process(self, kernel):
        proc = kernel.spawn_process("p")

        def body(t):
            yield t.compute(1000)

        kernel.spawn(proc, body)
        kernel.run()
        assert proc.cpu_ns == pytest.approx(1000)

    def test_dipc_call_bills_the_callee(self, kernel):
        """Time-slice donation: a web thread executing inside the
        database bills the database's CPU account."""
        manager = kernel.dipc
        web = kernel.spawn_process("web", dipc=True)
        database = kernel.spawn_process("database", dipc=True)

        def heavy_query(t, key):
            yield t.compute(50_000)
            return key

        address, _ = wire_up_call(manager, web, database,
                                  func=heavy_query)

        def body(t):
            yield t.compute(10_000)
            yield from t.kernel.dipc.call(t, address, "k")
            yield t.compute(5_000)

        kernel.spawn(web, body, pin=0)
        kernel.run()
        kernel.check()
        assert database.cpu_ns >= 50_000
        assert web.cpu_ns >= 15_000
        assert web.cpu_ns < 30_000  # the 50us query was not billed to web

    def test_memory_accounting(self, kernel):
        proc = kernel.spawn_process("p")
        proc.alloc_pages(3)
        proc.alloc_bytes(5000)
        assert proc.pages_allocated == 5


class TestSharedLibraries:
    def test_register_and_map(self, kernel):
        kernel.libraries.register("libphp", code_pages=4, rodata_pages=2,
                                  data_pages=1)
        proc = kernel.spawn_process("p", dipc=True)
        mapped = kernel.libraries.map_into(proc, "libphp")
        assert mapped.total_pages == 7
        assert proc.pages_allocated == 7

    def test_double_register_rejected(self, kernel):
        kernel.libraries.register("libm")
        with pytest.raises(LoaderError):
            kernel.libraries.register("libm")

    def test_map_unknown_rejected(self, kernel):
        proc = kernel.spawn_process("p", dipc=True)
        with pytest.raises(LoaderError):
            kernel.libraries.map_into(proc, "libghost")

    def test_virtual_copies_share_code_frames(self, kernel):
        """§6.1.3: code and read-only data of all virtual copies point
        to the same physical memory."""
        image = kernel.libraries.register("libc", code_pages=2,
                                          rodata_pages=1, data_pages=1)
        a = kernel.spawn_process("a", dipc=True)
        b = kernel.spawn_process("b", dipc=True)
        map_a = kernel.libraries.map_into(a, "libc")
        map_b = kernel.libraries.map_into(b, "libc")
        assert map_a.base != map_b.base  # distinct virtual copies
        frame_a = kernel.shared_table.lookup(
            map_a.base // units.PAGE_SIZE).frame
        frame_b = kernel.shared_table.lookup(
            map_b.base // units.PAGE_SIZE).frame
        assert frame_a is frame_b is image.code_frames[0]
        assert frame_a.refcount == 3  # canonical + two copies

    def test_writable_data_is_private(self, kernel):
        kernel.libraries.register("libdata", code_pages=1,
                                  rodata_pages=0, data_pages=1)
        a = kernel.spawn_process("a", dipc=True)
        b = kernel.spawn_process("b", dipc=True)
        map_a = kernel.libraries.map_into(a, "libdata")
        map_b = kernel.libraries.map_into(b, "libdata")
        data_a = map_a.base + units.PAGE_SIZE  # after the code page
        data_b = map_b.base + units.PAGE_SIZE
        a.space.write(data_a, b"AAAA")
        b.space.write(data_b, b"BBBB")
        assert a.space.read(data_a, 4) == b"AAAA"
        assert b.space.read(data_b, 4) == b"BBBB"

    def test_code_pages_are_read_only_executable_and_tagged(self, kernel):
        kernel.libraries.register("libx", code_bytes=b"\x90" * 100)
        proc = kernel.spawn_process("p", dipc=True)
        mapped = kernel.libraries.map_into(proc, "libx")
        pte = kernel.shared_table.lookup(mapped.base // units.PAGE_SIZE)
        assert pte.execute and pte.read and not pte.write
        assert pte.tag == proc.default_tag
        assert bytes(pte.frame.data[:4]) == b"\x90" * 4


class TestGvasPools:
    def test_pools_reduce_global_phase_traffic(self):
        from repro.mem.gvas import GlobalVAS
        pooled = GlobalVAS(per_cpu_pools=4)
        for pid in range(1, 9):
            pooled.alloc_block(pid, cpu=pid % 4)
        # same allocations without pools
        unpooled = GlobalVAS()
        for pid in range(1, 9):
            unpooled.alloc_block(pid)
        # both did 8 carves here (pool of depth 1 refills each time), but
        # pooled ownership bookkeeping still works
        assert len(pooled.blocks_of(3)) == 1
        assert pooled.blocks_of(3)[0].owner_pid == 3

    def test_pooled_blocks_are_reset_before_reuse(self):
        from repro.mem.gvas import GlobalVAS
        gvas = GlobalVAS(per_cpu_pools=2)
        block = gvas.alloc_block(1, cpu=0)
        addr = block.suballoc(4096)
        assert block.contains(addr)
        assert block.cursor > block.base
