"""Tests for the effect protocol and the L4-style direct handoff."""

import pytest

from repro.errors import SimulationError
from repro.kernel import Kernel
from repro.kernel.effects import (BlockThread, Charge, Handoff, YieldCPU,
                                  charge_kernel, charge_user)
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


class TestEffectObjects:
    def test_charge_defaults_to_user(self):
        assert Charge(5).block is Block.USER

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            Charge(-1)

    def test_charge_user_generator(self, kernel, proc):
        def body(t):
            yield from charge_user(100)
            yield from charge_kernel(50)

        kernel.spawn(proc, body, pin=0)
        kernel.run()
        account = kernel.machine.cpus[0].account
        assert account.ns[Block.USER] == 100
        assert account.ns[Block.KERNEL] == 50

    def test_reprs(self):
        assert "Charge" in repr(Charge(1))
        assert "futex" in repr(BlockThread("futex"))
        assert "Yield" in repr(YieldCPU())


class TestHandoff:
    def test_handoff_transfers_value_and_control(self, kernel, proc):
        log = []

        def receiver(t):
            value = yield t.block("wait")
            log.append(("got", value, t.now()))

        target = kernel.spawn(proc, receiver, pin=0)

        handed_at = []

        def sender(t):
            yield t.compute(100)
            handed_at.append(t.now())
            yield Handoff(target, "payload")
            log.append(("sender-back", t.now()))

        sender_thread = kernel.spawn(proc, sender, pin=0)
        kernel.engine.post(50_000, lambda: kernel.wake(sender_thread))
        kernel.run()
        assert log[0][0] == "got"
        assert log[0][1] == "payload"
        # receiver ran at the instant of the handoff: no scheduler pass
        assert log[0][2] == pytest.approx(handed_at[0])

    def test_handoff_to_running_thread_is_an_error(self, kernel, proc):
        def spinner(t):
            while True:
                yield t.compute(100)

        target = kernel.spawn(proc, spinner, pin=1)

        def sender(t):
            yield t.compute(10)
            yield Handoff(target, None)

        sender_thread = kernel.spawn(proc, sender, pin=0)
        kernel.run(until_ns=100_000)
        assert isinstance(sender_thread.exception, SimulationError)

    def test_handoff_to_thread_pinned_elsewhere_is_an_error(self, kernel,
                                                            proc):
        def sleeper(t):
            yield t.block("wait")

        target = kernel.spawn(proc, sleeper, pin=1)

        def sender(t):
            yield t.compute(10)
            yield Handoff(target, None)

        # let the sleeper block on CPU1 first
        sender_thread = kernel.spawn(proc, sender, pin=0)
        kernel.run(until_ns=100_000)
        assert isinstance(sender_thread.exception, SimulationError)

    def test_handoff_charges_page_table_switch_across_processes(self,
                                                                kernel):
        proc_a = kernel.spawn_process("a")
        proc_b = kernel.spawn_process("b")

        def receiver(t):
            yield t.block("wait")

        target = kernel.spawn(proc_b, receiver, pin=0)

        def sender(t):
            yield t.compute(10)
            yield Handoff(target, None)

        kernel.spawn(proc_a, sender, pin=0)
        kernel.run()
        assert kernel.machine.cpus[0].account.ns[Block.PTSW] > 0
