"""Tests for the futex primitive."""

import pytest

from repro.kernel import Futex, Kernel
from repro.sim.stats import Block


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


@pytest.fixture
def proc(kernel):
    return kernel.spawn_process("p")


def test_wait_on_positive_value_does_not_block(kernel, proc):
    futex = Futex(kernel, value=1)
    done = []

    def body(t):
        yield from futex.wait(t)
        done.append(True)

    kernel.spawn(proc, body)
    kernel.run()
    assert done == [True]
    assert futex.value == 0


def test_wait_blocks_until_wake(kernel, proc):
    futex = Futex(kernel)
    order = []

    def waiter(t):
        order.append("wait-start")
        yield from futex.wait(t)
        order.append("woken")

    def waker(t):
        yield t.compute(500)
        order.append("waking")
        yield from futex.wake(t)

    kernel.spawn(proc, waiter, pin=0)
    kernel.spawn(proc, waker, pin=0)
    kernel.run()
    assert order == ["wait-start", "waking", "woken"]


def test_wake_without_waiters_banks_value(kernel, proc):
    futex = Futex(kernel)

    def waker(t):
        yield from futex.wake(t)

    kernel.spawn(proc, waker)
    kernel.run()
    assert futex.value == 1

    done = []

    def waiter(t):
        yield from futex.wait(t)
        done.append(True)

    kernel.spawn(proc, waiter)
    kernel.run()
    assert done == [True]


def test_wake_count_releases_multiple_waiters(kernel, proc):
    futex = Futex(kernel)
    woken = []

    def waiter(t, i):
        yield from futex.wait(t)
        woken.append(i)

    for i in range(3):
        kernel.spawn(proc, lambda t, i=i: waiter(t, i))

    def waker(t):
        yield t.compute(100)
        yield from futex.wake(t, count=3)

    kernel.spawn(proc, waker)
    kernel.run()
    assert sorted(woken) == [0, 1, 2]


def test_wake_from_event_context(kernel, proc):
    futex = Futex(kernel)
    done = []

    def waiter(t):
        yield from futex.wait(t)
        done.append(t.now())

    kernel.spawn(proc, waiter)
    kernel.engine.post(5000, futex.wake_from_event)
    kernel.run()
    assert done and done[0] >= 5000


def test_futex_charges_kernel_blocks(kernel, proc):
    futex = Futex(kernel, value=1)

    def body(t):
        yield from futex.wait(t)

    kernel.spawn(proc, body, pin=0)
    kernel.run()
    account = kernel.machine.cpus[0].account
    assert account.ns[Block.KERNEL] >= kernel.costs.FUTEX_WAIT_WORK
    assert account.ns[Block.SYSCALL] == kernel.costs.SYSCALL_HW


def test_two_waiters_one_token_only_one_proceeds(kernel, proc):
    futex = Futex(kernel)
    proceeded = []

    def waiter(t, i):
        yield from futex.wait(t)
        proceeded.append(i)

    kernel.spawn(proc, lambda t: waiter(t, 0))
    kernel.spawn(proc, lambda t: waiter(t, 1))

    def waker(t):
        yield t.compute(10)
        yield from futex.wake(t, count=1)

    kernel.spawn(proc, waker)
    kernel.run(until_ns=1_000_000)
    assert len(proceeded) == 1
