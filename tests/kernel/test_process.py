"""Tests for processes, fd tables, fork/exec, and memory placement."""

import pytest

from repro import units
from repro.errors import DeadProcessError, ResourceError
from repro.kernel import Kernel
from repro.mem.gvas import GVAS_BASE


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1)


class TestProcessMemory:
    def test_private_process_has_own_table(self, kernel):
        a = kernel.spawn_process("a")
        b = kernel.spawn_process("b")
        assert a.page_table is not b.page_table
        assert not a.dipc_enabled

    def test_dipc_processes_share_one_table(self, kernel):
        a = kernel.spawn_process("a", dipc=True)
        b = kernel.spawn_process("b", dipc=True)
        assert a.page_table is b.page_table is kernel.shared_table
        assert a.default_tag != b.default_tag

    def test_dipc_allocations_land_in_gvas(self, kernel):
        proc = kernel.spawn_process("p", dipc=True)
        addr = proc.alloc_pages(2)
        assert addr >= GVAS_BASE
        assert kernel.gvas.owner_of(addr) == proc.pid

    def test_private_allocations_below_gvas(self, kernel):
        proc = kernel.spawn_process("p")
        addr = proc.alloc_pages(2)
        assert addr < GVAS_BASE

    def test_dipc_pages_are_tagged_with_default_domain(self, kernel):
        proc = kernel.spawn_process("p", dipc=True)
        addr = proc.alloc_pages(1)
        pte = kernel.shared_table.lookup(addr // units.PAGE_SIZE)
        assert pte.tag == proc.default_tag

    def test_explicit_tag_overrides_default(self, kernel):
        proc = kernel.spawn_process("p", dipc=True)
        other_tag = kernel.tags.alloc()
        addr = proc.alloc_pages(1, tag=other_tag)
        pte = kernel.shared_table.lookup(addr // units.PAGE_SIZE)
        assert pte.tag == other_tag

    def test_alloc_bytes_rounds_to_pages(self, kernel):
        proc = kernel.spawn_process("p")
        addr = proc.alloc_bytes(5000)
        proc.space.write(addr + 4999, b"x")  # second page is mapped

    def test_alloc_on_dead_process(self, kernel):
        proc = kernel.spawn_process("p")
        proc.exit(0)
        with pytest.raises(DeadProcessError):
            proc.alloc_pages(1)

    def test_writes_in_two_processes_do_not_alias(self, kernel):
        a = kernel.spawn_process("a")
        b = kernel.spawn_process("b")
        addr_a = a.alloc_pages(1)
        addr_b = b.alloc_pages(1)
        a.space.write(addr_a, b"AAAA")
        b.space.write(addr_b, b"BBBB")
        assert a.space.read(addr_a, 4) == b"AAAA"
        assert b.space.read(addr_b, 4) == b"BBBB"


class TestFDTable:
    def test_install_get_close(self, kernel):
        proc = kernel.spawn_process("p")
        fd = proc.fdtable.install("object")
        assert fd >= 3
        assert proc.fdtable.get(fd) == "object"
        proc.fdtable.close(fd)
        with pytest.raises(ResourceError):
            proc.fdtable.get(fd)

    def test_dup(self, kernel):
        proc = kernel.spawn_process("p")
        fd = proc.fdtable.install("x")
        fd2 = proc.fdtable.dup(fd)
        assert fd2 != fd
        assert proc.fdtable.get(fd2) == "x"

    def test_lowest_free_fd_reused(self, kernel):
        proc = kernel.spawn_process("p")
        fd_a = proc.fdtable.install("a")
        proc.fdtable.install("b")
        proc.fdtable.close(fd_a)
        assert proc.fdtable.install("c") == fd_a

    def test_table_exhaustion(self, kernel):
        proc = kernel.spawn_process("p")
        proc.fdtable.max_fds = 5
        proc.fdtable.install("a")
        proc.fdtable.install("b")
        with pytest.raises(ResourceError):
            proc.fdtable.install("c")


class TestForkExec:
    def test_fork_disables_dipc_in_child(self, kernel):
        parent = kernel.spawn_process("p", dipc=True)
        child = kernel.fork(parent)
        # §6.1.3: "temporarily disables dIPC in new processes"
        assert not child.dipc_enabled
        assert not child.uses_shared_table

    def test_fork_is_copy_on_write(self, kernel):
        parent = kernel.spawn_process("p")
        addr = parent.alloc_pages(1)
        parent.space.write(addr, b"orig")
        child = kernel.fork(parent)
        child.space.write(addr, b"mine")
        assert parent.space.read(addr, 4) == b"orig"
        assert child.space.read(addr, 4) == b"mine"

    def test_fork_inherits_fds(self, kernel):
        parent = kernel.spawn_process("p")
        fd = parent.fdtable.install("thing")
        child = kernel.fork(parent)
        assert child.fdtable.get(fd) == "thing"

    def test_exec_pic_reenables_dipc(self, kernel):
        parent = kernel.spawn_process("p", dipc=True)
        child = kernel.fork(parent)
        kernel.exec_process(child, "worker", pic=True)
        assert child.dipc_enabled
        assert child.uses_shared_table
        assert child.default_tag is not None

    def test_exec_non_pic_stays_private(self, kernel):
        parent = kernel.spawn_process("p")
        child = kernel.fork(parent)
        kernel.exec_process(child, "legacy", pic=False)
        assert not child.dipc_enabled
