"""The primitive registry: registration API, capability queries."""

import pytest

from repro import primitives
from repro.primitives import Capabilities, register_primitive


def test_seven_primitives_in_registration_order():
    assert primitives.names() == (
        "pipe", "socket", "rpc", "l4", "dipc", "dpti", "odipc")


def test_capability_flags_partition_the_mechanisms():
    # the paper's four kernel-mediated baselines: pooled, untrusted
    for name in ("pipe", "socket", "rpc", "l4"):
        caps = primitives.get(name).capabilities
        assert not caps.trusted and not caps.in_process
        assert caps.has_worker_threads and caps.bounded_capacity
    # the trusted bracket: in-process, no pools, unbounded
    for name in ("dipc", "odipc"):
        caps = primitives.get(name).capabilities
        assert caps.trusted and caps.in_process
        assert not caps.has_worker_threads and not caps.bounded_capacity
    # dpti: in-process but untrusted (it still traps into the kernel)
    caps = primitives.get("dpti").capabilities
    assert not caps.trusted and caps.in_process
    assert not caps.has_worker_threads and not caps.bounded_capacity


def test_flag_filtering_and_baselines():
    assert primitives.names(in_process=True) == ("dipc", "dpti", "odipc")
    assert primitives.names(trusted=True) == ("dipc", "odipc")
    assert primitives.baseline_names() == (
        "pipe", "socket", "rpc", "l4", "dpti")


def test_unknown_primitive_raises_keyerror_naming_options():
    with pytest.raises(KeyError, match="carrier-pigeon"):
        primitives.get("carrier-pigeon")
    with pytest.raises(KeyError, match="dipc"):
        primitives.get("nope")


def test_lazy_refs_resolve_to_live_classes():
    for spec in primitives.specs():
        transport = spec.transport()
        assert callable(getattr(transport, "build"))
        hop = spec.hop()
        assert callable(getattr(hop, "call"))


def test_duplicate_registration_rejected():
    spec = primitives.get("pipe")
    with pytest.raises(ValueError, match="already registered"):
        register_primitive("pipe", spec.transport(), spec.hop_ref,
                           spec.capabilities)


def test_transport_class_must_look_like_a_transport():
    class NotATransport:
        pass

    with pytest.raises(TypeError, match="build"):
        register_primitive("__bogus__", NotATransport, None,
                           Capabilities())
    assert "__bogus__" not in primitives.names()


def test_worker_thread_declaration_must_match_capabilities():
    class Inline:
        has_worker_threads = False

        def build(self):
            pass

        def call(self):
            pass

        def rebuild_pool(self):
            pass

    with pytest.raises(ValueError, match="has_worker_threads"):
        register_primitive("__bogus2__", Inline, None,
                           Capabilities(has_worker_threads=True))
    assert "__bogus2__" not in primitives.names()


def test_decorator_form_registers_and_returns_the_class():
    @register_primitive("__deco__", hop_cls=None,
                        capabilities=Capabilities(
                            has_worker_threads=False))
    class DecoTransport:
        has_worker_threads = False

        def build(self):
            pass

        def call(self):
            pass

        def rebuild_pool(self):
            pass

    try:
        assert DecoTransport.__name__ == "DecoTransport"
        assert primitives.get("__deco__").transport() is DecoTransport
    finally:
        primitives._REGISTRY.pop("__deco__", None)


def test_shard_legs_come_from_the_registry():
    from repro.hw.cache import CacheModel
    from repro.hw.costs import CostModel
    costs, cache = CostModel.default(), CacheModel()
    spec = primitives.get("dipc")
    assert spec.request_leg(costs, cache, 128) == \
        pytest.approx(costs.dipc_call_leg_ns())
    assert spec.reply_leg(costs, cache, 8) == \
        pytest.approx(costs.dipc_return_leg_ns())
