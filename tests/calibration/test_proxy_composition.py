"""Property: a dIPC call's measured latency equals the analytic sum of
its policy's cost fragments, for *every* policy combination — the
link between the proxy implementation, the templates and the cost model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import DipcManager
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy, effective_policies
from repro.hw.costs import CostModel
from repro.kernel import Kernel


def expected_call_ns(costs: CostModel, policy: IsolationPolicy,
                     cross_process: bool) -> float:
    """The analytic composition (see DESIGN.md §4 / hw/costs.py)."""
    total = costs.FUNC_CALL + costs.PROXY_MIN_CALL + costs.PROXY_MIN_RET
    if policy.reg_integrity:
        total += costs.STUB_REG_SAVE + costs.STUB_REG_RESTORE
    if policy.reg_confidentiality:
        total += costs.STUB_REG_ZERO
    if policy.stack_integrity:
        total += costs.STUB_STACK_CAPS
    if policy.stack_confidentiality:
        total += costs.PROXY_STACK_SWITCH
        if cross_process:
            total += costs.PROXY_STACK_LOCATE
    if policy.dcs_integrity:
        total += costs.PROXY_DCS_ADJUST
    if policy.dcs_confidentiality:
        total += costs.PROXY_DCS_SWITCH
    if cross_process:
        total += (costs.TRACK_PROCESS_CALL + costs.TRACK_PROCESS_RET
                  + costs.TRACK_DONATION + 2 * costs.TLS_SWITCH)
    return total


def measure_call(policy: IsolationPolicy, cross_process: bool) -> float:
    kernel = Kernel(num_cpus=1)
    manager = DipcManager(kernel)
    caller = kernel.spawn_process("caller", dipc=True)
    if cross_process:
        callee = kernel.spawn_process("callee", dipc=True)
        dom = manager.dom_default(callee)
    else:
        callee = caller
        dom = manager.dom_create(caller)

    def target(t, x):
        yield t.compute(0.0)
        return x

    handle = manager.entry_register(callee, dom, [EntryDescriptor(
        signature=Signature(in_regs=1, out_regs=1), policy=policy,
        func=target)])
    request = [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                               policy=policy)]
    proxy_handle, _ = manager.entry_request(caller, handle, request)
    manager.grant_create(manager.dom_default(caller), proxy_handle)
    samples = []

    def body(t):
        yield from manager.call(t, request[0].address, 1)  # warm up
        start = t.now()
        yield from manager.call(t, request[0].address, 1)
        samples.append(t.now() - start)

    kernel.spawn(caller, body, pin=0)
    kernel.run()
    kernel.check()
    return samples[0]


@settings(max_examples=24, deadline=None)
@given(bits=st.tuples(*[st.booleans()] * 6), cross=st.booleans())
def test_property_measured_equals_composition(bits, cross):
    policy = IsolationPolicy(*bits)
    # the proxy enforces the *effective* policy (both sides request the
    # same one here, so union == policy and the caller's integrity bits
    # are honoured)
    effective = effective_policies(policy, policy)
    costs = CostModel.default()
    measured = measure_call(policy, cross)
    assert measured == pytest.approx(
        expected_call_ns(costs, effective, cross), rel=1e-6)


def test_low_and_high_corners():
    costs = CostModel.default()
    assert measure_call(IsolationPolicy.low(), False) == pytest.approx(6.0)
    assert measure_call(IsolationPolicy.high(), True) == pytest.approx(
        expected_call_ns(costs, IsolationPolicy.high(), True))
