"""The optional timing-jitter model: with it enabled, §7.2's "standard
deviation below 1% of the mean" becomes a real (non-vacuous) check."""

import pytest

from repro.experiments.microbench import bench_dipc, bench_sem
from repro.hw.costs import CostModel


def test_default_is_deterministic():
    a = bench_sem(same_cpu=True, iters=20)
    b = bench_sem(same_cpu=True, iters=20)
    assert a.mean_ns == b.mean_ns
    assert a.stddev_ns == 0.0


def test_jitter_produces_noise_below_one_percent():
    """§7.2: all experiments have standard deviation below 1% of the
    mean — holds with realistic per-charge noise enabled."""
    noisy = CostModel(JITTER=0.005)
    result = bench_dipc(policy="high", cross_process=True, iters=40,
                        costs=noisy)
    assert result.stddev_ns > 0.0
    assert result.relative_stddev < 0.01


def test_jitter_is_seeded_and_reproducible():
    a = bench_dipc(policy="low", iters=15, costs=CostModel(JITTER=0.01))
    b = bench_dipc(policy="low", iters=15, costs=CostModel(JITTER=0.01))
    assert a.mean_ns == b.mean_ns
    assert a.stddev_ns == b.stddev_ns


def test_different_seeds_differ():
    a = bench_dipc(policy="low", iters=15,
                   costs=CostModel(JITTER=0.01, JITTER_SEED=1))
    b = bench_dipc(policy="low", iters=15,
                   costs=CostModel(JITTER=0.01, JITTER_SEED=2))
    assert a.mean_ns != b.mean_ns


def test_jittered_mean_stays_on_target():
    noisy = CostModel(JITTER=0.005)
    result = bench_sem(same_cpu=True, iters=40, costs=noisy) \
        if False else bench_dipc(policy="high", cross_process=True,
                                 iters=40, costs=noisy)
    assert result.mean_ns == pytest.approx(106.9, rel=0.03)
