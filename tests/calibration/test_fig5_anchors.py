"""Calibration: the simulated primitives must land on the paper's numbers.

These are the regression tests that keep every figure's *shape* honest:
each Figure 5 bar is re-measured end-to-end through the simulator and
compared against the paper-derived target. Same-CPU compositions are
tight (the paper reports them directly); cross-CPU ones depend on the
emergent IPI/idle interleaving and get a wider band.
"""

import pytest

from repro.experiments.microbench import (bench_dipc, bench_dipc_user_rpc,
                                          bench_func, bench_l4, bench_pipe,
                                          bench_rpc, bench_sem,
                                          bench_syscall)
from repro.hw.costs import FIG5_TARGETS_NS

ITERS = 30

TIGHT = 0.05
LOOSE = 0.15


def assert_near(result, key, tolerance):
    target = FIG5_TARGETS_NS[key]
    assert result.mean_ns == pytest.approx(target, rel=tolerance), \
        f"{key}: measured {result.mean_ns:.1f}ns vs target {target:.1f}ns"


# -- baselines ---------------------------------------------------------------

def test_function_call():
    assert_near(bench_func(iters=ITERS), "func", 0.01)


def test_syscall():
    assert_near(bench_syscall(iters=ITERS), "syscall", 0.01)


# -- same-CPU primitives (paper-reported, tight) --------------------------------

def test_sem_same_cpu():
    assert_near(bench_sem(same_cpu=True, iters=ITERS), "sem_same_cpu", TIGHT)


def test_pipe_same_cpu():
    assert_near(bench_pipe(same_cpu=True, iters=ITERS), "pipe_same_cpu",
                TIGHT)


def test_rpc_same_cpu():
    assert_near(bench_rpc(same_cpu=True, iters=ITERS), "rpc_same_cpu", TIGHT)


def test_l4_same_cpu():
    assert_near(bench_l4(same_cpu=True, iters=ITERS), "l4_same_cpu", TIGHT)


# -- dIPC bars -------------------------------------------------------------------

def test_dipc_low():
    assert_near(bench_dipc(policy="low", iters=ITERS), "dipc_low", 0.02)


def test_dipc_high():
    assert_near(bench_dipc(policy="high", iters=ITERS), "dipc_high", 0.02)


def test_dipc_proc_low():
    assert_near(bench_dipc(policy="low", cross_process=True, iters=ITERS),
                "dipc_proc_low", 0.02)


def test_dipc_proc_high():
    assert_near(bench_dipc(policy="high", cross_process=True, iters=ITERS),
                "dipc_proc_high", 0.02)


# -- cross-CPU primitives (emergent, loose) ------------------------------------------

def test_sem_cross_cpu():
    assert_near(bench_sem(same_cpu=False, iters=ITERS), "sem_cross_cpu",
                LOOSE)


def test_pipe_cross_cpu():
    assert_near(bench_pipe(same_cpu=False, iters=ITERS), "pipe_cross_cpu",
                LOOSE)


def test_rpc_cross_cpu():
    assert_near(bench_rpc(same_cpu=False, iters=ITERS), "rpc_cross_cpu",
                LOOSE)


def test_dipc_user_rpc():
    assert_near(bench_dipc_user_rpc(iters=ITERS), "dipc_user_rpc", LOOSE)


# -- the paper's headline ratios, on *measured* numbers -----------------------------

class TestHeadlineRatios:
    @pytest.fixture(scope="class")
    def measured(self):
        return {
            "rpc": bench_rpc(same_cpu=True, iters=ITERS).mean_ns,
            "l4": bench_l4(same_cpu=True, iters=ITERS).mean_ns,
            "sem": bench_sem(same_cpu=True, iters=ITERS).mean_ns,
            "dipc_low": bench_dipc(policy="low", iters=ITERS).mean_ns,
            "dipc_high": bench_dipc(policy="high", iters=ITERS).mean_ns,
            "proc_low": bench_dipc(policy="low", cross_process=True,
                                   iters=ITERS).mean_ns,
            "proc_high": bench_dipc(policy="high", cross_process=True,
                                    iters=ITERS).mean_ns,
        }

    def test_dipc_vs_rpc_64x(self, measured):
        """Abstract: 'dIPC is 64.12x faster than local RPCs'."""
        assert measured["rpc"] / measured["proc_high"] == \
            pytest.approx(64.12, rel=0.10)

    def test_dipc_vs_l4_9x(self, measured):
        """Abstract: '8.87x faster than IPC in the L4 microkernel'."""
        assert measured["l4"] / measured["proc_high"] == \
            pytest.approx(8.87, rel=0.10)

    def test_policy_spread_8x(self, measured):
        """§7.2: asymmetric policies differ by up to 8.47x."""
        assert measured["dipc_high"] / measured["dipc_low"] == \
            pytest.approx(8.47, rel=0.10)

    def test_speedup_range_14x_to_120x(self, measured):
        """§7.2: cross-process speedups between 14.16x and 120.67x."""
        assert measured["sem"] / measured["proc_high"] == \
            pytest.approx(14.16, rel=0.10)
        assert measured["rpc"] / measured["proc_low"] == \
            pytest.approx(120.67, rel=0.10)

    def test_rpc_over_3000x_function_call(self, measured):
        """§2.2: local RPC is more than 3000x slower than a function call."""
        func = bench_func(iters=ITERS).mean_ns
        assert measured["rpc"] / func > 3000


def test_stddev_below_one_percent():
    """§7.2: all experiments have standard deviation below 1% of the mean."""
    for result in (bench_sem(same_cpu=True, iters=ITERS),
                   bench_rpc(same_cpu=True, iters=ITERS),
                   bench_dipc(policy="high", cross_process=True,
                              iters=ITERS)):
        assert result.relative_stddev < 0.01, result
