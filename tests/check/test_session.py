"""CheckSession wiring: attach, storms, plan overrides, nesting."""

import pytest

from repro.check.controller import BaselineStrategy
from repro.check.session import CheckSession
from repro.kernel import Kernel


def test_session_instruments_every_kernel():
    with CheckSession(BaselineStrategy()) as session:
        a = Kernel(num_cpus=2)
        b = Kernel(num_cpus=2)
    assert session.kernels == [a, b]
    assert a.engine.controller is session.controller
    assert b.engine.controller is session.controller
    assert a.engine.deadlock_detector is not None


def test_no_session_means_no_instrumentation():
    kernel = Kernel(num_cpus=2)
    assert kernel.engine.controller is None
    assert kernel.engine.deadlock_detector is None


def test_sessions_do_not_nest():
    with CheckSession(BaselineStrategy()):
        with pytest.raises(RuntimeError):
            CheckSession(BaselineStrategy()).__enter__()
    assert CheckSession.current() is None


def test_chaos_arms_deterministic_storms():
    def plans_for(seed):
        with CheckSession(BaselineStrategy(), chaos=True,
                          storm_seed=seed,
                          processes=("p",),
                          thread_prefixes=("p/w",)) as session:
            Kernel(num_cpus=2)
        return session.plans()

    assert plans_for(3) == plans_for(3)
    assert plans_for(3) != plans_for(4)
    assert plans_for(3)[0]  # the storm has at least one rule


def test_plan_overrides_replace_sampling():
    rules = [{"action": "kill_process", "target": "p", "param": 0,
              "at_ns": 100.0}]
    with CheckSession(BaselineStrategy(), chaos=True,
                      plan_overrides=[rules]) as session:
        Kernel(num_cpus=2)
        Kernel(num_cpus=2)  # beyond the override list: no storm
    assert session.plans() == [rules]
