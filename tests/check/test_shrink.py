"""Shrinker convergence: the seeded lostwake storm must minimize to a
tiny local-minimum repro, and the minimized bundle must still replay.

This is the CI regression the ISSUE pins: <= 5 fault events and <= 20
schedule decisions after shrinking.
"""

import pytest

from repro.check import bundle as bundles
from repro.check.explore import explore_one
from repro.check.shrink import Shrinker, _ddmin, shrink_bundle, signature
from repro.runner.cache import ResultCache


@pytest.fixture(scope="module")
def failing_bundle():
    for schedule in range(16):
        result = explore_one("lostwake", seed=7, schedule=schedule,
                             chaos=True)
        if result["findings"]:
            return bundles.make_check_bundle(
                "lostwake", seed=7, chaos=True, result=result)
    raise AssertionError("no failing lostwake schedule found")


def test_signature_is_kind_set():
    assert signature(["deadlock: x", "deadlock: y", "crash: z"]) \
        == ("crash", "deadlock")


def test_ddmin_finds_single_culprit():
    probes = []

    def fails(items):
        probes.append(list(items))
        return 13 in items

    assert _ddmin(list(range(20)), fails) == [13]


def test_shrinker_converges_to_issue_bounds(failing_bundle):
    result = shrink_bundle(failing_bundle)
    assert result.to_rules <= 5
    assert result.to_decisions <= 20
    assert result.to_rules <= result.from_rules
    assert result.to_decisions <= result.from_decisions
    assert signature(result.bundle["findings"]) \
        == result.target_signature


def test_minimized_bundle_replays_byte_identically(failing_bundle):
    minimized = shrink_bundle(failing_bundle).bundle
    replayed, reproduced = bundles.replay(minimized)
    assert reproduced
    assert replayed["findings"] == minimized["findings"]


def test_shrink_probes_go_through_result_cache(tmp_path, failing_bundle):
    cache = ResultCache(str(tmp_path))
    first = shrink_bundle(failing_bundle, cache=cache)
    # a second shrink replays entirely from cache: same minimum
    second = shrink_bundle(failing_bundle, cache=cache)
    assert second.bundle == first.bundle
    # the cache directory actually holds probe entries
    import os
    assert any(name.endswith(".json")
               for name in os.listdir(str(tmp_path)))


def test_shrinker_rejects_clean_bundles(failing_bundle):
    clean = dict(failing_bundle)
    clean["findings"] = []
    with pytest.raises(ValueError):
        Shrinker(clean)


def test_probe_budget_bounds_work(failing_bundle):
    shrinker = Shrinker(failing_bundle, probe_budget=3)
    shrinker.shrink()
    assert shrinker.probes <= 3
