"""Exploration determinism, replay mode, and finding detection."""

import pytest

from repro.check.explore import (explore_one, specs_for, storm_seed_for,
                                 valid_target)
from repro.runner.pool import run_points


def find_failing_schedule(target, *, seed=7, chaos=True, limit=16):
    """First schedule of ``target`` that produces findings."""
    for schedule in range(limit):
        result = explore_one(target, seed=seed, schedule=schedule,
                             chaos=chaos)
        if result["findings"]:
            return schedule, result
    raise AssertionError(f"no failing schedule for {target} "
                        f"in {limit} tries")


def test_explore_is_deterministic():
    a = explore_one("lostwake", seed=7, schedule=3, chaos=True)
    b = explore_one("lostwake", seed=7, schedule=3, chaos=True)
    assert a == b


def test_lostwake_storm_detects_deadlock():
    """Killing the producer strands the consumer: the detector must
    report it as a structured finding, not a silent hang."""
    _schedule, result = find_failing_schedule("lostwake")
    assert any(f.startswith("deadlock:") for f in result["findings"])
    assert "lostwake-empty" in " ".join(result["findings"])


def test_replay_mode_reproduces_findings_exactly():
    _schedule, result = find_failing_schedule("lostwake")
    replayed = explore_one(
        "lostwake", seed=7, schedule=result["schedule"], chaos=True,
        decisions=result["decisions"], plans=result["plans"])
    assert replayed["findings"] == result["findings"]
    assert replayed["decisions"] == result["decisions"]


def test_schedule_zero_is_baseline():
    result = explore_one("l4race", seed=7, schedule=0)
    assert result["strategy"] == "baseline"


def test_parallel_fanout_matches_serial():
    """run_points over exploration specs merges in spec order, so the
    parallel result list is identical to serial explore_one calls."""
    specs = specs_for("lostwake", schedules=4, seed=7, chaos=True)
    parallel, _ = run_points(specs, jobs=2)
    serial = [explore_one("lostwake", seed=7, schedule=s, chaos=True)
              for s in range(4)]
    assert parallel == serial


def test_storm_seed_derivation_is_injective_enough():
    seen = {storm_seed_for(seed, schedule)
            for seed in range(5) for schedule in range(50)}
    assert len(seen) == 5 * 50


def test_valid_target_accepts_figures_and_scenarios():
    assert valid_target("fig5")
    assert valid_target("lostwake")
    assert not valid_target("fig99")
