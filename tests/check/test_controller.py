"""Schedule-controller unit behaviour: strategies, traces, replay."""

import pytest

from repro.check.controller import (BaselineStrategy, PerturbStrategy,
                                    RandomWalkStrategy, ReplayStrategy,
                                    ScheduleController, parse_trace,
                                    strategy_for)


def test_baseline_always_picks_head():
    controller = ScheduleController(BaselineStrategy())
    picks = [controller.choose("runqueue", n) for n in (2, 5, 3)]
    assert picks == [0, 0, 0]
    assert controller.trace() == "r0,r0,r0"
    assert controller.decision_count == 3


def test_random_walk_is_deterministic_per_seed():
    def run(seed):
        controller = ScheduleController(RandomWalkStrategy(seed))
        return [controller.choose("event", 4) for _ in range(10)]

    assert run(11) == run(11)
    # different seeds must explore different interleavings (for some n)
    assert any(run(11)[i] != run(12)[i] for i in range(10))


def test_choices_are_always_in_range():
    controller = ScheduleController(RandomWalkStrategy(3))
    for n in (2, 3, 7, 2, 5):
        assert 0 <= controller.choose("runqueue", n) < n


def test_trace_round_trips_through_parse():
    controller = ScheduleController(RandomWalkStrategy(5))
    picks = [controller.choose("runqueue", 3) for _ in range(4)]
    picks.append(controller.choose("event", 2))
    text = controller.trace()
    assert parse_trace(text) == picks


def test_replay_reproduces_and_extends_with_baseline():
    recorded = [1, 0, 2]
    controller = ScheduleController(ReplayStrategy(recorded))
    assert [controller.choose("runqueue", 3) for _ in range(3)] \
        == recorded
    # past the end of the trace the replay decays to baseline
    assert controller.choose("runqueue", 4) == 0


def test_perturb_flips_exactly_one_decision():
    baseline = ScheduleController(BaselineStrategy())
    base = [baseline.choose("runqueue", 3) for _ in range(5)]
    perturbed = ScheduleController(PerturbStrategy(flip_at=2, rotate=1))
    got = [perturbed.choose("runqueue", 3) for _ in range(5)]
    diffs = [i for i in range(5) if got[i] != base[i]]
    assert diffs == [2]
    assert got[2] == 1  # rotated by 1 within range


def test_strategy_for_schedule_zero_is_baseline():
    assert strategy_for("random", 7, 0).describe() == "baseline"
    assert strategy_for("perturb", 7, 0).describe() == "baseline"


def test_strategy_for_seeds_diverge_per_schedule():
    a = strategy_for("random", 7, 1).describe()
    b = strategy_for("random", 7, 2).describe()
    assert a != b


def test_strategy_for_rejects_unknown_name():
    with pytest.raises(ValueError):
        strategy_for("quantum", 7, 1)
