"""Schedule exploration over the 2-shard chain scenario."""

from repro.check import scenarios
from repro.check.explore import explore_one


def test_shard2_registered():
    assert scenarios.is_scenario("shard2")
    assert scenarios.get("shard2").default_n == 4


def test_shard2_explored_schedules_stay_conserving():
    for schedule in range(3):
        result = explore_one("shard2", seed=3, schedule=schedule)
        assert result["findings"] == []
        # uniform arrivals create real ties for the controller to
        # permute — an exploration with no decisions tests nothing
        assert result["decision_count"] > 0


def test_shard2_baseline_schedule_is_replayable():
    first = explore_one("shard2", seed=5, schedule=1)
    again = explore_one("shard2", seed=5, schedule=1,
                        decisions=first["decisions"])
    assert again["findings"] == first["findings"]
    assert again["decisions"] == first["decisions"]


def test_shard2_survives_chaos_storms():
    result = explore_one("shard2", seed=3, schedule=2, chaos=True)
    assert result["findings"] == []
