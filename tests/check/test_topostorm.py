"""The topostorm scenario: kill-during-rebuild under adversarial
schedules, plus the shrinker converging on the pre-fix trace.

``check topostorm --chaos`` storms a supervised 4-service dIPC chain
with random kill rules while the schedule controller permutes runnable
threads — the generalized form of the fig10 seed-11 failure. Post-fix
every explored schedule must come back clean; with the KCS epoch
machinery switched off (``LEGACY_UNWIND``) schedule 2 of seed 7 still
reproduces the historical stale-frame failure, and that bundle is what
the ddmin shrinker must replay and minimize.
"""

import pytest

from repro.check import scenarios
from repro.check.bundle import make_check_bundle, replay
from repro.check.explore import explore_one
from repro.check.shrink import shrink_bundle
from repro.core import kcs

#: the seed whose schedule 2 reproduces the pre-fix failure
_SEED = 7
_FAILING_SCHEDULE = 2


def test_topostorm_is_a_registered_sizeable_scenario():
    assert "topostorm" in scenarios.names()
    scenario = scenarios.get("topostorm")
    assert scenario.default_n == 4
    assert scenario.min_rules >= 2  # storms, not single faults


@pytest.mark.parametrize("schedule", range(4))
def test_explored_kill_storms_come_back_clean(schedule):
    result = explore_one("topostorm", seed=_SEED, schedule=schedule,
                         chaos=True)
    assert result["findings"] == []


def test_the_pre_fix_trace_still_fails_under_legacy(monkeypatch):
    monkeypatch.setattr(kcs, "LEGACY_UNWIND", True)
    result = explore_one("topostorm", seed=_SEED,
                         schedule=_FAILING_SCHEDULE, chaos=True)
    assert any(finding.startswith("reclamation:")
               for finding in result["findings"])


def test_shrinker_converges_on_the_pre_fix_bundle(monkeypatch):
    monkeypatch.setattr(kcs, "LEGACY_UNWIND", True)
    result = explore_one("topostorm", seed=_SEED,
                         schedule=_FAILING_SCHEDULE, chaos=True)
    bundle = make_check_bundle("topostorm", seed=_SEED, chaos=True,
                               result=result)
    replayed, reproduced = replay(bundle)
    assert reproduced
    shrunk = shrink_bundle(bundle, probe_budget=60)
    # ddmin must genuinely reduce every axis of the storm trace
    assert shrunk.to_rules < shrunk.from_rules
    assert shrunk.to_decisions < shrunk.from_decisions
    assert shrunk.to_topo_n is not None
    assert shrunk.to_topo_n < shrunk.from_topo_n
    assert shrunk.probes <= 60
