"""Repro bundles: render stability, round-trip, drift, replay."""

import json
import os

import pytest

from repro.check import bundle as bundles
from repro.check.explore import explore_one


def failing_result(seed=7, limit=16):
    for schedule in range(limit):
        result = explore_one("lostwake", seed=seed, schedule=schedule,
                             chaos=True)
        if result["findings"]:
            return result
    raise AssertionError("no failing lostwake schedule found")


def test_bundle_write_load_round_trip(tmp_path):
    result = failing_result()
    made = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                     result=result)
    path = bundles.write(
        bundles.bundle_path(str(tmp_path), "lostwake",
                            result["schedule"]), made)
    assert bundles.load(path) == made
    assert bundles.stamp_mismatches(made) == []


def test_render_is_byte_stable():
    result = failing_result()
    made = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                     result=result)
    assert bundles.render(made) == bundles.render(json.loads(
        bundles.render(made)))


def test_replay_reproduces_byte_identically(tmp_path):
    result = failing_result()
    made = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                     result=result)
    path = bundles.write(os.path.join(str(tmp_path), "b.json"), made)
    loaded = bundles.load(path)
    replayed, reproduced = bundles.replay(loaded)
    assert reproduced
    assert replayed["findings"] == result["findings"]
    # everything but the strategy label (replay vs random) is stable,
    # so a re-made bundle renders byte-identically after normalizing it
    remade = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                       result=replayed)
    remade["strategy"] = made["strategy"]
    assert bundles.render(remade) == bundles.render(made)


def test_fingerprint_drift_is_reported():
    result = failing_result()
    made = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                     result=result)
    made["fingerprint"] = "0" * 16
    notes = bundles.stamp_mismatches(made)
    assert len(notes) == 1 and "fingerprint" in notes[0]


def test_load_rejects_non_bundles(tmp_path):
    path = os.path.join(str(tmp_path), "junk.json")
    with open(path, "w") as fh:
        json.dump({"hello": 1}, fh)
    with pytest.raises(ValueError):
        bundles.load(path)


def test_version_mismatch_is_rejected(tmp_path):
    result = failing_result()
    made = bundles.make_check_bundle("lostwake", seed=7, chaos=True,
                                     result=result)
    made["version"] = 999
    path = bundles.write(os.path.join(str(tmp_path), "v.json"), made)
    with pytest.raises(ValueError):
        bundles.load(path)
