"""The check verb end-to-end: summaries, bundles, exit codes, replay."""

import os

import pytest

from repro.check import cli


def run_main(argv):
    from repro.experiments.__main__ import main
    return main(argv)


def test_check_writes_bundles_and_exits_nonzero(tmp_path, capsys):
    code = cli.run_check("lostwake", schedules=6, seed=7, chaos=True,
                         out_dir=str(tmp_path))
    out = capsys.readouterr().out
    assert code == 1
    assert "failing" in out
    written = [n for n in os.listdir(str(tmp_path))
               if n.startswith("bundle-lostwake-")]
    assert written  # every failing schedule left a bundle
    assert "check --replay" in out


def test_check_clean_target_exits_zero(tmp_path, capsys):
    code = cli.run_check("l4race", schedules=4, seed=7,
                         out_dir=str(tmp_path))
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failing" in out
    assert os.listdir(str(tmp_path)) == []


def test_check_summary_identical_across_jobs(tmp_path, capsys):
    cli.run_check("lostwake", schedules=5, seed=7, chaos=True,
                  out_dir=str(tmp_path / "a"))
    serial = capsys.readouterr().out
    cli.run_check("lostwake", schedules=5, seed=7, chaos=True,
                  jobs=2, out_dir=str(tmp_path / "b"))
    parallel = capsys.readouterr().out
    assert serial.replace("/a", "/b") == parallel


def test_check_rejects_unknown_target(capsys):
    assert cli.run_check("fig99", schedules=2, seed=7) == 2


def test_replay_cli_round_trip(tmp_path, capsys):
    cli.run_check("lostwake", schedules=6, seed=7, chaos=True,
                  out_dir=str(tmp_path))
    capsys.readouterr()
    bundle = sorted(os.listdir(str(tmp_path)))[0]
    code = cli.run_replay(os.path.join(str(tmp_path), bundle))
    out = capsys.readouterr().out
    assert code == 0
    assert "replay: reproduced" in out


def test_replay_missing_file_is_usage_error(capsys):
    assert cli.run_replay("/nonexistent/bundle.json") == 2


def test_main_dispatches_check_verb(tmp_path, capsys):
    code = run_main(["check", "lostwake", "--schedules", "4",
                     "--seed", "7", "--chaos", "--out", str(tmp_path)])
    assert code == 1  # lostwake storms find the deadlock
    assert "schedule 000" in capsys.readouterr().out


def test_main_check_usage_error(capsys):
    assert run_main(["check"]) == 2


def test_shrink_flag_writes_min_bundle(tmp_path, capsys):
    code = run_main(["check", "lostwake", "--schedules", "6",
                     "--seed", "7", "--chaos", "--shrink", "--no-cache",
                     "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "shrink:" in out
    assert any(n.endswith("-min.json")
               for n in os.listdir(str(tmp_path)))
