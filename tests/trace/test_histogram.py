"""Percentile math of the log-scale latency histogram against known
distributions, plus geometry and merge semantics."""

import random

import pytest

from repro.trace.histogram import LatencyHistogram


def test_empty_histogram():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.summary()["max_ns"] == 0.0


def test_single_value_all_percentiles_equal():
    hist = LatencyHistogram.from_values([1234.5])
    for p in (0, 50, 95, 99, 99.9, 100):
        assert hist.percentile(p) == pytest.approx(1234.5)
    assert hist.mean == pytest.approx(1234.5)


def test_mean_min_max_are_exact():
    values = [3.0, 17.0, 17.0, 9000.0, 123456.0]
    hist = LatencyHistogram.from_values(values)
    assert hist.count == 5
    assert hist.mean == pytest.approx(sum(values) / len(values))
    assert hist.minimum == 3.0
    assert hist.maximum == 123456.0


def test_percentiles_of_uniform_distribution():
    # 1..10000 uniformly: pXX must land within one bucket's relative
    # error of the exact order statistic.
    hist = LatencyHistogram()
    for value in range(1, 10001):
        hist.add(float(value))
    tolerance = hist.relative_error
    for p, exact in ((50, 5000.0), (95, 9500.0), (99, 9900.0)):
        measured = hist.percentile(p)
        assert abs(measured - exact) / exact <= tolerance + 0.01, \
            f"p{p}: {measured} vs {exact}"


def test_percentiles_of_bimodal_distribution():
    # 90% fast (100ns), 10% slow (1ms): p50 sees the fast mode, p99 the
    # slow one — exactly the mean-hides-the-tail case histograms exist for.
    hist = LatencyHistogram()
    for _ in range(900):
        hist.add(100.0)
    for _ in range(100):
        hist.add(1_000_000.0)
    assert hist.p50 == pytest.approx(100.0, rel=hist.relative_error + 0.01)
    assert hist.p99 == pytest.approx(1_000_000.0,
                                     rel=hist.relative_error + 0.01)
    assert hist.p50 < 200.0 < 500_000.0 < hist.p99


def test_percentile_clamped_to_observed_range():
    hist = LatencyHistogram.from_values([500.0, 600.0, 700.0])
    assert hist.percentile(0) >= 500.0
    assert hist.percentile(100) <= 700.0


def test_relative_error_bound_holds_on_random_samples():
    rng = random.Random(42)
    values = sorted(rng.uniform(10.0, 1e7) for _ in range(5000))
    hist = LatencyHistogram.from_values(values)
    for p in (50, 90, 99):
        exact = values[int(p / 100 * len(values)) - 1]
        measured = hist.percentile(p)
        assert abs(measured - exact) / exact <= hist.relative_error + 0.02


def test_values_below_min_go_to_bucket_zero():
    hist = LatencyHistogram(min_ns=10.0)
    hist.add(0.0)
    hist.add(5.0)
    hist.add(10.0)
    assert hist.counts[0] == 3
    assert hist.count == 3


def test_values_above_range_clamp_to_last_bucket():
    hist = LatencyHistogram(decades=2, min_ns=1.0)  # covers 1..100ns
    hist.add(1e9)
    assert hist.counts[-1] == 1
    assert hist.maximum == 1e9
    assert hist.percentile(100) == 1e9  # clamped to observed max


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram().add(-1.0)


def test_percentile_out_of_range_rejected():
    hist = LatencyHistogram.from_values([1.0])
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram(buckets_per_decade=0)
    with pytest.raises(ValueError):
        LatencyHistogram(min_ns=0.0)


def test_merge_equals_union():
    rng = random.Random(7)
    left_values = [rng.uniform(1, 1e6) for _ in range(300)]
    right_values = [rng.uniform(1, 1e6) for _ in range(500)]
    left = LatencyHistogram.from_values(left_values)
    right = LatencyHistogram.from_values(right_values)
    union = LatencyHistogram.from_values(left_values + right_values)
    left.merge(right)
    assert left.count == union.count
    assert left.sum_ns == pytest.approx(union.sum_ns)
    assert left.minimum == union.minimum
    assert left.maximum == union.maximum
    assert left.counts == union.counts
    for p in (50, 95, 99):
        assert left.percentile(p) == pytest.approx(union.percentile(p))


def test_merge_rejects_different_geometry():
    with pytest.raises(ValueError):
        LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=10))


def test_bucket_bounds_tile_the_axis():
    hist = LatencyHistogram()
    previous_high = hist.bucket_bounds(0)[1]
    for index in range(1, 50):
        low, high = hist.bucket_bounds(index)
        assert low == pytest.approx(previous_high)
        assert high > low
        previous_high = high


def test_nonzero_buckets_roundtrip():
    hist = LatencyHistogram.from_values([10.0, 10.0, 5000.0])
    populated = hist.nonzero_buckets()
    assert sum(count for _low, _high, count in populated) == 3
    for low, high, _count in populated:
        assert low < high
