"""Exporters (Chrome trace JSON, spans CSV) and run-metadata capture."""

import csv
import json

from repro.kernel import Kernel
from repro.trace import TraceSession
from repro.trace.export import (SPAN_CSV_COLUMNS, chrome_trace_dict,
                                render_counters, write_chrome_trace,
                                write_spans_csv)
from repro.trace.meta import (collect_meta, constants_hash, git_sha,
                              summary_line, write_meta)


def traced_session():
    with TraceSession() as session:
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("worker")

        def body(t):
            yield t.compute(50)
            yield t.yield_cpu()
            yield t.compute(25)

        kernel.spawn(proc, body, name="w0", pin=0)
        kernel.spawn(proc, body, name="w1", pin=0)
        kernel.run()
    session.finalize()
    return session


def test_chrome_trace_dict_structure():
    trace = chrome_trace_dict(traced_session())
    events = trace["traceEvents"]
    assert trace["otherData"]["clock"] == "simulated-ns"
    assert trace["otherData"]["runs"] == ["run1"]
    phases = {event["ph"] for event in events}
    assert "X" in phases  # at least one complete span
    assert "M" in phases  # process-name metadata
    # every event carries the required keys and microsecond timestamps
    for event in events:
        assert {"ph", "name", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert event["ts"] >= 0


def test_trace_json_roundtrips_through_disk(tmp_path):
    path = write_chrome_trace(traced_session(), str(tmp_path / "trace.json"))
    with open(path) as handle:
        trace = json.load(handle)
    assert len(trace["traceEvents"]) > 0


def test_process_names_are_prefixed_with_run_label():
    trace = chrome_trace_dict(traced_session())
    names = [event["args"]["name"] for event in trace["traceEvents"]
             if event["ph"] == "M" and event["name"] == "process_name"]
    assert names
    assert all(name.startswith("run1/") for name in names)


def test_counter_events_emitted():
    trace = chrome_trace_dict(traced_session())
    counters = [event for event in trace["traceEvents"]
                if event["ph"] == "C"]
    assert any(event["name"] == "engine.events_processed"
               for event in counters)


def test_multiple_runs_get_distinct_pid_blocks():
    with TraceSession() as session:
        for _ in range(2):
            kernel = Kernel(num_cpus=1)
            proc = kernel.spawn_process("p")

            def body(t):
                yield t.compute(10)

            kernel.spawn(proc, body, pin=0)
            kernel.run()
    trace = chrome_trace_dict(session)
    pids_by_run = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "M":
            run = event["args"]["name"].split("/")[0]
            pids_by_run.setdefault(run, set()).add(event["pid"])
    assert set(pids_by_run) == {"run1", "run2"}
    assert not (pids_by_run["run1"] & pids_by_run["run2"])


def test_spans_csv_layout(tmp_path):
    path = write_spans_csv(traced_session(), str(tmp_path / "spans.csv"))
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert tuple(rows[0]) == SPAN_CSV_COLUMNS
    assert len(rows) > 1
    for row in rows[1:]:
        assert row[0] == "run1"
        start, end, duration = float(row[5]), float(row[6]), float(row[7])
        assert end >= start
        assert duration == end - start


def test_render_counters_mentions_harvested_stats():
    text = render_counters(traced_session())
    assert "engine.events_processed" in text
    assert "sched.context_switches" in text


def test_collect_meta_contents():
    meta = collect_meta(experiment="fig5", quick=True,
                        params={"iters": 3}, argv=["prog", "trace"])
    assert meta["meta_version"] == 1
    assert meta["experiment"] == "fig5"
    assert meta["mode"] == "quick"
    assert meta["params"] == {"iters": 3}
    assert meta["argv"] == ["prog", "trace"]
    assert meta["python"].count(".") >= 1
    assert meta["seed"] == meta["cost_constants"]["JITTER_SEED"]
    assert len(meta["constants_hash"]) == 12
    assert meta["constants_hash"] == constants_hash()


def test_meta_roundtrips_through_disk(tmp_path):
    meta = collect_meta(experiment="report", quick=False)
    path = write_meta(str(tmp_path / "meta.json"), meta)
    with open(path) as handle:
        assert json.load(handle) == meta


def test_git_sha_shape():
    sha = git_sha(cwd="/root/repo")
    assert sha == "unknown" or len(sha.split("-", 1)[0]) == 40


def test_summary_line_is_single_line():
    line = summary_line(collect_meta(experiment="x", quick=True))
    assert "\n" not in line
    assert "quick mode" in line
    assert "costs" in line
