"""Null-tracer, live-tracer and TraceSession behavior, including the
determinism guarantee: tracing records but never charges simulated time."""

import pytest

from repro.kernel import Kernel
from repro.sim.engine import Engine
from repro.trace import (NULL_TRACER, CounterSet, NullTracer, TraceSession,
                         Tracer)


def test_engine_defaults_to_null_tracer():
    engine = Engine()
    assert engine.tracer is NULL_TRACER
    assert not engine.tracer.enabled


def test_null_tracer_is_inert():
    tracer = NullTracer()
    span = tracer.begin("x", "cat")
    tracer.end(span)
    tracer.instant("y")
    tracer.count("z", 5)
    tracer.complete("w", "cat", 0.0, 10.0)
    # same shared sentinel span every time, nothing recorded anywhere
    assert tracer.begin("other", "cat") is span


def test_live_tracer_records_simulated_timestamps():
    engine = Engine()
    tracer = Tracer(engine, label="t")
    captured = {}

    def work():
        captured["span"] = tracer.begin("op", "test", track="main")

    def finish():
        tracer.end(captured["span"], args={"ok": True})

    engine.post(100, work)
    engine.post(250, finish)
    engine.run()
    span = captured["span"]
    assert span.start_ns == 100
    assert span.end_ns == 250
    assert span.duration_ns == 150
    assert span.args == {"ok": True}
    assert not span.open
    assert tracer.closed_spans() == [span]
    assert tracer.spans_named("op") == [span]


def test_end_is_idempotent():
    engine = Engine()
    tracer = Tracer(engine)
    span = tracer.begin("op")
    engine.post(50, lambda: tracer.end(span))
    engine.run()
    tracer.end(span)  # second end at a later time must not move end_ns
    assert span.end_ns == 50


def test_instants_and_counters():
    engine = Engine()
    tracer = Tracer(engine)
    engine.post(10, lambda: tracer.instant("fault", "codoms",
                                           track="codoms"))
    engine.run()
    tracer.count("hits")
    tracer.count("hits", 2)
    assert len(tracer.instants) == 1
    assert tracer.instants[0].ts_ns == 10
    assert tracer.counters.get("hits") == 3


def test_clear_drops_recordings():
    tracer = Tracer(Engine())
    tracer.end(tracer.begin("warmup"))
    tracer.instant("x")
    tracer.count("c")
    tracer.clear()
    assert tracer.spans == []
    assert tracer.instants == []
    assert len(tracer.counters) == 0


def test_counter_set_semantics():
    counters = CounterSet()
    counters.add("a", 2)
    counters.add("a")
    counters.set_max("b", 10)
    counters.set_max("b", 4)  # high-water mark: no decrease
    assert counters.get("a") == 3
    assert counters.get("b") == 10
    assert "a" in counters and "missing" not in counters
    with pytest.raises(ValueError):
        counters.add("a", -1)
    other = CounterSet()
    other.add("a", 7)
    counters.merge(other)
    assert counters.as_dict() == {"a": 10, "b": 10}


def test_session_attaches_tracer_to_kernels_built_inside():
    with TraceSession() as session:
        kernel = Kernel(num_cpus=1)
        assert kernel.tracer.enabled
        assert kernel.engine.tracer is session.tracers()[0]
    # outside the session, new kernels stay untraced
    assert not Kernel(num_cpus=1).tracer.enabled


def test_session_is_exclusive():
    with TraceSession():
        with pytest.raises(RuntimeError):
            TraceSession().__enter__()
    assert TraceSession.current() is None


def test_session_collects_one_tracer_per_kernel():
    with TraceSession() as session:
        Kernel(num_cpus=1)
        Kernel(num_cpus=1)
    labels = [tracer.label for tracer in session.tracers()]
    assert labels == ["run1", "run2"]
    assert session.span_count() == 0


def test_traced_run_records_scheduler_spans_and_harvests_counters():
    with TraceSession() as session:
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("worker")

        def body(t):
            yield t.compute(100)

        kernel.spawn(proc, body, name="w0", pin=0)
        kernel.run()
    session.finalize()
    (tracer,) = session.tracers()
    oncpu = [s for s in tracer.closed_spans() if s.category == "oncpu"]
    assert len(oncpu) >= 1
    assert oncpu[0].duration_ns > 0
    merged = session.merged_counters()
    assert merged.get("engine.events_processed") > 0


def test_finalize_is_idempotent():
    with TraceSession() as session:
        kernel = Kernel(num_cpus=1)
        proc = kernel.spawn_process("p")

        def body(t):
            yield t.compute(10)

        kernel.spawn(proc, body, pin=0)
        kernel.run()
    session.finalize()
    first = session.merged_counters().as_dict()
    session.finalize()
    assert session.merged_counters().as_dict() == first


def test_tracing_does_not_change_simulated_time():
    """The determinism guarantee: enabled tracing must not move the clock
    or the charged-time accounting by a single nanosecond."""

    def simulate():
        kernel = Kernel(num_cpus=2)
        pa = kernel.spawn_process("a")
        pb = kernel.spawn_process("b")

        def body(t):
            for _ in range(5):
                yield t.compute(37)
                yield t.yield_cpu()

        kernel.spawn(pa, body, pin=0)
        kernel.spawn(pb, body, pin=0)
        kernel.run()
        return kernel.engine.now(), kernel.engine.events_processed

    untraced = simulate()
    with TraceSession() as session:
        traced = simulate()
    assert traced == untraced
    assert session.span_count() > 0  # tracing really was on
