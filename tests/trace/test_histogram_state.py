"""Histogram serialization round-trip (feeds shard snapshots)."""

import json

from repro.trace.histogram import LatencyHistogram


def _filled():
    hist = LatencyHistogram()
    for value in (120.0, 4_500.0, 4_501.0, 9e6, 0.5, 77.7):
        hist.add(value)
    return hist


def test_state_round_trip_preserves_summary():
    hist = _filled()
    clone = LatencyHistogram.from_state(hist.to_state())
    assert clone.summary() == hist.summary()
    assert clone.to_state() == hist.to_state()


def test_state_is_json_safe():
    state = _filled().to_state()
    assert json.loads(json.dumps(state)) == state


def test_empty_histogram_round_trips():
    empty = LatencyHistogram()
    clone = LatencyHistogram.from_state(empty.to_state())
    assert clone.summary() == empty.summary()


def test_round_trip_then_add_matches_never_serialized():
    straight = LatencyHistogram()
    hopped = LatencyHistogram()
    first = (10.0, 250.0, 3e4)
    second = (17.0, 9_999.0)
    for value in first:
        straight.add(value)
        hopped.add(value)
    hopped = LatencyHistogram.from_state(hopped.to_state())
    for value in second:
        straight.add(value)
        hopped.add(value)
    assert hopped.summary() == straight.summary()
