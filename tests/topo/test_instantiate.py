"""Graph instantiation: every primitive serves every pattern shape."""

import pytest

from repro import units
from repro.fault import InvariantAuditor
from repro.load import LoadParams, run_load_point
from repro.load.transports import PRIMITIVES
from repro.topo import generate


def _params(spec, primitive, **overrides):
    base = dict(primitive=primitive, mode="open", policy="shed",
                arrivals="poisson", offered_kops=50.0, n_clients=2,
                n_conns=4, n_workers=2, queue_depth=8, req_size=128,
                deadline_ns=2.0 * units.MS, num_cpus=8,
                warmup_ns=0.3 * units.MS, window_ns=0.6 * units.MS,
                seed=42, topo=spec.to_dict())
    base.update(overrides)
    return LoadParams(**base)


@pytest.mark.parametrize("primitive", PRIMITIVES)
def test_every_primitive_traverses_a_chain(primitive):
    spec = generate("chain_branch", 4)
    kernels = []
    result = run_load_point(
        _params(spec, primitive, max_requests_per_client=10,
                drain=True), keep_kernel=kernels)
    assert result.completed >= 8
    assert result.completed == result.offered_seen
    assert result.failed == 0
    assert result.p50_ns > 3 * 300.0  # at least the 3 hops' work
    InvariantAuditor(kernels[0]).assert_clean()


def test_parallel_fanout_overlaps_children():
    # parallel visits pay a helper-thread spawn/join per child, so the
    # overlap only wins where per-hop cost dwarfs it — i.e. on socket
    seq = run_load_point(_params(generate("seq_fanout", 6), "socket"))
    par = run_load_point(_params(generate("par_fanout", 6), "socket"))
    assert seq.completed > 10 and par.completed > 10
    assert par.p50_ns < seq.p50_ns


def test_topo_points_are_deterministic():
    spec = generate("mesh", 8, width=2, seed=3)
    a = run_load_point(_params(spec, "socket")).to_point()
    b = run_load_point(_params(spec, "socket")).to_point()
    assert a == b
    assert a["p999_ns"] >= a["p99_ns"] >= a["p50_ns"] > 0


def test_dipc_beats_socket_end_to_end_on_a_deep_chain():
    spec = generate("chain_branch", 8)
    socket = run_load_point(_params(spec, "socket"))
    dipc = run_load_point(_params(spec, "dipc"))
    assert dipc.p50_ns * 5 < socket.p50_ns


def test_malformed_topo_spec_is_rejected():
    spec = generate("chain_branch", 3)
    broken = spec.to_dict()
    broken["edges"][0]["dst"] = 17    # dangling edge
    with pytest.raises(ValueError):
        run_load_point(_params(spec, "pipe", topo=broken))
