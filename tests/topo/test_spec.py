"""Topology generation: determinism, DAG structure, spec hashing."""

import json
import random
import subprocess
import sys

import pytest

from repro.topo import PATTERNS, TopoSpec, generate
from repro.topo.generate import sequential_chain
from repro.topo.spec import ROOT
from repro.topo.stats import mean_ci, t_critical

_KWARGS = {
    "seq_fanout": {},
    "par_fanout": {},
    "chain_branch": {"backbone": 5},
    "tree": {"width": 3},
    "random_tree": {"seed": 7, "max_children": 2},
    "mesh": {"width": 3, "seed": 3, "extra_edges": 0.3},
}


def _all(n=12):
    return {p: generate(p, n, **_KWARGS[p]) for p in PATTERNS}


def test_same_seed_same_bytes_within_process():
    for pattern in PATTERNS:
        a = generate(pattern, 10, seed=5, **{
            k: v for k, v in _KWARGS[pattern].items() if k != "seed"})
        b = generate(pattern, 10, seed=5, **{
            k: v for k, v in _KWARGS[pattern].items() if k != "seed"})
        assert a.canonical_json() == b.canonical_json()
        assert a.spec_hash() == b.spec_hash()


def test_same_seed_byte_identical_json_across_processes():
    # the cache-key contract: a subprocess (fresh hash randomization,
    # fresh interpreter) must serialize the same graph to the same bytes
    program = (
        "from repro.topo import generate\n"
        "import sys\n"
        "spec = generate('mesh', 12, seed=3, width=3, extra_edges=0.3)\n"
        "sys.stdout.write(spec.canonical_json())\n")
    outs = {
        subprocess.run(
            [sys.executable, "-c", program], check=True,
            capture_output=True, text=True).stdout
        for _ in range(2)}
    assert len(outs) == 1
    here = generate("mesh", 12, seed=3, width=3,
                    extra_edges=0.3).canonical_json()
    assert outs == {here}


def test_all_patterns_are_connected_dags_with_exactly_n_services():
    for pattern, spec in _all(12).items():
        assert spec.n == 12 and len(spec.nodes) == 12, pattern
        assert sorted(node.id for node in spec.nodes) == list(range(12))
        # topological_order succeeding over every node proves acyclic
        order = spec.topological_order()
        assert sorted(order) == list(range(12)), pattern
        # connected: every non-root service reachable from the root
        seen = {ROOT}
        for node_id in order:
            if node_id in seen:
                seen.update(spec.children(node_id))
        assert seen == set(range(12)), pattern
        # and every non-root has at least one parent
        for node in spec.nodes:
            if node.id != ROOT:
                assert spec.parents(node.id), pattern


def test_random_tree_edges_match_the_seeded_rng():
    # replay the generator's draw sequence with the same seeded RNG:
    # the published algorithm, not incidental state, defines the graph
    n, seed, max_children = 15, 9, 2
    spec = generate("random_tree", n, seed=seed,
                    max_children=max_children)
    rng = random.Random(seed)
    out_degree = [0] * n
    expected = []
    for i in range(1, n):
        open_parents = [j for j in range(i)
                        if out_degree[j] < max_children]
        parent = open_parents[rng.randrange(len(open_parents))]
        out_degree[parent] += 1
        expected.append((parent, i))
    assert [(e.src, e.dst) for e in spec.edges] == expected
    assert max(out_degree) <= max_children
    # a tree has exactly n-1 edges
    assert len(spec.edges) == n - 1


def test_spec_hash_stable_under_dict_order_perturbation():
    spec = generate("tree", 9, width=2)
    round_tripped = TopoSpec.from_dict(
        json.loads(spec.canonical_json()))
    shuffled = {key: spec.to_dict()[key]
                for key in reversed(list(spec.to_dict()))}
    shuffled["nodes"] = [dict(reversed(list(node.items())))
                         for node in shuffled["nodes"]]
    perturbed = TopoSpec.from_dict(shuffled)
    assert round_tripped.spec_hash() == spec.spec_hash()
    assert perturbed.spec_hash() == spec.spec_hash()
    assert perturbed.canonical_json() == spec.canonical_json()


def test_different_seed_or_shape_changes_the_hash():
    base = generate("mesh", 12, seed=3, width=3)
    assert generate("mesh", 12, seed=4, width=3).spec_hash() \
        != base.spec_hash()
    assert generate("mesh", 13, seed=3, width=3).spec_hash() \
        != base.spec_hash()


def test_depth_and_width_read_the_shape():
    chain = generate("chain_branch", 8)
    assert chain.depth == 7 and chain.width == 1
    star = generate("seq_fanout", 8)
    assert star.depth == 1 and star.width == 7
    tree = generate("tree", 7, width=2)
    assert tree.depth == 2 and tree.width == 4


def test_sequential_chain_names_and_structure():
    spec = sequential_chain(("apache", "php", "mariadb"))
    assert spec.pattern == "chain_branch" and spec.n == 3
    assert [node.name for node in spec.nodes] == \
        ["apache", "php", "mariadb"]
    assert [(e.src, e.dst) for e in spec.edges] == [(0, 1), (1, 2)]
    assert spec.depth == 2


def test_generator_rejects_bad_parameters():
    with pytest.raises(ValueError):
        generate("moebius", 4)
    with pytest.raises(ValueError):
        generate("chain_branch", 0)
    with pytest.raises(ValueError):
        generate("chain_branch", 4, backbone=9)
    with pytest.raises(ValueError):
        generate("tree", 4, width=0)
    with pytest.raises(ValueError):
        generate("random_tree", 4, max_children=0)
    with pytest.raises(ValueError):
        sequential_chain(())


def test_mean_ci_small_sample_statistics():
    mean, half = mean_ci([10.0])
    assert (mean, half) == (10.0, 0.0)
    mean, half = mean_ci([9.0, 11.0])
    assert mean == 10.0
    # sample std of [9, 11] is sqrt(2), so the standard error is 1.0
    assert half == pytest.approx(t_critical(1))
    assert t_critical(1) > t_critical(9) > t_critical(120)
