"""The phase probe hooks in repro.topo.instantiate.

The conformance harness (repro.recovery.conformance) locates its kill
points by recording at which engine event each label first fires; the
contract here is that the labels fire, in request-lifetime order, and
that an armed probe is pure observation — it must not change the
workload's event order (probe run == plain run, event for event).
"""

from repro.recovery import conformance
from repro.topo import instantiate


def _collect(primitive="dipc", pattern="chain"):
    labels = []
    previous = instantiate.set_probe(labels.append)
    try:
        findings = conformance.run_cell_workload(primitive, pattern)
    finally:
        instantiate.set_probe(previous)
    return labels, findings


def test_probe_labels_fire_in_request_lifetime_order():
    labels, findings = _collect()
    assert findings == []
    first = {label: i for i, label in reversed(list(enumerate(labels)))}
    assert (first["call:enter"] < first["serve:0:enter"]
            < first["serve:0:exit"] < first["call:exit"])
    # the chain nests: a deeper service starts after the root
    deeper = [label for label in first
              if label.startswith("serve:") and label.endswith(":enter")
              and label != "serve:0:enter"]
    assert deeper, "chain topology never nested a call"
    assert all(first[label] > first["serve:0:enter"] for label in deeper)


def test_set_probe_returns_the_previous_probe():
    sentinel = object()
    assert instantiate.set_probe(sentinel) is None
    assert instantiate.set_probe(None) is sentinel
    assert instantiate._probe is None


def test_disarmed_probe_never_fires():
    labels, _ = _collect()
    assert labels
    # run again with no probe installed: nothing is recorded anywhere
    recorded = []
    previous = instantiate.set_probe(recorded.append)
    instantiate.set_probe(previous)
    conformance.run_cell_workload("dipc", "chain")
    assert recorded == []


def test_probe_runs_match_plain_runs_event_for_event():
    # the conformance contract: probing is free. A cell's probe run and
    # kill run share event indices up to the kill, which only holds if
    # the probe itself posts no events — compare total event counts.
    def events_processed(with_probe):
        if with_probe:
            previous = instantiate.set_probe(lambda label: None)
        try:
            conformance.run_cell_workload("dipc", "chain")
        finally:
            if with_probe:
                instantiate.set_probe(previous)
        return conformance._probe_kernels[0].engine.events_processed

    assert events_processed(True) == events_processed(False)
