"""FaultInjector actions, event-count triggers, and the auditor sweep."""

import pytest

from repro.codoms.apl import Permission
from repro.errors import (AccessFault, InvariantViolation, ProtectionFault,
                          SimulationError)
from repro.fault import FaultInjector, FaultPlan, FaultRule, InvariantAuditor
from repro.ipc.unixsocket import SocketNamespace
from repro.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(num_cpus=2)


def _spin(thread, loops=50, ns=100):
    for _ in range(loops):
        yield thread.compute(ns)


# -- engine event-count triggers ---------------------------------------------

def test_at_event_count_fires_at_exact_position(kernel):
    engine = kernel.engine
    seen = []
    for i in range(10):
        engine.post(float(i), lambda i=i: seen.append(("ev", i)))
    engine.at_event_count(3, lambda: seen.append(("trigger",
                                                  engine.events_processed)))
    engine.run()
    assert ("trigger", 3) in seen
    assert seen.index(("trigger", 3)) == 3  # right after the 3rd event


def test_at_event_count_in_past_raises(kernel):
    engine = kernel.engine
    engine.post(0, lambda: None)
    engine.post(0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.at_event_count(1, lambda: None)


def test_unreached_trigger_does_not_block_drain(kernel):
    engine = kernel.engine
    engine.post(0, lambda: None)
    engine.at_event_count(1_000_000, lambda: None)
    engine.run()
    assert engine.pending() == 0


# -- injector actions ---------------------------------------------------------

def test_kill_process_action(kernel):
    victim = kernel.spawn_process("victim")
    kernel.spawn(victim, _spin, name="victim/t")
    plan = FaultPlan([FaultRule("kill_process", "victim", at_ns=500.0)])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    kernel.run_all()
    assert not victim.alive
    assert [r.outcome for r in injector.records] == ["killed"]
    # the record carries deterministic sim-state coordinates
    assert injector.records[0].time_ns == 500.0
    assert injector.records[0].event_index > 0


def test_kill_process_missing_and_dead_outcomes(kernel):
    victim = kernel.spawn_process("victim")
    kernel.kill_process(victim)
    plan = FaultPlan([
        FaultRule("kill_process", "victim", at_ns=10.0),
        FaultRule("kill_process", "ghost", at_ns=20.0),
    ])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    kernel.run_all()
    assert [r.outcome for r in injector.records] == \
        ["already-dead", "no-such-process"]


def test_crash_thread_injects_protection_fault(kernel):
    proc = kernel.spawn_process("app")
    kernel.spawn(proc, _spin, name="app/worker")
    plan = FaultPlan([FaultRule("crash_thread", "app/", at_ns=300.0)])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    kernel.run_all()
    assert injector.records[0].outcome == "faulted app/worker"
    assert len(kernel.crashed_threads) == 1
    assert isinstance(kernel.crashed_threads[0].exception, AccessFault)


def test_crash_thread_no_match(kernel):
    plan = FaultPlan([FaultRule("crash_thread", "nobody/", at_ns=5.0)])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    kernel.run_all()
    assert injector.records[0].outcome == "no-match"


def test_revoke_grant_removes_apl_edge(kernel):
    from repro.core.api import DipcManager
    from tests.core.conftest import wire_up_call

    manager = DipcManager(kernel)
    web = kernel.spawn_process("web", dipc=True)
    database = kernel.spawn_process("database", dipc=True)
    wire_up_call(manager, web, database)
    assert len(manager.grants) >= 1
    grant = manager.grants[0]
    plan = FaultPlan([FaultRule("revoke_grant", "grant", at_ns=5.0)])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    kernel.run_all()
    assert grant.revoked
    assert kernel.apls.apl_of(grant.src_tag).permission_to(
        grant.dst_tag) is Permission.NIL
    assert injector.records[0].outcome == \
        f"revoked {grant.src_tag}->{grant.dst_tag}"


def test_drop_message_loses_a_queued_datagram(kernel):
    ns = SocketNamespace()
    proc = kernel.spawn_process("p")
    receiver = ns.socket(kernel)
    receiver.bind("/box")
    sender = ns.socket(kernel)

    def send(t):
        yield from sender.sendto(t, "/box", 64, payload="precious")

    kernel.spawn(proc, send)
    plan = FaultPlan([FaultRule("drop_message", "box", at_ns=5_000.0)])
    injector = FaultInjector(kernel, plan)
    injector.register_channel("box", receiver)
    injector.arm()
    kernel.run_all()
    assert injector.records[0].outcome == "dropped 64B"
    assert receiver.queued == 0


def test_delay_message_redelivers_later(kernel):
    ns = SocketNamespace()
    proc = kernel.spawn_process("p")
    receiver = ns.socket(kernel)
    receiver.bind("/box")
    sender = ns.socket(kernel)
    got = []

    def send(t):
        yield from sender.sendto(t, "/box", 32, payload="slow")

    def recv(t):
        got.append((yield from receiver.recvfrom(t)))

    kernel.spawn(proc, send)
    kernel.spawn(proc, recv)
    plan = FaultPlan([FaultRule("delay_message", "box", at_ns=3_000.0,
                                param=40_000)])
    injector = FaultInjector(kernel, plan)
    injector.register_channel("box", receiver)
    injector.arm()
    kernel.run_all()
    assert injector.records[0].outcome == "delayed 32B by 40000ns"
    assert got and got[0][0] == "slow"
    assert kernel.engine.now() >= 43_000.0  # delivery waited for the delay


def test_arming_twice_raises(kernel):
    injector = FaultInjector(kernel, FaultPlan([]))
    injector.arm()
    with pytest.raises(SimulationError):
        injector.arm()


# -- auditor -------------------------------------------------------------------

def test_auditor_clean_on_quiet_kernel(kernel):
    proc = kernel.spawn_process("p")
    kernel.spawn(proc, _spin)
    kernel.run_all()
    assert InvariantAuditor(kernel).audit() == []
    InvariantAuditor(kernel).assert_clean()


def test_auditor_flags_pending_events(kernel):
    kernel.engine.post(100.0, lambda: None)
    violations = InvariantAuditor(kernel).audit()
    assert any(v.startswith("A1") for v in violations)


def test_auditor_flags_live_thread_of_dead_process(kernel):
    proc = kernel.spawn_process("p")
    thread = kernel.spawn(proc, _spin)
    kernel.run_all()
    proc.alive = False  # simulate a buggy kill that skipped teardown
    thread.state = "blocked"
    violations = InvariantAuditor(kernel).audit()
    assert any(v.startswith("A2") for v in violations)
    with pytest.raises(InvariantViolation):
        InvariantAuditor(kernel).assert_clean()


def test_auditor_flags_unbalanced_kcs_and_unreaped_split(kernel):
    from repro.core.kcs import KCSEntry, KernelControlStack

    proc = kernel.spawn_process("p")
    thread = kernel.spawn(proc, _spin, start=False)
    thread.kcs = KernelControlStack()
    thread.kcs.push(KCSEntry(proxy=None, caller_process=proc,
                             caller_tag=None, caller_privileged=False,
                             return_address=0, saved_stack_pointer=0,
                             saved_stack=None, callee_process=proc))
    thread.is_split_half = True
    violations = InvariantAuditor(kernel).audit()
    assert any(v.startswith("A3") for v in violations)
    assert any(v.startswith("A5") for v in violations)


def test_auditor_flags_unsanctioned_crash(kernel):
    proc = kernel.spawn_process("p")

    def bomb(t):
        yield t.compute(10)
        raise RuntimeError("not a chaos fault")

    kernel.spawn(proc, bomb)
    kernel.run_all()
    violations = InvariantAuditor(
        kernel, allowed_crashes=(ProtectionFault,)).audit()
    assert any("A8" in v and "RuntimeError" in v for v in violations)
    # the same crash is sanctioned when its class is allowed
    assert InvariantAuditor(
        kernel, allowed_crashes=(RuntimeError,)).audit() == []
