"""End-to-end chaos storms: determinism, auditing, tracer neutrality."""

import pytest

from repro.fault import chaos, render_log
from repro.trace.tracer import TraceSession

# storms are full kernel boots; keep the counts small but meaningful
SEED = 7
STORMS = 3


@pytest.fixture(scope="module")
def baseline():
    """One quick storm set, shared across the read-only assertions."""
    return [chaos.run_storm(SEED, storm, quick=True)
            for storm in range(STORMS)]


def test_storms_inject_and_stay_clean(baseline):
    assert sum(len(r.records) for r in baseline) > 0
    for result in baseline:
        assert result.violations == []


def test_rerun_is_byte_identical(baseline):
    for result in baseline:
        again = chaos.run_storm(SEED, result.storm, quick=True)
        assert render_log(again.records) == render_log(result.records)
        assert again.stats == result.stats


def test_different_seeds_produce_different_storms():
    a = chaos.run_storm(7, 0, quick=True)
    b = chaos.run_storm(8, 0, quick=True)
    assert render_log(a.records) != render_log(b.records)


def test_tracing_does_not_perturb_sim_time(baseline):
    """A traced storm must replay the untraced one exactly: same
    injection coordinates (time_ns, event_index), same workload stats —
    the tracer observes the simulation without posting events into it."""
    with TraceSession():
        traced = [chaos.run_storm(SEED, storm, quick=True)
                  for storm in range(STORMS)]
    for plain, shadow in zip(baseline, traced):
        assert render_log(shadow.records) == render_log(plain.records)
        assert [(r.time_ns, r.event_index) for r in shadow.records] == \
            [(r.time_ns, r.event_index) for r in plain.records]
        assert shadow.stats == plain.stats
        assert shadow.violations == []


def test_run_chaos_verify_roundtrip():
    report = chaos.run_chaos(SEED, 2, quick=True, verify=True)
    assert report.verified is True
    assert report.ok
    assert report.log_text.startswith("# chaos seed=7 storms=2 quick=1\n")
    rendered = chaos.render(report)
    assert "byte-identical" in rendered
    assert "all invariants held" in rendered


def test_derived_seeds_never_collide():
    seen = {chaos.derived_seed(seed, storm)
            for seed in range(1, 50) for storm in range(100)}
    assert len(seen) == 49 * 100
