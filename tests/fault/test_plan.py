"""FaultPlan sampling and injection-log rendering: pure determinism."""

import random

import pytest

from repro.fault.plan import (ACTIONS, FaultPlan, FaultRule,
                              InjectionRecord, render_log)

MENU = dict(processes=("a", "b"), thread_prefixes=("a/",),
            channels=("chan",), horizon_ns=100_000.0)


def test_rule_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        FaultRule("kill_process", "a")
    with pytest.raises(ValueError):
        FaultRule("kill_process", "a", at_ns=1.0, at_event=2)
    FaultRule("kill_process", "a", at_ns=1.0)
    FaultRule("kill_process", "a", at_event=2)


def test_rule_rejects_unknown_action():
    with pytest.raises(ValueError):
        FaultRule("set_on_fire", "a", at_ns=1.0)


def test_storm_sampling_is_deterministic():
    plans = [FaultPlan.storm(random.Random(42), **MENU)
             for _ in range(2)]
    assert plans[0].rules == plans[1].rules
    assert len(plans[0]) >= 2


def test_different_seeds_differ():
    samples = {tuple(FaultPlan.storm(random.Random(seed), **MENU).rules)
               for seed in range(20)}
    assert len(samples) > 1


def test_sampled_rules_are_well_formed():
    for seed in range(30):
        for rule in FaultPlan.storm(random.Random(seed), **MENU):
            assert rule.action in ACTIONS
            if rule.at_ns is not None:
                assert 0 < rule.at_ns < MENU["horizon_ns"]
            else:
                assert rule.at_event > 0


def test_render_log_is_stable_text():
    records = [
        InjectionRecord(storm=3, time_ns=1234.5, event_index=42,
                        action="kill_process", target="web",
                        outcome="killed"),
        InjectionRecord(storm=3, time_ns=99999.0, event_index=777,
                        action="revoke_grant", target="grant",
                        outcome="revoked 1->5"),
    ]
    text = render_log(records)
    assert text == (
        "[storm 003] t=      1234.5 ev=      42 kill_process   "
        "web                -> killed\n"
        "[storm 003] t=     99999.0 ev=     777 revoke_grant   "
        "grant              -> revoked 1->5\n")
    # rendering twice yields identical bytes
    assert render_log(records) == text
