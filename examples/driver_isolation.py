#!/usr/bin/env python3
"""The §7.3 case study as an application: isolate a user-level NIC
driver behind different mechanisms and watch what survives Infiniband's
latency envelope.

Run:  python examples/driver_isolation.py
"""

from repro.apps.infiniband import (ISOLATION_CONFIGS, CONFIG_INLINE,
                                   CONFIG_KERNEL, KERNEL_OPS_PER_MSG,
                                   IsolatedDriver, NICModel)
from repro.apps.netpipe import run_netpipe
from repro.experiments.fig07_driver import measure_per_call_costs


def main():
    nic = NICModel()
    print("measuring per-driver-call cost of each isolation mechanism "
          "(simulated)...")
    costs = measure_per_call_costs(iters=20)
    for config, cost in costs.items():
        print(f"  {config:<10} {cost:10.1f} ns/call")

    baseline = run_netpipe(nic, IsolatedDriver(CONFIG_INLINE,
                                               costs[CONFIG_INLINE]))
    print(f"\n{'config':<12}{'lat @1B':>10}{'lat ovh':>9}"
          f"{'bw @4KB':>12}{'bw ovh':>8}")
    base_lat = baseline.points[0].latency_ns
    base_bw = baseline.points[-1].bandwidth_bpns
    print(f"{'inline':<12}{base_lat:>8.0f}ns{'--':>9}"
          f"{base_bw:>9.3f}B/ns{'--':>8}")
    for config in ISOLATION_CONFIGS:
        ops = KERNEL_OPS_PER_MSG if config == CONFIG_KERNEL else 4
        series = run_netpipe(nic, IsolatedDriver(config, costs[config],
                                                 ops_per_message=ops))
        lat = series.points[0].latency_ns
        bw = series.points[-1].bandwidth_bpns
        lat_ovh = series.latency_overhead_pct(baseline)[1]
        bw_ovh = series.bandwidth_overhead_pct(baseline)[4096]
        print(f"{config:<12}{lat:>8.0f}ns{lat_ovh:>8.1f}%"
              f"{bw:>9.3f}B/ns{bw_ovh:>7.1f}%")

    print("\nonly dIPC keeps the driver isolated at ~1% latency cost — "
          "low enough for the OS to regain control of I/O policy (§7.3).")


if __name__ == "__main__":
    main()
