#!/usr/bin/env python3
"""A miniature of the paper's §7.4 macro-benchmark: the three-tier OLTP
web stack in its three configurations, at one concurrency level.

Run:  python examples/oltp_stack.py [concurrency]
"""

import sys

from repro import units
from repro.apps.oltp import (CONFIGS, IN_MEMORY, OltpParams, run_oltp)


def main():
    concurrency = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"OLTP web stack (Apache + PHP + MariaDB), in-memory DB, "
          f"{concurrency} threads, 4 CPUs\n")
    print(f"{'config':<8}{'ops/min':>10}{'latency':>11}{'user':>7}"
          f"{'kernel':>8}{'idle':>7}")
    print("-" * 52)
    results = {}
    for config in CONFIGS:
        result = run_oltp(OltpParams(
            config=config, storage=IN_MEMORY, concurrency=concurrency,
            window_ns=120 * units.MS, warmup_ns=50 * units.MS))
        results[config] = result
        print(f"{config:<8}{result.throughput_ops_min:>10.0f}"
              f"{result.mean_latency_ns / units.MS:>9.2f}ms"
              f"{result.user_fraction:>7.0%}"
              f"{result.kernel_fraction:>8.0%}"
              f"{result.idle_fraction:>7.0%}")
    linux = results["linux"].throughput_ops_min
    dipc = results["dipc"].throughput_ops_min
    ideal = results["ideal"].throughput_ops_min
    print(f"\ndIPC speedup over Linux : {dipc / linux:.2f}x")
    print(f"dIPC efficiency vs Ideal: {dipc / ideal:.1%} "
          "(paper: always > 94%)")
    print("\nNote how dIPC removes nearly all kernel time: requests run "
          "in place,\ncrossing the three processes through proxies "
          "instead of sockets.")


if __name__ == "__main__":
    main()
