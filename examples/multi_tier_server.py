#!/usr/bin/env python3
"""The Figure 3 workflow with the compiler pass: annotate two modules,
compile, load, and let the runtime resolve the cross-process entry on
first use over a named socket — then compare against local RPC.

Run:  python examples/multi_tier_server.py
"""

from repro import (AnnotatedModule, DipcRuntime, IsolationPolicy, Kernel,
                   Signature, compile_module)
from repro.ipc import RpcClient, RpcServer, SocketNamespace


def build_database():
    module = AnnotatedModule("database")

    @module.entry("default", Signature(in_regs=1, out_regs=1),
                  iso_callee=IsolationPolicy(stack_confidentiality=True))
    def query(t, key):
        yield t.compute(300)
        return ("row", key)

    return module, query


def build_web():
    module = AnnotatedModule("web")
    module.import_entry("query", "/dipc/db/query",
                        Signature(in_regs=1, out_regs=1),
                        iso_caller=IsolationPolicy(reg_integrity=True))
    return module


def main():
    kernel = Kernel(num_cpus=4)
    runtime = DipcRuntime(kernel)

    db_proc = kernel.spawn_process("database", dipc=True)
    web_proc = kernel.spawn_process("web", dipc=True)

    db_module, query_impl = build_database()
    runtime.enable(db_proc, compile_module(db_module,
                                           export_path="/dipc/db"))
    web_image = runtime.enable(web_proc, compile_module(build_web()))

    # a classic RPC server for the comparison
    rpc_ns = SocketNamespace()
    rpc_server_proc = kernel.spawn_process("database-rpc")
    rpc_server = RpcServer(kernel, rpc_server_proc, rpc_ns, "/rpc/db")

    def rpc_query(t, key):
        yield t.compute(300)
        return 64, ("row", key)

    rpc_server.register("query", rpc_query)
    kernel.spawn(rpc_server_proc, rpc_server.serve_loop, pin=1)
    rpc_client = RpcClient(kernel, web_proc, rpc_ns, "/rpc/db")

    N = 200

    def web_main(t):
        # first call resolves the entry over the named socket (step A)
        # and generates the proxy (step B); later calls reuse it
        first_start = t.now()
        yield from web_image.call_import(t, "query", "warm")
        first = t.now() - first_start

        start = t.now()
        for i in range(N):
            yield from web_image.call_import(t, "query", i)
        dipc_ns = (t.now() - start) / N

        yield from rpc_client.call(t, "query", 64, "warm")
        start = t.now()
        for i in range(N):
            yield from rpc_client.call(t, "query", 64, i)
        rpc_ns = (t.now() - start) / N
        yield from rpc_client.shutdown_server(t)

        print(f"first dIPC call (resolution + proxy generation): "
              f"{first:.0f}ns")
        print(f"steady-state dIPC call : {dipc_ns:8.1f}ns")
        print(f"steady-state local RPC : {rpc_ns:8.1f}ns")
        print(f"speedup                : {rpc_ns / dipc_ns:.1f}x "
              f"(both include the 300ns query itself)")

    kernel.spawn(web_proc, web_main, pin=0)
    kernel.run()
    kernel.check()


if __name__ == "__main__":
    main()
