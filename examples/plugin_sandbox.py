#!/usr/bin/env python3
"""Sandboxing an untrusted plugin *inside one process* with asymmetric
isolation (§2.4, §3.3): the application can be protected from the plugin
without paying for mutual isolation — and without any IPC at all.

Run:  python examples/plugin_sandbox.py
"""

from repro import (AccessFault, DipcManager, EntryDescriptor,
                   IsolationPolicy, Kernel, Permission, RemoteFault,
                   Signature)


def main():
    kernel = Kernel(num_cpus=2)
    dipc = DipcManager(kernel)
    app = kernel.spawn_process("media-app", dipc=True)

    # the plugin lives in its own CODOMs domain inside the app's process
    plugin_dom = dipc.dom_create(app)
    plugin_heap = dipc.dom_mmap(app, plugin_dom, 4096)

    # app-private secrets live in the app's default domain
    secret_addr = app.alloc_bytes(4096)
    app.space.write(secret_addr, b"API-KEY-123")

    def decode_frame(t, frame_id):
        """The 'codec plugin': occasionally buggy, possibly nosy."""
        yield t.compute(500)
        if frame_id == "corrupt":
            raise ValueError("bitstream error")
        if frame_id == "evil":
            # the plugin tries to read the app's secret: CODOMs says no —
            # its domain has no APL entry for the app's domain (P1)
            kernel.access.read(t.codoms, secret_addr, 11, t)
        return f"decoded:{frame_id}"

    handle = dipc.entry_register(
        app, plugin_dom,
        [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                         func=decode_frame, name="decode")])
    # asymmetric: the app saves its registers & stack (it does not trust
    # the plugin); the plugin asked for nothing (the app may inspect it)
    request = [EntryDescriptor(
        signature=Signature(in_regs=1, out_regs=1),
        policy=IsolationPolicy(reg_integrity=True, stack_integrity=True,
                               dcs_integrity=True),
        name="decode")]
    proxy_dom, proxies = dipc.entry_request(app, handle, request)
    dipc.grant_create(dipc.dom_default(app), proxy_dom)
    decode = request[0].address

    # ... and the app grants *itself* read access to the plugin's heap —
    # asymmetric isolation: direct access one way, sandboxed the other
    dipc.grant_create(dipc.dom_default(app),
                      dipc.dom_copy(plugin_dom, Permission.READ))

    def app_main(t):
        print(f"same-process sandboxed call, policy "
              f"'{proxies[0].stub_policy}':")
        out = yield from t.kernel.dipc.call(t, decode, "frame-1")
        print(f"  plugin returned: {out}")

        try:
            yield from t.kernel.dipc.call(t, decode, "corrupt")
        except RemoteFault as fault:
            print(f"  plugin crash contained: {fault.origin} failed, "
                  "app continues")

        try:
            yield from t.kernel.dipc.call(t, decode, "evil")
        except RemoteFault as fault:
            print("  plugin tried to read the app's secret: "
                  f"CODOMs denied it ({fault})")

        # the app, however, can inspect the plugin's heap directly:
        app.space.write(plugin_heap, b"\x00" * 16)  # e.g. scrub state
        print("  app scrubbed plugin heap directly (no IPC, no proxy)")

    kernel.spawn(app, app_main)
    kernel.run()
    kernel.check()


if __name__ == "__main__":
    main()
