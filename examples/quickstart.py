#!/usr/bin/env python3
"""Quickstart: two mutually distrustful processes call each other through
dIPC — Table 2's API end to end.

Run:  python examples/quickstart.py
"""

from repro import DipcManager, EntryDescriptor, IsolationPolicy, Kernel, \
    RemoteFault, Signature


def main():
    # 1. boot a 4-CPU machine and attach the dIPC OS extension
    kernel = Kernel(num_cpus=4)
    dipc = DipcManager(kernel)

    # 2. two dIPC-enabled processes: they share one page table in the
    #    global virtual address space, isolated by CODOMs domains
    web = kernel.spawn_process("web", dipc=True)
    database = kernel.spawn_process("database", dipc=True)

    # 3. the database exports a 'query' entry point. It protects itself:
    #    callers get a private stack and cannot touch its DCS.
    def query(t, key):
        yield t.compute(250)  # ns of "SQL"
        if key == "missing":
            raise KeyError(key)  # a callee crash — watch what happens
        return {"title": f"row for {key}"}

    entry_handle = dipc.entry_register(
        database, dipc.dom_default(database),
        [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                         policy=IsolationPolicy(stack_confidentiality=True,
                                                dcs_confidentiality=True),
                         func=query, name="query")])

    # 4. the web server imports it (P4: signatures must match), dIPC
    #    generates a trusted proxy, and the web server grants itself
    #    CALL permission to the proxy domain
    request = [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                               policy=IsolationPolicy(reg_integrity=True),
                               name="query")]
    proxy_domain, proxies = dipc.entry_request(web, entry_handle, request)
    dipc.grant_create(dipc.dom_default(web), proxy_domain)
    query_address = request[0].address
    print(f"proxy generated: {proxies[0]!r}")
    print(f"  template steps: {', '.join(proxies[0].template.steps)}")

    # 5. a web thread calls across processes like a function call
    def web_main(t):
        # first call takes the cold process-tracking path (an upcall into
        # the database's management thread); warm it up, then measure
        yield from t.kernel.dipc.call(t, query_address, "warmup")
        start = t.now()
        row = yield from t.kernel.dipc.call(t, query_address, "dvd-42")
        elapsed = t.now() - start
        print(f"cross-process call returned {row} in {elapsed:.1f}ns "
              "(a local RPC would take ~7000ns)")

        # a crash in the database does NOT kill this thread: the kernel
        # unwinds the KCS and flags the error here (P5)
        try:
            yield from t.kernel.dipc.call(t, query_address, "missing")
        except RemoteFault as fault:
            print(f"callee crashed safely: {fault} "
                  f"(origin={fault.origin})")
        print(f"still running in process "
              f"'{t.current_process.name}' — isolation held")

    kernel.spawn(web, web_main, name="web-main")
    kernel.run()
    kernel.check()


if __name__ == "__main__":
    main()
