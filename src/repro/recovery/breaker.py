"""Per-endpoint circuit breakers for the load transports.

A :class:`CircuitBreaker` guards one server endpoint (a pipe shard, a
shared request socket, a dIPC entry address) with the classic
three-state machine, driven entirely by *simulated* time so breaker
behaviour is as deterministic as everything else in the harness:

* **closed** — requests pass through; ``failure_threshold``
  *consecutive* survivable failures trip the breaker;
* **open** — requests fast-fail with :class:`BreakerOpen` (no deadline
  budget burned on a dead server) until ``recovery_ns`` of simulated
  time has passed since the trip;
* **half-open** — up to ``half_open_probes`` trial requests are let
  through; the first success closes the breaker, a failure re-opens it
  and restarts the recovery clock.

Every transition is appended to :attr:`transitions` (and, when tracing
is on, emitted as an instant on the ``recovery`` track via the
transport's ``on_transition`` hook), so two same-seed runs produce
byte-identical breaker logs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import KernelError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpen(KernelError):
    """Fast-fail: the endpoint's breaker is open (server presumed dead).

    A :class:`~repro.errors.KernelError` subclass so load runners treat
    it as one more survivable per-request failure (``LOAD_SURVIVABLE``).
    """


class CircuitBreaker:
    """closed → open → half-open breaker over simulated time."""

    def __init__(self, name: str, *, failure_threshold: int = 4,
                 recovery_ns: float = 30_000.0,
                 half_open_probes: int = 1,
                 on_transition: Optional[Callable[["CircuitBreaker",
                                                   float, str, str],
                                                  None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_ns <= 0:
            raise ValueError("recovery_ns must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_ns = recovery_ns
        self.half_open_probes = half_open_probes
        self.on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ns = 0.0
        self.probes_in_flight = 0
        #: requests rejected without touching the transport
        self.fast_fails = 0
        #: (time_ns, from_state, to_state), in occurrence order
        self.transitions: List[Tuple[float, str, str]] = []

    # -- state machine -----------------------------------------------------

    def _transition(self, now_ns: float, new_state: str) -> None:
        old = self.state
        self.state = new_state
        self.transitions.append((now_ns, old, new_state))
        if self.on_transition is not None:
            self.on_transition(self, now_ns, old, new_state)

    def allow(self, now_ns: float) -> bool:
        """May a request go through right now? False = fast-fail."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_ns - self.opened_at_ns >= self.recovery_ns:
                self._transition(now_ns, HALF_OPEN)
                self.probes_in_flight = 1
                return True
            self.fast_fails += 1
            return False
        # HALF_OPEN: admit a bounded number of trial requests
        if self.probes_in_flight < self.half_open_probes:
            self.probes_in_flight += 1
            return True
        self.fast_fails += 1
        return False

    def record_success(self, now_ns: float) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.probes_in_flight = 0
            self._transition(now_ns, CLOSED)

    def record_failure(self, now_ns: float) -> None:
        if self.state == HALF_OPEN:
            # the probe failed: back to open, restart the recovery clock
            self.probes_in_flight = 0
            self.opened_at_ns = now_ns
            self._transition(now_ns, OPEN)
            return
        self.consecutive_failures += 1
        if (self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.opened_at_ns = now_ns
            self._transition(now_ns, OPEN)

    # -- reporting ---------------------------------------------------------

    def log_lines(self) -> List[str]:
        """Deterministic transition log (for byte-compare tests)."""
        return [f"[{t:12.0f}ns] breaker {self.name}: {old} -> {new}"
                for t, old, new in self.transitions]

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"fails={self.consecutive_failures} "
                f"fast_fails={self.fast_fails}>")
