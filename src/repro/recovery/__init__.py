"""Supervision & crash-recovery: restart what dies, resume what crashed.

Three layers, one theme — the simulation, the transports, and the sweep
runner each move from fail-detect to fail-recover:

* :mod:`repro.recovery.supervisor` — restart policies, backoff,
  watchdog heartbeats, pool rebuilds with a pre-spawn reclamation audit;
* :mod:`repro.recovery.breaker` — per-endpoint circuit breakers so
  callers fast-fail while a server is down;
* :mod:`repro.recovery.checkpoint` — the append-only journal behind
  ``run <fig> --resume``;
* :mod:`repro.recovery.audit` — the A9 "no dangling resources after
  death" check shared with the fault auditor;
* :mod:`repro.recovery.session` — the CLI-facing session that flips
  load points into supervised mode.
"""

from repro.recovery.audit import (ReclamationAudit, domain_tags_of,
                                  reclamation_violations)
from repro.recovery.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerOpen,
                                    CircuitBreaker)
from repro.recovery.checkpoint import JOURNAL_VERSION, CheckpointJournal
from repro.recovery.session import RecoverySession
from repro.recovery.supervisor import (ONE_FOR_ALL, ONE_FOR_ONE,
                                       RestartPolicy, Supervisor)

__all__ = [
    "ReclamationAudit", "domain_tags_of", "reclamation_violations",
    "CLOSED", "HALF_OPEN", "OPEN", "BreakerOpen", "CircuitBreaker",
    "JOURNAL_VERSION", "CheckpointJournal",
    "RecoverySession",
    "ONE_FOR_ALL", "ONE_FOR_ONE", "RestartPolicy", "Supervisor",
]
