"""Post-death reclamation audit: nothing of the dead may linger.

The paper's P1 ("protection domains are isolated by default") only
holds across a process death if the kill path actually *reclaims* the
dead process's reach: every grant into or out of its domains must be
revoked — otherwise a replacement process reusing the same service
role could be reached through a stale CALL edge, the exact leak the
OS-level IPC-confinement literature warns endpoint rebinding about —
and no live thread may still carry a KCS frame naming the dead process
once unwinding settles.

:func:`reclamation_violations` checks exactly that for one dead
process; the :class:`~repro.fault.auditor.InvariantAuditor` folds it in
as check **A9** over every dead process, and the
:class:`~repro.recovery.supervisor.Supervisor` runs it after each pool
death *before* spawning the replacement.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import InvariantViolation


def domain_tags_of(process) -> Set[int]:
    """Every CODOMs tag the process ever owned (default + dom_create)."""
    tags = set(getattr(process, "domain_tags", ()) or ())
    if process.default_tag is not None:
        tags.add(process.default_tag)
    return tags


def reclamation_violations(kernel, process) -> List[str]:
    """Dangling resources of one *dead* process, as violation strings.

    * a live (unrevoked) grant whose source or destination domain
      belongs to the dead process — its APL edge would let a stale
      caller reach (or impersonate) a future replacement;
    * a KCS frame on a live thread that still names the dead process as
      caller or callee — the §5.2.1 unwind machinery missed it.
    """
    violations: List[str] = []
    tags = domain_tags_of(process)
    dipc = kernel.dipc
    if dipc is not None and tags:
        for grant in dipc.grants:
            if grant.revoked:
                continue
            if grant.src_tag in tags or grant.dst_tag in tags:
                violations.append(
                    f"grant {grant.src_tag}->{grant.dst_tag} touching "
                    f"dead process {process.name} not revoked")
    for owner in kernel.processes:
        for thread in owner.threads:
            if thread.is_done or thread.kcs is None:
                continue
            for frame in thread.kcs.frames():
                if (frame.caller_process is process
                        or frame.callee_process is process):
                    violations.append(
                        f"KCS frame on live thread {thread.name} still "
                        f"references dead process {process.name} "
                        f"(gen {getattr(process, 'generation', 0)}): frame "
                        f"{frame.describe()}, chain "
                        f"[{' | '.join(p.name for p in thread.kcs.processes_in_chain())}]")
    return violations


class ReclamationAudit:
    """Sweep one kernel for dangling resources of dead processes."""

    def __init__(self, kernel):
        self.kernel = kernel

    def audit(self, process=None) -> List[str]:
        """Violations for ``process``, or for every dead process."""
        if process is not None:
            return reclamation_violations(self.kernel, process)
        violations: List[str] = []
        for candidate in self.kernel.processes:
            if not candidate.alive:
                violations.extend(
                    reclamation_violations(self.kernel, candidate))
        return violations

    def assert_clean(self, process=None) -> None:
        violations = self.audit(process)
        if violations:
            raise InvariantViolation(
                f"{len(violations)} reclamation violation(s):\n  "
                + "\n  ".join(violations))
