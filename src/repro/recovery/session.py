"""Session object that switches the load harness into recovery mode.

Mirrors :class:`repro.fault.session.ChaosSession`: a context manager
with a class-level "current session" that :func:`repro.load.harness.
run_load_point` consults. While a :class:`RecoverySession` is active,
every load point runs with supervision and circuit breakers on
(``supervise=True``, ``breaker=True``), and the session collects each
kernel's :class:`~repro.recovery.supervisor.Supervisor` so the CLI can
print one summary line and fail the run on any A9 reclamation
violation.

Unlike ChaosSession it never attaches to kernels directly — the harness
registers the supervisor/transport pair it builds per point.
"""

from __future__ import annotations

from typing import ClassVar, List, Optional

from repro.recovery.supervisor import RestartPolicy


class RecoverySession:
    """Force supervision + breakers on for every load point inside."""

    _active: ClassVar[Optional["RecoverySession"]] = None

    def __init__(self, *, seed: int = 7,
                 policy: Optional[RestartPolicy] = None):
        self.seed = seed
        self.policy = policy
        self.supervisors: List = []
        self.transports: List = []

    # -- context management --------------------------------------------------

    def __enter__(self) -> "RecoverySession":
        if RecoverySession._active is not None:
            raise RuntimeError("a RecoverySession is already active")
        RecoverySession._active = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        RecoverySession._active = None

    @classmethod
    def current(cls) -> Optional["RecoverySession"]:
        return cls._active

    # -- harness wiring ------------------------------------------------------

    def register(self, supervisor, transport) -> None:
        """Called by the load harness for each supervised kernel."""
        self.supervisors.append(supervisor)
        self.transports.append(transport)

    # -- reporting -----------------------------------------------------------

    @property
    def total_worker_restarts(self) -> int:
        return sum(s.worker_restarts for s in self.supervisors)

    @property
    def total_pool_rebuilds(self) -> int:
        return sum(s.pool_rebuilds for s in self.supervisors)

    @property
    def total_fast_fails(self) -> int:
        return sum(b.fast_fails
                   for t in self.transports for b in t.breakers)

    def audit_violations(self) -> List[str]:
        """Every A9 violation any supervisor recorded, in order."""
        violations: List[str] = []
        for index, supervisor in enumerate(self.supervisors):
            violations.extend(f"kernel {index}: {v}"
                              for v in supervisor.audit_violations)
        return violations

    def event_log(self) -> List[str]:
        """All supervisor events, kernel by kernel (deterministic)."""
        lines: List[str] = []
        for supervisor in self.supervisors:
            lines.extend(supervisor.events)
        return lines

    def summary(self) -> str:
        return (f"recovery: {len(self.supervisors)} kernel(s) supervised, "
                f"{self.total_worker_restarts} worker restart(s), "
                f"{self.total_pool_rebuilds} pool rebuild(s), "
                f"{self.total_fast_fails} breaker fast-fail(s) "
                f"(seed {self.seed})")
