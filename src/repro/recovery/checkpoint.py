"""Crash-safe sweep checkpoints: a per-point append-only journal.

The parallel runner journals every completed point to
``.repro-cache/checkpoint-<spec-hash>.jsonl`` the moment it finishes
(one fsynced JSON line per point), so a sweep interrupted by SIGINT, an
OOM-killed pool worker or a crashed parent can be restarted with
``--resume`` and recompute *only* the unfinished points — the merged
output stays byte-identical because journaled results round-trip
through the same canonical JSON the result cache uses.

``<spec-hash>`` digests the cache version, the cost-constants hash, the
package source fingerprint and every spec payload in order, so a
journal can never be replayed against a different sweep, different
code, or a recalibrated cost model: ``--resume`` after any such change
simply finds no journal and recomputes everything.

A torn tail line (the process died mid-write) is tolerated on load —
that point is just recomputed. The journal is deleted when the sweep
completes, so a successful run leaves nothing behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Sequence

#: bump on any journal layout change to orphan old checkpoint files
JOURNAL_VERSION = 1


class CheckpointJournal:
    """Append-only ``{"i": index, "result": ...}`` line journal."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- construction ------------------------------------------------------

    @classmethod
    def for_specs(cls, root: str, specs: Sequence,
                  *, costs=None) -> "CheckpointJournal":
        """The journal file for this exact sweep of this exact tree."""
        from repro.runner.cache import CACHE_VERSION, package_fingerprint
        from repro.trace.meta import constants_hash
        digest = hashlib.sha256()
        digest.update(f"j{JOURNAL_VERSION}/v{CACHE_VERSION}\n".encode())
        digest.update(constants_hash(costs).encode())
        digest.update(package_fingerprint().encode())
        for spec in specs:
            digest.update(b"\n")
            digest.update(spec.payload().encode())
        name = f"checkpoint-{digest.hexdigest()[:16]}.jsonl"
        return cls(os.path.join(root, name))

    # -- lifecycle ---------------------------------------------------------

    def load(self) -> Dict[int, Any]:
        """Previously journaled results, ``{spec index: result}``.

        Corrupt lines are skipped: a torn tail is the expected shape of
        an interrupt, and a skipped line only costs one recompute.
        """
        recovered: Dict[int, Any] = {}
        try:
            with open(self.path) as handle:
                text = handle.read()
        except OSError:
            return recovered
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                index = entry["i"]
                result = entry["result"]
            except (ValueError, KeyError, TypeError):
                continue  # torn or corrupt line: recompute that point
            if isinstance(index, int) and index >= 0:
                recovered[index] = result
        return recovered

    def start(self, *, resume: bool) -> Dict[int, Any]:
        """Open for appending; returns prior results when resuming.

        Without ``resume`` any stale journal is discarded first, so an
        abandoned interrupt can never leak results into a fresh sweep.
        """
        recovered = self.load() if resume else {}
        if not resume:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._fh = open(self.path, "a")
        return recovered

    def record(self, index: int, result: Any) -> None:
        """Append one completed point; flushed and fsynced immediately
        (points cost seconds of simulation — one fsync is noise)."""
        if self._fh is None:
            raise RuntimeError("journal not started")
        line = json.dumps({"i": index, "result": result},
                          sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_failure(self, index: int, info: Any) -> None:
        """Append one *failed* point: ``{"i": ..., "failed": ...}``.

        ``load`` skips these lines (no ``"result"`` key), so a failure
        is never mistaken for a completed point on ``--resume`` — the
        entry exists purely so the journal tells the whole story of an
        aborted sweep, including the repro-bundle path for the point
        that sank it.
        """
        if self._fh is None:
            raise RuntimeError("journal not started")
        line = json.dumps({"i": index, "failed": info},
                          sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Stop journaling but keep the file (the --resume handle)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def complete(self) -> None:
        """The sweep finished: a journal would only mask future bugs."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def __repr__(self) -> str:
        return f"<CheckpointJournal {self.path}>"
