"""Exhaustive kill-point recovery conformance (§5.2.1 P5, end to end).

The random storms of ``--chaos`` found exactly one instance of the
nested-unwind bug (fig10 seed 11); this harness replaces luck with
enumeration. It sweeps a deterministic matrix

    phase of a nested cross-domain call
        (``precall``, ``inproxy``, ``midcallee``, ``midreply``,
        ``rebuild``)
    × every primitive registered in :mod:`repro.primitives`
    × representative topology patterns (chain, fanout, mesh)

and, for each cell, kills the root service process at *exactly* that
phase, then machine-checks the full A1–A10 invariant audit, the
supervisor's pre-rebuild reclamation audit, and a goodput floor.

How a cell works:

1. **Probe run** — the cell's workload (a supervised, drain-mode topo
   load point) runs once with the :mod:`repro.topo.instantiate` phase
   probe installed and *no* faults, recording the engine event index at
   which each phase label first occurs. Probes are pure Python, so the
   probe run's event order is identical to the kill run's up to the
   kill itself.
2. **Kill run** — the same workload runs under a schedule-0 (baseline)
   :class:`~repro.check.session.CheckSession` via
   :func:`repro.check.explore.explore_one`, with an explicit fault plan
   killing ``load-server`` at the phase's event index (``at_event``
   rules fire inline after the n-th event and never perturb order
   before firing). The ``rebuild`` phase takes a second probe run with
   the first kill armed to locate the supervisor's pool rebuild, then
   kills the *rebuilt* server immediately after — the stale-reply /
   endpoint-rebinding window.
3. **Verdict** — findings from the workload (goodput floor, supervisor
   reclamation audit) plus the session's A1–A10 sweep. A failing cell
   is written as a standard ``check --replay`` repro bundle.

Each cell is a cacheable :class:`~repro.runner.points.PointSpec`
(driver ``conformance``) fanned out through the PR-3 runner, so a full
matrix parallelizes with ``--jobs`` and re-runs are cache hits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import primitives, units
from repro.runner.points import PointSpec

#: call phases, in request-lifetime order
PHASES = ("precall", "inproxy", "midcallee", "midreply", "rebuild")

#: conformance pattern name -> (repro.topo generate pattern, default n)
PATTERN_SPECS: Dict[str, Tuple[str, int]] = {
    "chain": ("chain_branch", 4),
    "fanout": ("par_fanout", 4),
    "mesh": ("mesh", 5),
}
PATTERNS = tuple(PATTERN_SPECS)

#: the kill victim: the topology root keeps the load harness's
#: well-known server name (see ``TopoTransport._proc_name``)
VICTIM = "load-server"

#: completed/offered floor for a cell: one or two kills mid-run shed
#: requests while the breaker is open, but the rebuilt pool must still
#: serve the bulk of the (drain-mode, bounded) workload
GOODPUT_FLOOR = 0.25

#: the probe/kill runs' kernel, exposed for the phase-probe closure
#: (reset by :func:`run_cell_workload` before each run)
_probe_kernels: List = []


def pattern_default_n(pattern: str) -> int:
    return PATTERN_SPECS[pattern][1]


def cell_target(phase: str, primitive: str, pattern: str) -> str:
    """The ``repro.check`` scenario name of one cell."""
    return f"killpoint-{phase}-{primitive}-{pattern}"


def cell_params(primitive: str, pattern: str,
                topo_n: Optional[int] = None):
    """The cell workload: a supervised, breaker-armed, drain-mode topo
    load point small enough to sweep 100+ cells, deep enough to nest
    cross-domain calls (the path the seed-11 bug lived on)."""
    from repro.load import LoadParams
    from repro.topo import generate
    pattern_name, default_n = PATTERN_SPECS[pattern]
    n = max(topo_n if topo_n is not None else default_n, 1)
    spec = generate(pattern_name, n)
    return LoadParams(
        primitive=primitive, mode="open", policy="shed",
        arrivals="poisson", offered_kops=50.0, n_clients=2, n_conns=4,
        n_workers=2, queue_depth=8, req_size=128,
        deadline_ns=2.0 * units.MS, num_cpus=8,
        warmup_ns=0.2 * units.MS, window_ns=0.5 * units.MS, seed=42,
        topo=spec.to_dict(), max_requests_per_client=6, drain=True,
        supervise=True, breaker=True,
        # crashes are inspected by the A8 audit (sanctioned peer-death
        # classes allowed), not re-raised out of the workload
        check=False)


def run_cell_workload(primitive: str, pattern: str,
                      topo_n: Optional[int] = None,
                      goodput_floor: Optional[float] = GOODPUT_FLOOR,
                      ) -> List[str]:
    """Run one cell's workload; returns workload-level findings.

    This is the ``run`` callable behind the ``killpoint-*`` scenario
    family — the kills arrive via the CheckSession's plan overrides,
    not from in here, so the same function serves the probe run (no
    plan) and the kill run (explicit plan).

    ``goodput_floor=None`` drops the goodput finding: a conformance
    cell kills the root exactly once (twice for ``rebuild``) so the
    rebuilt pool must still serve most of the drain-mode workload, but
    an *arbitrary* chaos storm (``check topostorm --chaos``) may
    legally fire enough kills that every request sheds — there only
    the invariant and reclamation audits are meaningful.
    """
    from repro.load import run_load_point
    del _probe_kernels[:]
    result = run_load_point(cell_params(primitive, pattern, topo_n),
                            keep_kernel=_probe_kernels)
    findings: List[str] = []
    if result.reclamation_violations:
        findings.append(
            f"reclamation: {result.reclamation_violations} stale "
            f"resource(s) at supervisor pre-rebuild audit")
    if (goodput_floor is not None
            and result.goodput_ratio < goodput_floor):
        findings.append(
            f"goodput: {result.goodput_ratio:.3f} below floor "
            f"{goodput_floor} (completed {result.completed} of "
            f"{result.offered_seen})")
    return findings


# ---------------------------------------------------------------------------
# probe runs: locating the phases on the deterministic event axis
# ---------------------------------------------------------------------------

def _probed_run(target: str, *, seed: int,
                plans: Optional[List[list]],
                topo_n: Optional[int]) -> Dict[str, int]:
    """Run the cell once with the phase probe armed; returns the engine
    event index of each label's *first* occurrence.

    Runs through :func:`~repro.check.explore.explore_one` at schedule 0
    (the baseline strategy is byte-identical to an uncontrolled run),
    i.e. exactly the pipeline the kill run uses — so the recorded
    indices line up event-for-event until a kill diverges them.
    """
    from repro.check.explore import explore_one
    from repro.topo import instantiate

    marks: Dict[str, int] = {}

    def probe(label: str) -> None:
        if label not in marks and _probe_kernels:
            marks[label] = _probe_kernels[0].engine.events_processed

    previous = instantiate.set_probe(probe)
    try:
        explore_one(target, seed=seed, schedule=0, plans=plans,
                    topo_n=topo_n)
    finally:
        instantiate.set_probe(previous)
    return marks


def _midpoint(start: int, end: int) -> int:
    return start + max(1, (end - start) // 2)


def kill_events_for(phase: str, marks: Dict[str, int]) -> List[int]:
    """Map a phase to kill event indices, given a probe run's marks.

    Returns ``[]`` when the probe run never reached the phase (the
    caller reports that as a finding — a clean probe run traverses
    every phase except ``rebuild``, which needs its own probe).
    """
    pre_call = marks.get("call:enter")
    root_enter = marks.get("serve:0:enter")
    root_exit = marks.get("serve:0:exit")
    call_exit = marks.get("call:exit")
    serve_enters = [value for label, value in marks.items()
                    if label.startswith("serve:")
                    and label.endswith(":enter")]
    if phase == "precall":
        return [pre_call] if pre_call is not None else []
    if phase == "inproxy":
        if pre_call is None or root_enter is None:
            return []
        return [_midpoint(pre_call, root_enter)]
    if phase == "midcallee":
        # the deepest service reached: its serve() starts last
        return [max(serve_enters)] if serve_enters else []
    if phase == "midreply":
        if root_exit is None or call_exit is None:
            return []
        return [_midpoint(root_exit, call_exit)]
    raise ValueError(f"phase {phase!r} has no single-probe kill point")


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def run_cell(*, phase: str, primitive: str, pattern: str,
             seed: int = 0, topo_n: Optional[int] = None) -> dict:
    """Probe, kill, audit one (phase, primitive, pattern) cell.

    Returns a JSON-ready dict: the cell coordinates, the kill plan that
    was armed (event indices), every finding, and the schedule-0
    decision trace (captured so a failing cell's bundle replays through
    ``check --replay``).
    """
    from repro.fault.plan import FaultRule
    from repro.check.explore import explore_one

    if phase not in PHASES:
        raise ValueError(f"unknown phase {phase!r} "
                         f"(choose from {', '.join(PHASES)})")
    target = cell_target(phase, primitive, pattern)
    notes: List[str] = []
    marks = _probed_run(target, seed=seed, plans=None, topo_n=topo_n)

    if phase == "rebuild":
        # kill #1 mid-callee; a second probe run with it armed locates
        # the supervisor's pool rebuild, and kill #2 takes down the
        # *rebuilt* server the moment it exists — any reply from the
        # first incarnation still in flight must be dropped, not
        # delivered into the second
        first = kill_events_for("midcallee", marks)
        kills = list(first)
        if first:
            plan = [[FaultRule("kill_process", VICTIM,
                               at_event=event).to_dict()
                     for event in first]]
            rebuild_marks = _probed_run(target, seed=seed, plans=plan,
                                        topo_n=topo_n)
            rebuild_exit = rebuild_marks.get("rebuild:exit")
            if rebuild_exit is not None:
                kills.append(rebuild_exit + 1)
            else:
                notes.append("no pool rebuild observed before drain; "
                             "cell degenerates to midcallee")
    else:
        kills = kill_events_for(phase, marks)

    findings: List[str] = []
    if not kills:
        findings.append(f"probe: phase {phase!r} never reached "
                        f"(marks: {sorted(marks)})")
        result = {"schedule": 0, "strategy": "baseline",
                  "decisions": "", "findings": findings, "plans": []}
    else:
        plans = [[FaultRule("kill_process", VICTIM,
                            at_event=event).to_dict()
                  for event in kills]]
        result = explore_one(target, seed=seed, schedule=0, plans=plans,
                             topo_n=topo_n)
        findings = result["findings"]

    return {
        "phase": phase, "primitive": primitive, "pattern": pattern,
        "target": target, "seed": seed, "kill_events": kills,
        "notes": notes, "findings": findings,
        "decisions": result.get("decisions", ""),
        "strategy": result.get("strategy", "baseline"),
        "plans": result.get("plans", []),
        "schedule": result.get("schedule", 0),
    }


def compute_point(**kwargs) -> dict:
    """Pool-worker entry point (one conformance cell per point)."""
    return run_cell(**kwargs)


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------

def matrix(*, quick: bool = False,
           phases: Optional[Tuple[str, ...]] = None,
           prims: Optional[Tuple[str, ...]] = None,
           patterns: Optional[Tuple[str, ...]] = None) -> List[tuple]:
    """The cell coordinates to sweep. ``quick`` keeps every phase and
    every registered primitive but only the chain pattern — the shape
    the original bug needed — for the CI smoke."""
    phases = tuple(phases or PHASES)
    prims = tuple(prims or sorted(primitives.names()))
    patterns = tuple(patterns or (("chain",) if quick else PATTERNS))
    return [(phase, primitive, pattern)
            for pattern in patterns
            for primitive in prims
            for phase in phases]


def specs_for(cells: List[tuple], *, seed: int = 0,
              topo_n: Optional[int] = None) -> List[PointSpec]:
    """One cacheable spec per cell (deterministic: same cell + seed →
    same findings, so re-sweeps are cache hits)."""
    specs = []
    for phase, primitive, pattern in cells:
        kwargs = {"phase": phase, "primitive": primitive,
                  "pattern": pattern, "seed": seed}
        if topo_n is not None:
            kwargs["topo_n"] = topo_n
        specs.append(PointSpec(driver="conformance", module=__name__,
                               kwargs=kwargs, cacheable=True))
    return specs


def run_matrix(*, quick: bool = False, seed: int = 0, jobs: int = 1,
               out_dir: Optional[str] = None, cache=None) -> int:
    """CLI body of ``python -m repro.experiments conformance``.

    Sweeps the matrix, prints one line per cell (schedule-order
    deterministic, byte-identical for any ``--jobs``), writes a repro
    bundle for every failing cell, and returns a process exit code.
    """
    from repro.check import bundle as bundles
    from repro.runner.pool import run_points

    cells = matrix(quick=quick)
    specs = specs_for(cells, seed=seed)
    results, stats = run_points(specs, jobs=max(jobs, 1), cache=cache)
    out_dir = out_dir or bundles.default_bundle_dir()
    failing = 0
    for cell in results:
        label = (f"{cell['phase']:>10s} x {cell['primitive']:<7s} x "
                 f"{cell['pattern']:<7s}")
        kills = ",".join(str(event) for event in cell["kill_events"])
        print(f"{label} kill@[{kills:>13s}]: "
              f"{len(cell['findings'])} finding(s)")
        for note in cell["notes"]:
            print(f"    note: {note}")
        for finding in cell["findings"]:
            print(f"    {finding}")
        if not cell["findings"]:
            continue
        failing += 1
        made = bundles.make_check_bundle(
            cell["target"], seed=seed, chaos=False,
            result={"schedule": cell["schedule"],
                    "strategy": cell["strategy"],
                    "decisions": cell["decisions"],
                    "findings": cell["findings"],
                    "plans": cell["plans"]})
        path = bundles.write(
            bundles.bundle_path(out_dir, cell["target"],
                                cell["schedule"]), made)
        print(f"    bundle: {path}")
        print(f"    replay: python -m repro.experiments check "
              f"--replay {path}")
    print(f"conformance: {len(results)} cell(s), {failing} failing "
          f"({'quick' if quick else 'full'} matrix, seed {seed})")
    return 1 if failing else 0
