"""Supervision trees for simulated server pools.

A :class:`Supervisor` owns a pool of worker threads (its *children*)
plus, optionally, the server process they live in, and restarts
whatever dies — turning the fault model from *fail-detect* (PR 2:
killed workers stay dead and callers shed load) into *fail-recover*:

* **one_for_one** — a crashed worker is respawned alone, after a
  seeded exponential backoff with jitter; sibling workers keep serving;
* **one_for_all** — any worker death tears down and respawns the whole
  pool (kill the server process, audit, rebuild), for pools whose
  workers share corrupted state;
* **pool watch** — when the server *process* is killed (fault storm),
  the supervisor schedules a full pool rebuild: fresh process, fresh
  endpoints, fresh workers. Before the replacement spawns it runs the
  :mod:`repro.recovery.audit` reclamation check on the corpse, so a
  restart can never paper over leaked grants or un-unwound KCS frames;
* **restart budget** — at most ``max_restarts`` restarts per child per
  sliding ``window_ns``; exhausting the budget escalates (worker →
  pool rebuild → give up), Erlang-style;
* **watchdog** — a heartbeat every ``heartbeat_ns`` of simulated time
  catches what event hooks can't: children that were already dead when
  adopted, pools whose kill hook never fired, and scheduled restarts
  that missed their deadline (those escalate).

Everything is driven by the deterministic engine and a
``random.Random`` seeded from the supervisor's seed, so two same-seed
runs produce byte-identical event logs (:attr:`events`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.recovery.audit import reclamation_violations

ONE_FOR_ONE = "one_for_one"
ONE_FOR_ALL = "one_for_all"
STRATEGIES = (ONE_FOR_ONE, ONE_FOR_ALL)


@dataclass(frozen=True)
class RestartPolicy:
    """Restart strategy + budget + backoff shape (all simulated-time)."""

    strategy: str = ONE_FOR_ONE
    #: restart budget per child within the sliding window
    max_restarts: int = 10
    window_ns: float = 1_000_000.0
    backoff_base_ns: float = 2_000.0
    backoff_factor: float = 2.0
    backoff_cap_ns: float = 50_000.0
    #: +/- fraction of jitter drawn from the supervisor's seeded RNG
    jitter: float = 0.1
    #: watchdog heartbeat period; 0 disables the watchdog
    heartbeat_ns: float = 100_000.0
    #: a scheduled restart not completed this long after its due time
    #: is declared missed and escalated
    restart_deadline_ns: float = 200_000.0

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r} "
                             f"(choose from {', '.join(STRATEGIES)})")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.backoff_base_ns <= 0 or self.backoff_cap_ns <= 0:
            raise ValueError("backoff must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_ns(self, attempt: int, rng: random.Random) -> float:
        """Seeded exponential backoff with jitter for restart #attempt."""
        delay = min(self.backoff_base_ns * self.backoff_factor ** attempt,
                    self.backoff_cap_ns)
        if self.jitter:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay


class _Child:
    """One supervised worker slot (survives thread generations)."""

    __slots__ = ("name", "thread", "respawn", "attempts",
                 "restart_times", "pending", "due_ns", "timer")

    def __init__(self, name, thread, respawn):
        self.name = name
        self.thread = thread
        self.respawn = respawn
        self.attempts = 0
        self.restart_times = deque()
        self.pending = False
        self.due_ns = 0.0
        self.timer = None


class _PoolWatch:
    """The supervised server process and how to rebuild it."""

    __slots__ = ("get_process", "rebuild", "attempts", "rebuild_times",
                 "pending", "due_ns", "timer")

    def __init__(self, get_process, rebuild):
        self.get_process = get_process
        self.rebuild = rebuild
        self.attempts = 0
        self.rebuild_times = deque()
        self.pending = False
        self.due_ns = 0.0
        self.timer = None


class Supervisor:
    """Restart supervised workers/pools of one kernel."""

    def __init__(self, kernel, *, policy: Optional[RestartPolicy] = None,
                 seed: int = 0, name: str = "pool"):
        self.kernel = kernel
        self.policy = policy if policy is not None else RestartPolicy()
        self.name = name
        self.rng = random.Random(seed * 60_013 + 17)
        self.children: Dict[str, _Child] = {}
        self.active = True
        self.gave_up = False
        self.events: List[str] = []
        self.audit_violations: List[str] = []
        self.worker_restarts = 0
        self.pool_rebuilds = 0
        self.escalations = 0
        self._pool: Optional[_PoolWatch] = None
        self._watchdog_timer = None
        kernel.on_process_kill(self._on_process_kill)
        if self.policy.heartbeat_ns > 0:
            self._watchdog_timer = kernel.engine.post(
                self.policy.heartbeat_ns, self._watchdog)

    # -- wiring ------------------------------------------------------------

    def adopt(self, name: str, thread,
              respawn: Callable[[], object]) -> None:
        """Supervise ``thread`` under slot ``name``; on death,
        ``respawn()`` must spawn the replacement (re-adopting it) and
        return the new thread. Re-adopting an existing slot just moves
        it to the new thread generation."""
        child = self.children.get(name)
        if child is None:
            child = _Child(name, thread, respawn)
            self.children[name] = child
        else:
            child.thread = thread
            child.respawn = respawn
        thread.on_exit.append(
            lambda t, c=child: self._child_exited(c, t))

    def watch_pool(self, get_process: Callable[[], object],
                   rebuild: Callable[[], None]) -> None:
        """Supervise the server process itself: when the *current*
        ``get_process()`` is killed, run the reclamation audit and then
        ``rebuild()`` (fresh process + endpoints + workers)."""
        self._pool = _PoolWatch(get_process, rebuild)

    def stop(self) -> None:
        """Stand down: cancel every pending timer so drain-mode runs
        (and bounded windows) end with a quiet engine."""
        self.active = False
        engine = self.kernel.engine
        if self._watchdog_timer is not None:
            engine.cancel(self._watchdog_timer)
            self._watchdog_timer = None
        for child in self.children.values():
            if child.timer is not None:
                engine.cancel(child.timer)
                child.timer = None
            child.pending = False
        if self._pool is not None and self._pool.timer is not None:
            engine.cancel(self._pool.timer)
            self._pool.timer = None
            self._pool.pending = False

    # -- event log ---------------------------------------------------------

    def _log(self, text: str) -> None:
        self.events.append(
            f"[{self.kernel.engine.now():12.0f}ns] "
            f"supervisor {self.name}: {text}")
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant("supervisor", "recovery", track="recovery",
                           args={"pool": self.name, "event": text})

    # -- death notifications -----------------------------------------------

    def _child_exited(self, child: _Child, thread) -> None:
        if not self.active or self.gave_up:
            return
        if thread is not child.thread:
            return  # an older generation of this slot: already handled
        if not thread.process.alive:
            return  # process death: the pool watch owns recovery
        if child.pending:
            return
        if self.policy.strategy == ONE_FOR_ALL and self._pool is not None:
            self._log(f"{child.name} exited; one-for-all pool restart")
            self._schedule_rebuild(f"{child.name} exited")
        else:
            self._schedule_restart(child, "exited")

    def _on_process_kill(self, process) -> None:
        if not self.active or self.gave_up or self._pool is None:
            return
        if process is not self._pool.get_process():
            return
        if not self._pool.pending:
            self._schedule_rebuild("process killed")

    # -- restart scheduling --------------------------------------------------

    def _budget_exhausted(self, times: deque, now: float) -> bool:
        while times and now - times[0] > self.policy.window_ns:
            times.popleft()
        return len(times) >= self.policy.max_restarts

    def _schedule_restart(self, child: _Child, reason: str) -> None:
        if child.pending or self.gave_up:
            return
        now = self.kernel.engine.now()
        if self._budget_exhausted(child.restart_times, now):
            self.escalations += 1
            self._log(f"{child.name} restart budget exhausted "
                      f"({self.policy.max_restarts} per "
                      f"{self.policy.window_ns:.0f}ns); escalating")
            if self._pool is not None:
                self._schedule_rebuild(
                    f"{child.name} budget exhausted")
            else:
                self.gave_up = True
                self._log("giving up (no pool to rebuild)")
            return
        if not child.restart_times:
            child.attempts = 0  # a quiet window resets the ladder
        delay = self.policy.backoff_ns(child.attempts, self.rng)
        child.attempts += 1
        child.pending = True
        child.due_ns = now + delay + self.policy.restart_deadline_ns
        child.restart_times.append(now)
        self._log(f"restart {child.name} attempt={child.attempts} "
                  f"backoff={delay:.0f}ns ({reason})")
        child.timer = self.kernel.engine.post(
            delay, lambda: self._do_restart(child))

    def _do_restart(self, child: _Child) -> None:
        child.pending = False
        child.timer = None
        if not self.active or self.gave_up:
            return
        if not child.thread.process.alive:
            # the process died while this restart was queued: escalate
            self.escalations += 1
            self._log(f"{child.name} restart overtaken by process "
                      f"death; escalating")
            if self._pool is not None and not self._pool.pending:
                self._schedule_rebuild(f"{child.name} restart overtaken")
            return
        try:
            thread = child.respawn()
        except Exception as exc:
            self.escalations += 1
            self._log(f"respawn {child.name} failed "
                      f"({type(exc).__name__}); escalating")
            if self._pool is not None:
                self._schedule_rebuild(f"respawn {child.name} failed")
            else:
                self.gave_up = True
                self._log("giving up (no pool to rebuild)")
            return
        child.thread = thread
        self.worker_restarts += 1
        self._log(f"{child.name} restarted")

    def _schedule_rebuild(self, reason: str) -> None:
        pool = self._pool
        if pool is None or pool.pending or self.gave_up:
            return
        now = self.kernel.engine.now()
        if self._budget_exhausted(pool.rebuild_times, now):
            self.gave_up = True
            self.escalations += 1
            self._log(f"pool rebuild budget exhausted "
                      f"({self.policy.max_restarts} per "
                      f"{self.policy.window_ns:.0f}ns); giving up")
            return
        if not pool.rebuild_times:
            pool.attempts = 0
        delay = self.policy.backoff_ns(pool.attempts, self.rng)
        pool.attempts += 1
        pool.pending = True
        pool.due_ns = now + delay + self.policy.restart_deadline_ns
        pool.rebuild_times.append(now)
        self._log(f"rebuild pool attempt={pool.attempts} "
                  f"backoff={delay:.0f}ns ({reason})")
        pool.timer = self.kernel.engine.post(delay, self._do_rebuild)

    def _do_rebuild(self) -> None:
        pool = self._pool
        pool.timer = None
        if not self.active or self.gave_up:
            pool.pending = False
            return
        # stay "pending" through the teardown: the one-for-all kill below
        # re-enters _on_process_kill, which must not schedule a second
        # rebuild of the pool we are already rebuilding
        pool.pending = True
        process = pool.get_process()
        if process is not None and process.alive:
            # one-for-all teardown: take the whole pool down first so
            # the rebuild starts from a clean corpse
            self.kernel.kill_process(process)
        if process is not None and not process.alive:
            # second unwind sweep (the first ran inside kill_process):
            # a frame pushed *after* the kill — a reply racing the
            # rebuild — must be pruned before the replacement spawns.
            # A clean system prunes nothing here.
            repaired = self.kernel.unwind_dead(process)
            if repaired:
                self._log(f"unwind_dead pruned {repaired} stale KCS "
                          f"frame(s) referencing {process.name}")
            violations = reclamation_violations(self.kernel, process)
            if violations:
                self.audit_violations.extend(violations)
                for violation in violations:
                    self._log(f"A9 violation: {violation}")
            else:
                self._log(f"reclamation audit clean for {process.name}")
        pool.rebuild()
        pool.pending = False
        self.pool_rebuilds += 1
        self._log("pool rebuilt")

    # -- watchdog ------------------------------------------------------------

    def _watchdog(self) -> None:
        self._watchdog_timer = None
        if not self.active or self.gave_up:
            return
        now = self.kernel.engine.now()
        pool = self._pool
        if pool is not None:
            process = pool.get_process()
            if (process is not None and not process.alive
                    and not pool.pending):
                self._log("watchdog: pool process dead with no rebuild "
                          "pending")
                self._schedule_rebuild("watchdog")
            elif pool.pending and now > pool.due_ns:
                # the engine lost our rebuild (should be impossible with
                # a deterministic engine): force it now
                if pool.timer is not None:
                    self.kernel.engine.cancel(pool.timer)
                self._log("watchdog: pool rebuild missed its deadline; "
                          "forcing")
                self._do_rebuild()
        for child in self.children.values():
            if child.pending and now > child.due_ns:
                if child.timer is not None:
                    self.kernel.engine.cancel(child.timer)
                    child.timer = None
                child.pending = False
                self.escalations += 1
                self._log(f"watchdog: restart of {child.name} missed "
                          f"its deadline; escalating")
                if self._pool is not None:
                    self._schedule_rebuild(
                        f"{child.name} missed restart deadline")
            elif (not child.pending and child.thread.is_done
                    and child.thread.process.alive):
                # adopted dead, or an exit hook was lost: the heartbeat
                # is the backstop that notices the silence
                self._log(f"watchdog: missed heartbeat from "
                          f"{child.name}")
                if (self.policy.strategy == ONE_FOR_ALL
                        and self._pool is not None):
                    self._schedule_rebuild(f"{child.name} silent")
                else:
                    self._schedule_restart(child, "watchdog")
        if self.active and not self.gave_up:
            self._watchdog_timer = self.kernel.engine.post(
                self.policy.heartbeat_ns, self._watchdog)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe counters for load-point results."""
        return {
            "worker_restarts": self.worker_restarts,
            "pool_rebuilds": self.pool_rebuilds,
            "escalations": self.escalations,
            "gave_up": self.gave_up,
            "reclamation_violations": len(self.audit_violations),
        }

    def __repr__(self) -> str:
        return (f"<Supervisor {self.name} children={len(self.children)} "
                f"restarts={self.worker_restarts} "
                f"rebuilds={self.pool_rebuilds}>")
