"""The work queue: cache lookups, fan-out, in-order merge.

All cache I/O happens in the parent process — workers only simulate —
so a shared cache directory never sees concurrent writers racing on the
same key from one run, and a worker crash cannot leave a half-written
entry behind.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.points import PointSpec, _execute_payload, execute_spec


@dataclass
class RunStats:
    """What one ``run_points`` call did, for summary lines and bench."""

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    jobs: int = 1

    @property
    def skipped_fraction(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


def run_points(specs: Sequence[PointSpec], *, jobs: int = 1,
               cache: Optional[ResultCache] = None) -> tuple:
    """Compute every point, returning ``(results, stats)``.

    ``results`` is aligned with ``specs`` — the merge is by position,
    never by completion order, which is what keeps parallel renders
    byte-identical to serial ones. ``jobs <= 1`` computes in-process;
    ``jobs > 1`` farms cache misses to a ``multiprocessing`` pool with
    ``chunksize=1`` so one slow OLTP point cannot strand a ladder of
    cheap ones behind it.
    """
    jobs = max(int(jobs), 1)
    stats = RunStats(total=len(specs), jobs=jobs)
    results: List[Any] = [None] * len(specs)
    misses: List[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            hit, value = cache.lookup(spec)
            if hit:
                results[index] = value
                stats.cache_hits += 1
                continue
        misses.append(index)
    stats.computed = len(misses)
    if misses:
        if jobs > 1 and len(misses) > 1:
            payloads = [(specs[i].module, specs[i].func, specs[i].kwargs)
                        for i in misses]
            with multiprocessing.Pool(min(jobs, len(misses))) as pool:
                computed = pool.map(_execute_payload, payloads, chunksize=1)
        else:
            computed = [execute_spec(specs[i]) for i in misses]
        for index, value in zip(misses, computed):
            results[index] = value
            if cache is not None:
                cache.store(specs[index], value)
    return results, stats


def summary(stats: RunStats) -> str:
    """The runner's one-line account, e.g.
    ``runner: 45 points, 42 from cache (93% skipped), 3 computed, jobs=4``.
    """
    return (f"runner: {stats.total} points, "
            f"{stats.cache_hits} from cache "
            f"({stats.skipped_fraction:.0%} skipped), "
            f"{stats.computed} computed, jobs={stats.jobs}")
