"""The work queue: cache lookups, fan-out, in-order merge, crash-safety.

All cache and journal I/O happens in the parent process — workers only
simulate — so a shared cache directory never sees concurrent writers
racing on the same key from one run, and a worker crash cannot leave a
half-written entry behind.

Crash-safety (PR 5): every completed point is appended to a
:class:`~repro.recovery.checkpoint.CheckpointJournal` the moment it
finishes, so an interrupted sweep (SIGINT, OOM-killed worker, crashed
parent) resumes with ``--resume`` recomputing only the unfinished
points. Pool workers that die or wedge are retried: a broken pool or a
stall (no point completing within ``timeout_s``) charges one attempt to
every outstanding point, rebuilds the pool after a seeded wall-clock
backoff, and resubmits; a point that keeps failing past ``retries``
raises :class:`PointFailure` naming it.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Union

from repro.recovery.checkpoint import CheckpointJournal
from repro.runner.cache import ResultCache
from repro.runner.points import PointSpec, _execute_payload, execute_spec


class PointFailure(RuntimeError):
    """One point kept failing after its retry budget was spent."""


def _point_failure(spec: PointSpec, index: int, reason: str,
                   journal: Optional[CheckpointJournal]) -> PointFailure:
    """Build a :class:`PointFailure` that carries its own repro.

    The message names the point's content-addressed cache hash, writes
    a ``point`` repro bundle, and quotes the one-line replay command;
    the same details land in the checkpoint journal as a ``failed``
    entry so an aborted sweep's journal records *why* it aborted.
    """
    from repro.check.bundle import (default_bundle_dir, make_point_bundle,
                                    write)
    key = ResultCache().key(spec)
    path = os.path.join(default_bundle_dir(), f"point-{key}.json")
    try:
        write(path, make_point_bundle(spec))
    except OSError:
        path = "<bundle write failed>"
    replay = f"python -m repro.experiments check --replay {path}"
    if journal is not None and journal._fh is not None:
        journal.record_failure(index, {
            "point": spec.label(), "hash": key,
            "bundle": path, "reason": reason})
    return PointFailure(
        f"point {spec.label()} {reason} [cache hash {key}]; "
        f"repro: {replay}")


@dataclass
class RunStats:
    """What one ``run_points`` call did, for summary lines and bench."""

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    jobs: int = 1
    #: points recovered from a checkpoint journal instead of computed
    resumed: int = 0
    #: point attempts that were retried after a crash/stall/failure
    retried: int = 0

    @property
    def skipped_fraction(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


def run_points(specs: Sequence[PointSpec], *, jobs: int = 1,
               cache: Optional[ResultCache] = None,
               checkpoint: Union[str, CheckpointJournal, None] = None,
               resume: bool = False,
               timeout_s: Optional[float] = None,
               retries: int = 2, retry_seed: int = 0) -> tuple:
    """Compute every point, returning ``(results, stats)``.

    ``results`` is aligned with ``specs`` — the merge is by position,
    never by completion order, which is what keeps parallel renders
    byte-identical to serial ones. ``jobs <= 1`` computes in-process;
    ``jobs > 1`` farms cache misses to a process pool one point at a
    time so one slow OLTP point cannot strand a ladder of cheap ones
    behind it.

    ``checkpoint`` (a directory, or a prepared journal) journals every
    completed point; with ``resume=True`` previously journaled results
    are reused. On any error or interrupt the journal file is *kept*
    for the next ``--resume``; it is deleted only when the sweep
    completes. ``timeout_s`` bounds how long the parallel path waits
    without any point completing before declaring the pool wedged.
    """
    jobs = max(int(jobs), 1)
    stats = RunStats(total=len(specs), jobs=jobs)
    results: List[Any] = [None] * len(specs)
    journal: Optional[CheckpointJournal] = None
    recovered = {}
    if checkpoint is not None:
        journal = (checkpoint if isinstance(checkpoint, CheckpointJournal)
                   else CheckpointJournal.for_specs(checkpoint, specs))
        recovered = journal.start(resume=resume)

    def finish(index: int, value: Any) -> None:
        results[index] = value
        if cache is not None:
            cache.store(specs[index], value)
        if journal is not None:
            journal.record(index, value)

    misses: List[int] = []
    try:
        for index, spec in enumerate(specs):
            if index in recovered:
                finish(index, recovered[index])
                stats.resumed += 1
                continue
            if cache is not None:
                hit, value = cache.lookup(spec)
                if hit:
                    finish(index, value)
                    stats.cache_hits += 1
                    continue
            misses.append(index)
        stats.computed = len(misses)
        if misses:
            if jobs > 1 and len(misses) > 1:
                _run_parallel(specs, misses, jobs, finish, stats,
                              timeout_s=timeout_s, retries=retries,
                              retry_seed=retry_seed, journal=journal)
            else:
                # in-process: an exception here is deterministic
                # simulation behaviour, not a crashed worker — no retry
                for index in misses:
                    finish(index, execute_spec(specs[index]))
    except BaseException:
        if journal is not None:
            journal.close()  # keep the file: it is the --resume handle
        raise
    if journal is not None:
        journal.complete()
    return results, stats


def _run_parallel(specs, misses, jobs, finish, stats, *,
                  timeout_s, retries, retry_seed, journal=None) -> None:
    """Fan outstanding points over a process pool, surviving crashes.

    Runs in rounds: each round submits every outstanding point to a
    fresh pool and harvests completions as they land. A worker crash
    (``BrokenProcessPool``) or a stall (nothing completed within
    ``timeout_s``) ends the round — every point still outstanding is
    charged one attempt and resubmitted after a seeded backoff sleep.
    """
    rng = random.Random(retry_seed * 9_176 + 11)
    attempts = {index: 0 for index in misses}
    outstanding = set(misses)
    round_no = 0
    while outstanding:
        round_no += 1
        if round_no > 1:
            # wall-clock backoff between pool rebuilds (seeded jitter);
            # never affects simulated results, only scheduling
            delay = min(0.05 * 2 ** (round_no - 2), 1.0)
            time.sleep(delay * (1.0 + rng.uniform(0.0, 0.25)))
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(outstanding)))
        broken = False
        try:
            futures = {}
            for index in sorted(outstanding):
                spec = specs[index]
                payload = (spec.module, spec.func, spec.kwargs)
                futures[executor.submit(_execute_payload, payload)] = index
            pending = set(futures)
            while pending and not broken:
                done, pending = wait(pending, timeout=timeout_s,
                                     return_when=FIRST_COMPLETED)
                if not done:
                    broken = True  # stall: nothing finished in time
                    break
                for future in done:
                    index = futures[future]
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    except Exception as exc:
                        attempts[index] += 1
                        stats.retried += 1
                        if attempts[index] > retries:
                            raise _point_failure(
                                specs[index], index,
                                f"failed {attempts[index]} time(s): "
                                f"{type(exc).__name__}: {exc}",
                                journal) from exc
                    else:
                        outstanding.discard(index)
                        finish(index, value)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if broken and outstanding:
            # can't know which point killed the pool: charge everyone
            # still out, and fail on whichever exhausted its budget
            for index in sorted(outstanding):
                attempts[index] += 1
                stats.retried += 1
                if attempts[index] > retries:
                    raise _point_failure(
                        specs[index], index,
                        f"did not complete after {attempts[index]} "
                        f"attempt(s) (crashed or stalled pool)", journal)


def summary(stats: RunStats) -> str:
    """The runner's one-line account, e.g.
    ``runner: 45 points, 42 from cache (93% skipped), 3 computed, jobs=4``.
    """
    line = (f"runner: {stats.total} points, "
            f"{stats.cache_hits} from cache "
            f"({stats.skipped_fraction:.0%} skipped), "
            f"{stats.computed} computed, jobs={stats.jobs}")
    if stats.resumed:
        line += f", {stats.resumed} resumed from checkpoint"
    if stats.retried:
        line += f", {stats.retried} retried"
    return line
