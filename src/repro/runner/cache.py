"""Content-addressed on-disk cache for simulation point results.

Cache key recipe (see DESIGN.md): ``sha256`` of

* the point spec's canonical JSON (driver, module, function, kwargs),
* the cost-model constants digest (``repro.trace.meta.constants_hash``)
  — recalibration invalidates every cached figure, and
* a fingerprint of every ``repro`` source file — any code change
  invalidates the whole cache. Aggressive, but simulations are cheap
  relative to a wrong cached number, and it makes staleness impossible.

Entries are single JSON files under ``.repro-cache/`` written with an
atomic rename, so concurrent runs sharing a cache directory never
observe a torn entry. Results must round-trip through JSON exactly;
Python's ``json`` preserves floats bit-for-bit (repr round-trip), which
is what keeps warm-cache renders byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional, Tuple

from repro.runner.points import PointSpec

#: bump to invalidate every existing cache entry on a layout change
CACHE_VERSION = 2

#: default cache directory, relative to the invoking working directory
DEFAULT_CACHE_DIR = ".repro-cache"

_fingerprint_cache: Optional[str] = None


def package_fingerprint() -> str:
    """Digest of every ``repro`` source file (name + contents).

    Computed once per process: the sources cannot change under a
    running simulation, and hashing ~150 small files costs only a few
    milliseconds.
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None:
        return _fingerprint_cache
    import repro
    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        digest.update(os.path.relpath(path, root).encode())
        with open(path, "rb") as handle:
            digest.update(handle.read())
    _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


class ResultCache:
    """Maps :class:`PointSpec` -> previously computed JSON result."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *,
                 costs=None):
        from repro.trace.meta import constants_hash
        self.root = root
        self.constants_hash = constants_hash(costs)
        self.fingerprint = package_fingerprint()

    def key(self, spec: PointSpec) -> str:
        payload = "\n".join([
            f"v{CACHE_VERSION}", self.constants_hash, self.fingerprint,
            spec.payload(),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, spec: PointSpec) -> str:
        return os.path.join(self.root, self.key(spec) + ".json")

    def lookup(self, spec: PointSpec) -> Tuple[bool, Any]:
        """Returns ``(hit, result)``; a corrupt entry counts as a miss.

        Integrity check: the entry must parse, be an object of the
        current layout version, and carry a result. Anything else —
        truncation, torn bytes, a hand-edited or foreign file — is
        *self-healed*: the bad entry is unlinked so the recompute can
        overwrite it cleanly, and the sweep continues instead of
        aborting.
        """
        if not spec.cacheable:
            return False, None
        path = self._path(spec)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            if not isinstance(entry, dict):
                raise ValueError("cache entry is not an object")
            if entry.get("version") != CACHE_VERSION:
                raise ValueError("cache entry version mismatch")
            return True, entry["result"]
        except FileNotFoundError:
            return False, None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None

    def store(self, spec: PointSpec, result: Any) -> None:
        if not spec.cacheable:
            return
        os.makedirs(self.root, exist_ok=True)
        entry = {"version": CACHE_VERSION, "driver": spec.driver,
                 "module": spec.module, "func": spec.func,
                 "kwargs": spec.kwargs, "result": result}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, self._path(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
