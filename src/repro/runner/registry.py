"""Experiment registry: name -> (point list, assemble) for the runner.

The parameter choices here mirror ``repro.experiments.__main__``'s
direct ``_run_*`` paths exactly — that equivalence is what makes
``--jobs N`` output byte-identical to a serial run, and it is pinned by
``tests/runner/test_parallel_determinism.py``. ``REPORT.md`` uses its
own parameterization (see ``repro.experiments.report``).
"""

from __future__ import annotations

import importlib
from typing import List

from repro.runner.points import PointSpec

#: experiments the point runner can shard (everything in the CLI's
#: DEFAULT_SET; ``report`` and ``chaos`` have their own plumbing)
SUPPORTED = ("table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8",
             "extras", "ablation")

_MODULES = {
    "table1": "repro.experiments.table01_arch",
    "fig1": "repro.experiments.fig01_breakdown",
    "fig2": "repro.experiments.fig02_ipc_breakdown",
    "fig5": "repro.experiments.fig05_sync_calls",
    "fig6": "repro.experiments.fig06_argsize",
    "fig7": "repro.experiments.fig07_driver",
    "fig8": "repro.experiments.fig08_oltp",
    "extras": "repro.experiments.extras",
    "ablation": "repro.experiments.ablation",
}


def _module(name: str):
    return importlib.import_module(_MODULES[name])


def _cli_params(name: str, quick: bool) -> dict:
    """The exact parameters the serial CLI path uses for ``name``."""
    if name == "table1":
        return {}
    if name == "fig1":
        return {"concurrency": 64 if quick else 256,
                "scale": 0.3 if quick else 1.0}
    if name == "fig2":
        return {"iters": 15 if quick else 40}
    if name == "fig5":
        return {"iters": 15 if quick else 40}
    if name == "fig6":
        from repro.experiments import fig06_argsize
        sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
            fig06_argsize.DEFAULT_SIZES
        return {"sizes": sizes, "iters": 8 if quick else 20}
    if name == "fig7":
        return {"iters": 10 if quick else 30}
    if name == "fig8":
        from repro.experiments import fig08_oltp
        concurrencies = (4, 16, 64) if quick else \
            fig08_oltp.DEFAULT_CONCURRENCIES
        return {"concurrencies": concurrencies,
                "scale": 0.25 if quick else 1.0}
    if name == "extras":
        return {}
    if name == "ablation":
        return {"iters": 10 if quick else 25}
    raise KeyError(name)


def specs_for(name: str, quick: bool) -> List[PointSpec]:
    """Decompose experiment ``name`` with the CLI's parameterization."""
    return _module(name).points(**_cli_params(name, quick))


def assemble(name: str, specs: List[PointSpec], results: list) -> str:
    """Merge per-point results (in spec order) into the rendered text."""
    return _module(name).assemble(specs, results)
