"""Figure-driver registry: one validated API for every experiment.

A figure driver is any object satisfying :class:`FigureDriver`:

* ``name`` — the registry key (``fig5``, ``fig9``, ``microbench``, …);
* ``cli_params(quick)`` — the exact parameters the CLI uses, the
  single source of truth shared by the serial and ``--jobs`` paths
  (that equivalence is what makes ``--jobs N`` output byte-identical
  to a serial run, pinned by
  ``tests/runner/test_parallel_determinism.py``);
* ``points(**params)`` — the decomposition into
  :class:`repro.runner.points.PointSpec`;
* ``compute_point(**kwargs)`` — one point from scratch (fresh kernel,
  deterministic, JSON-serializable result);
* ``assemble(specs, results)`` — merge per-point results, in spec
  order, into the rendered figure text.

Drivers self-register with :func:`register_figure`, which validates at
import time that the driver satisfies the protocol **and** that
``cli_params(quick)`` actually binds to ``points``'s signature for
both quick modes — so a renamed keyword fails the moment the module is
imported, not halfway through a two-hour ``--jobs 8`` run.

``REPORT.md`` uses its own parameterization (see
``repro.experiments.report``), reusing the same ``points``/``assemble``
entry points through :func:`module_for`.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Dict, List, Protocol, runtime_checkable

from repro.runner.points import PointSpec


@runtime_checkable
class FigureDriver(Protocol):
    """The contract every experiment driver implements."""

    name: str

    def cli_params(self, quick: bool) -> dict: ...

    def points(self, **params) -> List[PointSpec]: ...

    def compute_point(self, **kwargs): ...

    def assemble(self, specs, results) -> str: ...


_REGISTRY: Dict[str, FigureDriver] = {}

#: experiments the point runner can shard, in presentation order
#: (``report`` and ``chaos`` have their own plumbing)
SUPPORTED = ("table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8",
             "fig9", "fig10", "fig11", "fig12", "extras", "ablation",
             "microbench")

_MODULES = {
    "table1": "repro.experiments.table01_arch",
    "fig1": "repro.experiments.fig01_breakdown",
    "fig2": "repro.experiments.fig02_ipc_breakdown",
    "fig5": "repro.experiments.fig05_sync_calls",
    "fig6": "repro.experiments.fig06_argsize",
    "fig7": "repro.experiments.fig07_driver",
    "fig8": "repro.experiments.fig08_oltp",
    "fig9": "repro.experiments.fig09_load",
    "fig10": "repro.experiments.fig10_topo",
    "fig11": "repro.experiments.fig11_isolation",
    "fig12": "repro.experiments.fig12_bracket",
    "extras": "repro.experiments.extras",
    "ablation": "repro.experiments.ablation",
    "microbench": "repro.experiments.microbench",
}


def register_figure(cls):
    """Class decorator: validate a driver and add it to the registry.

    Raises :class:`TypeError`/:class:`ValueError` at import time when
    the driver is malformed; returns the class unchanged otherwise.
    """
    driver = cls() if isinstance(cls, type) else cls
    if not isinstance(driver, FigureDriver):
        missing = [attr for attr in
                   ("name", "cli_params", "points", "compute_point",
                    "assemble") if not hasattr(driver, attr)]
        raise TypeError(
            f"{cls!r} does not satisfy FigureDriver "
            f"(missing: {', '.join(missing) or 'n/a'})")
    name = driver.name
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls!r}: driver name must be a non-empty "
                         f"string, got {name!r}")
    for attr in ("cli_params", "points", "compute_point", "assemble"):
        if not callable(getattr(driver, attr)):
            raise TypeError(f"figure {name!r}: {attr} must be callable")
    # the CLI parameterization must bind to points() for both modes —
    # catch renamed/removed keywords at import, not mid-run
    signature = inspect.signature(driver.points)
    for quick in (False, True):
        params = driver.cli_params(quick)
        if not isinstance(params, dict):
            raise TypeError(
                f"figure {name!r}: cli_params(quick={quick}) must "
                f"return a dict, got {type(params).__name__}")
        try:
            signature.bind(**params)
        except TypeError as exc:
            raise TypeError(
                f"figure {name!r}: cli_params(quick={quick}) does not "
                f"bind to points{signature}: {exc}") from None
    previous = _REGISTRY.get(name)
    if previous is not None and \
            type(previous).__module__ != type(driver).__module__:
        raise ValueError(
            f"figure {name!r} already registered by "
            f"{type(previous).__module__}")
    _REGISTRY[name] = driver
    return cls


def get(name: str) -> FigureDriver:
    """The registered driver for ``name`` (imports its module lazily)."""
    if name not in _REGISTRY:
        module = _MODULES.get(name)
        if module is None:
            raise KeyError(f"unknown experiment {name!r} "
                           f"(choose from {', '.join(SUPPORTED)})")
        importlib.import_module(module)
        if name not in _REGISTRY:
            raise KeyError(f"module {module} did not register a "
                           f"figure driver named {name!r}")
    return _REGISTRY[name]


def module_for(name: str):
    """The module owning ``name``'s driver (report.py's entry point)."""
    get(name)
    return importlib.import_module(_MODULES[name])


#: backwards-compatible alias, used by repro.experiments.report
_module = module_for


def cli_params(name: str, quick: bool) -> dict:
    """The exact parameters the serial CLI path uses for ``name``."""
    return get(name).cli_params(quick)


def specs_for(name: str, quick: bool) -> List[PointSpec]:
    """Decompose experiment ``name`` with the CLI's parameterization."""
    driver = get(name)
    return driver.points(**driver.cli_params(quick))


def assemble(name: str, specs: List[PointSpec], results: list) -> str:
    """Merge per-point results (in spec order) into the rendered text."""
    return get(name).assemble(specs, results)
