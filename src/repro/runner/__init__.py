"""Parallel sharded experiment runner with content-addressed caching.

Every figure driver decomposes into self-contained simulation *points*
(:class:`PointSpec`: a picklable module/function/kwargs triple). The
runner fans points out across a ``multiprocessing`` pool (``--jobs N``
on ``python -m repro.experiments``), merges the results back in spec
order — so a parallel run renders byte-identically to a serial one —
and memoizes each point's result on disk (``.repro-cache/``) keyed by
the point spec, the cost-model constants and a fingerprint of the
package sources, so warm re-runs never recompute an unchanged point.
"""

from repro.runner.cache import ResultCache, package_fingerprint
from repro.runner.points import PointSpec, execute_spec
from repro.runner.pool import RunStats, run_points, summary

__all__ = [
    "PointSpec", "execute_spec",
    "ResultCache", "package_fingerprint",
    "RunStats", "run_points", "summary",
]
