"""Simulation points: the unit of work the parallel runner schedules.

A point is one self-contained simulation — one bar of Figure 5, one
(size, series) cell of Figure 6, one OLTP (storage, config, concurrency)
triple of Figure 8, one chaos storm. Each figure driver exposes

* ``points(**params) -> List[PointSpec]`` — the decomposition, and
* ``compute_point(**kwargs) -> JSON`` — runs one point from scratch
  (fresh kernel, deterministic), returning only JSON-serializable data
  so results can cross process boundaries and live in the on-disk
  cache, and
* ``assemble(specs, results) -> str`` — merges the per-point results,
  **in spec order**, into the same rendered text the driver's direct
  ``render(run(...))`` path produces.

Keeping ``kwargs`` JSON-only is what makes a spec both picklable (for
``multiprocessing``) and hashable (for the content-addressed cache).
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class PointSpec:
    """A picklable description of one simulation point."""

    #: experiment the point belongs to (``fig5``, ``chaos``, ...)
    driver: str
    #: dotted module that owns the point function
    module: str
    #: JSON-serializable keyword arguments for the point function
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: point-function name inside ``module``
    func: str = "compute_point"
    #: chaos storms opt out: they exist to *verify* determinism, so a
    #: cached replay would be circular
    cacheable: bool = True

    def payload(self) -> str:
        """Canonical JSON identity of this point (the cache-key input)."""
        return json.dumps(
            {"driver": self.driver, "module": self.module,
             "func": self.func, "kwargs": self.kwargs},
            sort_keys=True, separators=(",", ":"))

    def label(self) -> str:
        """Short human-readable tag for logs and progress lines."""
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.kwargs.items()))
        return f"{self.driver}[{inner}]" if inner else self.driver


def execute_spec(spec: PointSpec) -> Any:
    """Run one point in the current process and return its result."""
    module = importlib.import_module(spec.module)
    fn = getattr(module, spec.func)
    return fn(**spec.kwargs)


def _execute_payload(payload) -> Any:
    """Pool-worker entry point: a module-level function so it pickles
    under any multiprocessing start method."""
    module_name, func_name, kwargs = payload
    module = importlib.import_module(module_name)
    return getattr(module, func_name)(**kwargs)
