"""dIPC — Direct Inter-Process Communication (EuroSys'17) reproduction.

A from-scratch functional + timing simulation of:

* the CODOMs protection architecture (``repro.codoms``);
* an OS kernel substrate with processes, threads, a per-CPU scheduler,
  futexes and the classic IPC primitives (``repro.kernel``, ``repro.ipc``);
* **dIPC itself** — Table 2's API, trusted proxies generated from
  templates, user-defined isolation policies, the KCS, crash unwinding
  and time-outs (``repro.core``);
* the paper's workloads: micro-benchmarks, the Infiniband driver
  isolation case study, and the Apache+PHP+MariaDB OLTP stack
  (``repro.apps``, ``repro.experiments``).

Quickstart::

    from repro import Kernel, DipcManager, EntryDescriptor, Signature

    kernel = Kernel(num_cpus=4)
    dipc = DipcManager(kernel)
    server = kernel.spawn_process("server", dipc=True)
    client = kernel.spawn_process("client", dipc=True)
    # ... see examples/quickstart.py for the full flow
"""

from repro.codoms import (AccessEngine, APLCache, Capability, CodomsContext,
                          Permission)
from repro.core import (AnnotatedModule, DipcManager, DipcRuntime,
                        DomainHandle, EntryDescriptor, EntryHandle,
                        GrantHandle, IsolationPolicy, Proxy, Signature,
                        call_with_timeout, compile_module)
from repro.errors import (AccessFault, CallTimeout, CapabilityFault,
                          DipcError, PermissionDenied, ProtectionFault,
                          RemoteFault, ReproError, SignatureMismatch)
from repro.hw import CacheModel, CostModel, Machine
from repro.kernel import Futex, Kernel, Process, Thread
from repro.sim import Block, Breakdown, Engine

__version__ = "1.0.0"

__all__ = [
    "AccessEngine", "APLCache", "Capability", "CodomsContext", "Permission",
    "AnnotatedModule", "DipcManager", "DipcRuntime", "DomainHandle",
    "EntryDescriptor", "EntryHandle", "GrantHandle", "IsolationPolicy",
    "Proxy", "Signature", "call_with_timeout", "compile_module",
    "AccessFault", "CallTimeout", "CapabilityFault", "DipcError",
    "PermissionDenied", "ProtectionFault", "RemoteFault", "ReproError",
    "SignatureMismatch",
    "CacheModel", "CostModel", "Machine",
    "Futex", "Kernel", "Process", "Thread",
    "Block", "Breakdown", "Engine",
    "__version__",
]
