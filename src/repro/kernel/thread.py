"""Kernel threads.

A :class:`Thread` wraps a generator body and the state the kernel and
CODOMs need: scheduling state, CPU affinity, the per-thread CODOMs
context (capability registers + DCS), and — once dIPC is active — the
kernel control stack and per-process identifiers managed by
``repro.core``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, List, Optional

from repro.codoms.access import CodomsContext
from repro.errors import SimulationError
from repro.kernel.effects import BlockThread, Charge, YieldCPU
from repro.sim.stats import Block

_tid_counter = itertools.count(1)

NEW = "new"
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"


class Thread:
    """One schedulable thread, bound to an owning process."""

    def __init__(self, kernel, process, body: Callable[["Thread"], Generator],
                 *, name: str = "", pin: Optional[int] = None,
                 daemon: bool = False):
        self.kernel = kernel
        self.process = process
        self.tid = next(_tid_counter)
        self.name = name or f"{process.name}/t{self.tid}"
        self.pin = pin
        #: daemon threads (server loops that block forever by design)
        #: are exempt from deadlock detection (repro.check)
        self.daemon = daemon
        #: why the thread last blocked (BlockThread reason or handoff
        #: target), recorded by the scheduler for deadlock diagnostics
        self.block_reason: Optional[str] = None
        self.state = NEW
        self.gen = body(self)
        self.cpu = None
        self.last_cpu_index = pin if pin is not None else 0
        #: when the thread last ran (cache-hotness for the scheduler)
        self.last_ran = None
        #: value delivered by the next wake(), handed to the generator
        self.next_send_value = None
        #: remainder of a Charge split at a preemption boundary
        self.pending_charge = None
        self.slice_used = 0.0
        #: per-thread CODOMs architectural state
        self.codoms = CodomsContext(tag=process.default_tag)
        #: process the thread is currently accounted to — changes during a
        #: cross-process dIPC call (track_process_call, §6.1.2)
        self.current_process = process
        #: exception to inject at the next effect boundary (KCS unwinding
        #: after a process kill, §5.2.1)
        self.pending_exception = None
        #: set when the scheduler must destroy the thread outright
        self.killed = False
        #: True for the callee half of a §5.4 timeout split; the
        #: invariant auditor checks every split half was reaped
        self.is_split_half = False
        #: dIPC kernel control stack, installed by repro.core on first use
        self.kcs = None
        #: dIPC per-(thread, process) identifier map (§5.2.1)
        self.per_process_tids = {}
        #: open on-CPU tracing span, owned by the scheduler
        self.run_span = None
        #: dIPC track_process cache-array + tree (§6.1.2), set by repro.core
        self.track_state = None
        self.result = None
        self.exception: Optional[BaseException] = None
        self._join_waiters: List["Thread"] = []
        self.on_exit: List[Callable[["Thread"], None]] = []
        process.threads.append(self)

    # -- effect helpers (used by bodies with `yield` / `yield from`) -----------

    def compute(self, ns: float) -> Charge:
        """User-mode computation (block 1)."""
        return Charge(ns, Block.USER)

    def kwork(self, ns: float, block: Block = Block.KERNEL) -> Charge:
        """Kernel/privileged-mode computation."""
        return Charge(ns, block)

    def block(self, reason: str = "") -> BlockThread:
        return BlockThread(reason)

    def yield_cpu(self) -> YieldCPU:
        return YieldCPU()

    def syscall(self, work_ns: float = 0.0):
        """Sub-generator: the full syscall path of Figure 2.

        Charges block 2 (syscall + 2×swapgs + sysret), block 3 (dispatch
        trampoline) and ``work_ns`` of block 4.
        """
        costs = self.kernel.costs
        yield Charge(costs.SYSCALL_HW, Block.SYSCALL)
        yield Charge(costs.SYSCALL_TRAMPOLINE, Block.TRAMPOLINE)
        if work_ns > 0:
            yield Charge(work_ns, Block.KERNEL)

    def sleep(self, ns: float):
        """Sub-generator: block for ``ns`` of simulated time."""
        self.kernel.machine.engine.post(ns, lambda: self.kernel.wake(self))
        yield BlockThread("sleep")

    def join(self, other: "Thread"):
        """Sub-generator: block until ``other`` exits; returns its result."""
        if other.state != DONE:
            other._join_waiters.append(self)
            yield BlockThread(f"join:{other.name}")
        if other.exception is not None:
            raise other.exception
        return other.result

    # -- introspection -----------------------------------------------------------

    def now(self) -> float:
        return self.kernel.machine.engine.now()

    @property
    def costs(self):
        return self.kernel.costs

    @property
    def is_done(self) -> bool:
        return self.state == DONE

    def _notify_exit(self) -> None:
        for waiter in self._join_waiters:
            self.kernel.wake(waiter)
        self._join_waiters.clear()
        for callback in self.on_exit:
            callback(self)

    def __repr__(self) -> str:
        return f"<Thread {self.name} tid={self.tid} {self.state}>"
