"""Per-CPU scheduler with runqueues, timeslice preemption and IPI wakes.

Time conservation invariant: every nanosecond of every CPU's wall-clock
is attributed exactly once — to a :class:`Block` while work (or a context
switch) occupies the CPU, or to ``Block.IDLE`` while it sits in the idle
loop. That is what makes Figure 1/2/8's breakdowns trustworthy.

Wake paths, matching §2.2's cost analysis:

* waking a thread onto a **busy** CPU just enqueues it; it runs after a
  context switch (blocks 5+6) at the next scheduling point;
* waking an **idle remote** CPU costs an IPI (send + flight + handle)
  plus pulling the CPU out of the idle loop (``IDLE_WAKE_SCHED``) — the
  expensive path that makes cross-CPU IPC slow;
* event-context wakes (timers, disk completions) of an idle CPU charge
  only the idle-exit scheduling cost.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Set

from repro.errors import SimulationError
from repro.kernel.effects import BlockThread, Charge, Handoff, YieldCPU
from repro.kernel import thread as thread_mod
from repro.kernel.thread import Thread
from repro.sim.stats import Block


class Scheduler:
    """Event-driven per-CPU scheduler."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine = kernel.machine
        self.engine = kernel.machine.engine
        self.costs = kernel.machine.costs
        self.runqueues: List[deque] = [deque() for _ in self.machine.cpus]
        #: CPUs with a start event in flight (current still None)
        self._claimed: Set[int] = set()
        self.context_switches = 0
        self.preemptions = 0
        self.ipi_wakes = 0
        self.steals = 0
        self.pt_switches = 0
        #: seeded timing-noise source (JITTER=0 keeps runs exact)
        self._jitter_rng = random.Random(self.costs.JITTER_SEED) \
            if self.costs.JITTER > 0 else None

    # -- public API --------------------------------------------------------------

    def start(self, thread: Thread) -> None:
        """Admit a NEW thread."""
        self.wake(thread)

    def wake(self, thread: Thread, value=None,
             from_thread: Optional[Thread] = None) -> None:
        """Make a blocked/new thread runnable, delivering ``value``."""
        if thread.state in (thread_mod.RUNNING, thread_mod.RUNNABLE):
            return  # already awake: wake is level-triggered here
        if thread.state == thread_mod.DONE:
            return
        thread.next_send_value = value
        index = self._choose_cpu(thread)
        cpu = self.machine.cpus[index]
        waker_cpu = from_thread.cpu if from_thread is not None else None
        if self._cpu_free(index):
            self._claimed.add(index)
            thread.state = thread_mod.RUNNABLE
            if waker_cpu is not None and waker_cpu is not cpu:
                # cross-CPU wake of an idle CPU: the IPI path
                self.ipi_wakes += 1
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant(f"ipi:{thread.name}", "sched",
                                   track=f"cpu{waker_cpu.index}",
                                   args={"target_cpu": cpu.index})
                self.machine.send_ipi(
                    waker_cpu, cpu,
                    lambda: self._claimed_start(cpu, thread))
            else:
                self.engine.post(0, lambda: self._claimed_start(cpu, thread))
        else:
            thread.state = thread_mod.RUNNABLE
            self.runqueues[index].append(thread)

    def runnable_count(self) -> int:
        return sum(len(rq) for rq in self.runqueues)

    # -- CPU selection ---------------------------------------------------------------

    def _cpu_free(self, index: int) -> bool:
        return (self.machine.cpus[index].current is None
                and index not in self._claimed)

    def _choose_cpu(self, thread: Thread) -> int:
        if thread.pin is not None:
            return thread.pin
        last = thread.last_cpu_index
        if self._cpu_free(last):
            return last
        # cache-hot threads stay on their last CPU even when it is busy
        # (sched_migration_cost): the woken thread queues behind whoever
        # runs there while other CPUs may sit idle — the "temporary
        # imbalance" of §7.4 that synchronous IPC then waits on
        if self._is_cache_hot(thread):
            return last
        for cpu in self.machine.cpus:
            if self._cpu_free(cpu.index):
                return cpu.index
        # least-loaded runqueue; ties keep the thread where it last ran
        def load(i: int) -> tuple:
            return (len(self.runqueues[i]), 0 if i == last else 1, i)
        return min(range(len(self.runqueues)), key=load)

    def _is_cache_hot(self, thread: Thread) -> bool:
        last_ran = getattr(thread, "last_ran", None)
        if last_ran is None:
            return False
        return (self.engine.now() - last_ran) < \
            self.costs.SCHED_MIGRATION_COST

    # -- running machinery ----------------------------------------------------------------

    def _claimed_start(self, cpu, thread: Thread) -> None:
        self._claimed.discard(cpu.index)
        self._begin_run(cpu, thread, self.costs.IDLE_WAKE_SCHED)

    def _begin_run(self, cpu, thread: Thread, sched_cost: float) -> None:
        """Install ``thread`` on ``cpu``, pay switch costs, then advance."""
        cpu.end_idle(self.engine.now())
        cpu.current = thread
        thread.block_reason = None
        thread.cpu = cpu
        thread.last_cpu_index = cpu.index
        thread.state = thread_mod.RUNNING
        thread.slice_used = 0.0
        total = 0.0
        if sched_cost > 0:
            cpu.charge(Block.SCHED, sched_cost)
            total += sched_cost
        page_table = thread.process.page_table
        if cpu.percpu.get("page_table") is not page_table:
            # the page-table switch of block 6 (plus, on CODOMs, an APL
            # cache swap — free in hardware, so only the PT cost shows)
            if cpu.percpu.get("page_table") is not None:
                cpu.charge(Block.PTSW, self.costs.PT_SWITCH)
                total += self.costs.PT_SWITCH
                self.pt_switches += 1
            cpu.percpu["page_table"] = page_table
        tracer = self.engine.tracer
        if tracer.enabled:
            thread.run_span = tracer.begin(
                thread.name, "oncpu", track=f"cpu{cpu.index}",
                args={"tid": thread.tid})
        self.engine.post(total, lambda: self._advance(cpu, thread))

    def _end_run_span(self, thread: Thread) -> None:
        """Close the thread's on-CPU span when it leaves its CPU."""
        span = thread.run_span
        if span is not None:
            self.engine.tracer.end(span)
            thread.run_span = None

    def _dispatch(self, cpu) -> None:
        """The CPU is free: run the next queued thread or go idle."""
        runqueue = self.runqueues[cpu.index]
        cpu.current = None
        if not runqueue:
            stolen = self._steal_for(cpu)
            if stolen is None:
                cpu.begin_idle(self.engine.now())
                return
            self.context_switches += 1
            self.steals += 1
            self._begin_run(cpu, stolen, self.costs.CTX_SWITCH)
            return
        controller = self.engine.controller
        if controller is not None and len(runqueue) > 1:
            # schedule exploration: the ready-queue pick is a decision
            # point — any queued thread is a legal next choice
            choice = controller.choose("runqueue", len(runqueue))
            thread = runqueue[choice]
            del runqueue[choice]
        else:
            thread = runqueue.popleft()
        self.context_switches += 1
        self._begin_run(cpu, thread, self.costs.CTX_SWITCH)

    def _steal_for(self, cpu) -> Optional[Thread]:
        """newidle load balancing: pull a runnable thread from another
        runqueue — but never a cache-hot one (sched_migration_cost)."""
        best = None
        for other in self.machine.cpus:
            if other is cpu:
                continue
            runqueue = self.runqueues[other.index]
            for thread in runqueue:
                if thread.pin is not None:
                    continue
                if self._is_cache_hot(thread):
                    continue
                best = thread
                break
            if best is not None:
                runqueue.remove(best)
                return best
        return None

    def _advance(self, cpu, thread: Thread) -> None:
        """Pull and interpret the thread's next effect."""
        if cpu.current is not thread or thread.state != thread_mod.RUNNING:
            return  # stale continuation (thread was killed)
        if thread.pending_charge is not None:
            ns, block = thread.pending_charge
            thread.pending_charge = None
            self._do_charge(cpu, thread, ns, block)
            return
        try:
            if getattr(thread, "killed", False):
                effect = thread.gen.throw(
                    _ThreadKilled(f"{thread.name} killed"))
            elif thread.pending_exception is not None:
                injected = thread.pending_exception
                thread.pending_exception = None
                effect = thread.gen.throw(injected)
            else:
                value = thread.next_send_value
                thread.next_send_value = None
                effect = thread.gen.send(value)
        except StopIteration as stop:
            thread.result = stop.value
            self._finish(cpu, thread, None)
            return
        except _ThreadKilled:
            self._finish(cpu, thread, None)
            return
        except BaseException as exc:  # a simulated crash, not a sim bug
            self._finish(cpu, thread, exc)
            return
        if isinstance(effect, Charge):
            self._do_charge(cpu, thread, effect.ns, effect.block)
        elif isinstance(effect, BlockThread):
            thread.state = thread_mod.BLOCKED
            thread.block_reason = effect.reason
            thread.cpu = None
            thread.last_ran = self.engine.now()
            self._end_run_span(thread)
            self._dispatch(cpu)
        elif isinstance(effect, Handoff):
            target = effect.to
            if target.state != thread_mod.BLOCKED:
                self._finish(cpu, thread, SimulationError(
                    f"handoff to non-blocked thread {target.name}"))
                return
            if target.pin is not None and target.pin != cpu.index:
                self._finish(cpu, thread, SimulationError(
                    f"handoff to {target.name} pinned to CPU{target.pin}"))
                return
            thread.state = thread_mod.BLOCKED
            thread.block_reason = f"handoff:{target.name}"
            thread.cpu = None
            thread.last_ran = self.engine.now()
            self._end_run_span(thread)
            target.next_send_value = effect.value
            self._begin_run(cpu, target, 0.0)
        elif isinstance(effect, YieldCPU):
            runqueue = self.runqueues[cpu.index]
            if runqueue:
                thread.state = thread_mod.RUNNABLE
                runqueue.append(thread)
                self._dispatch(cpu)
            else:
                self.engine.post(0, lambda: self._advance(cpu, thread))
        else:
            self._finish(cpu, thread, TypeError(
                f"{thread.name} yielded a non-effect: {effect!r}"))

    def _do_charge(self, cpu, thread: Thread, ns: float, block) -> None:
        """Charge CPU time, splitting at the timeslice for preemption.

        Time is billed to the thread's *current* process — a thread
        executing inside another process via dIPC donates its slice and
        bills the callee (§5.2.1, §6.1.2).
        """
        billed = thread.current_process
        if self._jitter_rng is not None and ns > 0:
            ns *= 1.0 + self._jitter_rng.uniform(-self.costs.JITTER,
                                                 self.costs.JITTER)
        remaining = self.costs.TIMESLICE - thread.slice_used
        contended = bool(self.runqueues[cpu.index])
        if contended and 0 < remaining < ns:
            cpu.charge(block, remaining)
            billed.cpu_ns += remaining
            thread.slice_used += remaining
            thread.pending_charge = (ns - remaining, block)
            self.engine.post(remaining, lambda: self._preempt(cpu, thread))
            return
        cpu.charge(block, ns)
        billed.cpu_ns += ns
        thread.slice_used += ns
        self.engine.post(ns, lambda: self._after_charge(cpu, thread))

    def _after_charge(self, cpu, thread: Thread) -> None:
        if cpu.current is not thread or thread.state != thread_mod.RUNNING:
            return
        if (thread.slice_used >= self.costs.TIMESLICE
                and self.runqueues[cpu.index]):
            self._preempt(cpu, thread)
        else:
            self._advance(cpu, thread)

    def _preempt(self, cpu, thread: Thread) -> None:
        if cpu.current is not thread or thread.state != thread_mod.RUNNING:
            return
        self.preemptions += 1
        thread.state = thread_mod.RUNNABLE
        thread.slice_used = 0.0
        thread.cpu = None
        thread.last_ran = self.engine.now()
        self._end_run_span(thread)
        self.runqueues[cpu.index].append(thread)
        self._dispatch(cpu)

    def _finish(self, cpu, thread: Thread,
                exc: Optional[BaseException]) -> None:
        thread.state = thread_mod.DONE
        thread.cpu = None
        self._end_run_span(thread)
        thread.exception = exc
        if exc is not None:
            self.kernel.crashed_threads.append(thread)
        thread._notify_exit()
        self._dispatch(cpu)

    # -- forced termination (process kill) ---------------------------------------------

    def cancel(self, thread: Thread) -> None:
        """Terminate a thread wherever it is (§5.2.1 process kills)."""
        if thread.state == thread_mod.DONE:
            return
        if thread.state == thread_mod.RUNNING:
            thread.killed = True  # takes effect at the next effect boundary
            return
        if thread.state == thread_mod.RUNNABLE:
            for runqueue in self.runqueues:
                try:
                    runqueue.remove(thread)
                except ValueError:
                    continue
                break
        thread.killed = True
        # unwind the suspended generator so its cleanup handlers run
        # (cancelling posted timers, releasing wait-queue slots): a
        # thread abandoned mid-block must not leak pending events
        try:
            thread.gen.throw(_ThreadKilled(f"{thread.name} killed"))
        except (StopIteration, _ThreadKilled):
            pass
        except BaseException as exc:  # noqa: BLE001 — a crash in cleanup
            thread.exception = exc
            self.kernel.crashed_threads.append(thread)
        else:
            # the body swallowed the kill and yielded another effect;
            # drop it — the thread is dead regardless
            thread.gen.close()
        thread.state = thread_mod.DONE
        thread._notify_exit()


class _ThreadKilled(BaseException):
    """Injected into a generator to terminate it; BaseException so user
    ``except Exception`` blocks in simulated code cannot swallow it."""
