"""The OS kernel substrate: processes, threads, scheduler, futexes."""

from repro.kernel.effects import BlockThread, Charge, YieldCPU
from repro.kernel.fdtable import FDTable
from repro.kernel.futex import Futex
from repro.kernel.kernel import Kernel
from repro.kernel.libraries import (LibraryImage, LibraryRegistry,
                                     MappedLibrary)
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.thread import (BLOCKED, DONE, NEW, RUNNABLE, RUNNING,
                                 Thread)

__all__ = [
    "BlockThread", "Charge", "YieldCPU",
    "FDTable", "Futex", "Kernel", "Process", "Scheduler", "Thread",
    "LibraryImage", "LibraryRegistry", "MappedLibrary",
    "NEW", "RUNNABLE", "RUNNING", "BLOCKED", "DONE",
]
