"""Futexes: the kernel sleep/wake primitive under POSIX semaphores (§2.2).

``Futex.wait``/``Futex.wake`` charge the Figure-2 syscall-path blocks and
the futex kernel work the cost model decomposes; sleeping and waking go
through the scheduler so cross-CPU wakes pay the IPI path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.kernel.thread import Thread
from repro.sim.stats import Block


class Futex:
    """A single kernel wait queue with a user-space counter."""

    def __init__(self, kernel, value: int = 0):
        self.kernel = kernel
        self.value = value
        self._waiters: Deque[Thread] = deque()
        self.wait_count = 0
        self.wake_count = 0

    def wait(self, thread: Thread):
        """Sub-generator: FUTEX_WAIT — block while the value is zero,
        then atomically consume one unit."""
        costs = self.kernel.costs
        tracer = self.kernel.tracer
        span = tracer.begin("futex.wait", "ipc", thread=thread) \
            if tracer.enabled else None
        while True:
            yield from thread.syscall(0)
            yield thread.kwork(costs.FUTEX_WAIT_WORK, Block.KERNEL)
            self.wait_count += 1
            if self.value > 0:
                self.value -= 1
                if span is not None:
                    tracer.end(span)
                return
            self._waiters.append(thread)
            yield thread.block("futex")
            yield thread.kwork(costs.FUTEX_RESUME, Block.KERNEL)
            if self.value > 0:
                self.value -= 1
                if span is not None:
                    tracer.end(span)
                return
            # lost a race with another waiter: go around again

    def wake(self, thread: Thread, count: int = 1):
        """Sub-generator: FUTEX_WAKE — add a unit and wake waiters."""
        costs = self.kernel.costs
        tracer = self.kernel.tracer
        span = tracer.begin("futex.wake", "ipc", thread=thread) \
            if tracer.enabled else None
        yield from thread.syscall(0)
        yield thread.kwork(costs.FUTEX_WAKE_WORK, Block.KERNEL)
        self.value += count
        self.wake_count += 1
        woken = 0
        while self._waiters and woken < count:
            waiter = self._waiters.popleft()
            if waiter.is_done:
                continue
            self.kernel.wake(waiter, from_thread=thread)
            woken += 1
        if span is not None:
            tracer.end(span, args={"woken": woken})

    def wake_from_event(self, count: int = 1) -> None:
        """Wake from interrupt/event context (no syscall, no waker CPU)."""
        self.value += count
        woken = 0
        while self._waiters and woken < count:
            waiter = self._waiters.popleft()
            if waiter.is_done:
                continue
            self.kernel.wake(waiter)
            woken += 1

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)
