"""Per-process file descriptor tables.

Resource isolation in the paper's sense: the fd table is part of the
per-CPU ``current`` process state that conventional IPC must switch
(§2.2) and that dIPC's ``track_process_call`` switches on its fast path
(§6.1.2). dIPC also passes domain handles between processes *as file
descriptors* (§5.2.2), which is why this lives in the kernel substrate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ResourceError


class FDTable:
    """A small UNIX-style descriptor table."""

    def __init__(self, max_fds: int = 1024):
        self.max_fds = max_fds
        self._fds: Dict[int, object] = {}
        self._next = 3  # 0-2 reserved for std streams, as tradition demands

    def install(self, obj: object) -> int:
        """Install an object at the lowest free descriptor."""
        for fd in range(self._next, self.max_fds):
            if fd not in self._fds:
                self._fds[fd] = obj
                return fd
        raise ResourceError("fd table full")

    def get(self, fd: int) -> object:
        try:
            return self._fds[fd]
        except KeyError:
            raise ResourceError(f"bad file descriptor {fd}") from None

    def close(self, fd: int) -> object:
        try:
            return self._fds.pop(fd)
        except KeyError:
            raise ResourceError(f"bad file descriptor {fd}") from None

    def dup(self, fd: int) -> int:
        return self.install(self.get(fd))

    def clone(self) -> "FDTable":
        """fork(): the child inherits the parent's descriptors."""
        child = FDTable(self.max_fds)
        child._fds = dict(self._fds)
        return child

    def open_count(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: int) -> bool:
        return fd in self._fds
