"""Processes: the OS unit of isolation that dIPC teaches to share.

An ordinary process owns a private page table. A dIPC-enabled process
instead lives in the machine-wide *shared* page table at a unique range
of the global virtual address space, with its pages tagged by its default
CODOMs domain (§5.2, §6.1.3).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro import units
from repro.errors import DeadProcessError
from repro.kernel.fdtable import FDTable
from repro.mem.addrspace import AddressSpace
from repro.mem.pagetable import PageTable

_pid_counter = itertools.count(1)

#: where ordinary (non-dIPC) processes place their heap
PRIVATE_BASE = 0x0000_0000_0040_0000


class Process:
    """A process control block."""

    def __init__(self, kernel, name: str, *, page_table: PageTable,
                 shared_table: bool, default_tag: Optional[int] = None):
        self.kernel = kernel
        self.pid = next(_pid_counter)
        #: kernel-wide monotonic epoch: a supervisor-rebuilt replacement
        #: for a dead process gets a strictly larger generation, so a
        #: KCS frame stamped with the corpse's generation can never be
        #: mistaken for one belonging to the new incarnation (§5.2.1)
        self.generation = kernel.next_generation()
        self.name = name
        self.page_table = page_table
        self.space = AddressSpace(page_table)
        self.uses_shared_table = shared_table
        #: CODOMs tag of the process's default domain (dIPC processes only)
        self.default_tag = default_tag
        #: every CODOMs tag this process owns (default + dom_create), so
        #: the kill path and the A9 reclamation audit can find all grants
        #: touching a dead process's domains
        self.domain_tags = set() if default_tag is None else {default_tag}
        self.fdtable = FDTable()
        self.threads: List = []
        self.alive = True
        self.exit_code: Optional[int] = None
        #: whether dIPC is active (fork disables it until exec, §6.1.3)
        self.dipc_enabled = default_tag is not None
        #: bump pointer for private-table allocations
        self._private_cursor = PRIVATE_BASE
        #: dIPC objects owned by this process (filled in by repro.core)
        self.dipc = None
        #: POSIX-ish identity, used to show resource isolation in tests
        self.uid = 1000
        #: CPU time charged to this process (§5.2.1: "dIPC charges CPU
        #: time and memory to each process as usual" — a thread visiting
        #: another process bills its time there, time-slice donation)
        self.cpu_ns = 0.0
        #: pages this process has mapped (memory accounting)
        self.pages_allocated = 0

    # -- memory ------------------------------------------------------------------

    def alloc_pages(self, num_pages: int, *, tag: Optional[int] = "default",
                    read: bool = True, write: bool = True,
                    execute: bool = False, privileged: bool = False,
                    cap_storage: bool = False) -> int:
        """Map ``num_pages`` fresh pages and return their base address.

        dIPC-enabled processes allocate from the global VAS (two-phase,
        §6.1.3); ordinary ones from their private table. ``tag="default"``
        uses the process's default domain — pass an explicit tag (or
        ``None``) for dom_mmap-style placement.
        """
        if not self.alive:
            raise DeadProcessError(f"{self.name} has exited")
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        size = num_pages * units.PAGE_SIZE
        if self.uses_shared_table:
            base = self.kernel.gvas.suballoc(self.pid, size)
        else:
            base = self._private_cursor
            self._private_cursor += size + units.PAGE_SIZE  # guard page
        effective_tag = self.default_tag if tag == "default" else tag
        self.pages_allocated += num_pages
        first_vpn = base // units.PAGE_SIZE
        for vpn in range(first_vpn, first_vpn + num_pages):
            self.page_table.map_page(
                vpn, read=read, write=write, execute=execute,
                tag=effective_tag, privileged=privileged,
                cap_storage=cap_storage)
        return base

    def alloc_bytes(self, size: int, **bits) -> int:
        return self.alloc_pages(units.pages_for(size), **bits)

    # -- lifecycle ------------------------------------------------------------------

    def live_threads(self) -> List:
        return [t for t in self.threads if not t.is_done]

    def exit(self, code: int = 0) -> None:
        """Mark the process dead (thread teardown is done by the kernel)."""
        self.alive = False
        self.exit_code = code

    def __repr__(self) -> str:
        kind = "dIPC" if self.dipc_enabled else "proc"
        return f"<{kind} {self.name} pid={self.pid}>"
