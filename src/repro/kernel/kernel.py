"""The kernel façade: processes, threads, wakes, fork/exec, CODOMs wiring.

This is the "Linux 3.9.10 + KML" of the reproduction. It owns the
machine, physical memory, the scheduler, and the CODOMs plumbing that
dIPC-enabled processes share (one page table, one APL registry, the
global virtual address space, per-CPU APL caches).
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, List, Optional

from repro import units
from repro.codoms.access import AccessEngine
from repro.codoms.apl import APLRegistry
from repro.codoms.aplcache import APLCache
from repro.codoms.tags import TagAllocator
from repro.check.session import CheckSession
from repro.errors import DeadProcessError
from repro.fault.session import ChaosSession
from repro.hw.machine import Machine
from repro.kernel.libraries import LibraryRegistry
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.thread import Thread
from repro.mem.addrspace import AddressSpace
from repro.mem.gvas import GlobalVAS
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory
from repro.trace.tracer import TraceSession


class Kernel:
    """A booted simulated system."""

    def __init__(self, machine: Optional[Machine] = None, *,
                 num_cpus: int = 4):
        self.machine = machine if machine is not None else Machine(num_cpus)
        self.costs = self.machine.costs
        self.engine = self.machine.engine
        # inside an active TraceSession, every kernel records spans
        TraceSession.maybe_attach(self)
        # inside an active ChaosSession, every kernel gets a fault storm
        ChaosSession.maybe_attach(self)
        # inside an active CheckSession, every kernel is explored:
        # schedule controller + deadlock detector + optional storm
        CheckSession.maybe_attach(self)
        self.phys = PhysicalMemory(total_frames=256 * units.MB
                                   // units.PAGE_SIZE)
        self.scheduler = Scheduler(self)
        #: monotonic process-generation epoch (stamped into KCS frames)
        self._generations = itertools.count(1)
        self.processes: List[Process] = []
        self.crashed_threads: List[Thread] = []
        #: callbacks run after a process is killed (IPC peer-death
        #: notification: pipes flag EPIPE, sockets reset, L4 hangs up)
        self._kill_hooks: List[Callable[[Process], None]] = []

        # -- CODOMs / dIPC shared infrastructure (§5.2, §6.1.3) ------------
        self.tags = TagAllocator()
        self.shared_table = PageTable(self.phys)
        self.shared_space = AddressSpace(self.shared_table)
        self.apls = APLRegistry()
        self.access = AccessEngine(self.shared_space, self.apls,
                                   engine=self.engine)
        self.gvas = GlobalVAS()
        for cpu in self.machine.cpus:
            cpu.apl_cache = APLCache()
        #: dIPC manager, attached lazily by repro.core.runtime
        self.dipc = None
        #: shared libraries with per-process virtual copies (§6.1.3)
        self.libraries = LibraryRegistry(self)

    @property
    def tracer(self):
        """The engine's span/counter recorder (NULL_TRACER when off)."""
        return self.engine.tracer

    # -- process / thread management -----------------------------------------------

    def next_generation(self) -> int:
        """Next process-generation epoch (every Process takes one at
        construction; supervisor rebuilds therefore advance it)."""
        return next(self._generations)

    def spawn_process(self, name: str, *, dipc: bool = False) -> Process:
        """Create a process; ``dipc=True`` loads it into the shared page
        table with a fresh default domain (§5.2)."""
        if dipc:
            tag = self.tags.alloc()
            process = Process(self, name, page_table=self.shared_table,
                              shared_table=True, default_tag=tag)
        else:
            process = Process(self, name, page_table=PageTable(self.phys),
                              shared_table=False)
        self.processes.append(process)
        return process

    def spawn(self, process: Process,
              body: Callable[[Thread], Generator], *,
              name: str = "", pin: Optional[int] = None,
              start: bool = True, daemon: bool = False) -> Thread:
        """Create (and by default start) a thread in ``process``.

        ``daemon=True`` marks server loops that block forever by
        design; the deadlock detector (``repro.check``) ignores them.
        """
        if not process.alive:
            raise DeadProcessError(f"{process.name} has exited")
        thread = Thread(self, process, body, name=name, pin=pin,
                        daemon=daemon)
        if start:
            self.scheduler.start(thread)
        return thread

    def wake(self, thread: Thread, value=None,
             from_thread: Optional[Thread] = None) -> None:
        self.scheduler.wake(thread, value, from_thread)

    def on_process_kill(self,
                        hook: Callable[[Process], None]) -> None:
        """Register a peer-death notification, run after every
        ``kill_process`` (used by the IPC layers for EPIPE/ECONNRESET
        semantics and by the fault injector for bookkeeping)."""
        self._kill_hooks.append(hook)

    def kill_process(self, process: Process, *,
                     exit_code: int = -9) -> None:
        """Terminate a process and all its threads (SIGKILL-style).

        Threads currently executing *in another process* through dIPC are
        unwound by the dIPC fault machinery rather than destroyed
        (§5.2.1); plain threads are cancelled outright. Killing an
        already-dead process is a no-op, so kills arriving in any order
        (caller first, callee first, twice) never unwind a thread twice.
        """
        if not process.alive:
            return
        process.exit(exit_code)
        for thread in list(process.threads):
            if thread.is_done:
                continue
            if self.dipc is not None and self.dipc.thread_is_abroad(thread):
                self.dipc.unwind_on_kill(thread, process)
            else:
                self.scheduler.cancel(thread)
        if self.dipc is not None:
            # threads from *other* processes currently executing inside the
            # victim (or with it on their call chain) are unwound, not
            # destroyed: their callers may still be alive (§5.2.1); a
            # thread of the victim itself is never in this set, so it
            # cannot be unwound a second time
            for thread in self.dipc.threads_visiting(process):
                self.dipc.unwind_on_kill(thread, process)
            # the injected unwinds above are asynchronous (delivered at
            # each thread's next effect boundary); prune the victim's KCS
            # frames synchronously so no audit — and no reply racing a
            # pool rebuild — can ever observe a frame naming the corpse.
            # Must run after the unwind_on_kill loops: threads_visiting
            # keys off KCS contents, which this sweep erases.
            self.dipc.unwind_dead(process)
            # revoke every grant into or out of the victim's domains so
            # a replacement process can never be reached through a stale
            # APL edge (A9: no dangling resources after death)
            self.dipc.reclaim_process(process)
        for hook in list(self._kill_hooks):
            hook(process)

    def unwind_dead(self, process) -> int:
        """Re-run the kill-time KCS sweep for an already-dead process;
        returns the number of frames pruned. The supervisor calls this
        immediately before its pre-rebuild reclamation audit as a
        belt-and-braces pass (a clean system prunes nothing)."""
        if self.dipc is None:
            return 0
        repaired = self.dipc.unwind_dead(process)
        return sum(len(frames) for _thread, frames in repaired)

    # -- fork / exec (§6.1.3 backwards compatibility) ----------------------------------

    def fork(self, parent: Process) -> Process:
        """POSIX fork: COW copy; dIPC is disabled in the child until exec."""
        # the child gets a private COW copy of the parent's pages; a dIPC
        # parent's child leaves the global address space until it execs
        table = parent.page_table.clone_for_fork()
        child = Process(self, f"{parent.name}-child", page_table=table,
                        shared_table=False, default_tag=None)
        child.fdtable = parent.fdtable.clone()
        child.uid = parent.uid
        child.dipc_enabled = False  # "temporarily disables dIPC" (§6.1.3)
        self.processes.append(child)
        return child

    def exec_process(self, process: Process, name: str, *,
                     pic: bool = True) -> Process:
        """POSIX exec: with a PIC executable, dIPC is re-enabled and the
        image is loaded at a unique global virtual address (§6.1.3)."""
        process.name = name
        if pic:
            process.page_table = self.shared_table
            process.space = AddressSpace(self.shared_table)
            process.uses_shared_table = True
            process.default_tag = self.tags.alloc()
            process.domain_tags.add(process.default_tag)
            process.dipc_enabled = True
        return process

    def enable_deadlock_detection(self) -> None:
        """Raise :class:`repro.errors.DeadlockError` whenever the event
        queue drains with live non-daemon threads still blocked, instead
        of returning from ``run()`` as if nothing were wrong."""
        from repro.check.deadlock import install_detector
        install_detector(self)

    # -- running ---------------------------------------------------------------------------

    def run(self, until_ns: Optional[float] = None) -> None:
        self.engine.run(until_ns=until_ns)
        self.machine.flush_idle()

    def run_all(self) -> None:
        self.run()

    def check(self) -> None:
        """Raise the first unobserved simulated-thread crash, if any."""
        for thread in self.crashed_threads:
            if thread.exception is not None:
                raise thread.exception

    # -- small syscall used by the micro-benchmarks --------------------------------------------

    def syscall_nop(self, thread: Thread):
        """Sub-generator: an empty system call (getpid-style, ~34 ns)."""
        yield from thread.syscall(self.costs.SYSCALL_MINWORK)

    def __repr__(self) -> str:
        return (f"<Kernel cpus={self.machine.num_cpus} "
                f"procs={len(self.processes)}>")
