"""The effect protocol between simulated thread bodies and the scheduler.

A thread body is a Python generator. It ``yield``s effect objects; the
scheduler interprets them, advances simulated time on the thread's CPU,
and resumes the generator with a value when appropriate:

* :class:`Charge` — consume CPU time, attributed to a Figure-2 block;
* :class:`BlockThread` — deschedule until someone calls ``thread.wake``;
  the value passed to ``wake`` becomes the result of the ``yield``;
* :class:`YieldCPU` — voluntarily move to the back of the runqueue.

Composite operations (system calls, IPC primitives, dIPC proxies) are
sub-generators used with ``yield from``, so a blocking semaphore wait is
written exactly like straight-line code.
"""

from __future__ import annotations

from repro.sim.stats import Block


class Charge:
    """Consume ``ns`` of CPU time attributed to ``block``."""

    __slots__ = ("ns", "block")

    def __init__(self, ns: float, block: Block = Block.USER):
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        self.ns = ns
        self.block = Block(block)

    def __repr__(self) -> str:
        return f"<Charge {self.ns}ns {self.block.name}>"


class BlockThread:
    """Deschedule the thread until ``thread.wake(value)`` is called.

    ``reason`` is a debugging label ("futex", "pipe-read", "disk", ...).
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason

    def __repr__(self) -> str:
        return f"<BlockThread {self.reason}>"


class YieldCPU:
    """Voluntarily yield the CPU (sched_yield)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<YieldCPU>"


class Handoff:
    """Block this thread and switch the CPU *directly* to another thread,
    delivering ``value`` — L4's direct thread switch, bypassing the
    general scheduler pass (the reason L4 IPC beats POSIX primitives in
    Figure 2). The target must be blocked and runnable on this CPU."""

    __slots__ = ("to", "value")

    def __init__(self, to, value=None):
        self.to = to
        self.value = value

    def __repr__(self) -> str:
        return f"<Handoff to={self.to.name}>"


def charge_user(ns: float):
    """Sub-generator: consume user time (block 1)."""
    yield Charge(ns, Block.USER)


def charge_kernel(ns: float, block: Block = Block.KERNEL):
    """Sub-generator: consume kernel time."""
    yield Charge(ns, block)
