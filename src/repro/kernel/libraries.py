"""Shared-library "virtual copies" for the global virtual address space
(§6.1.3).

dIPC-enabled programs are position-independent; each process maps its
own *virtual copy* of every library it uses, but the code and read-only
data of all copies point at the same physical frames (and therefore the
same cache lines). Writable library data is per-copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.errors import LoaderError
from repro.mem.phys import Frame


@dataclass
class LibraryImage:
    """The canonical (physical) image of one shared library."""

    name: str
    code_frames: List[Frame]
    rodata_frames: List[Frame]
    data_pages: int  # writable template pages, copied per process


@dataclass
class MappedLibrary:
    """One process's virtual copy."""

    library: str
    base: int
    code_pages: int
    rodata_pages: int
    data_pages: int

    @property
    def total_pages(self) -> int:
        return self.code_pages + self.rodata_pages + self.data_pages


class LibraryRegistry:
    """Loads libraries once and maps virtual copies into processes."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._images: Dict[str, LibraryImage] = {}
        self.physical_pages = 0

    def register(self, name: str, *, code_pages: int = 4,
                 rodata_pages: int = 2, data_pages: int = 1,
                 code_bytes: Optional[bytes] = None) -> LibraryImage:
        """Load a library's canonical image into physical memory."""
        if name in self._images:
            raise LoaderError(f"library already registered: {name}")
        code = [self.kernel.phys.alloc() for _ in range(code_pages)]
        if code_bytes:
            view = memoryview(code_bytes)
            for frame in code:
                chunk = view[:units.PAGE_SIZE]
                frame.data[:len(chunk)] = chunk
                view = view[len(chunk):]
        rodata = [self.kernel.phys.alloc() for _ in range(rodata_pages)]
        image = LibraryImage(name, code, rodata, data_pages)
        self._images[name] = image
        self.physical_pages += code_pages + rodata_pages
        return image

    def map_into(self, process, name: str) -> MappedLibrary:
        """Map a virtual copy of ``name`` into ``process``.

        Code and read-only data share the canonical frames (refcounted);
        writable data gets fresh frames. Pages carry the process's
        default domain tag, so the copy is private to its domains even
        though the bytes are shared machine-wide.
        """
        image = self._images.get(name)
        if image is None:
            raise LoaderError(f"no such library: {name}")
        total = (len(image.code_frames) + len(image.rodata_frames)
                 + image.data_pages)
        if process.uses_shared_table:
            base = self.kernel.gvas.suballoc(process.pid,
                                             total * units.PAGE_SIZE)
        else:
            base = process._private_cursor
            process._private_cursor += (total + 1) * units.PAGE_SIZE
        vpn = base // units.PAGE_SIZE
        tag = process.default_tag
        for frame in image.code_frames:
            process.page_table.map_page(vpn, frame=self.kernel.phys.share(
                frame), read=True, write=False, execute=True, tag=tag)
            vpn += 1
        for frame in image.rodata_frames:
            process.page_table.map_page(vpn, frame=self.kernel.phys.share(
                frame), read=True, write=False, tag=tag)
            vpn += 1
        for _ in range(image.data_pages):
            process.page_table.map_page(vpn, read=True, write=True, tag=tag)
            vpn += 1
        process.pages_allocated += total
        return MappedLibrary(name, base, len(image.code_frames),
                             len(image.rodata_frames), image.data_pages)

    def image_of(self, name: str) -> Optional[LibraryImage]:
        return self._images.get(name)
