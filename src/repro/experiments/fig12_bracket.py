"""Figure 12 (repo extension): the new isolation bracket under load.

Figure 11 prices the new mechanisms per call; this figure puts them
under pressure, in two parts:

* **Part A — load sweep** (Figure-9 style): every *in-process*
  primitive (dipc, dpti, odipc — registry ``in_process`` capability)
  behind the ``repro.load`` open-loop harness at
  :data:`REQ_SIZE`-byte requests — deliberately **above** the DMA
  offload threshold, so the copy column Figure 11 decomposes is what
  saturates first.  The knee verdict comes from
  :func:`repro.experiments.fig09_load.verdict_lines` with its default
  registry-derived baseline set, which here resolves to ``dpti``: the
  tagged-PT mechanism is the *bracket floor* the trusted mechanisms
  must clear.

* **Part B — chain compounding** (Figure-10 style): the bracket plus
  the ``socket`` baseline across deepening ``chain-*`` scenarios at
  the latency rung, reusing Figure 10's harness and scenario table.
  Each new primitive must compound past
  :data:`~repro.experiments.fig10_topo.SPEEDUP_FLOOR` over sockets at
  depth ≥ :data:`~repro.experiments.fig10_topo.DEPTH_FLOOR`, exactly
  like dIPC does in Figure 10.

Every point is one :class:`~repro.runner.points.PointSpec`;
``--jobs N``, the result cache, ``--trace``, ``--chaos`` and
``--supervise`` come from the runner for free.
"""

from __future__ import annotations

from typing import Dict, List

from repro import primitives, units
from repro.experiments import fig09_load as fig9
from repro.experiments.fig10_topo import (
    _HARNESS, DEPTH_FLOOR, SPEEDUP_FLOOR, _agg, _cells, scenario_spec)
from repro.hw.costs import CostModel
from repro.topo import mean_ci

#: request size of the load sweep — the DMA offload threshold itself,
#: so the sweep runs exactly where the offload engine starts to matter
REQ_SIZE = CostModel.default().OFFLOAD_THRESHOLD

#: open-loop offered-load ladder, kilo-requests/second
RUNGS = (800.0, 1600.0, 2400.0, 3200.0, 4000.0)
QUICK_RUNGS = (1600.0, 2400.0, 3200.0)

#: Figure 10 chain scenarios reused for the compounding part
CHAIN_SCENARIOS = ("chain-4", "chain-9", "chain-16")
QUICK_CHAIN_SCENARIOS = ("chain-4", "chain-9")

#: latency rung for the chains (Figure 10's comparison rung)
CHAIN_KOPS = 25.0

REPS = 3
QUICK_REPS = 2


def _bracket():
    """The in-process mechanisms, from the registry."""
    return tuple(primitives.names(in_process=True))


def _chain_members():
    """Part B sweeps the bracket plus the socket baseline."""
    return ("socket",) + _bracket()


def points(*, rungs=RUNGS, scenarios=CHAIN_SCENARIOS, reps: int = REPS,
           window_ns: float = 2.0 * units.MS,
           warmup_ns: float = 1.0 * units.MS, seed: int = 42) -> list:
    from repro.runner.points import PointSpec
    specs = []
    for primitive in _bracket():
        for kops in rungs:
            specs.append(PointSpec("fig12", __name__, {
                "part": "load", "primitive": primitive,
                "mode": "open", "policy": "shed",
                "offered_kops": float(kops), "req_size": REQ_SIZE,
                "window_ns": window_ns, "warmup_ns": warmup_ns,
                "seed": seed}))
    for name in scenarios:
        topo = scenario_spec(name).to_dict()
        for primitive in _chain_members():
            for rep in range(reps):
                kwargs = dict(_HARNESS)
                kwargs.update({
                    "part": "chain", "scenario": name, "rep": rep,
                    "primitive": primitive,
                    "offered_kops": CHAIN_KOPS,
                    "window_ns": window_ns, "warmup_ns": warmup_ns,
                    "seed": seed + 101 * rep, "topo": topo})
                specs.append(PointSpec("fig12", __name__, kwargs))
    return specs


def compute_point(**kwargs) -> dict:
    from repro.load import LoadParams, run_load_point
    part = kwargs.pop("part")
    if part == "chain":
        scenario = kwargs.pop("scenario")
        rep = kwargs.pop("rep")
        point = run_load_point(LoadParams(**kwargs)).to_point()
        point["scenario"] = scenario
        point["rep"] = rep
        return point
    return run_load_point(LoadParams(**kwargs)).to_point()


#: pretty names for verdict headlines
_DISPLAY = {"dipc": "dIPC", "odipc": "odIPC"}


def assemble(specs, results) -> str:
    load_specs, load_results = [], []
    chain_specs, chain_results = [], []
    for spec, result in zip(specs, results):
        if spec.kwargs["part"] == "load":
            load_specs.append(spec)
            load_results.append(result)
        else:
            chain_specs.append(spec)
            chain_results.append(result)

    lines = [
        "Figure 12: the new isolation bracket under load and at depth",
        "",
        f"Part A: open-loop sweep at {REQ_SIZE} B requests "
        "(Poisson arrivals, shed policy)",
    ]

    open_points: Dict[str, List[dict]] = {}
    for spec, row in zip(load_specs, load_results):
        open_points.setdefault(spec.kwargs["primitive"], []).append(row)
    for primitive in _bracket():
        rows = open_points.get(primitive, [])
        lines += [
            "",
            f"-- {primitive} " + "-" * (62 - len(primitive)),
            f"{'offered[kops]':>14}{'tput[kops]':>12}{'goodput':>9}"
            f"{'shed':>7}{'p50[us]':>9}{'p99[us]':>9}{'p999[us]':>10}",
        ]
        for row in rows:
            lines.append(
                f"{row['offered_kops']:>14.0f}"
                f"{row['throughput_kops']:>12.1f}"
                f"{row['goodput_ratio']:>9.2f}"
                f"{row['shed']:>7d}"
                f"{row['p50_ns'] / 1e3:>9.1f}"
                f"{row['p99_ns'] / 1e3:>9.1f}"
                f"{row['p999_ns'] / 1e3:>10.1f}")

    knee_by = fig9.knees(open_points)
    lines += [
        "",
        f"saturation knees (highest offered load with goodput >= "
        f"{fig9.KNEE_GOODPUT:.2f}):",
    ]
    for primitive in _bracket():
        lines.append(f"  {primitive:<8}{knee_by[primitive]:>7.0f} kops")
    # default baseline set: registry baselines actually swept = dpti
    lines += fig9.verdict_lines(knee_by)

    # -- Part B ---------------------------------------------------------------
    cells = _cells(chain_specs, chain_results)
    names: List[str] = []
    for spec in chain_specs:
        if spec.kwargs["scenario"] not in names:
            names.append(spec.kwargs["scenario"])
    reps = 1 + max(spec.kwargs["rep"] for spec in chain_specs)

    lines += [
        "",
        f"Part B: chain compounding at {CHAIN_KOPS:.0f} kops "
        f"(p50, mean +- 95% CI over {reps} reps)",
        f"{'scenario':<10}{'depth':>6}" + "".join(
            f"{p + '[us]':>13}" for p in _chain_members()),
        "-" * (16 + 13 * len(_chain_members())),
    ]
    for name in names:
        spec = scenario_spec(name)
        row = f"{name:<10}{spec.depth:>6d}"
        for primitive in _chain_members():
            rows = cells.get((name, primitive, CHAIN_KOPS))
            if not rows:
                row += f"{'-':>13}"
                continue
            p50, ci = _agg(rows, "p50_ns")
            row += f"{p50 / 1e3:>8.1f}+-{ci / 1e3:<4.1f}"
        lines.append(row)

    lines.append("")
    for subject in _bracket():
        best = None    # (speedup, ci, scenario, depth)
        for name in names:
            spec = scenario_spec(name)
            if spec.depth < DEPTH_FLOOR:
                continue
            soc = cells.get((name, "socket", CHAIN_KOPS))
            sub = cells.get((name, subject, CHAIN_KOPS))
            if not soc or not sub:
                continue
            ratios = [s["p50_ns"] / d["p50_ns"]
                      for s, d in zip(soc, sub) if d["p50_ns"] > 0]
            ratio, ratio_ci = mean_ci(ratios)
            if best is None or ratio > best[0]:
                best = (ratio, ratio_ci, name, spec.depth)
        headline = _DISPLAY.get(subject, subject)
        if best is None:
            lines.append(
                f"{headline} compounding: FAIL (no scenario of depth "
                f">= {DEPTH_FLOOR} in the sweep)")
        else:
            ratio, ratio_ci, name, depth = best
            verdict = "PASS" if ratio >= SPEEDUP_FLOOR else "FAIL"
            lines.append(
                f"{headline} compounding: {verdict} ({name}, depth "
                f"{depth}: {ratio:.1f}x +- {ratio_ci:.1f} end-to-end "
                f"vs socket, floor {SPEEDUP_FLOOR:.0f}x)")
    return "\n".join(lines)


def run(quick: bool = False) -> str:
    """Serial in-process path: same decomposition, same rendering."""
    from repro.runner.points import execute_spec
    specs = points(**Fig12Driver.cli_params(quick))
    return assemble(specs, [execute_spec(spec) for spec in specs])


from repro.runner.registry import register_figure  # noqa: E402


@register_figure
class Fig12Driver:
    """The bracket's load + compounding sweep (rides with fig11)."""

    name = "fig12"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        if quick:
            return {"rungs": QUICK_RUNGS,
                    "scenarios": QUICK_CHAIN_SCENARIOS,
                    "reps": QUICK_REPS, "window_ns": 1.0 * units.MS,
                    "warmup_ns": 0.5 * units.MS}
        return {"rungs": RUNGS, "scenarios": CHAIN_SCENARIOS,
                "reps": REPS, "window_ns": 2.0 * units.MS,
                "warmup_ns": 1.0 * units.MS}
