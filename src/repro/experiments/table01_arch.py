"""Table 1: best-case round-trip domain switch + bulk data communication
across architectures."""

from __future__ import annotations

from typing import List

from repro.arch import ArchResult, table1


def run(data_size: int = 1024) -> List[ArchResult]:
    return table1(data_size=data_size)


# -- parallel-runner decomposition (analytic: a single point) ---------------

def points(*, data_size: int = 1024) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("table1", __name__, {"data_size": data_size})]


def compute_point(*, data_size: int) -> list:
    import dataclasses
    return [dataclasses.asdict(row) for row in run(data_size)]


def assemble(specs, results) -> str:
    return render([ArchResult(**row) for row in results[0]])


def render(rows: List[ArchResult]) -> str:
    lines = [
        "Table 1: best-case round-trip domain switch (S) and bulk data "
        "communication (D)",
        "",
        f"{'architecture':<18}{'S [ns]':>9}  {'S: operations':<46}"
        f"{'D [ns/KB]':>10}  D: operations",
        "-" * 118,
    ]
    for row in rows:
        lines.append(f"{row.name:<18}{row.switch_ns:>9.1f}  "
                     f"{row.switch_ops:<46}{row.data_ns_per_kb:>10.1f}  "
                     f"{row.data_ops}")
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Table1Driver:
    """Table 1 under the unified experiment-driver API."""

    name = "table1"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {}
