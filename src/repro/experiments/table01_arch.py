"""Table 1: best-case round-trip domain switch + bulk data communication
across architectures."""

from __future__ import annotations

from typing import List

from repro.arch import ArchResult, table1


def run(data_size: int = 1024) -> List[ArchResult]:
    return table1(data_size=data_size)


def render(rows: List[ArchResult]) -> str:
    lines = [
        "Table 1: best-case round-trip domain switch (S) and bulk data "
        "communication (D)",
        "",
        f"{'architecture':<18}{'S [ns]':>9}  {'S: operations':<46}"
        f"{'D [ns/KB]':>10}  D: operations",
        "-" * 118,
    ]
    for row in rows:
        lines.append(f"{row.name:<18}{row.switch_ns:>9.1f}  "
                     f"{row.switch_ops:<46}{row.data_ns_per_kb:>10.1f}  "
                     f"{row.data_ops}")
    return "\n".join(lines)
