"""Figure 7: bandwidth and latency overheads when isolating the
Infiniband user-level driver with different mechanisms.

Per-driver-call costs come from the same simulations as Figure 5, so the
two figures stay consistent; the NIC itself is the analytic envelope of
``repro.apps.infiniband`` (the paper uses real hardware there — this is
the substitution DESIGN.md documents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.infiniband import (CONFIG_DIPC, CONFIG_DIPC_PROC,
                                   CONFIG_INLINE, CONFIG_KERNEL,
                                   CONFIG_PIPE, CONFIG_SEM,
                                   ISOLATION_CONFIGS, KERNEL_OPS_PER_MSG,
                                   IsolatedDriver, NICModel,
                                   inline_per_call_ns, kernel_per_call_ns)
from repro.apps.netpipe import DEFAULT_SIZES, NetpipeSeries, run_netpipe
from repro.experiments.microbench import (bench_dipc, bench_pipe, bench_sem)


def measure_per_call_costs(iters: int = 30) -> Dict[str, float]:
    """Round-trip cost of one synchronous driver call per mechanism.

    The driver domain trusts the application but not vice versa, so the
    dIPC configurations use the asymmetric Low policy (§7.3: "dIPC uses
    an asymmetric policy between the application and the driver").
    """
    return {
        CONFIG_INLINE: inline_per_call_ns(),
        CONFIG_DIPC: bench_dipc(policy="low", iters=iters).mean_ns,
        CONFIG_DIPC_PROC: bench_dipc(policy="low", cross_process=True,
                                     iters=iters).mean_ns,
        CONFIG_KERNEL: kernel_per_call_ns(),
        CONFIG_SEM: bench_sem(same_cpu=True, iters=iters).mean_ns,
        CONFIG_PIPE: bench_pipe(same_cpu=True, iters=iters).mean_ns,
    }


@dataclass
class Fig7Row:
    config: str
    latency_overhead_pct: Dict[int, float]
    bandwidth_overhead_pct: Dict[int, float]


def run(sizes=DEFAULT_SIZES, iters: int = 30) -> List[Fig7Row]:
    costs = measure_per_call_costs(iters=iters)
    return _rows_from_costs(costs, sizes)


def _rows_from_costs(costs: Dict[str, float], sizes) -> List[Fig7Row]:
    """The analytic netpipe sweep on top of measured per-call costs."""
    nic = NICModel()
    baseline = run_netpipe(nic, IsolatedDriver(CONFIG_INLINE,
                                               costs[CONFIG_INLINE]),
                           sizes)
    rows = []
    for config in ISOLATION_CONFIGS:
        ops = KERNEL_OPS_PER_MSG if config == CONFIG_KERNEL else None
        driver = IsolatedDriver(config, costs[config]) if ops is None \
            else IsolatedDriver(config, costs[config], ops_per_message=ops)
        series = run_netpipe(nic, driver, sizes)
        rows.append(Fig7Row(config,
                            series.latency_overhead_pct(baseline),
                            series.bandwidth_overhead_pct(baseline)))
    return rows


# -- parallel-runner decomposition ------------------------------------------
# Only the four simulated per-call costs are points; the inline/kernel
# costs and the netpipe sweep itself are analytic and stay in assemble.

_BENCH_CONFIGS = (CONFIG_DIPC, CONFIG_DIPC_PROC, CONFIG_SEM, CONFIG_PIPE)


def points(*, iters: int = 30) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("fig7", __name__, {"config": config, "iters": iters})
            for config in _BENCH_CONFIGS]


def compute_point(*, config: str, iters: int) -> dict:
    if config == CONFIG_DIPC:
        result = bench_dipc(policy="low", iters=iters)
    elif config == CONFIG_DIPC_PROC:
        result = bench_dipc(policy="low", cross_process=True, iters=iters)
    elif config == CONFIG_SEM:
        result = bench_sem(same_cpu=True, iters=iters)
    elif config == CONFIG_PIPE:
        result = bench_pipe(same_cpu=True, iters=iters)
    else:
        raise ValueError(config)
    return {"per_call_ns": result.mean_ns}


def assemble(specs, results, *, sizes=DEFAULT_SIZES) -> str:
    measured = {spec.kwargs["config"]: result["per_call_ns"]
                for spec, result in zip(specs, results)}
    costs = {
        CONFIG_INLINE: inline_per_call_ns(),
        CONFIG_DIPC: measured[CONFIG_DIPC],
        CONFIG_DIPC_PROC: measured[CONFIG_DIPC_PROC],
        CONFIG_KERNEL: kernel_per_call_ns(),
        CONFIG_SEM: measured[CONFIG_SEM],
        CONFIG_PIPE: measured[CONFIG_PIPE],
    }
    return render(_rows_from_costs(costs, sizes))


def render(rows: List[Fig7Row]) -> str:
    sizes = sorted(next(iter(rows)).latency_overhead_pct)
    lines = ["Figure 7: overheads of isolating the Infiniband driver "
             "(lower is better)", ""]
    for title, attr in (("latency overhead [%]", "latency_overhead_pct"),
                        ("bandwidth overhead [%]",
                         "bandwidth_overhead_pct")):
        header = f"{'size':>6} | " + " ".join(
            f"{row.config:>10}" for row in rows)
        lines += [title, header, "-" * len(header)]
        for size in sizes:
            cells = " ".join(f"{getattr(row, attr)[size]:>10.1f}"
                             for row in rows)
            lines.append(f"{size:>6} | {cells}")
        lines.append("")
    lines.append("paper: dIPC ~1% latency overhead, kernel driver ~10%, "
                 "IPC >100%; IPC bandwidth overhead >60% at 4KB (we land "
                 "somewhat lower: ~45-50%).")
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Fig7Driver:
    """Figure 7 under the unified experiment-driver API."""

    name = "fig7"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"iters": 10 if quick else 30}
