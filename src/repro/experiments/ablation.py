"""Ablation studies over dIPC's design choices (see DESIGN.md §3).

Each ablation flips one design decision and reports the effect:

* ``tls`` — the proposed cheaper TLS mode (§6.1.2) vs wrfsbase;
* ``policy`` — asymmetric (Low) vs symmetric-worst-case (High) policies;
* ``stubs`` — compiler-co-optimized stubs vs runtime-folded worst case;
* ``tracking`` — hot vs warm vs cold process-tracking paths (§6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.annotations import STUB_COOPT_FACTOR
from repro.experiments.microbench import bench_dipc
from repro.hw.costs import CostModel


@dataclass
class AblationRow:
    name: str
    baseline_ns: float
    variant_ns: float
    note: str

    @property
    def ratio(self) -> float:
        return self.baseline_ns / self.variant_ns if self.variant_ns \
            else 0.0


def tls_ablation(iters: int = 25) -> List[AblationRow]:
    fast = CostModel(TLS_SWITCH=0.0)
    rows = []
    for policy in ("low", "high"):
        base = bench_dipc(policy=policy, cross_process=True, iters=iters)
        optimized = bench_dipc(policy=policy, cross_process=True,
                               iters=iters, costs=fast)
        rows.append(AblationRow(
            f"tls-optimized ({policy})", base.mean_ns, optimized.mean_ns,
            "paper predicts 3.22x (Low) / 1.54x (High)"))
    return rows


def policy_ablation(iters: int = 25) -> AblationRow:
    high = bench_dipc(policy="high", iters=iters)
    low = bench_dipc(policy="low", iters=iters)
    return AblationRow("asymmetric policy", high.mean_ns, low.mean_ns,
                       "paper: up to 8.47x between policies")


def stub_ablation() -> AblationRow:
    costs = CostModel.default()
    folded = costs.STUB_REG_SAVE + costs.STUB_REG_RESTORE \
        + costs.STUB_REG_ZERO + costs.STUB_STACK_CAPS
    optimized = (costs.STUB_REG_SAVE + costs.STUB_REG_RESTORE
                 + costs.STUB_REG_ZERO) / STUB_COOPT_FACTOR \
        + costs.STUB_STACK_CAPS
    return AblationRow("compiler stubs", folded, optimized,
                       "register work ~2.5x cheaper with liveness info")


def tracking_ablation() -> List[AblationRow]:
    costs = CostModel.default()
    hot = costs.TRACK_PROCESS_CALL
    warm = hot + costs.TRACK_TREE_LOOKUP
    cold = costs.TRACK_UPCALL + costs.syscall_empty() + hot
    return [
        AblationRow("tracking warm-vs-hot", warm, hot,
                    "cache-array miss costs a per-thread tree walk"),
        AblationRow("tracking cold-vs-hot", cold, hot,
                    "first contact upcalls into a management thread"),
    ]


def run(iters: int = 25) -> List[AblationRow]:
    rows: List[AblationRow] = []
    rows.extend(tls_ablation(iters))
    rows.append(policy_ablation(iters))
    rows.append(stub_ablation())
    rows.extend(tracking_ablation())
    return rows


# -- parallel-runner decomposition (one point per ablation family) ----------

#: spec order must match run()'s row order
PARTS = ("tls", "policy", "stubs", "tracking")


def points(*, iters: int = 25) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("ablation", __name__, {"part": part, "iters": iters})
            for part in PARTS]


def compute_point(*, part: str, iters: int) -> list:
    if part == "tls":
        rows = tls_ablation(iters)
    elif part == "policy":
        rows = [policy_ablation(iters)]
    elif part == "stubs":
        rows = [stub_ablation()]
    elif part == "tracking":
        rows = tracking_ablation()
    else:
        raise ValueError(part)
    return [{"name": row.name, "baseline_ns": row.baseline_ns,
             "variant_ns": row.variant_ns, "note": row.note}
            for row in rows]


def assemble(specs, results) -> str:
    rows = [AblationRow(**row) for part in results for row in part]
    return render(rows)


def render(rows: List[AblationRow]) -> str:
    lines = [
        "Ablations over dIPC design choices",
        "",
        f"{'ablation':<26}{'baseline':>10}{'variant':>10}{'ratio':>8}"
        f"  note",
        "-" * 96,
    ]
    for row in rows:
        lines.append(f"{row.name:<26}{row.baseline_ns:>8.1f}ns"
                     f"{row.variant_ns:>8.1f}ns{row.ratio:>7.2f}x"
                     f"  {row.note}")
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class AblationDriver:
    """The ablation study under the unified experiment-driver API."""

    name = "ablation"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"iters": 10 if quick else 25}
