"""Figure 6: added execution time of a producer-consumer synchronous call
as the argument size grows (1 B to 1 MB).

The caller writes the argument and the callee reads it in every
configuration, so the figure plots the time *added* by each primitive
over the baseline function call at the same size. Copy-based primitives
(Pipe, RPC) grow with size and fall off the L1/L2 cliffs; Sem. pays one
populate copy; dIPC passes capabilities by reference and stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.microbench import (bench_dipc, bench_dipc_user_rpc,
                                          bench_func, bench_pipe, bench_rpc,
                                          bench_sem, bench_syscall)

#: the x axis: powers of two, 1B .. 1MB (paper: 2^0 .. 2^20)
DEFAULT_SIZES = tuple(4 ** i for i in range(0, 11))  # 1B .. 1MB, sparser

SERIES = ("syscall", "sem_cross_cpu", "pipe_cross_cpu", "rpc_cross_cpu",
          "dipc_low", "dipc_high", "dipc_proc_low", "dipc_proc_high",
          "dipc_user_rpc")


@dataclass
class Fig6Series:
    label: str
    added_ns: Dict[int, float]


def _measure(label: str, size: int, iters: int) -> float:
    if label == "syscall":
        return bench_syscall(iters=iters).mean_ns
    if label == "sem_cross_cpu":
        return bench_sem(same_cpu=False, size=size, iters=iters).mean_ns
    if label == "pipe_cross_cpu":
        return bench_pipe(same_cpu=False, size=size, iters=iters).mean_ns
    if label == "rpc_cross_cpu":
        return bench_rpc(same_cpu=False, size=size, iters=iters).mean_ns
    if label == "dipc_low":
        return bench_dipc(policy="low", size=size, iters=iters).mean_ns
    if label == "dipc_high":
        return bench_dipc(policy="high", size=size, iters=iters).mean_ns
    if label == "dipc_proc_low":
        return bench_dipc(policy="low", cross_process=True, size=size,
                          iters=iters).mean_ns
    if label == "dipc_proc_high":
        return bench_dipc(policy="high", cross_process=True, size=size,
                          iters=iters).mean_ns
    if label == "dipc_user_rpc":
        return bench_dipc_user_rpc(size=size, iters=iters).mean_ns
    raise ValueError(label)


def run(sizes=DEFAULT_SIZES, iters: int = 20) -> List[Fig6Series]:
    baseline = {size: bench_func(size=size, iters=iters).mean_ns
                for size in sizes}
    series = []
    for label in SERIES:
        added = {}
        for size in sizes:
            added[size] = max(_measure(label, size, iters)
                              - baseline[size], 0.0)
        series.append(Fig6Series(label, added))
    return series


def render(series: List[Fig6Series]) -> str:
    sizes = sorted(next(iter(series)).added_ns)
    from repro import units
    header = f"{'size':>8} | " + " ".join(f"{s.label:>15}" for s in series)
    lines = [
        "Figure 6: added execution time vs argument size [ns] "
        "(lower is better)",
        "",
        header,
        "-" * len(header),
    ]
    for size in sizes:
        cells = " ".join(f"{s.added_ns[size]:>15.0f}" for s in series)
        lines.append(f"{units.human_size(size):>8} | {cells}")
    lines += [
        "",
        "expected shape: dIPC flat (capabilities, pass-by-reference); "
        "Sem. ~1 copy; Pipe ~2 copies; RPC ~4 copies;",
        "knees near the L1 (32KB) and L2 (256KB) capacities.",
    ]
    return "\n".join(lines)
