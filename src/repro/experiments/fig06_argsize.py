"""Figure 6: added execution time of a producer-consumer synchronous call
as the argument size grows (1 B to 1 MB).

The caller writes the argument and the callee reads it in every
configuration, so the figure plots the time *added* by each primitive
over the baseline function call at the same size. Copy-based primitives
(Pipe, RPC) grow with size and fall off the L1/L2 cliffs; Sem. pays one
populate copy; dIPC passes capabilities by reference and stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.microbench import (BenchResult, bench_dipc,
                                          bench_dipc_user_rpc, bench_func,
                                          bench_pipe, bench_rpc, bench_sem,
                                          bench_syscall)

#: the x axis: powers of two, 1B .. 1MB (paper: 2^0 .. 2^20)
DEFAULT_SIZES = tuple(4 ** i for i in range(0, 11))  # 1B .. 1MB, sparser

SERIES = ("syscall", "sem_cross_cpu", "pipe_cross_cpu", "rpc_cross_cpu",
          "dipc_low", "dipc_high", "dipc_proc_low", "dipc_proc_high",
          "dipc_user_rpc")


@dataclass
class Fig6Series:
    label: str
    added_ns: Dict[int, float]
    #: (p50, p95, p99) absolute latency per size, from trace.histogram
    tail_ns: Dict[int, Tuple[float, float, float]] = field(
        default_factory=dict)


def _measure(label: str, size: int, iters: int) -> BenchResult:
    if label == "syscall":
        return bench_syscall(iters=iters)
    if label == "sem_cross_cpu":
        return bench_sem(same_cpu=False, size=size, iters=iters)
    if label == "pipe_cross_cpu":
        return bench_pipe(same_cpu=False, size=size, iters=iters)
    if label == "rpc_cross_cpu":
        return bench_rpc(same_cpu=False, size=size, iters=iters)
    if label == "dipc_low":
        return bench_dipc(policy="low", size=size, iters=iters)
    if label == "dipc_high":
        return bench_dipc(policy="high", size=size, iters=iters)
    if label == "dipc_proc_low":
        return bench_dipc(policy="low", cross_process=True, size=size,
                          iters=iters)
    if label == "dipc_proc_high":
        return bench_dipc(policy="high", cross_process=True, size=size,
                          iters=iters)
    if label == "dipc_user_rpc":
        return bench_dipc_user_rpc(size=size, iters=iters)
    raise ValueError(label)


def run(sizes=DEFAULT_SIZES, iters: int = 20) -> List[Fig6Series]:
    baseline = {size: bench_func(size=size, iters=iters).mean_ns
                for size in sizes}
    series = []
    for label in SERIES:
        added = {}
        tail = {}
        for size in sizes:
            result = _measure(label, size, iters)
            added[size] = max(result.mean_ns - baseline[size], 0.0)
            tail[size] = (result.p50_ns, result.p95_ns, result.p99_ns)
        series.append(Fig6Series(label, added, tail))
    return series


# -- parallel-runner decomposition ------------------------------------------
# One baseline point per size plus one point per (series, size) cell.

def points(*, sizes=DEFAULT_SIZES, iters: int = 20) -> list:
    from repro.runner.points import PointSpec
    specs = [PointSpec("fig6", __name__,
                       {"kind": "baseline", "size": size, "iters": iters})
             for size in sizes]
    specs += [PointSpec("fig6", __name__,
                        {"kind": "measure", "label": label, "size": size,
                         "iters": iters})
              for label in SERIES for size in sizes]
    return specs


def compute_point(*, kind: str, size: int, iters: int,
                  label: str = "") -> dict:
    if kind == "baseline":
        return bench_func(size=size, iters=iters).as_point()
    return _measure(label, size, iters).as_point()


def assemble(specs, results) -> str:
    baseline = {}
    measured = {}
    sizes = []
    for spec, result in zip(specs, results):
        kwargs = spec.kwargs
        if kwargs["kind"] == "baseline":
            baseline[kwargs["size"]] = result["mean_ns"]
            sizes.append(kwargs["size"])
        else:
            measured[(kwargs["label"], kwargs["size"])] = result
    series = []
    for label in SERIES:
        added = {}
        tail = {}
        for size in sizes:
            result = measured[(label, size)]
            added[size] = max(result["mean_ns"] - baseline[size], 0.0)
            tail[size] = (result["p50_ns"], result["p95_ns"],
                          result["p99_ns"])
        series.append(Fig6Series(label, added, tail))
    return render(series)


def render(series: List[Fig6Series]) -> str:
    sizes = sorted(next(iter(series)).added_ns)
    from repro import units
    header = f"{'size':>8} | " + " ".join(f"{s.label:>15}" for s in series)
    lines = [
        "Figure 6: added execution time vs argument size [ns] "
        "(lower is better)",
        "",
        header,
        "-" * len(header),
    ]
    for size in sizes:
        cells = " ".join(f"{s.added_ns[size]:>15.0f}" for s in series)
        lines.append(f"{units.human_size(size):>8} | {cells}")
    largest = sizes[-1]
    if any(s.tail_ns for s in series):
        lines += [
            "",
            f"tail latency at {units.human_size(largest)} "
            "[ns, from trace.histogram; p* are absolute, 'added' is "
            "over the baseline call]:",
            f"{'series':<16}{'added':>12}{'p50':>12}"
            f"{'p95':>12}{'p99':>12}",
        ]
        for s in series:
            p50, p95, p99 = s.tail_ns.get(largest, (0.0, 0.0, 0.0))
            lines.append(f"{s.label:<16}{s.added_ns[largest]:>12.0f}"
                         f"{p50:>12.0f}{p95:>12.0f}{p99:>12.0f}")
    lines += [
        "",
        "expected shape: dIPC flat (capabilities, pass-by-reference); "
        "Sem. ~1 copy; Pipe ~2 copies; RPC ~4 copies;",
        "knees near the L1 (32KB) and L2 (256KB) capacities.",
    ]
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Fig6Driver:
    """Figure 6 under the unified experiment-driver API."""

    name = "fig6"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
            DEFAULT_SIZES
        return {"sizes": sizes, "iters": 8 if quick else 20}
