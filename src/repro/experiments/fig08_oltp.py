"""Figure 8: throughput of the dynamic web server — Linux vs dIPC vs
Ideal, on-disk and in-memory, 4 to 512 threads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.oltp import (CONFIGS, DIPC, IDEAL, IN_MEMORY, LINUX,
                             ON_DISK, params_for, run_oltp)
from repro.sim.stats import geometric_mean

DEFAULT_CONCURRENCIES = (4, 16, 64, 256, 512)

#: the paper's speedup annotations over Linux, for EXPERIMENTS.md
PAPER_SPEEDUPS = {
    (ON_DISK, DIPC): {4: 2.23, 16: 3.18, 64: 1.80, 256: 1.39, 512: 1.11},
    (ON_DISK, IDEAL): {4: 2.26, 16: 3.19, 64: 1.84, 256: 1.40, 512: 1.12},
    (IN_MEMORY, DIPC): {4: 2.42, 16: 5.12, 64: 2.62, 256: 1.81, 512: 1.17},
    (IN_MEMORY, IDEAL): {4: 2.49, 16: 5.22, 64: 2.68, 256: 1.92,
                         512: 1.17},
}


@dataclass
class Fig8Result:
    storage: str
    throughput: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def speedup(self, config: str, concurrency: int) -> float:
        return (self.throughput[config][concurrency]
                / self.throughput[LINUX][concurrency])

    def dipc_efficiency(self, concurrency: int) -> float:
        """dIPC throughput as a fraction of Ideal (paper: > 94%)."""
        return (self.throughput[DIPC][concurrency]
                / self.throughput[IDEAL][concurrency])

    def mean_dipc_speedup(self) -> float:
        return geometric_mean(
            self.speedup(DIPC, c) for c in self.throughput[DIPC])


def run(storage: str, concurrencies=DEFAULT_CONCURRENCIES,
        scale: float = 1.0) -> Fig8Result:
    result = Fig8Result(storage)
    for config in CONFIGS:
        result.throughput[config] = {}
        for concurrency in concurrencies:
            r = run_oltp(params_for(config, storage, concurrency,
                                    scale=scale))
            result.throughput[config][concurrency] = r.throughput_ops_min
    return result


def run_both(concurrencies=DEFAULT_CONCURRENCIES,
             scale: float = 1.0) -> Tuple[Fig8Result, Fig8Result]:
    return (run(ON_DISK, concurrencies, scale),
            run(IN_MEMORY, concurrencies, scale))


# -- parallel-runner decomposition ------------------------------------------
# One OLTP simulation per (storage, config, concurrency) triple: the
# dominant cost of a full sweep, and embarrassingly parallel.

def points(*, concurrencies=DEFAULT_CONCURRENCIES, scale: float = 1.0,
           storages=(ON_DISK, IN_MEMORY)) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("fig8", __name__,
                      {"storage": storage, "config": config,
                       "concurrency": concurrency, "scale": scale})
            for storage in storages
            for config in CONFIGS
            for concurrency in concurrencies]


def compute_point(*, storage: str, config: str, concurrency: int,
                  scale: float) -> dict:
    result = run_oltp(params_for(config, storage, concurrency,
                                 scale=scale))
    return {"throughput_ops_min": result.throughput_ops_min}


def assemble(specs, results) -> str:
    by_storage: Dict[str, Fig8Result] = {}
    order = []
    for spec, result in zip(specs, results):
        kwargs = spec.kwargs
        storage = kwargs["storage"]
        if storage not in by_storage:
            by_storage[storage] = Fig8Result(storage)
            order.append(storage)
        table = by_storage[storage].throughput.setdefault(
            kwargs["config"], {})
        table[kwargs["concurrency"]] = result["throughput_ops_min"]
    return "\n\n".join(render(by_storage[storage]) for storage in order)


def render(result: Fig8Result) -> str:
    concurrencies = sorted(result.throughput[LINUX])
    title = ("With on-disk DB" if result.storage == ON_DISK
             else "With in-memory DB")
    lines = [
        f"Figure 8 ({title}): throughput [ops/min], higher is better",
        "",
        f"{'conc.':>6} {'Linux':>10} {'dIPC':>10} {'Ideal':>10} "
        f"{'dIPC x':>8} {'Ideal x':>8} {'paper dIPC x':>13} "
        f"{'dIPC/Ideal':>11}",
        "-" * 74,
    ]
    for c in concurrencies:
        paper = PAPER_SPEEDUPS[(result.storage, DIPC)].get(c)
        paper_str = f"{paper:.2f}x" if paper else "-"
        lines.append(
            f"{c:>6} {result.throughput[LINUX][c]:>10.0f} "
            f"{result.throughput[DIPC][c]:>10.0f} "
            f"{result.throughput[IDEAL][c]:>10.0f} "
            f"{result.speedup(DIPC, c):>7.2f}x "
            f"{result.speedup(IDEAL, c):>7.2f}x {paper_str:>13} "
            f"{result.dipc_efficiency(c):>10.1%}")
    lines += [
        "",
        f"geometric-mean dIPC speedup: {result.mean_dipc_speedup():.2f}x "
        "(paper overall average: 2.13x)",
    ]
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Fig8Driver:
    """Figure 8 under the unified experiment-driver API."""

    name = "fig8"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        concurrencies = (4, 16, 64) if quick else DEFAULT_CONCURRENCIES
        return {"concurrencies": concurrencies,
                "scale": 0.25 if quick else 1.0}
