"""Figure 5: performance of synchronous calls in dIPC and other
primitives, with the paper's speedup multipliers over a function call."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.microbench import BenchResult, fig5_suite
from repro.hw.costs import FIG5_TARGETS_NS

#: bar order of Figure 5, left to right
ORDER = ("func", "syscall", "dipc_low", "dipc_high", "sem_same_cpu",
         "sem_cross_cpu", "pipe_same_cpu", "pipe_cross_cpu",
         "dipc_proc_low", "dipc_proc_high", "rpc_same_cpu",
         "rpc_cross_cpu", "dipc_user_rpc", "l4_same_cpu")


@dataclass
class Fig5Row:
    label: str
    measured_ns: float
    multiplier_over_func: float
    paper_target_ns: float
    error_pct: float
    #: tail latency from trace.histogram (per-iteration distribution)
    p50_ns: float = 0.0
    p95_ns: float = 0.0
    p99_ns: float = 0.0


def run(iters: int = 40) -> List[Fig5Row]:
    suite: Dict[str, BenchResult] = fig5_suite(iters=iters)
    func_ns = suite["func"].mean_ns
    rows = []
    for label in ORDER:
        result = suite[label]
        target = FIG5_TARGETS_NS[label]
        rows.append(Fig5Row(
            label, result.mean_ns, result.mean_ns / func_ns, target,
            (result.mean_ns - target) / target * 100.0,
            result.p50_ns, result.p95_ns, result.p99_ns))
    return rows


# -- parallel-runner decomposition (one point per bar) ----------------------

def points(*, iters: int = 40) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("fig5", __name__, {"label": label, "iters": iters})
            for label in ORDER]


def compute_point(*, label: str, iters: int) -> dict:
    from repro.experiments.microbench import fig5_bench
    return fig5_bench(label, iters=iters).as_point()


def assemble(specs, results) -> str:
    by = {spec.kwargs["label"]: result
          for spec, result in zip(specs, results)}
    func_ns = by["func"]["mean_ns"]
    rows = []
    for label in ORDER:
        result = by[label]
        target = FIG5_TARGETS_NS[label]
        rows.append(Fig5Row(
            label, result["mean_ns"], result["mean_ns"] / func_ns, target,
            (result["mean_ns"] - target) / target * 100.0,
            result["p50_ns"], result["p95_ns"], result["p99_ns"]))
    return render(rows)


from repro.runner.registry import register_figure


@register_figure
class Fig5Driver:
    """Figure 5 under the unified experiment-driver API."""

    name = "fig5"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"iters": 15 if quick else 40}


def headline_ratios(rows: List[Fig5Row]) -> Dict[str, float]:
    by = {row.label: row.measured_ns for row in rows}
    return {
        "dipc_vs_rpc": by["rpc_same_cpu"] / by["dipc_proc_high"],
        "dipc_vs_l4": by["l4_same_cpu"] / by["dipc_proc_high"],
        "policy_spread": by["dipc_high"] / by["dipc_low"],
        "vs_sem": by["sem_same_cpu"] / by["dipc_proc_high"],
        "vs_rpc_low": by["rpc_same_cpu"] / by["dipc_proc_low"],
    }


def render(rows: List[Fig5Row]) -> str:
    lines = [
        "Figure 5: Performance of synchronous calls [ns, log scale in "
        "the paper]",
        "",
        f"{'primitive':<16}{'measured':>10}{'x func':>9}"
        f"{'paper':>10}{'err%':>7}"
        f"{'p50':>10}{'p95':>10}{'p99':>10}",
        "-" * 85,
    ]
    for row in rows:
        lines.append(f"{row.label:<16}{row.measured_ns:>10.1f}"
                     f"{row.multiplier_over_func:>8.0f}x"
                     f"{row.paper_target_ns:>10.1f}{row.error_pct:>+6.1f}%"
                     f"{row.p50_ns:>10.1f}{row.p95_ns:>10.1f}"
                     f"{row.p99_ns:>10.1f}")
    ratios = headline_ratios(rows)
    lines += [
        "",
        f"dIPC vs local RPC : {ratios['dipc_vs_rpc']:.2f}x "
        "(paper: 64.12x)",
        f"dIPC vs L4        : {ratios['dipc_vs_l4']:.2f}x (paper: 8.87x)",
        f"policy spread     : {ratios['policy_spread']:.2f}x "
        "(paper: up to 8.47x)",
        f"vs Sem / vs RPC   : {ratios['vs_sem']:.2f}x / "
        f"{ratios['vs_rpc_low']:.2f}x (paper: 14.16x - 120.67x)",
    ]
    return "\n".join(lines)
