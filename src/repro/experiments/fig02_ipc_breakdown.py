"""Figure 2: time breakdown of traditional IPC primitives.

Reproduces the stacked bars: Sem. (=CPU / ≠CPU), L4 (=CPU / ≠CPU) and
Local RPC (=CPU / ≠CPU), decomposed into the paper's seven blocks. The
paper notes it did not examine breakdowns for L4; we report them anyway
since the simulator gives them for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.microbench import (BenchResult, bench_l4, bench_rpc,
                                          bench_sem)
from repro.sim.stats import Block

#: bars of Figure 2, bottom to top
BARS = ("sem_same_cpu", "sem_cross_cpu", "l4_same_cpu", "l4_cross_cpu",
        "rpc_same_cpu", "rpc_cross_cpu")


@dataclass
class Fig2Row:
    label: str
    total_ns: float
    blocks: Dict[Block, float]


def run(iters: int = 40) -> List[Fig2Row]:
    results: Dict[str, BenchResult] = {
        "sem_same_cpu": bench_sem(same_cpu=True, iters=iters),
        "sem_cross_cpu": bench_sem(same_cpu=False, iters=iters),
        "l4_same_cpu": bench_l4(same_cpu=True, iters=iters),
        "l4_cross_cpu": bench_l4(same_cpu=False, iters=iters),
        "rpc_same_cpu": bench_rpc(same_cpu=True, iters=iters),
        "rpc_cross_cpu": bench_rpc(same_cpu=False, iters=iters),
    }
    rows = []
    for label in BARS:
        result = results[label]
        rows.append(Fig2Row(label, result.mean_ns,
                            dict(result.breakdown.ns)))
    return rows


def render(rows: List[Fig2Row]) -> str:
    lines = [
        "Figure 2: Time breakdown of different IPC primitives [ns]",
        "(function call < 2ns, empty Linux syscall ~ 34ns)",
        "",
        f"{'primitive':<16}{'total':>9} | " + " ".join(
            f"{f'({b.value})':>8}" for b in Block),
        "-" * 90,
    ]
    for row in rows:
        cells = " ".join(f"{row.blocks.get(b, 0.0):>8.0f}" for b in Block)
        lines.append(f"{row.label:<16}{row.total_ns:>9.0f} | {cells}")
    lines += [
        "",
        "blocks: (1) user code  (2) syscall+2xswapgs+sysret  "
        "(3) dispatch trampoline  (4) kernel code",
        "        (5) schedule/ctxt switch  (6) page table switch  "
        "(7) idle/IO wait",
    ]
    return "\n".join(lines)
