"""Figure 2: time breakdown of traditional IPC primitives.

Reproduces the stacked bars: Sem. (=CPU / ≠CPU), L4 (=CPU / ≠CPU) and
Local RPC (=CPU / ≠CPU), decomposed into the paper's seven blocks. The
paper notes it did not examine breakdowns for L4; we report them anyway
since the simulator gives them for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.microbench import (BenchResult, bench_l4, bench_rpc,
                                          bench_sem)
from repro.sim.stats import Block

#: bars of Figure 2, bottom to top
BARS = ("sem_same_cpu", "sem_cross_cpu", "l4_same_cpu", "l4_cross_cpu",
        "rpc_same_cpu", "rpc_cross_cpu")


@dataclass
class Fig2Row:
    label: str
    total_ns: float
    blocks: Dict[Block, float]


def _bench(label: str, iters: int) -> BenchResult:
    family, where = label.rsplit("_", 2)[0], label.endswith("same_cpu")
    if family == "sem":
        return bench_sem(same_cpu=where, iters=iters)
    if family == "l4":
        return bench_l4(same_cpu=where, iters=iters)
    if family == "rpc":
        return bench_rpc(same_cpu=where, iters=iters)
    raise ValueError(label)


def run(iters: int = 40) -> List[Fig2Row]:
    results: Dict[str, BenchResult] = {
        label: _bench(label, iters) for label in BARS}
    rows = []
    for label in BARS:
        result = results[label]
        rows.append(Fig2Row(label, result.mean_ns,
                            dict(result.breakdown.ns)))
    return rows


# -- parallel-runner decomposition (one point per bar) ----------------------

def points(*, iters: int = 40) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("fig2", __name__, {"label": label, "iters": iters})
            for label in BARS]


def compute_point(*, label: str, iters: int) -> dict:
    return _bench(label, iters).as_point()


def assemble(specs, results) -> str:
    rows = [Fig2Row(spec.kwargs["label"], result["mean_ns"],
                    {Block[name]: ns
                     for name, ns in result["blocks"].items()})
            for spec, result in zip(specs, results)]
    return render(rows)


def render(rows: List[Fig2Row]) -> str:
    lines = [
        "Figure 2: Time breakdown of different IPC primitives [ns]",
        "(function call < 2ns, empty Linux syscall ~ 34ns)",
        "",
        f"{'primitive':<16}{'total':>9} | " + " ".join(
            f"{f'({b.value})':>8}" for b in Block),
        "-" * 90,
    ]
    for row in rows:
        cells = " ".join(f"{row.blocks.get(b, 0.0):>8.0f}" for b in Block)
        lines.append(f"{row.label:<16}{row.total_ns:>9.0f} | {cells}")
    lines += [
        "",
        "blocks: (1) user code  (2) syscall+2xswapgs+sysret  "
        "(3) dispatch trampoline  (4) kernel code",
        "        (5) schedule/ctxt switch  (6) page table switch  "
        "(7) idle/IO wait",
    ]
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Fig2Driver:
    """Figure 2 under the unified experiment-driver API."""

    name = "fig2"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"iters": 15 if quick else 40}
