"""Figure 10 (repo extension): end-to-end compounding at topology scale.

Figures 5 and 9 measure one hop. Real deployments chain many: an
N-deep service graph pays the per-hop gap on *every* edge of the
request path, so a constant per-hop advantage compounds into an
order-of-magnitude end-to-end one. This figure sweeps
:mod:`repro.topo` scenarios — the six muBench-style graph patterns at
several sizes — against every primitive and several offered-load
rungs, with each cell repeated across seeded reps and reported as
mean ± 95% CI (:func:`repro.topo.stats.mean_ci`).

Every (scenario, primitive, rung, rep) is one
:class:`~repro.runner.points.PointSpec` whose kwargs embed the
serialized :class:`~repro.topo.spec.TopoSpec` — the graph itself is
part of the cache key, so editing a scenario invalidates exactly its
own points. ``--jobs N``, the result cache, ``--trace``, ``--chaos``
and ``--supervise`` come from the runner for free.

The headline: dIPC's end-to-end p50 speedup over UNIX sockets grows
with graph depth, crossing 5x well before depth 8 (the paper's §7
per-hop advantages, compounded). ``assemble`` states it with the
per-rep confidence interval attached and prints PASS/FAIL.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import units
from repro.load.transports import PRIMITIVES
from repro.topo import TopoSpec, generate, mean_ci

#: the scenario ladder: pattern x size, ordered by depth so the
#: compounding trend reads top to bottom
SCENARIOS = (
    ("fanout-seq-8", "seq_fanout", 8, {}),
    ("fanout-par-8", "par_fanout", 8, {}),
    ("tree-15", "tree", 15, {"width": 2}),
    ("rtree-12", "random_tree", 12, {"seed": 5}),
    ("mesh-12", "mesh", 12, {"width": 3, "seed": 3}),
    ("chain-4", "chain_branch", 4, {}),
    ("chain-8", "chain_branch", 8, {}),
    ("chain-9", "chain_branch", 9, {}),
    ("chain-16", "chain_branch", 16, {}),
)
QUICK_SCENARIOS = ("fanout-par-8", "mesh-12", "chain-4", "chain-9",
                   "chain-16")

#: offered-load ladder, kilo-requests/second; the lowest rung is the
#: latency-comparison rung (baselines not yet fully saturated)
RUNGS = (25.0, 100.0, 400.0)
QUICK_RUNGS = (25.0, 100.0)

REPS = 3
QUICK_REPS = 2

#: end-to-end compounding claim: dIPC >= this over socket at depth >= 8
SPEEDUP_FLOOR = 5.0
DEPTH_FLOOR = 8

#: the latency-under-load harness knobs shared by every cell
_HARNESS = {
    "mode": "open", "policy": "shed", "arrivals": "poisson",
    "n_clients": 4, "n_conns": 8, "n_workers": 2, "queue_depth": 16,
    "req_size": 128, "deadline_ns": 2_000_000.0, "num_cpus": 8,
}


def scenario_spec(name: str) -> TopoSpec:
    """Materialize one named scenario (pure function of the table)."""
    for sname, pattern, n, kwargs in SCENARIOS:
        if sname == name:
            return generate(pattern, n, **kwargs)
    raise KeyError(f"unknown fig10 scenario {name!r}")


def points(*, scenarios: Tuple[str, ...] = None, rungs=RUNGS,
           reps: int = REPS, window_ns: float = 2.0 * units.MS,
           warmup_ns: float = 1.0 * units.MS, seed: int = 42,
           shards: int = None) -> list:
    """``shards`` routes every point through :mod:`repro.shard`'s
    conservative-window coordinator; the partition hash joins the
    kwargs so repartitioning invalidates exactly the cached points it
    affects. ``shards=None`` keeps the original single-engine path."""
    from repro.runner.points import PointSpec
    names = [s[0] for s in SCENARIOS] if scenarios is None \
        else list(scenarios)
    specs = []
    for name in names:
        spec = scenario_spec(name)
        topo = spec.to_dict()
        for primitive in PRIMITIVES:
            for kops in rungs:
                for rep in range(reps):
                    kwargs = dict(_HARNESS)
                    kwargs.update({
                        "scenario": name, "rep": rep,
                        "primitive": primitive,
                        "offered_kops": float(kops),
                        "window_ns": window_ns,
                        "warmup_ns": warmup_ns,
                        "seed": seed + 101 * rep, "topo": topo})
                    if shards is not None:
                        from repro.shard.partition import partition_spec
                        kwargs["shards"] = int(shards)
                        kwargs["partition_hash"] = partition_spec(
                            spec, int(shards),
                            seed=seed + 101 * rep).partition_hash()
                    specs.append(PointSpec("fig10", __name__, kwargs))
    return specs


def compute_point(**kwargs) -> dict:
    scenario = kwargs.pop("scenario")
    rep = kwargs.pop("rep")
    if "shards" in kwargs:
        from repro.shard.runner import POINT_CHECKPOINT, run_shard_point
        shards = kwargs.pop("shards")
        kwargs.pop("partition_hash")
        point = run_shard_point(
            kwargs, shards=shards,
            checkpoint_dir=POINT_CHECKPOINT["dir"],
            resume=POINT_CHECKPOINT["resume"],
            checkpoint_every=POINT_CHECKPOINT["every"])
    else:
        from repro.load import LoadParams, run_load_point
        point = run_load_point(LoadParams(**kwargs)).to_point()
    point["scenario"] = scenario
    point["rep"] = rep
    return point


def _cells(specs, results) -> Dict[tuple, List[dict]]:
    """Group rep rows: (scenario, primitive, rung) -> [row per rep]."""
    cells: Dict[tuple, List[dict]] = {}
    for spec, row in zip(specs, results):
        key = (spec.kwargs["scenario"], spec.kwargs["primitive"],
               spec.kwargs["offered_kops"])
        cells.setdefault(key, []).append(row)
    return cells


def _agg(rows: List[dict], field: str) -> Tuple[float, float]:
    return mean_ci([row[field] for row in rows])


#: pretty names for verdict headlines
_DISPLAY = {"dipc": "dIPC", "odipc": "odIPC"}


def assemble(specs, results, *, subject: str = "dipc",
             baseline: str = "socket") -> str:
    """``subject``/``baseline`` name the primitives the compounding
    verdict compares (defaults: the paper's headline pair); fig12
    reuses this with its own bracket members."""
    cells = _cells(specs, results)
    names = []
    for spec in specs:
        if spec.kwargs["scenario"] not in names:
            names.append(spec.kwargs["scenario"])
    rungs = sorted({spec.kwargs["offered_kops"] for spec in specs})
    reps = 1 + max(spec.kwargs["rep"] for spec in specs)
    low = rungs[0]

    lines = [
        "Figure 10: end-to-end compounding at topology scale "
        f"(open loop, shed policy, {reps} reps, mean +- 95% CI)",
    ]
    for name in names:
        spec = scenario_spec(name)
        lines += [
            "",
            f"-- {name}: {spec.pattern} n={spec.n} depth={spec.depth} "
            f"width={spec.width} edges={len(spec.edges)} "
            f"[{spec.spec_hash()}] " + "-" * max(
                0, 76 - 40 - len(name) - len(spec.pattern)),
            f"{'primitive':<10}{'offered':>8}{'tput[kops]':>11}"
            f"{'goodput':>8}{'p50[us]':>14}{'p99[us]':>9}"
            f"{'p999[us]':>10}",
        ]
        for primitive in PRIMITIVES:
            for kops in rungs:
                rows = cells.get((name, primitive, kops))
                if not rows:
                    continue
                tput, _ = _agg(rows, "throughput_kops")
                good, _ = _agg(rows, "goodput_ratio")
                p50, p50ci = _agg(rows, "p50_ns")
                p99, _ = _agg(rows, "p99_ns")
                p999, _ = _agg(rows, "p999_ns")
                lines.append(
                    f"{primitive:<10}{kops:>8.0f}{tput:>11.1f}"
                    f"{good:>8.2f}"
                    f"{p50 / 1e3:>8.1f}+-{p50ci / 1e3:<4.1f}"
                    f"{p99 / 1e3:>9.1f}{p999 / 1e3:>10.1f}")

    lines += [
        "",
        f"end-to-end p50 speedup vs {baseline} at {low:.0f} kops "
        f"(mean +- 95% CI across {reps} reps):",
        f"{'scenario':<14}{'depth':>6}"
        f"{baseline + ' p50[us]':>16}"
        f"{subject + ' p50[us]':>14}{'speedup':>13}",
        "-" * 63,
    ]
    best = None     # (ci_clears_floor, speedup_mean, ci, name, depth)
    for name in names:
        spec = scenario_spec(name)
        soc = cells.get((name, baseline, low))
        dip = cells.get((name, subject, low))
        if not soc or not dip:
            continue
        # speedup per rep (paired by seed), then mean +- CI of those
        ratios = [s["p50_ns"] / d["p50_ns"]
                  for s, d in zip(soc, dip) if d["p50_ns"] > 0]
        ratio, ratio_ci = mean_ci(ratios)
        soc50, soc_ci = _agg(soc, "p50_ns")
        dip50, dip_ci = _agg(dip, "p50_ns")
        lines.append(
            f"{name:<14}{spec.depth:>6d}"
            f"{soc50 / 1e3:>10.1f}+-{soc_ci / 1e3:<4.1f}"
            f"{dip50 / 1e3:>9.2f}+-{dip_ci / 1e3:<4.2f}"
            f"{ratio:>7.1f}x+-{ratio_ci:<4.1f}")
        if spec.depth >= DEPTH_FLOOR:
            # prefer a scenario whose CI *lower bound* clears the
            # floor (a defensible claim); break ties on the mean
            cand = (ratio - ratio_ci >= SPEEDUP_FLOOR, ratio,
                    ratio_ci, name, spec.depth)
            if best is None or cand[:2] > best[:2]:
                best = cand

    headline = _DISPLAY.get(subject, subject)
    if best is None:
        lines.append(f"{headline} compounding: FAIL (no scenario of "
                     f"depth >= {DEPTH_FLOOR} in the sweep)")
    else:
        _, ratio, ratio_ci, name, depth = best
        verdict = "PASS" if ratio >= SPEEDUP_FLOOR else "FAIL"
        lines.append(
            f"{headline} compounding: {verdict} ({name}, depth {depth}: "
            f"{ratio:.1f}x +- {ratio_ci:.1f} end-to-end vs {baseline}, "
            f"floor {SPEEDUP_FLOOR:.0f}x)")
    return "\n".join(lines)


def run(quick: bool = False) -> str:
    """Serial in-process path: same decomposition, same rendering."""
    from repro.runner.points import execute_spec
    specs = points(**Fig10Driver.cli_params(quick))
    return assemble(specs, [execute_spec(spec) for spec in specs])


from repro.runner.registry import register_figure  # noqa: E402


@register_figure
class Fig10Driver:
    """The topology-scale compounding sweep (tentpole of PR 6)."""

    name = "fig10"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        if quick:
            return {"scenarios": QUICK_SCENARIOS, "rungs": QUICK_RUNGS,
                    "reps": QUICK_REPS, "window_ns": 1.0 * units.MS,
                    "warmup_ns": 0.5 * units.MS}
        return {"scenarios": tuple(s[0] for s in SCENARIOS),
                "rungs": RUNGS, "reps": REPS,
                "window_ns": 2.0 * units.MS,
                "warmup_ns": 1.0 * units.MS}
