"""Extra experiments backing specific in-text claims:

* §5.3.1 — compiler co-optimized stubs (C++ ``try``-style state
  reconstruction) vs setjmp-style register saving: ~2.5× faster;
* §7.5 — sensitivity of dIPC's OLTP win to (a) slower hardware domain
  crossings (break-even near 14×) and (b) worst-case capability
  loads/stores (~12% modeled overhead, still ≥1.59× over Linux).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.apps.oltp import mean_queries_per_op
from repro.core.annotations import STUB_COOPT_FACTOR
from repro.hw.cache import CacheModel
from repro.hw.costs import CostModel


# ---------------------------------------------------------------------------
# §5.3.1: setjmp vs try
# ---------------------------------------------------------------------------

@dataclass
class StubCooptResult:
    setjmp_ns: float
    try_ns: float

    @property
    def speedup(self) -> float:
        return self.setjmp_ns / self.try_ns


def stub_coopt(costs: CostModel = None) -> StubCooptResult:
    """Exception-recovery state preservation around a call: saving every
    register (setjmp) vs compiler reconstruction from constants and stack
    data (C++ try)."""
    costs = costs if costs is not None else CostModel.default()
    setjmp = costs.STUB_REG_SAVE + costs.STUB_REG_RESTORE
    compiled = setjmp / STUB_COOPT_FACTOR
    return StubCooptResult(setjmp, compiled)


# ---------------------------------------------------------------------------
# §7.5: sensitivity analyses
# ---------------------------------------------------------------------------

@dataclass
class CrossingSensitivity:
    calls_per_op: float
    dipc_call_ns: float
    op_cpu_ns: float
    dipc_speedup: float
    breakeven_slowdown: float


def crossing_cost_sensitivity(*, dipc_call_ns: float = 106.9,
                              op_cpu_ns: float = None,
                              dipc_speedup: float = 1.8,
                              costs: CostModel = None
                              ) -> CrossingSensitivity:
    """How much slower could hardware domain crossings get before dIPC's
    OLTP advantage evaporates (paper: up to 14x)?

    The budget is the whole gap between dIPC and Linux per operation; it
    is exhausted when the extra crossing cost equals it.
    """
    from repro.apps.oltp import mean_cpu_per_op_ns
    if op_cpu_ns is None:
        op_cpu_ns = mean_cpu_per_op_ns()
    calls = 2 * (mean_queries_per_op() + 1)  # each RT is two crossings
    # gap per op between Linux and dIPC at the saturated operating point
    gap_ns = op_cpu_ns * (dipc_speedup - 1.0)
    extra_budget_per_call = gap_ns / calls
    breakeven = 1.0 + extra_budget_per_call / dipc_call_ns
    return CrossingSensitivity(calls, dipc_call_ns, op_cpu_ns,
                               dipc_speedup, breakeven)


@dataclass
class CapabilityOverhead:
    cross_domain_access_fraction: float
    cap_load_ns: float
    modeled_overhead_fraction: float
    residual_speedup: float


def capability_load_overhead(*, access_fraction: float = 0.02,
                             accesses_per_cycle: float = 0.25,
                             cap_load_effective_ns: float = 8.0,
                             op_cpu_ns: float = None,
                             dipc_speedup: float = 1.8,
                             costs: CostModel = None) -> CapabilityOverhead:
    """§7.5's worst case: every cross-domain memory access loads an extra
    capability from memory (~2% of accesses in the 256-thread in-memory
    run). The paper models 12% throughput overhead, leaving 1.59x.

    ``cap_load_effective_ns`` is the *cache-weighted* cost of one 32 B
    capability load ("if we account for its average cache hit ratios and
    latencies"), well above the L1-hit CAP_MEM cost.
    """
    costs = costs if costs is not None else CostModel.default()
    if op_cpu_ns is None:
        from repro.apps.oltp import mean_cpu_per_op_ns
        op_cpu_ns = mean_cpu_per_op_ns()
    accesses_per_op = op_cpu_ns * costs.ghz * accesses_per_cycle
    extra = accesses_per_op * access_fraction * cap_load_effective_ns
    overhead = extra / op_cpu_ns
    residual = dipc_speedup / (1.0 + overhead)
    return CapabilityOverhead(access_fraction, cap_load_effective_ns,
                              overhead, residual)


# -- parallel-runner decomposition (analytic: a single point) ---------------

def points() -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("extras", __name__, {})]


def compute_point() -> dict:
    return {"text": render()}


def assemble(specs, results) -> str:
    return results[0]["text"]


def render() -> str:
    coopt = stub_coopt()
    sens = crossing_cost_sensitivity()
    caps = capability_load_overhead()
    return "\n".join([
        "Extra in-text experiments",
        "",
        f"stub co-optimization (setjmp vs try): {coopt.setjmp_ns:.1f}ns "
        f"vs {coopt.try_ns:.1f}ns = {coopt.speedup:.2f}x "
        "(paper: ~2.5x)",
        f"crossing-cost break-even: {sens.breakeven_slowdown:.1f}x "
        f"({sens.calls_per_op:.0f} calls/op) (paper: up to 14x)",
        f"worst-case capability loads: "
        f"{caps.modeled_overhead_fraction:.1%} overhead, residual "
        f"speedup {caps.residual_speedup:.2f}x (paper: 12%, 1.59x)",
    ])


from repro.runner.registry import register_figure


@register_figure
class ExtrasDriver:
    """In-text extras under the unified experiment-driver API."""

    name = "extras"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {}
