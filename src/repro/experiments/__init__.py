"""Experiment drivers: one module per paper table/figure.

Run them all (or one) from the command line::

    python -m repro.experiments            # everything
    python -m repro.experiments fig5 fig7  # a subset

Module map: fig01_breakdown, fig02_ipc_breakdown, table01_arch,
fig05_sync_calls, fig06_argsize, fig07_driver, fig08_oltp, extras,
plus the shared micro-benchmark drivers in ``microbench``.
"""

from repro.experiments.microbench import (BenchResult, bench_dipc,
                                          bench_dipc_user_rpc, bench_func,
                                          bench_l4, bench_pipe, bench_rpc,
                                          bench_sem, bench_syscall,
                                          fig5_suite)

__all__ = [
    "BenchResult", "bench_dipc", "bench_dipc_user_rpc", "bench_func",
    "bench_l4", "bench_pipe", "bench_rpc", "bench_sem", "bench_syscall",
    "fig5_suite",
]
