"""Figure 11 (repo extension): per-call cost of every isolation primitive.

Figure 5 compares the paper's five mechanisms at one argument size;
this figure sweeps all *seven* registered primitives — the five
process-switching baselines plus the two new bracketing mechanisms —
across argument sizes, and renders a Figure-2-style block
decomposition next to each latency so the sweep explains *where* each
mechanism spends its time:

* **dpti** — tagged-page-table domain switching (PCID-tagged CR3
  swaps, no TLB flush): cheaper than any process switch because the
  scheduler never runs, dearer than dIPC because every call still
  crosses the kernel and copies its argument twice;
* **odipc** — dIPC whose bulk argument copy is submitted to a DMA
  offload engine above :data:`~repro.hw.costs.CostModel.
  OFFLOAD_THRESHOLD`; below the threshold it is byte-identical to
  dIPC, above it the copy column shrinks to the non-overlapped
  remainder of the DMA transfer.

Every (primitive, size) pair is one
:class:`~repro.runner.points.PointSpec`, so ``--jobs N``, the result
cache, ``--trace``, ``--chaos`` and ``--supervise`` come from the
runner for free.

``assemble`` checks three claims and prints PASS/FAIL for each: the
per-call ordering (every process-switch baseline > dpti > dIPC) holds
at every size; odIPC ≤ dIPC at and above the offload threshold (and
is identical below it); and the rendered block columns sum to the
reported busy totals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import primitives
from repro.hw.costs import CostModel
from repro.experiments.microbench import (
    DEFAULT_ITERS, DEFAULT_WARMUP, STUB_NS, _Harness, _fresh_kernel,
    bench_dipc, bench_pipe, bench_rpc)
from repro.ipc.dpti import DptiEndpoint, copy_gate_ns
from repro.ipc.l4 import L4Endpoint
from repro.ipc.unixsocket import SOCK_BUF_SIZE, SocketNamespace
from repro.sim.stats import Block

#: argument-size sweep, bytes; 16384 is the DMA offload threshold
SIZES = (64, 1024, 16384, 65536)
QUICK_SIZES = (64, 16384)

#: the Figure-2 decomposition columns (IDLE is clamped noise on the
#: benches' pinned CPUs and is excluded from the busy total)
_COLUMNS = (Block.USER, Block.SYSCALL, Block.TRAMPOLINE, Block.KERNEL,
            Block.SCHED, Block.PTSW)


# ---------------------------------------------------------------------------
# benches the microbench module does not already provide
# ---------------------------------------------------------------------------

def bench_socket(*, size: int = 1, iters: int = DEFAULT_ITERS,
                 warmup: int = DEFAULT_WARMUP):
    """Datagram ping-pong over two bound UNIX sockets (same CPU)."""
    kernel = _fresh_kernel(2)
    costs = kernel.costs
    harness = _Harness(kernel, "socket", warmup=warmup, iters=iters)
    namespace = SocketNamespace()
    server_proc = kernel.spawn_process("sock-server")
    client_proc = kernel.spawn_process("sock-client")
    bufsize = max(4 * size, SOCK_BUF_SIZE)
    request = namespace.socket(kernel, bufsize=bufsize)
    request.bind("/fig11/req")
    request.bind_owner(server_proc)
    reply = namespace.socket(kernel, bufsize=bufsize)
    reply.bind("/fig11/rep")
    reply.bind_owner(client_proc)

    def server(t):
        while True:
            yield from request.recvfrom(t)
            yield t.compute(STUB_NS + costs.TOUCH_ARG)
            yield from request.sendto(t, "/fig11/rep", 1, payload="ack")

    def iteration(t):
        yield t.compute(STUB_NS + costs.TOUCH_ARG)
        yield from reply.sendto(t, "/fig11/req", size, payload="ping")
        yield from reply.recvfrom(t)

    kernel.spawn(server_proc, server, pin=0, name="sock-srv", daemon=True)
    kernel.spawn(client_proc, harness.caller_body(iteration), pin=0,
                 name="sock-cli")
    kernel.run()
    kernel.check()
    return harness.result()


def bench_l4(*, size: int = 1, iters: int = DEFAULT_ITERS,
             warmup: int = DEFAULT_WARMUP):
    """L4-style direct-switch IPC with a long-IPC argument copy: the
    kernel copies ``size`` bytes on the request leg (and the one-byte
    ack back), and each side touches the argument once."""
    kernel = _fresh_kernel(2)
    costs = kernel.costs
    cache = kernel.machine.cache
    harness = _Harness(kernel, "l4", warmup=warmup, iters=iters)
    client_proc = kernel.spawn_process("l4-client")
    server_proc = kernel.spawn_process("l4-server")
    endpoint = L4Endpoint(kernel)
    request_copy = copy_gate_ns(costs, cache, size)
    reply_copy = copy_gate_ns(costs, cache, 1)

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        while True:
            if size > 1:
                yield t.compute(cache.touch_ns(size))     # callee reads
            caller, msg = yield from endpoint.reply_and_wait(t, caller,
                                                             "ack")

    def iteration(t):
        if size > 1:
            yield t.compute(cache.touch_ns(size))         # caller writes
        yield t.kwork(request_copy, Block.KERNEL)         # long IPC in
        yield from endpoint.call(t, "ping")
        yield t.kwork(reply_copy, Block.KERNEL)           # ack out

    kernel.spawn(server_proc, server, pin=0, name="l4-srv", daemon=True)
    kernel.spawn(client_proc, harness.caller_body(iteration), pin=0,
                 name="l4-cli")
    kernel.run()
    kernel.check()
    return harness.result()


def bench_dpti(*, size: int = 1, iters: int = DEFAULT_ITERS,
               warmup: int = DEFAULT_WARMUP):
    """Tagged-page-table domain call: the endpoint charges the kernel
    entry, both argument copies and the two PCID-tagged CR3 swaps; the
    handler runs on the caller's thread in the owner's domain."""
    kernel = _fresh_kernel(1)
    cache = kernel.machine.cache
    harness = _Harness(kernel, "dpti", warmup=warmup, iters=iters)
    server_proc = kernel.spawn_process("dpti-server")
    client_proc = kernel.spawn_process("dpti-client")

    def handler(t, payload):
        if size > 1:
            yield t.compute(cache.touch_ns(size))         # callee reads
        else:
            yield t.compute(0.0)
        return "ack"

    endpoint = DptiEndpoint(kernel, handler)
    endpoint.bind_owner(server_proc)

    def iteration(t):
        if size > 1:
            yield t.compute(cache.touch_ns(size))         # caller writes
        yield from endpoint.call(t, "ping", size=size, reply_size=1)

    kernel.spawn(client_proc, harness.caller_body(iteration), pin=0,
                 name="dpti-cli")
    kernel.run()
    kernel.check()
    return harness.result()


def bench_odipc(*, size: int = 1, iters: int = DEFAULT_ITERS,
                warmup: int = DEFAULT_WARMUP):
    """dIPC with the bulk copy submitted to the DMA offload engine: at
    and above the threshold the callee's inline read is replaced by
    the non-overlapped remainder of the DMA transfer; below it the
    bench is byte-identical to the dIPC one."""
    costs = CostModel.default()
    if size >= costs.OFFLOAD_THRESHOLD:
        callee_read: Optional[float] = costs.offload_copy_ns(size)
    else:
        callee_read = None                 # same inline read as dipc
    return bench_dipc(policy="high", cross_process=True, size=size,
                      iters=iters, warmup=warmup,
                      callee_read_ns=callee_read, label="odipc")


#: primitive -> sized bench builder; the registry is the source of
#: truth for *which* mechanisms exist, this maps each to its bench
_BENCHES = {
    "pipe": lambda size, iters, warmup: bench_pipe(
        same_cpu=True, size=size, iters=iters, warmup=warmup),
    "socket": lambda size, iters, warmup: bench_socket(
        size=size, iters=iters, warmup=warmup),
    "rpc": lambda size, iters, warmup: bench_rpc(
        same_cpu=True, size=size, iters=iters, warmup=warmup),
    "l4": lambda size, iters, warmup: bench_l4(
        size=size, iters=iters, warmup=warmup),
    "dipc": lambda size, iters, warmup: bench_dipc(
        policy="high", cross_process=True, size=size, iters=iters,
        warmup=warmup, label="dipc"),
    "dpti": lambda size, iters, warmup: bench_dpti(
        size=size, iters=iters, warmup=warmup),
    "odipc": lambda size, iters, warmup: bench_odipc(
        size=size, iters=iters, warmup=warmup),
}


def _check_coverage() -> None:
    missing = [p for p in primitives.names() if p not in _BENCHES]
    if missing:
        raise RuntimeError(
            f"fig11 has no bench for registered primitive(s) "
            f"{', '.join(missing)}; add them to _BENCHES")


def points(*, sizes: Tuple[int, ...] = SIZES,
           iters: int = DEFAULT_ITERS,
           warmup: int = DEFAULT_WARMUP) -> list:
    from repro.runner.points import PointSpec
    _check_coverage()
    return [PointSpec("fig11", __name__, {
                "primitive": primitive, "size": int(size),
                "iters": iters, "warmup": warmup})
            for size in sizes
            for primitive in primitives.names()]


def compute_point(*, primitive: str, size: int, iters: int,
                  warmup: int) -> dict:
    _check_coverage()
    return _BENCHES[primitive](size, iters, warmup).as_point()


# ---------------------------------------------------------------------------
# rendering + verdicts
# ---------------------------------------------------------------------------

#: pretty names for verdict headlines
_DISPLAY = {"dipc": "dIPC", "odipc": "odIPC"}

#: the bracket members the ordering verdict names explicitly (their
#: capabilities cannot tell the offload variant from plain dIPC)
_TAGGED = "dpti"
_SUBJECT = "dipc"
_OFFLOAD = "odipc"


def _busy_total(row: dict) -> float:
    return sum(row["blocks"].get(block.name, 0.0) for block in _COLUMNS)


def assemble(specs, results) -> str:
    rows: Dict[tuple, dict] = {}
    sizes: List[int] = []
    for spec, result in zip(specs, results):
        size = spec.kwargs["size"]
        rows[(size, spec.kwargs["primitive"])] = result
        if size not in sizes:
            sizes.append(size)
    mechs = [p for p in primitives.names()
             if any((size, p) in rows for size in sizes)]
    baselines = [p for p in primitives.names(in_process=False)
                 if p in mechs]
    threshold = CostModel.default().OFFLOAD_THRESHOLD

    lines = [
        "Figure 11: per-call latency and block decomposition across "
        "isolation primitives",
        f"(synchronous ping-pong, same CPU; DMA offload threshold "
        f"{threshold} B)",
    ]
    for size in sizes:
        lines += [
            "",
            f"-- argument size {size} B " + "-" * max(0, 53 - len(str(size))),
            f"{'primitive':<10}{'mean[ns]':>11}{'p95[ns]':>10}"
            + "".join(f"{block.name:>9}" for block in _COLUMNS)
            + f"{'total':>10}",
        ]
        for primitive in mechs:
            row = rows.get((size, primitive))
            if row is None:
                continue
            cols = "".join(
                f"{row['blocks'].get(block.name, 0.0):>9.1f}"
                for block in _COLUMNS)
            lines.append(
                f"{primitive:<10}{row['mean_ns']:>11.1f}"
                f"{row['p95_ns']:>10.1f}{cols}"
                f"{_busy_total(row):>10.1f}")

    # -- claim 1: process-switch baselines > dpti > dipc at every size
    lines.append("")
    ordering_ok = True
    detail = []
    for size in sizes:
        best_base = min(baselines,
                        key=lambda p: rows[(size, p)]["mean_ns"])
        base_ns = rows[(size, best_base)]["mean_ns"]
        dpti_ns = rows[(size, _TAGGED)]["mean_ns"]
        dipc_ns = rows[(size, _SUBJECT)]["mean_ns"]
        ok = base_ns > dpti_ns > dipc_ns
        ordering_ok = ordering_ok and ok
        detail.append(
            f"  size {size:>6} B: best baseline {best_base} "
            f"{base_ns:.1f} > dpti {dpti_ns:.1f} > dipc "
            f"{dipc_ns:.1f}" + ("" if ok else "  <-- violated"))
    lines.append(
        "per-call ordering (every process-switch baseline > dpti > "
        f"dIPC): {'PASS' if ordering_ok else 'FAIL'}")
    lines += detail

    # -- claim 2: the offload engine wins at and above the threshold
    crossover_ok = True
    detail = []
    for size in sizes:
        dipc_ns = rows[(size, _SUBJECT)]["mean_ns"]
        odipc_ns = rows[(size, _OFFLOAD)]["mean_ns"]
        if size >= threshold:
            ok = odipc_ns <= dipc_ns
            relation = "<="
        else:
            ok = abs(odipc_ns - dipc_ns) < 1e-9
            relation = "=="
        crossover_ok = crossover_ok and ok
        detail.append(
            f"  size {size:>6} B: odipc {odipc_ns:.1f} {relation} dipc "
            f"{dipc_ns:.1f}" + ("" if ok else "  <-- violated"))
    headline = _DISPLAY.get(_OFFLOAD, _OFFLOAD)
    lines.append(
        f"offload crossover ({headline} <= dIPC at size >= {threshold} "
        f"B, identical below): "
        f"{'PASS' if crossover_ok else 'FAIL'}")
    lines += detail

    # -- claim 3: the six rendered columns explain the whole busy
    # total — no block outside them carries time
    drift = 0.0
    span_ok = True
    for row in rows.values():
        busy = _busy_total(row)
        total = sum(ns for name, ns in row["blocks"].items()
                    if name != Block.IDLE.name)
        if abs(busy - total) > 1e-6:
            span_ok = False
        drift = max(drift, abs(busy - total))
    lines.append(
        "decomposition: block columns sum to the reported busy totals: "
        f"{'PASS' if span_ok else 'FAIL'} (max drift {drift:.2f} ns)")
    return "\n".join(lines)


def run(quick: bool = False) -> str:
    """Serial in-process path: same decomposition, same rendering."""
    from repro.runner.points import execute_spec
    specs = points(**Fig11Driver.cli_params(quick))
    return assemble(specs, [execute_spec(spec) for spec in specs])


from repro.runner.registry import register_figure  # noqa: E402


@register_figure
class Fig11Driver:
    """The isolation-primitive argument-size sweep (tentpole of PR 9)."""

    name = "fig11"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        if quick:
            return {"sizes": QUICK_SIZES, "iters": 10}
        return {"sizes": SIZES, "iters": DEFAULT_ITERS}
