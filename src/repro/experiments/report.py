"""Generate a single markdown report with every reproduced table/figure.

``python -m repro.experiments report`` writes ``REPORT.md`` in the
current directory (or pass a path programmatically via :func:`generate`),
plus a ``REPORT.meta.json`` sidecar with the full run metadata. The
report header embeds the metadata summary (commit, cost-constants hash,
quick/full mode) so reports from different PRs are comparable at a
glance.

The report body is a pure function of the section parameterization and
the cost model — no timestamps, no wall-clock — so a serial run, a
``--jobs N`` run and a warm-cache run of the same tree produce
byte-identical files (pinned by ``tests/runner`` and diffed in CI).
Sections appear in :data:`SECTION_ORDER`, the paper's presentation
order; results are merged back by position regardless of which worker
finished first.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.trace import meta as trace_meta

#: canonical section order: (markdown title, registry/experiment name).
#: This tuple — not dict insertion order, not completion order — is the
#: single source of section ordering (pinned by
#: ``tests/runner/test_report_order.py``).
SECTION_ORDER: Tuple[Tuple[str, str], ...] = (
    ("Table 1", "table1"),
    ("Figure 2", "fig2"),
    ("Figure 5", "fig5"),
    ("Figure 6", "fig6"),
    ("Figure 7", "fig7"),
    ("Figure 1", "fig1"),
    ("Figure 8", "fig8"),
    ("Figure 9", "fig9"),
    ("Figure 10", "fig10"),
    ("Figure 11", "fig11"),
    ("Figure 12", "fig12"),
    ("In-text extras", "extras"),
)


def _section_params(name: str, quick: bool) -> dict:
    """The report's own parameterization (differs from the CLI's:
    e.g. fig8 runs at scale 0.3 here vs 0.25 on the quick CLI path)."""
    from repro.experiments import fig06_argsize
    iters = 15 if quick else 40
    scale = 0.3 if quick else 1.0
    if name == "table1":
        return {}
    if name == "fig2":
        return {"iters": iters}
    if name == "fig5":
        return {"iters": iters}
    if name == "fig6":
        sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
            fig06_argsize.DEFAULT_SIZES
        return {"sizes": sizes, "iters": max(iters // 2, 6)}
    if name == "fig7":
        return {"iters": iters}
    if name == "fig1":
        return {"concurrency": 64 if quick else 256, "scale": scale}
    if name == "fig8":
        concurrencies = (4, 16, 64) if quick else (4, 16, 64, 256, 512)
        return {"concurrencies": concurrencies, "scale": scale}
    if name in ("fig9", "fig10", "fig11", "fig12"):
        # the load/topology/isolation sweeps share the CLI's
        # parameterization — their points then hit the same cache as
        # `run fig9`/`run fig10`/`run fig11`/`run fig12`
        from repro.runner import registry
        return registry.cli_params(name, quick)
    if name == "extras":
        return {}
    raise KeyError(name)


def _section_specs(quick: bool) -> List[tuple]:
    """``(title, name, specs)`` per section, in canonical order."""
    from repro.runner import registry
    out = []
    for title, name in SECTION_ORDER:
        module = registry._module(name)
        out.append((title, name,
                    module.points(**_section_params(name, quick))))
    return out


def generate(path: str = "REPORT.md", *, quick: bool = True,
             jobs: int = 1, cache=None, checkpoint=None,
             resume: bool = False, timeout_s=None,
             retries: int = 2) -> str:
    """Run every experiment and write a markdown report; returns path.

    ``jobs > 1`` fans the underlying simulation points out across a
    process pool; ``cache`` (a ``repro.runner.cache.ResultCache``)
    reuses previously computed points. ``checkpoint``/``resume`` journal
    per-point progress so an interrupted generation can be resumed (see
    ``repro.recovery.checkpoint``). All of these are output-invariant:
    the written file is byte-identical to the default serial run.
    """
    from repro.runner import registry
    from repro.runner.pool import run_points, summary

    section_specs = _section_specs(quick)
    flat = [spec for _title, _name, specs in section_specs
            for spec in specs]
    flat_results, stats = run_points(flat, jobs=jobs, cache=cache,
                                     checkpoint=checkpoint,
                                     resume=resume, timeout_s=timeout_s,
                                     retries=retries)

    sections = []
    cursor = 0
    for title, name, specs in section_specs:
        results = flat_results[cursor:cursor + len(specs)]
        cursor += len(specs)
        body = registry.assemble(name, specs, results)
        sections.append(f"## {title}\n\n```\n{body}\n```\n")

    iters = 15 if quick else 40
    scale = 0.3 if quick else 1.0
    concurrencies = (4, 16, 64) if quick else (4, 16, 64, 256, 512)
    meta = trace_meta.collect_meta(
        experiment="report", quick=quick,
        params={"iters": iters, "scale": scale,
                "concurrencies": list(concurrencies)})
    meta_path = (path[:-3] if path.endswith(".md") else path) + ".meta.json"
    trace_meta.write_meta(meta_path, meta)
    # the header must stay deterministic (no timestamps, no elapsed
    # time): CI byte-compares serial vs parallel vs cached reports.
    # timestamp/platform live in the meta.json sidecar.
    sha = meta.get("git_sha", "unknown")
    if sha not in ("", "unknown"):
        dirty = sha.endswith("-dirty")
        sha = sha.split("-", 1)[0][:12] + ("-dirty" if dirty else "")
    header = (
        "# dIPC reproduction report\n\n"
        "Auto-generated by `python -m repro.experiments report` "
        f"({'quick' if quick else 'full'} mode).\n"
        "See EXPERIMENTS.md for the paper-vs-measured discussion.\n\n"
        f"> commit {sha} · costs {meta.get('constants_hash', '?')} · "
        f"python {meta.get('python', '?')}\n"
        f"> full metadata: `{meta_path}`\n\n")
    with open(path, "w") as handle:
        handle.write(header + "\n".join(sections))
    if jobs > 1 or cache is not None or stats.resumed:
        print(summary(stats))
    return path
