"""Command-line entry point regenerating the paper's tables and figures.

``python -m repro.experiments [names...] [--quick]``

Names: table1, fig1, fig2, fig5, fig6, fig7, fig8, extras, all.
``--quick`` shrinks iteration counts and OLTP windows (for smoke runs).
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_table1(quick: bool) -> str:
    from repro.experiments import table01_arch
    return table01_arch.render(table01_arch.run())


def _run_fig1(quick: bool) -> str:
    from repro.experiments import fig01_breakdown
    return fig01_breakdown.render(
        fig01_breakdown.run(concurrency=64 if quick else 256,
                            scale=0.3 if quick else 1.0))


def _run_fig2(quick: bool) -> str:
    from repro.experiments import fig02_ipc_breakdown
    return fig02_ipc_breakdown.render(
        fig02_ipc_breakdown.run(iters=15 if quick else 40))


def _run_fig5(quick: bool) -> str:
    from repro.experiments import fig05_sync_calls
    return fig05_sync_calls.render(
        fig05_sync_calls.run(iters=15 if quick else 40))


def _run_fig6(quick: bool) -> str:
    from repro.experiments import fig06_argsize
    sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
        fig06_argsize.DEFAULT_SIZES
    return fig06_argsize.render(
        fig06_argsize.run(sizes=sizes, iters=8 if quick else 20))


def _run_fig7(quick: bool) -> str:
    from repro.experiments import fig07_driver
    return fig07_driver.render(
        fig07_driver.run(iters=10 if quick else 30))


def _run_fig8(quick: bool) -> str:
    from repro.experiments import fig08_oltp
    concurrencies = (4, 16, 64) if quick else \
        fig08_oltp.DEFAULT_CONCURRENCIES
    scale = 0.25 if quick else 1.0
    on_disk = fig08_oltp.run("on-disk", concurrencies, scale)
    in_mem = fig08_oltp.run("in-memory", concurrencies, scale)
    return (fig08_oltp.render(on_disk) + "\n\n"
            + fig08_oltp.render(in_mem))


def _run_extras(quick: bool) -> str:
    from repro.experiments import extras
    return extras.render()


def _run_ablation(quick: bool) -> str:
    from repro.experiments import ablation
    return ablation.render(ablation.run(iters=10 if quick else 25))


def _run_report(quick: bool) -> str:
    from repro.experiments import report
    path = report.generate(quick=quick)
    return f"report written to {path}"


RUNNERS = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "extras": _run_extras,
    "ablation": _run_ablation,
    "report": _run_report,
}

#: "all" runs every figure/table but not the aggregate report
DEFAULT_SET = [name for name in RUNNERS if name != "report"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the dIPC paper's tables and figures.")
    parser.add_argument("names", nargs="*", default=["all"],
                        help=f"which experiments: {', '.join(RUNNERS)}, "
                             "or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts / windows")
    args = parser.parse_args(argv)
    names = DEFAULT_SET if (not args.names or "all" in args.names) \
        else args.names
    for name in names:
        runner = RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment '{name}' "
                  f"(choose from {', '.join(RUNNERS)})", file=sys.stderr)
            return 2
        start = time.time()
        print(f"\n{'=' * 78}\n{name}\n{'=' * 78}")
        print(runner(args.quick))
        print(f"\n[{name} took {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
