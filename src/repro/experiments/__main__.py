"""Command-line entry point regenerating the paper's tables and figures.

``python -m repro.experiments [names...] [--quick]``

Names: table1, fig1, fig2, fig5, fig6, fig7, fig8, extras, all.
``--quick`` shrinks iteration counts and OLTP windows (for smoke runs).

``python -m repro.experiments trace <name> [--quick] [--out DIR]`` runs
one experiment with span tracing on and writes ``trace.json`` (Chrome
trace-event format, loadable at https://ui.perfetto.dev), ``spans.csv``
and ``meta.json`` into DIR (default: the current directory).

``python -m repro.experiments chaos --seed N --storms K [--quick]
[--out DIR]`` runs K deterministic fault-injection storms (see
``repro.fault``), writes the injection log to DIR/chaos.log, re-runs the
whole set to verify the log is byte-identical for the same seed, and
exits non-zero on any invariant violation or determinism failure.
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _run_table1(quick: bool) -> str:
    from repro.experiments import table01_arch
    return table01_arch.render(table01_arch.run())


def _run_fig1(quick: bool) -> str:
    from repro.experiments import fig01_breakdown
    return fig01_breakdown.render(
        fig01_breakdown.run(concurrency=64 if quick else 256,
                            scale=0.3 if quick else 1.0))


def _run_fig2(quick: bool) -> str:
    from repro.experiments import fig02_ipc_breakdown
    return fig02_ipc_breakdown.render(
        fig02_ipc_breakdown.run(iters=15 if quick else 40))


def _run_fig5(quick: bool) -> str:
    from repro.experiments import fig05_sync_calls
    return fig05_sync_calls.render(
        fig05_sync_calls.run(iters=15 if quick else 40))


def _run_fig6(quick: bool) -> str:
    from repro.experiments import fig06_argsize
    sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
        fig06_argsize.DEFAULT_SIZES
    return fig06_argsize.render(
        fig06_argsize.run(sizes=sizes, iters=8 if quick else 20))


def _run_fig7(quick: bool) -> str:
    from repro.experiments import fig07_driver
    return fig07_driver.render(
        fig07_driver.run(iters=10 if quick else 30))


def _run_fig8(quick: bool) -> str:
    from repro.experiments import fig08_oltp
    concurrencies = (4, 16, 64) if quick else \
        fig08_oltp.DEFAULT_CONCURRENCIES
    scale = 0.25 if quick else 1.0
    on_disk = fig08_oltp.run("on-disk", concurrencies, scale)
    in_mem = fig08_oltp.run("in-memory", concurrencies, scale)
    return (fig08_oltp.render(on_disk) + "\n\n"
            + fig08_oltp.render(in_mem))


def _run_extras(quick: bool) -> str:
    from repro.experiments import extras
    return extras.render()


def _run_ablation(quick: bool) -> str:
    from repro.experiments import ablation
    return ablation.render(ablation.run(iters=10 if quick else 25))


def _run_report(quick: bool) -> str:
    from repro.experiments import report
    path = report.generate(quick=quick)
    return f"report written to {path}"


def _run_chaos(quick: bool) -> str:
    from repro.fault import chaos
    report = chaos.run_chaos(7, 2 if quick else 5, quick=quick)
    return chaos.render(report)


RUNNERS = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "extras": _run_extras,
    "ablation": _run_ablation,
    "report": _run_report,
    "chaos": _run_chaos,
}

#: "all" runs every figure/table but not the aggregate report or the
#: chaos smoke (those have their own invocations)
DEFAULT_SET = [name for name in RUNNERS
               if name not in ("report", "chaos")]


def _normalize(name: str) -> str:
    """Accept zero-padded figure names: fig05 → fig5, fig08 → fig8."""
    if name.startswith("fig0") and len(name) == 5:
        return "fig" + name[4]
    return name


def _run_traced(name: str, quick: bool, out_dir: str) -> int:
    """Run one experiment under a TraceSession; write the trace artifacts."""
    from repro.trace.export import (render_counters, write_chrome_trace,
                                    write_spans_csv)
    from repro.trace.meta import collect_meta, write_meta
    from repro.trace.tracer import TraceSession

    runner = RUNNERS.get(name)
    if runner is None:
        print(f"unknown experiment '{name}' "
              f"(choose from {', '.join(RUNNERS)})", file=sys.stderr)
        return 2
    os.makedirs(out_dir, exist_ok=True)
    start = time.time()
    print(f"\n{'=' * 78}\ntrace {name}\n{'=' * 78}")
    with TraceSession() as session:
        output = runner(quick)
    session.finalize()
    print(output)
    trace_path = write_chrome_trace(
        session, os.path.join(out_dir, "trace.json"))
    csv_path = write_spans_csv(session, os.path.join(out_dir, "spans.csv"))
    meta_path = write_meta(
        os.path.join(out_dir, "meta.json"),
        collect_meta(experiment=name, quick=quick,
                     params={"traced_runs": len(session.runs)}))
    print(f"\ncounters ({len(session.runs)} traced runs, "
          f"{session.span_count()} spans):")
    print(render_counters(session))
    print(f"\nwrote {trace_path} (load at https://ui.perfetto.dev), "
          f"{csv_path}, {meta_path}")
    print(f"\n[trace {name} took {time.time() - start:.1f}s]")
    return 0


def _run_chaos_cli(seed: int, storms: int, quick: bool,
                   out_dir: str) -> int:
    """Run fault storms; write the injection log; non-zero on failure."""
    from repro.fault import chaos

    os.makedirs(out_dir, exist_ok=True)
    start = time.time()
    print(f"\n{'=' * 78}\nchaos seed={seed} storms={storms}\n{'=' * 78}")
    report = chaos.run_chaos(seed, storms, quick=quick, verify=True)
    print(chaos.render(report))
    log_path = os.path.join(out_dir, "chaos.log")
    with open(log_path, "w") as fh:
        fh.write(report.log_text)
    print(f"\nwrote {log_path} ({report.total_injections} injections)")
    print(f"\n[chaos took {time.time() - start:.1f}s]")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the dIPC paper's tables and figures.")
    parser.add_argument("names", nargs="*", default=["all"],
                        help=f"which experiments: {', '.join(RUNNERS)}, "
                             "or 'all'; prefix with 'trace' to record "
                             "spans (trace fig5); 'chaos' runs fault "
                             "storms (--seed/--storms)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts / windows")
    parser.add_argument("--out", default=".",
                        help="directory for trace artifacts "
                             "(trace.json, spans.csv, meta.json) and "
                             "the chaos injection log (chaos.log)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos: base RNG seed (default 7)")
    parser.add_argument("--storms", type=int, default=25,
                        help="chaos: number of fault storms (default 25)")
    args = parser.parse_args(argv)
    names = [_normalize(name) for name in args.names]
    if names and names[0] == "chaos" and len(names) == 1:
        return _run_chaos_cli(args.seed, args.storms, args.quick, args.out)
    if names and names[0] == "trace":
        if len(names) != 2:
            print("usage: python -m repro.experiments trace <experiment>",
                  file=sys.stderr)
            return 2
        return _run_traced(names[1], args.quick, args.out)
    names = DEFAULT_SET if (not names or "all" in names) else names
    for name in names:
        runner = RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment '{name}' "
                  f"(choose from {', '.join(RUNNERS)})", file=sys.stderr)
            return 2
        start = time.time()
        print(f"\n{'=' * 78}\n{name}\n{'=' * 78}")
        print(runner(args.quick))
        print(f"\n[{name} took {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
