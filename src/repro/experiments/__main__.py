"""Command-line entry point regenerating the paper's tables and figures.

``python -m repro.experiments run [names...] [--quick] [--jobs N]
[--trace] [--chaos]``

One verb, orthogonal flags:

* ``names`` — table1, fig1, fig2, fig5, fig6, fig7, fig8, fig9 (alias
  fig09_load), fig10 (alias fig10_topo), fig11 (alias
  fig11_isolation), fig12 (alias fig12_bracket), extras, ablation,
  microbench, report, or ``all``;
* ``--quick`` shrinks iteration counts / windows (for smoke runs);
* ``--jobs N`` routes each experiment through the sharded point runner
  (``repro.runner``): the figure is decomposed into independent
  simulation points, fanned out across N worker processes, and merged
  back in spec order — the rendered output is byte-identical to the
  default serial path. Any ``--jobs`` value (including 1) also enables
  the content-addressed result cache under ``--cache-dir`` (default
  ``.repro-cache/``); pass ``--no-cache`` to disable it;
* ``--trace`` records a span trace of the (single) experiment and
  writes ``trace.json`` (Chrome trace-event format, loadable at
  https://ui.perfetto.dev), ``spans.csv`` and ``meta.json`` into
  ``--out``;
* ``--chaos`` arms a deterministic fault storm (``repro.fault``,
  seeded by ``--seed``) against every kernel the experiment builds,
  and prints the injection summary after the figure;
* ``--shards N`` (fig10 only) partitions every topology point across
  N shard engines with conservative time-window sync (``repro.shard``)
  — the rendered figure is byte-identical for any shard count. It
  composes with ``--chaos`` (seeded service-outage storms, in-process
  transport) and with ``--resume`` (per-shard mid-window checkpoints
  under ``--cache-dir``).

``--trace``/``--chaos`` attach to kernels built *in this process*, so
either flag forces the serial path (a note is printed when ``--jobs``
is also given).

The bare form ``python -m repro.experiments [names...]`` is shorthand
for ``run``. The old ``trace <name>`` and ``chaos`` subcommands keep
working as deprecated aliases (a warning goes to stderr):
``trace <name>`` is ``run <name> --trace``; ``chaos --seed N
--storms K`` runs the standalone storm harness, writes the injection
log to ``--out``/chaos.log, verifies the log is byte-identical for the
same seed, and exits non-zero on any invariant violation.

``python -m repro.experiments bench [--quick] [--jobs N] [--out DIR]
[--label L]`` times the quick suite cold-serial, cold-parallel and
warm-cached, an engine micro-benchmark, and one sharded mesh-12 point
(1 shard vs min(4, cpu_count)); it writes ``DIR/BENCH_PR8.json`` and
appends the payload to the ``bench/results/`` history. ``bench
--compare [--tolerance F]`` diffs the two newest history entries and
exits non-zero on a regression beyond the tolerance.

``python -m repro.experiments check <target> [--schedules N] [--seed S]
[--chaos] [--strategy random|perturb] [--jobs N] [--shrink] [--out DIR]
[--topo-n N]`` explores N interleavings of a figure driver or a
:mod:`repro.check.scenarios` workload under the deterministic schedule
controller, running the deadlock detector and the A1-A9 invariant
auditor after each; failing schedules are written as repro bundles
(default ``.repro-check/``) and ``--shrink`` delta-debugs the first one
to a minimal repro. ``check --replay <bundle>`` re-executes a bundle
and exits 0 iff the recorded outcome reproduced byte-identically.

``python -m repro.experiments conformance [--quick] [--seed S]
[--jobs N] [--out DIR]`` sweeps the kill-point recovery conformance
matrix (:mod:`repro.recovery.conformance`): every unwind phase
(pre-call, in-proxy, mid-callee, mid-reply, during-rebuild) crossed
with every registered IPC primitive and topology pattern, killing the
root service at exactly the probed event and machine-checking the
A1-A10 audit, reclamation sweep and a goodput floor. ``--quick``
restricts the pattern axis to the chain; failing cells are written as
``check --replay`` bundles under ``--out`` (default ``.repro-check/``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _run_table1(quick: bool) -> str:
    from repro.experiments import table01_arch
    return table01_arch.render(table01_arch.run())


def _run_fig1(quick: bool) -> str:
    from repro.experiments import fig01_breakdown
    return fig01_breakdown.render(
        fig01_breakdown.run(concurrency=64 if quick else 256,
                            scale=0.3 if quick else 1.0))


def _run_fig2(quick: bool) -> str:
    from repro.experiments import fig02_ipc_breakdown
    return fig02_ipc_breakdown.render(
        fig02_ipc_breakdown.run(iters=15 if quick else 40))


def _run_fig5(quick: bool) -> str:
    from repro.experiments import fig05_sync_calls
    return fig05_sync_calls.render(
        fig05_sync_calls.run(iters=15 if quick else 40))


def _run_fig6(quick: bool) -> str:
    from repro.experiments import fig06_argsize
    sizes = tuple(16 ** i for i in range(0, 6)) if quick else \
        fig06_argsize.DEFAULT_SIZES
    return fig06_argsize.render(
        fig06_argsize.run(sizes=sizes, iters=8 if quick else 20))


def _run_fig7(quick: bool) -> str:
    from repro.experiments import fig07_driver
    return fig07_driver.render(
        fig07_driver.run(iters=10 if quick else 30))


def _run_fig8(quick: bool) -> str:
    from repro.experiments import fig08_oltp
    concurrencies = (4, 16, 64) if quick else \
        fig08_oltp.DEFAULT_CONCURRENCIES
    scale = 0.25 if quick else 1.0
    on_disk = fig08_oltp.run("on-disk", concurrencies, scale)
    in_mem = fig08_oltp.run("in-memory", concurrencies, scale)
    return (fig08_oltp.render(on_disk) + "\n\n"
            + fig08_oltp.render(in_mem))


def _run_fig9(quick: bool) -> str:
    from repro.experiments import fig09_load
    return fig09_load.run(quick)


def _run_fig10(quick: bool) -> str:
    from repro.experiments import fig10_topo
    return fig10_topo.run(quick)


def _run_fig11(quick: bool) -> str:
    from repro.experiments import fig11_isolation
    return fig11_isolation.run(quick)


def _run_fig12(quick: bool) -> str:
    from repro.experiments import fig12_bracket
    return fig12_bracket.run(quick)


def _run_extras(quick: bool) -> str:
    from repro.experiments import extras
    return extras.render()


def _run_ablation(quick: bool) -> str:
    from repro.experiments import ablation
    return ablation.render(ablation.run(iters=10 if quick else 25))


def _run_microbench(quick: bool) -> str:
    from repro.runner import registry
    from repro.runner.points import execute_spec
    specs = registry.specs_for("microbench", quick)
    return registry.assemble("microbench", specs,
                             [execute_spec(spec) for spec in specs])


def _run_report(quick: bool) -> str:
    from repro.experiments import report
    path = report.generate(quick=quick)
    return f"report written to {path}"


def _run_chaos(quick: bool) -> str:
    from repro.fault import chaos
    report = chaos.run_chaos(7, 2 if quick else 5, quick=quick)
    return chaos.render(report)


def _make_cache(args):
    """The shared result cache, or None when ``--no-cache`` is given."""
    if args.no_cache:
        return None
    from repro.runner.cache import ResultCache
    return ResultCache(args.cache_dir)


def _run_sharded(name: str, quick: bool, jobs: int, cache, *,
                 checkpoint=None, resume=False, timeout_s=None,
                 retries=2) -> str:
    """Run one experiment through the point runner (see repro.runner)."""
    from repro.runner import registry
    from repro.runner.pool import run_points, summary
    specs = registry.specs_for(name, quick)
    results, stats = run_points(specs, jobs=jobs, cache=cache,
                                checkpoint=checkpoint, resume=resume,
                                timeout_s=timeout_s, retries=retries)
    print(summary(stats))
    return registry.assemble(name, specs, results)


RUNNERS = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "extras": _run_extras,
    "ablation": _run_ablation,
    "microbench": _run_microbench,
    "report": _run_report,
    "chaos": _run_chaos,
}

#: "all" runs every figure/table but not the aggregate report, the
#: chaos smoke, or the raw microbenchmark sweep (a tuning tool)
DEFAULT_SET = [name for name in RUNNERS
               if name not in ("report", "chaos", "microbench")]

#: long-form aliases accepted on the command line
_ALIASES = {
    "fig09_load": "fig9",
    "fig9_load": "fig9",
    "fig10_topo": "fig10",
    "fig11_isolation": "fig11",
    "fig12_bracket": "fig12",
}


def _normalize(name: str) -> str:
    """Accept aliases and zero-padded figure names: fig05 → fig5."""
    name = _ALIASES.get(name, name)
    if name.startswith("fig0") and len(name) == 5:
        return "fig" + name[4]
    return name


def _run_traced(name: str, quick: bool, out_dir: str,
                chaos_seed=None) -> int:
    """Run one experiment under a TraceSession; write the trace
    artifacts. ``chaos_seed`` additionally arms a ChaosSession."""
    from repro.trace.export import (render_counters, write_chrome_trace,
                                    write_spans_csv)
    from repro.trace.meta import collect_meta, write_meta
    from repro.trace.tracer import TraceSession

    runner = RUNNERS.get(name)
    if runner is None:
        print(f"unknown experiment '{name}' "
              f"(choose from {', '.join(RUNNERS)})", file=sys.stderr)
        return 2
    os.makedirs(out_dir, exist_ok=True)
    start = time.time()
    print(f"\n{'=' * 78}\ntrace {name}\n{'=' * 78}")
    with TraceSession() as session:
        if chaos_seed is None:
            output = runner(quick)
        else:
            from repro.fault.session import ChaosSession
            with ChaosSession(seed=chaos_seed) as chaos_session:
                output = runner(quick)
    session.finalize()
    print(output)
    if chaos_seed is not None:
        print(chaos_session.summary())
    trace_path = write_chrome_trace(
        session, os.path.join(out_dir, "trace.json"))
    csv_path = write_spans_csv(session, os.path.join(out_dir, "spans.csv"))
    meta_path = write_meta(
        os.path.join(out_dir, "meta.json"),
        collect_meta(experiment=name, quick=quick,
                     params={"traced_runs": len(session.runs)}))
    print(f"\ncounters ({len(session.runs)} traced runs, "
          f"{session.span_count()} spans):")
    print(render_counters(session))
    print(f"\nwrote {trace_path} (load at https://ui.perfetto.dev), "
          f"{csv_path}, {meta_path}")
    print(f"\n[trace {name} took {time.time() - start:.1f}s]")
    return 0


def _run_bench_cli(args) -> int:
    """The ``bench`` verb (see :mod:`repro.experiments.bench`)."""
    from repro.experiments import bench
    if args.compare:
        return bench.compare(tolerance=args.tolerance)
    return bench.run_bench(args.quick, args.jobs, args.out,
                           label=args.label)


def _run_fig10_shards_cli(args) -> int:
    """Run fig10 with every topology point sharded across N engines.

    The sharded coordinator (repro.shard) parallelizes *inside* one
    simulation point, so the figure itself runs serially in this
    process; checkpoints land under --cache-dir and ``--resume`` picks
    up a killed sweep mid-window. Output is byte-identical to the
    unsharded path.
    """
    from repro.experiments import fig10_topo
    from repro.runner.points import execute_spec
    from repro.shard import runner as shard_runner

    start = time.time()
    print(f"\n{'=' * 78}\nfig10 --shards {args.shards}\n{'=' * 78}")
    specs = fig10_topo.points(
        shards=args.shards,
        **fig10_topo.Fig10Driver.cli_params(args.quick))
    os.makedirs(args.cache_dir, exist_ok=True)
    shard_runner.POINT_CHECKPOINT.update(
        {"dir": args.cache_dir, "resume": args.resume})
    try:
        if args.chaos:
            from repro.fault.session import ChaosSession
            with ChaosSession(seed=args.seed) as chaos_session:
                results = [execute_spec(spec) for spec in specs]
            print(fig10_topo.assemble(specs, results))
            print(chaos_session.summary())
            violations = chaos_session.audit_kernels()
            if violations:
                for violation in violations:
                    print(f"VIOLATION: {violation}")
                print(f"chaos audit: FAILED "
                      f"({len(violations)} violation(s))")
                return 1
            print("chaos audit: all invariants held")
        else:
            results = [execute_spec(spec) for spec in specs]
            print(fig10_topo.assemble(specs, results))
    finally:
        shard_runner.POINT_CHECKPOINT.update(
            {"dir": None, "resume": False})
    print(f"\n[fig10 took {time.time() - start:.1f}s]")
    return 0


def _run_chaos_cli(seed: int, storms: int, quick: bool,
                   out_dir: str, jobs: int = 0) -> int:
    """Run fault storms; write the injection log; non-zero on failure."""
    from repro.fault import chaos

    os.makedirs(out_dir, exist_ok=True)
    start = time.time()
    print(f"\n{'=' * 78}\nchaos seed={seed} storms={storms}\n{'=' * 78}")
    report = chaos.run_chaos(seed, storms, quick=quick, verify=True,
                             jobs=jobs)
    print(chaos.render(report))
    log_path = os.path.join(out_dir, "chaos.log")
    with open(log_path, "w") as fh:
        fh.write(report.log_text)
    print(f"\nwrote {log_path} ({report.total_injections} injections)")
    print(f"\n[chaos took {time.time() - start:.1f}s]")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the dIPC paper's tables and figures.")
    parser.add_argument("names", nargs="*", default=["all"],
                        help="'run' (optional verb) followed by "
                             f"experiments: {', '.join(RUNNERS)}, or "
                             "'all'; 'bench' times the point runner; "
                             "'check <target>' explores interleavings; "
                             "'conformance' sweeps the kill-point "
                             "recovery matrix; 'trace <name>' and "
                             "'chaos' are deprecated aliases for "
                             "--trace / the storm harness")
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts / windows")
    parser.add_argument("--jobs", type=int, default=0,
                        help="shard experiments into simulation points "
                             "and compute them on N worker processes "
                             "(also enables the result cache); "
                             "0 = original serial path (default)")
    parser.add_argument("--shards", type=int, default=0,
                        help="fig10 only: partition every topology "
                             "point across N shard engines with "
                             "conservative time-window sync "
                             "(repro.shard); the rendered figure is "
                             "byte-identical for any shard count")
    parser.add_argument("--trace", action="store_true",
                        help="record a span trace of the (single) "
                             "experiment; artifacts go to --out")
    parser.add_argument("--chaos", action="store_true",
                        help="arm a deterministic fault storm (seeded "
                             "by --seed) against every kernel the "
                             "experiment builds; exits non-zero if the "
                             "post-run invariant audit (A1-A10) fails")
    parser.add_argument("--supervise", action="store_true",
                        help="run load experiments with supervised "
                             "server pools and circuit breakers: killed "
                             "workers restart, killed server processes "
                             "are rebuilt (composes with --chaos)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "checkpoint journal under --cache-dir, "
                             "recomputing only unfinished points")
    parser.add_argument("--point-timeout", type=float, default=600.0,
                        help="with --jobs: declare the worker pool "
                             "wedged when no point completes for this "
                             "many seconds (0 disables; default 600)")
    parser.add_argument("--retries", type=int, default=2,
                        help="with --jobs: per-point retry budget after "
                             "a crashed or stalled worker (default 2)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="result-cache directory used with --jobs "
                             "(default .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="with --jobs: recompute every point, "
                             "skipping the result cache")
    parser.add_argument("--out", default=".",
                        help="directory for trace artifacts "
                             "(trace.json, spans.csv, meta.json) and "
                             "the chaos injection log (chaos.log)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos: base RNG seed (default 7)")
    parser.add_argument("--storms", type=int, default=25,
                        help="deprecated 'chaos' subcommand: number of "
                             "fault storms (default 25)")
    parser.add_argument("--compare", action="store_true",
                        help="'bench' verb: compare the two newest "
                             "bench/results/ history entries instead "
                             "of running; exits non-zero on a "
                             "regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="'bench --compare': allowed fractional "
                             "regression per gated metric "
                             "(default 0.10)")
    parser.add_argument("--label", default="run",
                        help="'bench' verb: label for the appended "
                             "bench/results/ history entry "
                             "(default 'run')")
    parser.add_argument("--schedules", type=int, default=25,
                        help="'check' verb: number of interleavings to "
                             "explore per target (default 25)")
    parser.add_argument("--strategy", default="random",
                        choices=("random", "perturb"),
                        help="'check' verb: schedule exploration "
                             "strategy (default random; schedule 0 is "
                             "always the uncontrolled baseline)")
    parser.add_argument("--shrink", action="store_true",
                        help="'check' verb: delta-debug the first "
                             "failing schedule down to a minimal repro")
    parser.add_argument("--replay", metavar="BUNDLE",
                        help="'check' verb: re-execute a repro bundle "
                             "and exit 0 iff the recorded outcome "
                             "reproduced")
    parser.add_argument("--topo-n", type=int, default=None,
                        help="'check' verb: topology size for sizeable "
                             "scenarios (e.g. chain4)")
    args = parser.parse_args(argv)
    names = list(args.names) or ["all"]

    # -- verbs ---------------------------------------------------------
    if names[0] == "check" or args.replay:
        from repro.check import cli as check_cli
        if args.replay:
            return check_cli.run_replay(args.replay)
        if len(names) != 2:
            print("usage: python -m repro.experiments check <target> "
                  "[--schedules N] [--seed S] [--chaos] [--strategy S] "
                  "[--jobs N] [--shrink] [--out DIR] [--topo-n N]  |  "
                  "check --replay <bundle>", file=sys.stderr)
            return 2
        out_dir = args.out if args.out != "." else None
        cache = _make_cache(args)
        return check_cli.run_check(
            _normalize(names[1]), schedules=args.schedules,
            seed=args.seed, chaos=args.chaos, strategy=args.strategy,
            jobs=args.jobs, shrink=args.shrink, out_dir=out_dir,
            topo_n=args.topo_n, cache=cache)
    if names[0] == "conformance" and len(names) == 1:
        from repro.recovery.conformance import run_matrix
        out_dir = args.out if args.out != "." else None
        return run_matrix(quick=args.quick, seed=args.seed,
                          jobs=args.jobs, out_dir=out_dir,
                          cache=_make_cache(args) if args.jobs > 0
                          else None)
    if names[0] == "bench" and len(names) == 1:
        return _run_bench_cli(args)
    if names[0] == "chaos" and len(names) == 1:
        print("warning: the 'chaos' subcommand is deprecated; the "
              "storm harness keeps it working, and 'run <fig> --chaos' "
              "storms any experiment", file=sys.stderr)
        return _run_chaos_cli(args.seed, args.storms, args.quick,
                              args.out, jobs=args.jobs)
    if names[0] == "trace":
        if len(names) != 2:
            print("usage: python -m repro.experiments trace <experiment>",
                  file=sys.stderr)
            return 2
        print("warning: 'trace <name>' is deprecated; use "
              "'run <name> --trace'", file=sys.stderr)
        args.trace = True
        names = names[1:]
    elif names[0] == "run":
        names = names[1:] or ["all"]

    names = [_normalize(name) for name in names]
    names = DEFAULT_SET if (not names or "all" in names) else names
    for name in names:
        if name not in RUNNERS:
            print(f"unknown experiment '{name}' "
                  f"(choose from {', '.join(RUNNERS)})", file=sys.stderr)
            return 2

    # -- sharded fig10 (PDES-lite): parallelism inside one point -------
    if args.shards:
        if names != ["fig10"]:
            print("--shards applies to the fig10 topology sweep only "
                  f"(got: {', '.join(names)})", file=sys.stderr)
            return 2
        if args.trace or args.supervise:
            print("--shards composes with --chaos only; --trace and "
                  "--supervise attach to single-engine kernels",
                  file=sys.stderr)
            return 2
        if args.resume and args.chaos:
            print("--resume cannot be combined with --chaos",
                  file=sys.stderr)
            return 2
        if args.jobs > 0:
            print("note: --shards parallelizes inside each point; "
                  "running points serially (--jobs ignored)",
                  file=sys.stderr)
        return _run_fig10_shards_cli(args)

    # -- orthogonal flags ----------------------------------------------
    if args.resume and (args.chaos or args.supervise or args.trace):
        print("--resume applies to the point runner; it cannot be "
              "combined with --chaos/--supervise/--trace",
              file=sys.stderr)
        return 2
    if args.trace:
        if len(names) != 1:
            print("--trace records one experiment at a time",
                  file=sys.stderr)
            return 2
        if args.jobs > 0:
            print("note: --trace attaches to in-process kernels; "
                  "running serially (--jobs ignored)", file=sys.stderr)
        return _run_traced(names[0], args.quick, args.out,
                           chaos_seed=args.seed if args.chaos else None)
    if args.resume and args.jobs <= 0:
        args.jobs = 1  # --resume implies the runner path
    if (args.chaos or args.supervise) and args.jobs > 0:
        print("note: --chaos/--supervise attach to in-process kernels; "
              "running serially (--jobs ignored)", file=sys.stderr)
    use_runner = (args.jobs > 0 and not args.chaos
                  and not args.supervise)
    cache = _make_cache(args) if use_runner else None
    timeout_s = args.point_timeout if args.point_timeout > 0 else None
    if use_runner:
        from repro.runner.registry import SUPPORTED as _sharded
    for name in names:
        start = time.time()
        print(f"\n{'=' * 78}\n{name}\n{'=' * 78}")
        if use_runner and name in _sharded:
            print(_run_sharded(name, args.quick, args.jobs, cache,
                               checkpoint=args.cache_dir,
                               resume=args.resume, timeout_s=timeout_s,
                               retries=args.retries))
        elif use_runner and name == "report":
            from repro.experiments import report
            path = report.generate(quick=args.quick, jobs=args.jobs,
                                   cache=cache,
                                   checkpoint=args.cache_dir,
                                   resume=args.resume,
                                   timeout_s=timeout_s,
                                   retries=args.retries)
            print(f"report written to {path}")
        elif args.chaos or args.supervise:
            import contextlib
            with contextlib.ExitStack() as stack:
                chaos_session = None
                recovery_session = None
                if args.chaos:
                    from repro.fault.session import ChaosSession
                    chaos_session = stack.enter_context(
                        ChaosSession(seed=args.seed))
                if args.supervise:
                    from repro.recovery.session import RecoverySession
                    recovery_session = stack.enter_context(
                        RecoverySession(seed=args.seed))
                output = RUNNERS[name](args.quick)
            print(output)
            violations = []
            if chaos_session is not None:
                print(chaos_session.summary())
                violations.extend(chaos_session.audit_kernels())
            if recovery_session is not None:
                print(recovery_session.summary())
                violations.extend(
                    f"recovery {v}"
                    for v in recovery_session.audit_violations())
            label = "chaos audit" if args.chaos else "recovery audit"
            if violations:
                for violation in violations:
                    print(f"VIOLATION: {violation}")
                print(f"{label}: FAILED "
                      f"({len(violations)} violation(s))")
                return 1
            print(f"{label}: all invariants held")
        else:
            print(RUNNERS[name](args.quick))
        print(f"\n[{name} took {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
