"""The ``bench`` verb: timing harness + append-only results history.

``python -m repro.experiments bench`` times four things:

* the quick point suite cold-serial, cold-parallel and warm-cached
  (the PR-3 harness, unchanged semantics);
* the bare engine micro-loop (events/sec);
* one sharded mesh-12 topology point through :mod:`repro.shard` at 1
  shard vs ``min(4, cpu_count)`` shards — the PDES-lite speedup gate —
  including a byte-identity check between the two results.

The payload is written twice: ``BENCH_PR8.json`` under ``--out`` (the
CI artifact) and an append-only copy under :data:`HISTORY_DIR`
(``bench/results/NNNN-<label>.json``), which holds the whole
BENCH_PR*.json trajectory since PR 3.

``python -m repro.experiments bench --compare`` reads the two newest
history entries, prints per-point-normalized deltas (suites grew from
110 to 254+ points across PRs, so raw wall-clock is not comparable),
and exits non-zero when a gated metric regressed by more than
``--tolerance`` (default 10%): engine events/sec down, cold-serial or
warm-cached ms/point up.

Verdicts are honest about the host: with ``cpu_count == 1`` neither
process pool can speed anything up, so the cold-parallel *leg is not
run at all* (its verdict reads ``skipped (single-cpu host)`` and
``cold_parallel_s`` is recorded as null) and the shard verdict reads
the same — instead of spending minutes to report a misleading ~1x as
a regression.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import List, Tuple

#: the append-only history (repo-relative; CI runs from the repo root)
HISTORY_DIR = os.path.join("bench", "results")

#: default --compare regression tolerance (fraction)
DEFAULT_TOLERANCE = 0.10

#: gated metrics: (key in the normalized view, direction)
_GATES = (
    ("engine_events_per_sec", "higher"),
    ("cold_serial_ms_per_point", "lower"),
    ("warm_cached_ms_per_point", "lower"),
)

#: ignore sub-epsilon absolute wobble on the per-point timings — the
#: warm-cached pass reads a few hundred cache files in ~0.2s total, so
#: a pure-percentage gate would flap on filesystem noise
_EPSILON_MS = 0.25

#: the shard-bench acceptance floor (ISSUE 8): >=3x at 4 shards
SHARD_SPEEDUP_FLOOR = 3.0


def engine_events_per_sec(n: int = 200_000, repeats: int = 3) -> float:
    """Post-and-fire throughput of the bare event loop (events/sec).

    Best of ``repeats`` passes — the metric gates regressions across
    history entries, so transient host load must not read as one.
    """
    from repro.sim.engine import Engine
    best = 0.0
    for _ in range(repeats):
        engine = Engine()

        def tick():
            if engine.events_processed < n:
                engine.post(1.0, tick)

        engine.post(0.0, tick)
        start = time.perf_counter()
        engine.run()
        best = max(best, engine.events_processed
                   / (time.perf_counter() - start))
    return best


# -- the sharded-coordinator benchmark --------------------------------------


def _shard_point_kwargs(quick: bool) -> dict:
    """One saturated mesh-12 point, sized so per-window work amortizes
    the cross-process barrier (high concurrency, long window)."""
    from repro import units
    from repro.topo import generate
    spec = generate("mesh", 12, width=3, seed=3)
    return {
        "primitive": "socket", "mode": "open", "policy": "shed",
        "arrivals": "poisson",
        "offered_kops": 4_000.0 if quick else 12_000.0,
        "n_clients": 64, "n_conns": 256, "n_workers": 64,
        "queue_depth": 128, "req_size": 128,
        "deadline_ns": 2.0 * units.MS, "num_cpus": 8,
        "warmup_ns": 0.2 * units.MS,
        "window_ns": (1.0 if quick else 2.0) * units.MS,
        "seed": 42, "topo": spec.to_dict()}


def shard_bench(quick: bool) -> dict:
    """Time one mesh-12 point serial (1 shard) vs sharded; verify the
    results are byte-identical; return the payload fragment."""
    from repro.shard.runner import run_shard_point

    cpu = os.cpu_count() or 1
    shards = min(4, cpu) if cpu > 1 else 2
    kwargs = _shard_point_kwargs(quick)

    start = time.perf_counter()
    serial = run_shard_point(dict(kwargs), shards=1)
    serial_s = time.perf_counter() - start

    info: dict = {}
    start = time.perf_counter()
    sharded = run_shard_point(
        dict(kwargs), shards=shards,
        mode="processes" if cpu > 1 else "inprocess", info_sink=info)
    sharded_s = time.perf_counter() - start

    identical = json.dumps(serial, sort_keys=True) == \
        json.dumps(sharded, sort_keys=True)
    speedup = serial_s / sharded_s if sharded_s else None
    if cpu == 1:
        verdict = "skipped (single-cpu host)"
    elif cpu >= 4 and shards >= 4:
        verdict = (f"{'PASS' if speedup >= SHARD_SPEEDUP_FLOOR else 'FAIL'} "
                   f"({speedup:.2f}x at {shards} shards, floor "
                   f"{SHARD_SPEEDUP_FLOOR:.0f}x)")
    else:
        verdict = (f"{speedup:.2f}x at {shards} shards on a {cpu}-cpu "
                   f"host (the 3x gate needs >= 4 cores)")
    print(f"shard bench (mesh-12, {info.get('events', 0)} events, "
          f"{info.get('windows', 0)} windows, transport "
          f"{info.get('transport')}): serial {serial_s:.1f}s, "
          f"{shards} shards {sharded_s:.1f}s -> {verdict}")
    if not identical:
        print("ERROR: sharded result diverged from single-shard",
              file=sys.stderr)
    return {
        "shard_scenario": "mesh-12",
        "shard_shards": shards,
        "shard_serial_s": round(serial_s, 3),
        "shard_parallel_s": round(sharded_s, 3),
        "shard_speedup": round(speedup, 3) if speedup else None,
        "shard_windows": info.get("windows"),
        "shard_events": info.get("events"),
        "shard_transport": info.get("transport"),
        "shard_results_identical": identical,
        "shard_verdict": verdict,
    }


# -- the history ------------------------------------------------------------


def history_entries(history_dir: str = HISTORY_DIR
                    ) -> List[Tuple[str, dict]]:
    """Every history entry, oldest first (lexicographic file order)."""
    if not os.path.isdir(history_dir):
        return []
    entries = []
    for name in sorted(os.listdir(history_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(history_dir, name)) as fh:
            entries.append((name, json.load(fh)))
    return entries


def append_history(payload: dict, label: str,
                   history_dir: str = HISTORY_DIR) -> str:
    """Append one run to the history; never overwrites an entry."""
    os.makedirs(history_dir, exist_ok=True)
    taken = [name for name in os.listdir(history_dir)
             if name.endswith(".json")]
    index = len(taken) + 1
    while True:
        name = f"{index:04d}-{label}.json"
        path = os.path.join(history_dir, name)
        if not os.path.exists(path):
            break
        index += 1
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _normalized(payload: dict) -> dict:
    """The cross-PR-comparable view: per-point times in ms."""
    points = payload.get("points") or 1
    view = {"engine_events_per_sec":
            payload.get("engine_events_per_sec")}
    for key in ("cold_serial_s", "cold_parallel_s", "warm_cached_s"):
        value = payload.get(key)
        view[key[:-2] + "_ms_per_point"] = \
            None if value is None else value / points * 1e3
    view["shard_speedup"] = payload.get("shard_speedup")
    return view


def compare(history_dir: str = HISTORY_DIR,
            tolerance: float = DEFAULT_TOLERANCE) -> int:
    """Print deltas between the two newest entries; 1 on regression."""
    entries = history_entries(history_dir)
    if len(entries) < 2:
        print(f"bench --compare needs >= 2 entries under "
              f"{history_dir}/ (found {len(entries)})", file=sys.stderr)
        return 2
    (prev_name, prev), (new_name, new) = entries[-2], entries[-1]
    prev_view, new_view = _normalized(prev), _normalized(new)
    print(f"bench compare: {prev_name} -> {new_name} "
          f"(tolerance {tolerance:.0%}, times per-point-normalized; "
          f"prev: {prev.get('points')} points, "
          f"new: {new.get('points')} points)")
    print(f"{'metric':<28}{'prev':>14}{'new':>14}{'delta':>9}")

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:,.3f}"
        return str(value)

    regressions = []
    for key in sorted(set(prev_view) | set(new_view)):
        old_value, new_value = prev_view.get(key), new_view.get(key)
        if old_value and new_value is not None:
            shown = f"{(new_value - old_value) / old_value:+.1%}"
        else:
            shown = "n/a"
        print(f"{key:<28}{fmt(old_value):>14}{fmt(new_value):>14}"
              f"{shown:>9}")
    for key, direction in _GATES:
        old_value, new_value = prev_view.get(key), new_view.get(key)
        if old_value is None or new_value is None or not old_value:
            continue
        if direction == "higher":
            worse = (old_value - new_value) / old_value
        else:
            worse = (new_value - old_value) / old_value
            if abs(new_value - old_value) <= _EPSILON_MS:
                worse = 0.0
        if worse > tolerance:
            regressions.append(f"{key}: {old_value:,.3f} -> "
                               f"{new_value:,.3f} ({worse:+.1%} worse)")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}")
        print(f"bench compare: FAILED ({len(regressions)} "
              f"regression(s) > {tolerance:.0%})")
        return 1
    print("bench compare: no regression beyond tolerance")
    return 0


# -- the CLI entry point ----------------------------------------------------


def run_bench(quick: bool, jobs: int, out_dir: str, *,
              label: str = "pr8",
              history_dir: str = HISTORY_DIR) -> int:
    """Time the suite + engine + shard coordinator; write
    ``BENCH_PR8.json`` and append the history entry."""
    import platform
    import tempfile

    from repro.runner import registry
    from repro.runner.cache import ResultCache
    from repro.runner.pool import run_points, summary

    cpu = os.cpu_count() or 1
    jobs = jobs if jobs > 1 else 4
    specs = [spec for name in registry.SUPPORTED
             for spec in registry.specs_for(name, quick)]
    print(f"\n{'=' * 78}\nbench: {len(specs)} points, jobs={jobs}, "
          f"{'quick' if quick else 'full'} mode\n{'=' * 78}")

    def timed(run_jobs: int, cache, label_text: str):
        start = time.perf_counter()
        results, stats = run_points(specs, jobs=run_jobs, cache=cache)
        elapsed = time.perf_counter() - start
        print(f"{label_text}: {elapsed:.1f}s  ({summary(stats)})")
        return elapsed, results, stats

    with tempfile.TemporaryDirectory() as tmp:
        serial_cache = ResultCache(os.path.join(tmp, "serial"))
        cold_serial_s, serial_results, _ = timed(1, serial_cache,
                                                 "cold serial")
        if cpu == 1:
            # a process pool cannot speed anything up here; don't spend
            # a second cold pass proving it — identity is still checked
            # across the serial and warm-cached passes
            cold_parallel_s = None
            parallel_results = serial_results
            print("cold parallel: skipped (single-cpu host)")
        else:
            parallel_cache = ResultCache(os.path.join(tmp, "parallel"))
            cold_parallel_s, parallel_results, _ = timed(
                jobs, parallel_cache, "cold parallel")
        warm_cached_s, warm_results, warm_stats = timed(1, serial_cache,
                                                        "warm cached")
    identical = serial_results == parallel_results == warm_results
    events_per_sec = engine_events_per_sec()
    print(f"engine micro-loop: {events_per_sec:,.0f} events/sec")
    speedup = cold_serial_s / cold_parallel_s if cold_parallel_s \
        else None
    if cpu == 1:
        parallel_verdict = "skipped (single-cpu host)"
    else:
        parallel_verdict = (f"{speedup:.2f}x across {jobs} jobs on "
                            f"{cpu} cpus")
    print(f"cold-parallel verdict: {parallel_verdict}")
    shard = shard_bench(quick)

    payload = {
        "bench_version": 2,
        "mode": "quick" if quick else "full",
        "jobs": jobs,
        "points": len(specs),
        "cold_serial_s": round(cold_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3)
        if cold_parallel_s is not None else None,
        "warm_cached_s": round(warm_cached_s, 3),
        "parallel_speedup": round(speedup, 3) if speedup else None,
        "parallel_speedup_per_cpu": round(
            speedup / min(jobs, cpu), 3) if speedup else None,
        "parallel_verdict": parallel_verdict,
        "warm_skipped_fraction": round(warm_stats.skipped_fraction, 4),
        "engine_events_per_sec": round(events_per_sec),
        "results_identical": identical,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": cpu,
    }
    payload.update(shard)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_PR8.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    history_path = append_history(payload, label,
                                  history_dir=history_dir)
    print(f"\nwrote {path} and {history_path}")
    if not identical:
        print("ERROR: serial/parallel/cached results diverged",
              file=sys.stderr)
        return 1
    if not shard["shard_results_identical"]:
        return 1
    return 0
