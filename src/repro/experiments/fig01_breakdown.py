"""Figure 1: time breakdown of the OLTP web application stack — the
paper's motivating figure (Linux vs Ideal, in-memory DB, and the IPC
overhead between them)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.apps.oltp import IDEAL, IN_MEMORY, LINUX, params_for, run_oltp


@dataclass
class Fig1Row:
    config: str
    #: closed-loop cycle time per operation (concurrency / throughput) —
    #: the "average operation latency" of a loaded server
    mean_latency_ms: float
    #: server-side service latency of one operation (no client wait)
    service_latency_ms: float
    user_pct: float
    kernel_pct: float
    idle_pct: float


@dataclass
class Fig1Result:
    linux: Fig1Row
    ideal: Fig1Row

    @property
    def ipc_overhead_factor(self) -> float:
        """The '1.92x' annotation: Ideal's speedup from dropping IPC."""
        return self.linux.mean_latency_ms / self.ideal.mean_latency_ms


def _row(config: str, concurrency: int, scale: float) -> Fig1Row:
    params = params_for(config, IN_MEMORY, concurrency, scale=scale)
    result = run_oltp(params)
    ops_per_ns = result.throughput_ops_min / units.MINUTE
    cycle_ms = concurrency / ops_per_ns / units.MS if ops_per_ns else 0.0
    return Fig1Row(config,
                   cycle_ms,
                   result.mean_latency_ns / units.MS,
                   result.user_fraction * 100,
                   result.kernel_fraction * 100,
                   result.idle_fraction * 100)


def run(concurrency: int = 256, scale: float = 1.0) -> Fig1Result:
    return Fig1Result(linux=_row(LINUX, concurrency, scale),
                      ideal=_row(IDEAL, concurrency, scale))


# -- parallel-runner decomposition (one OLTP run per config) ----------------

def points(*, concurrency: int = 256, scale: float = 1.0) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("fig1", __name__,
                      {"config": config, "concurrency": concurrency,
                       "scale": scale})
            for config in (LINUX, IDEAL)]


def compute_point(*, config: str, concurrency: int, scale: float) -> dict:
    import dataclasses
    return dataclasses.asdict(_row(config, concurrency, scale))


def assemble(specs, results) -> str:
    rows = {row["config"]: Fig1Row(**row) for row in results}
    return render(Fig1Result(linux=rows[LINUX], ideal=rows[IDEAL]))


def render(result: Fig1Result) -> str:
    lines = [
        "Figure 1: Time breakdown of the OLTP web application stack",
        "",
        f"{'config':<16}{'latency':>10}{'user%':>8}{'kernel%':>9}"
        f"{'idle%':>8}",
        "-" * 52,
    ]
    for row in (result.linux, result.ideal):
        lines.append(f"{row.config:<16}{row.mean_latency_ms:>8.2f}ms"
                     f"{row.user_pct:>8.1f}{row.kernel_pct:>9.1f}"
                     f"{row.idle_pct:>8.1f}")
    lines += [
        "",
        f"IPC overhead: Ideal runs {result.ipc_overhead_factor:.2f}x "
        "faster (paper: 1.92x; paper breakdown Linux 51/23/24 vs "
        "Ideal 81/16/1)",
    ]
    return "\n".join(lines)


from repro.runner.registry import register_figure


@register_figure
class Fig1Driver:
    """Figure 1 under the unified experiment-driver API."""

    name = "fig1"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"concurrency": 64 if quick else 256,
                "scale": 0.3 if quick else 1.0}
