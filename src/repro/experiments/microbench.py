"""Micro-benchmark drivers for Figures 2, 5 and 6 (§7.2's methodology).

Each ``bench_*`` function builds a fresh simulated system, runs a warm-up
phase, resets the accounts, measures ``iters`` synchronous round trips of
the primitive, and returns a :class:`BenchResult` with the mean latency,
per-iteration standard deviation and the Figure-2 block breakdown.

The ping-pong structure mirrors the paper's: the caller writes an
argument of ``size`` bytes, transfers control, and the callee reads it
and replies with a one-byte acknowledgement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.api import DipcManager
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.ipc.l4 import L4Endpoint
from repro.ipc.pipe import Pipe
from repro.ipc.rpc import RpcClient, RpcServer
from repro.ipc.semaphore import Semaphore
from repro.ipc.shm import SharedBuffer
from repro.ipc.unixsocket import SocketNamespace
from repro.kernel import Futex, Kernel
from repro.sim.stats import Block, Breakdown, RunningStats
from repro.trace.histogram import LatencyHistogram

DEFAULT_WARMUP = 5
DEFAULT_ITERS = 60

#: tiny user-side loop/stub work bracketing each round trip
STUB_NS = 2.0


@dataclass
class BenchResult:
    label: str
    mean_ns: float
    stddev_ns: float
    breakdown: Breakdown
    iterations: int
    #: per-iteration latency distribution (trace.histogram)
    hist: Optional[LatencyHistogram] = field(default=None, repr=False)

    @property
    def relative_stddev(self) -> float:
        return self.stddev_ns / self.mean_ns if self.mean_ns else 0.0

    @property
    def p50_ns(self) -> float:
        return self.hist.p50 if self.hist is not None else self.mean_ns

    @property
    def p95_ns(self) -> float:
        return self.hist.p95 if self.hist is not None else self.mean_ns

    @property
    def p99_ns(self) -> float:
        return self.hist.p99 if self.hist is not None else self.mean_ns

    def as_point(self) -> dict:
        """JSON-serializable form for the parallel runner / result cache.

        Floats survive a JSON round trip bit-for-bit, so figures
        assembled from cached points render byte-identically.
        """
        return {
            "label": self.label,
            "mean_ns": self.mean_ns,
            "stddev_ns": self.stddev_ns,
            "iterations": self.iterations,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "blocks": {block.name: ns
                       for block, ns in self.breakdown.ns.items()},
        }

    def __repr__(self) -> str:
        return f"<{self.label}: {self.mean_ns:.1f}ns ±{self.stddev_ns:.2f}>"


class _Harness:
    """Wraps the warm-up / reset / measure protocol on the caller thread."""

    def __init__(self, kernel: Kernel, label: str, *,
                 warmup: int = DEFAULT_WARMUP, iters: int = DEFAULT_ITERS):
        self.kernel = kernel
        self.label = label
        self.warmup = warmup
        self.iters = iters
        self.stats = RunningStats()
        self.hist = LatencyHistogram()
        self.total_span = 0.0
        # inside a TraceSession the kernel carries a generic runN label;
        # name the traced run after the benchmark instead
        if kernel.tracer.enabled:
            kernel.tracer.label = label

    def caller_body(self, iteration: Callable):
        """Build the caller thread body around ``iteration(t)``."""
        harness = self

        def body(t):
            tracer = harness.kernel.tracer
            for _ in range(harness.warmup):
                yield from iteration(t)
            harness.kernel.machine.flush_idle()
            harness.kernel.machine.reset_accounts()
            span_start = t.now()
            for index in range(harness.iters):
                iter_span = tracer.begin(
                    f"{harness.label}#{index}", "bench", thread=t) \
                    if tracer.enabled else None
                start = t.now()
                yield from iteration(t)
                latency = t.now() - start
                harness.stats.add(latency)
                harness.hist.add(latency)
                if iter_span is not None:
                    tracer.end(iter_span)
            harness.total_span = t.now() - span_start

        return body

    def result(self) -> BenchResult:
        self.kernel.machine.flush_idle()
        merged = self.kernel.machine.total_account()
        per_iter = merged.scaled(1.0 / self.iters)
        # idle accumulated after the measurement window is not meaningful
        # for a synchronous round trip on pinned CPUs; clamp it to the
        # measured span so breakdowns stay interpretable
        busy = per_iter.total(include_idle=False)
        span = self.total_span / self.iters if self.iters else 0.0
        if span > 0:
            per_iter.ns[Block.IDLE] = max(0.0, min(
                per_iter.ns[Block.IDLE], span * 2 - busy))
        return BenchResult(self.label, self.stats.mean, self.stats.stddev,
                           per_iter, self.iters, hist=self.hist)


def _fresh_kernel(num_cpus: int = 2, costs=None) -> Kernel:
    if costs is not None:
        from repro.hw.machine import Machine
        kernel = Kernel(machine=Machine(num_cpus, costs=costs))
    else:
        kernel = Kernel(num_cpus=num_cpus)
    DipcManager(kernel)
    return kernel


def _pins(same_cpu: bool):
    return (0, 0) if same_cpu else (0, 1)


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------

def bench_func(size: int = 1, *, iters: int = DEFAULT_ITERS,
               warmup: int = DEFAULT_WARMUP) -> BenchResult:
    """The baseline: a function call where the caller writes the argument
    and the callee reads it (under 2 ns for 1 byte)."""
    kernel = _fresh_kernel(1)
    costs = kernel.costs
    cache = kernel.machine.cache
    harness = _Harness(kernel, "func", warmup=warmup, iters=iters)

    def iteration(t):
        yield t.compute(costs.FUNC_CALL)
        if size > 1:
            yield t.compute(cache.touch_ns(size))  # caller writes
            yield t.compute(cache.touch_ns(size))  # callee reads

    proc = kernel.spawn_process("bench")
    kernel.spawn(proc, harness.caller_body(iteration), pin=0)
    kernel.run()
    kernel.check()
    return harness.result()


def bench_syscall(*, iters: int = DEFAULT_ITERS,
                  warmup: int = DEFAULT_WARMUP) -> BenchResult:
    """An empty system call (~34 ns)."""
    kernel = _fresh_kernel(1)
    harness = _Harness(kernel, "syscall", warmup=warmup, iters=iters)

    def iteration(t):
        yield from kernel.syscall_nop(t)

    proc = kernel.spawn_process("bench")
    kernel.spawn(proc, harness.caller_body(iteration), pin=0)
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# POSIX semaphores over shared memory
# ---------------------------------------------------------------------------

def bench_sem(*, same_cpu: bool = True, size: int = 1,
              iters: int = DEFAULT_ITERS,
              warmup: int = DEFAULT_WARMUP) -> BenchResult:
    kernel = _fresh_kernel(2)
    costs = kernel.costs
    label = f"sem_{'same' if same_cpu else 'cross'}_cpu"
    harness = _Harness(kernel, label, warmup=warmup, iters=iters)
    caller_pin, callee_pin = _pins(same_cpu)
    proc_a = kernel.spawn_process("sem-a")
    proc_b = kernel.spawn_process("sem-b")
    request = Semaphore(kernel)
    reply = Semaphore(kernel)
    buffer = SharedBuffer(kernel, capacity=max(size, 64))

    def iteration(t):
        yield t.compute(STUB_NS + costs.TOUCH_ARG)  # stub + read B's ack
        yield from buffer.populate(t, size)
        yield from request.post(t)
        yield from reply.wait(t)

    def server(t):
        while True:
            yield from request.wait(t)
            yield t.compute(STUB_NS + costs.TOUCH_ARG)  # stub + write ack
            yield from buffer.consume(t)
            yield from reply.post(t)

    kernel.spawn(proc_b, server, pin=callee_pin, name="sem-server",
                 daemon=True)
    kernel.spawn(proc_a, harness.caller_body(iteration), pin=caller_pin,
                 name="sem-caller")
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# pipes
# ---------------------------------------------------------------------------

def bench_pipe(*, same_cpu: bool = True, size: int = 1,
               iters: int = DEFAULT_ITERS,
               warmup: int = DEFAULT_WARMUP) -> BenchResult:
    kernel = _fresh_kernel(2)
    label = f"pipe_{'same' if same_cpu else 'cross'}_cpu"
    harness = _Harness(kernel, label, warmup=warmup, iters=iters)
    caller_pin, callee_pin = _pins(same_cpu)
    proc_a = kernel.spawn_process("pipe-a")
    proc_b = kernel.spawn_process("pipe-b")
    request = Pipe(kernel)
    reply = Pipe(kernel)

    def iteration(t):
        yield t.compute(STUB_NS + kernel.costs.TOUCH_ARG)
        yield from request.write(t, size)
        yield from reply.read(t)

    def server(t):
        while True:
            yield from request.read(t)
            yield t.compute(STUB_NS + kernel.costs.TOUCH_ARG)
            yield from reply.write(t, 1)

    kernel.spawn(proc_b, server, pin=callee_pin, name="pipe-server",
                 daemon=True)
    kernel.spawn(proc_a, harness.caller_body(iteration), pin=caller_pin,
                 name="pipe-caller")
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# local RPC (rpcgen over UNIX sockets)
# ---------------------------------------------------------------------------

def bench_rpc(*, same_cpu: bool = True, size: int = 1,
              iters: int = DEFAULT_ITERS,
              warmup: int = DEFAULT_WARMUP) -> BenchResult:
    kernel = _fresh_kernel(2)
    label = f"rpc_{'same' if same_cpu else 'cross'}_cpu"
    harness = _Harness(kernel, label, warmup=warmup, iters=iters)
    caller_pin, callee_pin = _pins(same_cpu)
    namespace = SocketNamespace()
    server_proc = kernel.spawn_process("rpc-server")
    client_proc = kernel.spawn_process("rpc-client")
    bufsize = max(4 * size, 208 * 1024)
    server = RpcServer(kernel, server_proc, namespace, "/bench/rpc",
                       bufsize=bufsize)

    def echo(t, args):
        yield t.compute(kernel.costs.FUNC_CALL)
        return 1, "ack"

    server.register("echo", echo)
    client = RpcClient(kernel, client_proc, namespace, "/bench/rpc",
                       bufsize=bufsize)

    def iteration(t):
        yield t.compute(STUB_NS)
        yield from client.call(t, "echo", size)

    def done(t):
        yield from client.shutdown_server(t)

    kernel.spawn(server_proc, server.serve_loop, pin=callee_pin,
                 name="rpc-svc", daemon=True)

    def body(t):
        yield from harness.caller_body(iteration)(t)
        yield from done(t)

    kernel.spawn(client_proc, body, pin=caller_pin, name="rpc-cli")
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# L4-style synchronous IPC
# ---------------------------------------------------------------------------

def bench_l4(*, same_cpu: bool = True, iters: int = DEFAULT_ITERS,
             warmup: int = DEFAULT_WARMUP) -> BenchResult:
    kernel = _fresh_kernel(2)
    label = f"l4_{'same' if same_cpu else 'cross'}_cpu"
    harness = _Harness(kernel, label, warmup=warmup, iters=iters)
    caller_pin, callee_pin = _pins(same_cpu)
    client_proc = kernel.spawn_process("l4-client")
    server_proc = kernel.spawn_process("l4-server")
    endpoint = L4Endpoint(kernel)

    def server(t):
        caller, msg = yield from endpoint.wait(t)
        while msg != "stop":
            caller, msg = yield from endpoint.reply_and_wait(t, caller,
                                                             "ack")
        yield from endpoint.reply(t, caller, "bye")

    def iteration(t):
        yield from endpoint.call(t, "ping")

    def body(t):
        yield from harness.caller_body(iteration)(t)
        yield from endpoint.call(t, "stop")

    kernel.spawn(server_proc, server, pin=callee_pin, name="l4-srv",
                 daemon=True)
    kernel.spawn(client_proc, body, pin=caller_pin, name="l4-cli")
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# dIPC
# ---------------------------------------------------------------------------

def _policy(name: str) -> IsolationPolicy:
    if name == "low":
        return IsolationPolicy.low()
    if name == "high":
        return IsolationPolicy.high()
    raise ValueError(f"unknown policy {name}")


def bench_dipc(*, policy: str = "low", cross_process: bool = False,
               size: int = 1, iters: int = DEFAULT_ITERS,
               warmup: int = DEFAULT_WARMUP, costs=None,
               callee_read_ns: Optional[float] = None,
               label: Optional[str] = None) -> BenchResult:
    """dIPC synchronous call: same-process domains or cross-process
    (Figure 5's dIPC and dIPC +proc bars; Low vs High policies).

    ``costs`` overrides the cost model (used by the ablation studies,
    e.g. zeroing TLS_SWITCH to model the optimized TLS mode of §6.1.2).
    ``callee_read_ns`` replaces the callee's inline argument read with
    a fixed charge (fig11 uses it to model the DMA-offloaded copy of
    the odipc variant); ``label`` overrides the result label.
    """
    kernel = _fresh_kernel(1, costs=costs)
    manager = kernel.dipc
    costs = kernel.costs
    cache = kernel.machine.cache
    if label is None:
        label = f"dipc_{'proc_' if cross_process else ''}{policy}"
    harness = _Harness(kernel, label, warmup=warmup, iters=iters)
    caller_proc = kernel.spawn_process("dipc-caller", dipc=True)
    if cross_process:
        callee_proc = kernel.spawn_process("dipc-callee", dipc=True)
        callee_dom = manager.dom_default(callee_proc)
    else:
        callee_proc = caller_proc
        callee_dom = manager.dom_create(caller_proc)

    def target(t, payload):
        if callee_read_ns is not None:
            yield t.compute(callee_read_ns)
        elif size > 1:
            yield t.compute(cache.touch_ns(size))  # callee reads by ref
        else:
            yield t.compute(0.0)
        return "ack"

    iso = _policy(policy)
    descriptor = EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                                 policy=iso, func=target, name="target")
    handle = manager.entry_register(callee_proc, callee_dom, [descriptor])
    request = [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                               policy=iso, name="target")]
    proxy_handle, _ = manager.entry_request(caller_proc, handle, request)
    manager.grant_create(manager.dom_default(caller_proc), proxy_handle)
    address = request[0].address

    def iteration(t):
        if size > 1:
            yield t.compute(cache.touch_ns(size))         # caller writes
            # pass-by-reference: one capability instead of copies (§4.2)
            yield t.compute(costs.CAP_CREATE + 2 * costs.CAP_MEM)
        yield from manager.call(t, address, "payload")

    kernel.spawn(caller_proc, harness.caller_body(iteration), pin=0,
                 name="dipc-cli")
    kernel.run()
    kernel.check()
    return harness.result()


def bench_dipc_user_rpc(*, size: int = 1, iters: int = DEFAULT_ITERS,
                        warmup: int = DEFAULT_WARMUP) -> BenchResult:
    """'dIPC - User RPC (≠CPU)': cross-CPU RPC semantics implemented at
    user level in one dIPC process — the server copies its arguments and
    thread synchronization is the only kernel involvement (§7.2)."""
    kernel = _fresh_kernel(2)
    costs = kernel.costs
    cache = kernel.machine.cache
    harness = _Harness(kernel, "dipc_user_rpc", warmup=warmup, iters=iters)
    proc = kernel.spawn_process("dipc-user-rpc", dipc=True)
    request = Futex(kernel)
    reply = Futex(kernel)

    def copy_ns() -> float:
        return cache.copy_ns(max(size, 1), startup=costs.MEMCPY_STARTUP)

    def server(t):
        while True:
            yield from request.wait(t)
            # the server process makes a copy of its arguments (§7.2)
            yield t.compute(STUB_NS + copy_ns())
            yield t.compute(costs.FUNC_CALL)
            yield from reply.wake(t)

    def iteration(t):
        yield t.compute(STUB_NS + copy_ns())  # marshal into server buffer
        yield from request.wake(t)
        yield from reply.wait(t)

    kernel.spawn(proc, server, pin=1, name="urpc-server", daemon=True)
    kernel.spawn(proc, harness.caller_body(iteration), pin=0,
                 name="urpc-caller")
    kernel.run()
    kernel.check()
    return harness.result()


# ---------------------------------------------------------------------------
# suite helpers
# ---------------------------------------------------------------------------

#: label -> zero-argument-style builder for every bar of Figure 5; the
#: parallel runner schedules these one label at a time
_FIG5_BENCHES = {
    "func": lambda iters: bench_func(iters=iters),
    "syscall": lambda iters: bench_syscall(iters=iters),
    "dipc_low": lambda iters: bench_dipc(policy="low", iters=iters),
    "dipc_high": lambda iters: bench_dipc(policy="high", iters=iters),
    "sem_same_cpu": lambda iters: bench_sem(same_cpu=True, iters=iters),
    "sem_cross_cpu": lambda iters: bench_sem(same_cpu=False, iters=iters),
    "pipe_same_cpu": lambda iters: bench_pipe(same_cpu=True, iters=iters),
    "pipe_cross_cpu": lambda iters: bench_pipe(same_cpu=False,
                                               iters=iters),
    "dipc_proc_low": lambda iters: bench_dipc(policy="low",
                                              cross_process=True,
                                              iters=iters),
    "dipc_proc_high": lambda iters: bench_dipc(policy="high",
                                               cross_process=True,
                                               iters=iters),
    "rpc_same_cpu": lambda iters: bench_rpc(same_cpu=True, iters=iters),
    "rpc_cross_cpu": lambda iters: bench_rpc(same_cpu=False, iters=iters),
    "dipc_user_rpc": lambda iters: bench_dipc_user_rpc(iters=iters),
    "l4_same_cpu": lambda iters: bench_l4(same_cpu=True, iters=iters),
}


def fig5_bench(label: str, *, iters: int = DEFAULT_ITERS) -> BenchResult:
    """One bar of Figure 5 by label (one simulation point)."""
    try:
        builder = _FIG5_BENCHES[label]
    except KeyError:
        raise ValueError(f"unknown fig5 bench {label!r}") from None
    return builder(iters)


def fig5_suite(*, iters: int = DEFAULT_ITERS) -> Dict[str, BenchResult]:
    """Every bar of Figure 5, keyed like hw.costs.FIG5_TARGETS_NS."""
    return {label: fig5_bench(label, iters=iters)
            for label in _FIG5_BENCHES}


# -- the raw microbenchmark sweep as a registered figure driver -------------
#
# Unlike fig5 this renders the measured distributions without the
# paper-target comparison — the tool you reach for when tuning the cost
# model rather than checking it.

def points(*, iters: int = DEFAULT_ITERS) -> list:
    from repro.runner.points import PointSpec
    return [PointSpec("microbench", __name__,
                      {"label": label, "iters": iters})
            for label in _FIG5_BENCHES]


def compute_point(*, label: str, iters: int) -> dict:
    return fig5_bench(label, iters=iters).as_point()


def assemble(specs, results) -> str:
    lines = [
        "Microbenchmarks: raw synchronous round trips [ns]",
        "",
        f"{'primitive':<16}{'mean':>10}{'stddev':>9}"
        f"{'p50':>10}{'p95':>10}{'p99':>10}",
        "-" * 65,
    ]
    for spec, result in zip(specs, results):
        lines.append(f"{spec.kwargs['label']:<16}"
                     f"{result['mean_ns']:>10.1f}"
                     f"{result['stddev_ns']:>9.2f}"
                     f"{result['p50_ns']:>10.1f}"
                     f"{result['p95_ns']:>10.1f}"
                     f"{result['p99_ns']:>10.1f}")
    return "\n".join(lines)


from repro.runner.registry import register_figure  # noqa: E402


@register_figure
class MicrobenchDriver:
    """The raw microbenchmark sweep as a first-class experiment."""

    name = "microbench"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        return {"iters": 10 if quick else DEFAULT_ITERS}
