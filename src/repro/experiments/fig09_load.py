"""Figure 9 (repo extension): latency under load for every primitive.

The paper's figures measure *unloaded* round-trip cost; this figure
puts every registered primitive (the paper's five plus the bracketing
mechanisms dpti/odipc) behind the ``repro.load`` harness and sweeps
offered load:

* **open loop** — Poisson arrivals at each rung of ``open_rungs``
  (total kilo-requests/second) through a bounded request queue with
  the *shed* policy; the saturation knee is the highest rung the
  primitive still serves with goodput ≥ :data:`KNEE_GOODPUT`;
* **closed loop** — ``closed_clients`` concurrent clients with 10 µs
  mean think time through a blocking admission gate.

Every (primitive, rung) pair is one :class:`~repro.runner.points.
PointSpec`, so ``--jobs N`` fans the sweep across worker processes
and the result cache reuses unchanged points — byte-identical to the
serial path, like every other figure.

The headline the paper predicts (§7, Figure 5's 64×/8.9× round-trip
advantages compounding under load): dIPC has no service-thread pool to
saturate — callers migrate into the server process and the only limit
is CPU capacity — so its knee sits strictly above every baseline's.
``assemble`` checks exactly that and prints PASS/FAIL.
"""

from __future__ import annotations

from typing import Dict, List

from repro import primitives, units
from repro.load.transports import PRIMITIVES

#: open-loop offered-load ladder, kilo-requests/second
OPEN_RUNGS = (400.0, 800.0, 1600.0, 3200.0, 6400.0)
QUICK_OPEN_RUNGS = (400.0, 1600.0, 3200.0, 6400.0)

#: closed-loop client-population sweep
CLOSED_CLIENTS = (4, 16, 48)
QUICK_CLOSED_CLIENTS = (4, 16)

#: a primitive "still keeps up" at a rung while goodput ≥ this
KNEE_GOODPUT = 0.90

#: closed loop: mean exponential think time between a client's requests
CLOSED_THINK_NS = 10_000.0


def points(*, open_rungs=OPEN_RUNGS, closed_clients=CLOSED_CLIENTS,
           window_ns: float = 2.0 * units.MS,
           warmup_ns: float = 1.0 * units.MS, seed: int = 42) -> list:
    from repro.runner.points import PointSpec
    specs = []
    for primitive in PRIMITIVES:
        for kops in open_rungs:
            specs.append(PointSpec("fig9", __name__, {
                "primitive": primitive, "mode": "open",
                "policy": "shed", "offered_kops": float(kops),
                "window_ns": window_ns, "warmup_ns": warmup_ns,
                "seed": seed}))
    for primitive in PRIMITIVES:
        for n_clients in closed_clients:
            specs.append(PointSpec("fig9", __name__, {
                "primitive": primitive, "mode": "closed",
                "policy": "block", "n_clients": n_clients,
                "queue_depth": 16, "think_ns": CLOSED_THINK_NS,
                "window_ns": window_ns, "warmup_ns": warmup_ns,
                "seed": seed}))
    return specs


def compute_point(**kwargs) -> dict:
    from repro.load import LoadParams, run_load_point
    return run_load_point(LoadParams(**kwargs)).to_point()


def knees(open_points: Dict[str, List[dict]]) -> Dict[str, float]:
    """Highest offered rung per primitive with goodput ≥ the threshold
    (0.0 when even the lowest rung overloads it)."""
    out = {}
    for primitive, rows in open_points.items():
        knee = 0.0
        for row in rows:
            if row["goodput_ratio"] >= KNEE_GOODPUT:
                knee = max(knee, row["offered_kops"])
        out[primitive] = knee
    return out


def verdict_lines(knee_by: Dict[str, float], *,
                  baseline_set=None) -> List[str]:
    """PASS/FAIL lines: every *subject* (primitive not in the baseline
    set) must saturate strictly above the best baseline knee.

    ``baseline_set`` defaults to the registry's untrusted primitives
    restricted to what was actually swept, so the verdict stays correct
    as mechanisms are added — new untrusted ones raise the bar, new
    trusted ones are judged against it.
    """
    if baseline_set is None:
        baseline_set = tuple(p for p in primitives.baseline_names()
                             if p in knee_by)
    subjects = [p for p in knee_by if p not in baseline_set]
    best_baseline = max(knee_by[p] for p in baseline_set)
    lines = []
    for subject in subjects:
        verdict = "PASS" if knee_by[subject] > best_baseline else "FAIL"
        label = _DISPLAY.get(subject, subject)
        lines.append(
            f"{label} saturates above every baseline: {verdict} "
            f"({subject} {knee_by[subject]:.0f} kops vs best baseline "
            f"{best_baseline:.0f} kops)")
    return lines


#: pretty names for verdict headlines
_DISPLAY = {"dipc": "dIPC", "odipc": "odIPC"}


def assemble(specs, results, *, baseline_set=None) -> str:
    # fig9's headline is about *pool* saturation: the baselines are the
    # primitives that drain requests through a worker pool, and every
    # in-process mechanism (dIPC, dpti, odipc) is a subject that must
    # knee above them.  fig12 reuses verdict_lines with its generic
    # untrusted default instead, where dpti *is* the swept baseline.
    if baseline_set is None:
        baseline_set = primitives.names(has_worker_threads=True)
    open_points: Dict[str, List[dict]] = {p: [] for p in PRIMITIVES}
    closed_points: Dict[str, List[dict]] = {p: [] for p in PRIMITIVES}
    for spec, result in zip(specs, results):
        bucket = open_points if spec.kwargs["mode"] == "open" \
            else closed_points
        bucket[spec.kwargs["primitive"]].append(result)

    lines = [
        "Figure 9: latency under load "
        "(open loop, Poisson arrivals, shed policy)",
    ]
    for primitive in PRIMITIVES:
        lines += [
            "",
            f"-- {primitive} " + "-" * (62 - len(primitive)),
            f"{'offered[kops]':>14}{'tput[kops]':>12}{'goodput':>9}"
            f"{'shed':>7}{'p50[us]':>9}{'p95[us]':>9}{'p99[us]':>9}"
            f"{'p999[us]':>10}",
        ]
        for row in open_points[primitive]:
            lines.append(
                f"{row['offered_kops']:>14.0f}"
                f"{row['throughput_kops']:>12.1f}"
                f"{row['goodput_ratio']:>9.2f}"
                f"{row['shed']:>7d}"
                f"{row['p50_ns'] / 1e3:>9.1f}"
                f"{row['p95_ns'] / 1e3:>9.1f}"
                f"{row['p99_ns'] / 1e3:>9.1f}"
                f"{row['p999_ns'] / 1e3:>10.1f}")

    knee_by = knees(open_points)
    lines += [
        "",
        f"saturation knees (highest offered load with goodput >= "
        f"{KNEE_GOODPUT:.2f}):",
    ]
    for primitive in PRIMITIVES:
        lines.append(f"  {primitive:<8}{knee_by[primitive]:>7.0f} kops")
    lines += verdict_lines(knee_by, baseline_set=baseline_set)

    lines += [
        "",
        f"Closed loop (N clients, "
        f"{CLOSED_THINK_NS / 1e3:.0f}us think, block policy)",
        f"{'primitive':<10}{'clients':>8}{'tput[kops]':>12}"
        f"{'p50[us]':>9}{'p99[us]':>9}{'p999[us]':>10}",
        "-" * 58,
    ]
    for primitive in PRIMITIVES:
        for row in closed_points[primitive]:
            lines.append(
                f"{primitive:<10}{row['n_clients']:>8d}"
                f"{row['throughput_kops']:>12.1f}"
                f"{row['p50_ns'] / 1e3:>9.1f}"
                f"{row['p99_ns'] / 1e3:>9.1f}"
                f"{row['p999_ns'] / 1e3:>10.1f}")
    return "\n".join(lines)


def run(quick: bool = False) -> str:
    """Serial in-process path: same decomposition, same rendering."""
    from repro.runner.points import execute_spec
    specs = points(**Fig9Driver.cli_params(quick))
    return assemble(specs, [execute_spec(spec) for spec in specs])


from repro.runner.registry import register_figure  # noqa: E402


@register_figure
class Fig9Driver:
    """The latency-under-load sweep (tentpole of PR 4)."""

    name = "fig9"
    points = staticmethod(points)
    compute_point = staticmethod(compute_point)
    assemble = staticmethod(assemble)

    @staticmethod
    def cli_params(quick: bool) -> dict:
        if quick:
            return {"open_rungs": QUICK_OPEN_RUNGS,
                    "closed_clients": QUICK_CLOSED_CLIENTS,
                    "window_ns": 1.0 * units.MS,
                    "warmup_ns": 0.5 * units.MS}
        return {"open_rungs": OPEN_RUNGS,
                "closed_clients": CLOSED_CLIENTS,
                "window_ns": 2.0 * units.MS,
                "warmup_ns": 1.0 * units.MS}
