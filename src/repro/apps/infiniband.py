"""Simulated Infiniband NIC with a user-level driver (§7.3).

The Table 3 machine carries a Mellanox MT26428; applications drive it
through the ``rsocket`` library and a *user-level driver* that talks to
the NIC directly (doorbells + completion-queue polling), bypassing the
kernel — the upper-bound scenario for I/O performance.

§7.3 interposes the driver's operations behind different isolation
mechanisms and measures the damage. Each message involves a fixed number
of synchronous driver operations (post send, ring doorbell, poll CQ,
replenish receive ring), so the per-operation cost of the isolation
boundary multiplies in.

No additional data copies are introduced by the interposition — requests
carry descriptors, and the NIC DMAs straight from application buffers,
"just as is done in the original driver". For Pipe/Sem the *descriptors*
still cross the IPC channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.hw.costs import CostModel

#: synchronous driver operations per message (post, doorbell, poll CQ,
#: replenish recv ring)
DRIVER_OPS_PER_MSG = 4

#: kernel-driver work per operation beyond the bare syscall
KERNEL_DRIVER_WORK_NS = 6.0

#: a kernel driver's syscall interface batches doorbell+poll per
#: direction, so it crosses only twice per message
KERNEL_OPS_PER_MSG = 2

#: isolation mechanisms of Figure 7, in its legend order
CONFIG_INLINE = "inline"          # the unmodified user-level driver
CONFIG_DIPC = "dipc"              # driver in a domain, same process
CONFIG_DIPC_PROC = "dipc+proc"    # driver in its own dIPC process
CONFIG_KERNEL = "kernel"          # classic kernel driver (syscalls)
CONFIG_SEM = "semaphore"          # driver process, shm + semaphores
CONFIG_PIPE = "pipe"              # driver process, pipes

ISOLATION_CONFIGS = (CONFIG_PIPE, CONFIG_SEM, CONFIG_KERNEL,
                     CONFIG_DIPC_PROC, CONFIG_DIPC)


@dataclass
class NICModel:
    """Latency/bandwidth envelope of the simulated HCA."""

    #: one-way wire+NIC latency floor for a tiny message
    base_latency_ns: float = 800.0
    #: sustained link bandwidth in bytes/ns (10 GigE-class ≈ 1.25 B/ns)
    bandwidth_bpns: float = 1.25

    def one_way_ns(self, size: int) -> float:
        return self.base_latency_ns + size / self.bandwidth_bpns

    def round_trip_ns(self, size: int) -> float:
        # netpipe's ping-pong: the payload travels out, a matching
        # payload comes back
        return 2.0 * self.one_way_ns(size)


class IsolatedDriver:
    """The driver interposed behind one isolation mechanism.

    ``per_call_ns`` — the measured round-trip cost of one synchronous
    driver invocation through the mechanism — is taken from the same
    simulations that produce Figure 5 (see
    ``repro.experiments.fig07_driver.measure_per_call_costs``), so
    Figure 7 and Figure 5 stay mutually consistent.
    """

    def __init__(self, config: str, per_call_ns: float,
                 ops_per_message: int = DRIVER_OPS_PER_MSG):
        self.config = config
        self.per_call_ns = per_call_ns
        self.ops_per_message = ops_per_message

    def overhead_per_message_ns(self) -> float:
        return self.ops_per_message * self.per_call_ns


def inline_per_call_ns(costs: CostModel = None) -> float:
    """The baseline: a driver invocation is a plain function call."""
    costs = costs if costs is not None else CostModel.default()
    return costs.FUNC_CALL


def kernel_per_call_ns(costs: CostModel = None) -> float:
    """Kernel driver: one syscall round trip + driver work."""
    costs = costs if costs is not None else CostModel.default()
    return costs.syscall_empty() + KERNEL_DRIVER_WORK_NS
