"""A netpipe-style benchmark (NPtcp) over the simulated Infiniband NIC.

For each transfer size it reports ping-pong latency and streaming
bandwidth; Figure 7 derives per-size latency/bandwidth *overheads* of
each isolated-driver configuration relative to the inline driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.apps.infiniband import IsolatedDriver, NICModel


@dataclass
class NetpipePoint:
    size: int
    latency_ns: float
    bandwidth_bpns: float


@dataclass
class NetpipeSeries:
    config: str
    points: List[NetpipePoint]

    def latency_overhead_pct(self, baseline: "NetpipeSeries") -> Dict[int, float]:
        out = {}
        for mine, base in zip(self.points, baseline.points):
            assert mine.size == base.size
            out[mine.size] = (mine.latency_ns / base.latency_ns - 1.0) * 100
        return out

    def bandwidth_overhead_pct(self, baseline: "NetpipeSeries") -> Dict[int, float]:
        out = {}
        for mine, base in zip(self.points, baseline.points):
            out[mine.size] = (1.0 - mine.bandwidth_bpns
                              / base.bandwidth_bpns) * 100
        return out


DEFAULT_SIZES = tuple(2 ** i for i in range(0, 13))  # 1 B .. 4 KB


def run_netpipe(nic: NICModel, driver: IsolatedDriver,
                sizes: Iterable[int] = DEFAULT_SIZES) -> NetpipeSeries:
    """One netpipe sweep: RTT/2 latency and synchronous bandwidth.

    The driver overhead is CPU-side and does not overlap the wire time
    in a synchronous ping-pong, so it adds directly to the round trip.
    """
    points = []
    per_message = driver.overhead_per_message_ns()
    for size in sizes:
        round_trip = nic.round_trip_ns(size) + 2 * per_message
        latency = round_trip / 2.0
        bandwidth = size / latency
        points.append(NetpipePoint(size, latency, bandwidth))
    return NetpipeSeries(driver.config, points)
