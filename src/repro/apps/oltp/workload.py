"""DVDStore-like OLTP transaction mix (§7.4's macro-benchmark).

Dell's DVD Store issues a mix of login / browse / purchase style
operations against the three-tier stack. Each transaction here carries
the tier CPU demands and the per-query storage behaviour; a seeded
generator makes runs reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro import units


@dataclass(frozen=True)
class Query:
    """One database query of a transaction."""

    db_cpu_ns: float
    #: probability the query misses the buffer pool (on-disk config only)
    disk_prob: float
    result_bytes: int


@dataclass(frozen=True)
class Transaction:
    """One DVDStore operation."""

    name: str
    weight: int
    apache_cpu_ns: float
    php_cpu_ns: float
    queries: Tuple[Query, ...]
    #: request/response bytes between client and the web tier
    request_bytes: int
    response_bytes: int


def _queries(count: int, db_cpu_us: float, disk_prob: float,
             result_bytes: int = 512) -> Tuple[Query, ...]:
    return tuple(Query(db_cpu_us * units.US, disk_prob, result_bytes)
                 for _ in range(count))


#: The standard mix. CPU demands are calibrated so a full in-memory
#: operation costs ~0.5 ms of CPU in the Ideal configuration, and query
#: counts are at *row fetch* granularity: §7.5 reports ~211 cross-domain
#: calls per operation, i.e. roughly 100 PHP<->DB round trips — the
#: mysql client API fetches result rows one by one.
STANDARD_MIX: List[Transaction] = [
    Transaction("login", weight=2,
                apache_cpu_ns=60 * units.US, php_cpu_ns=150 * units.US,
                queries=_queries(30, db_cpu_us=3.3, disk_prob=0.005),
                request_bytes=512, response_bytes=4096),
    Transaction("browse", weight=5,
                apache_cpu_ns=70 * units.US, php_cpu_ns=220 * units.US,
                queries=_queries(75, db_cpu_us=3.2, disk_prob=0.006,
                                 result_bytes=2048),
                request_bytes=768, response_bytes=16384),
    Transaction("purchase", weight=2,
                apache_cpu_ns=80 * units.US, php_cpu_ns=300 * units.US,
                queries=_queries(100, db_cpu_us=3.5, disk_prob=0.0055),
                request_bytes=1024, response_bytes=8192),
]


class WorkloadGenerator:
    """Reproducible stream of transactions following the mix's weights."""

    def __init__(self, mix: List[Transaction] = None, seed: int = 42):
        self.mix = mix if mix is not None else STANDARD_MIX
        self._rng = random.Random(seed)
        self._weights = [txn.weight for txn in self.mix]
        self.generated = 0

    def next_transaction(self) -> Transaction:
        self.generated += 1
        return self._rng.choices(self.mix, weights=self._weights, k=1)[0]

    def disk_miss(self, query: Query) -> bool:
        return self._rng.random() < query.disk_prob

    def rng(self) -> random.Random:
        return self._rng


def mean_queries_per_op(mix: List[Transaction] = None) -> float:
    mix = mix if mix is not None else STANDARD_MIX
    total_weight = sum(t.weight for t in mix)
    return sum(t.weight * len(t.queries) for t in mix) / total_weight


def mean_cpu_per_op_ns(mix: List[Transaction] = None) -> float:
    """Pure application CPU per operation (the Ideal configuration's
    demand, excluding all communication)."""
    mix = mix if mix is not None else STANDARD_MIX
    total_weight = sum(t.weight for t in mix)
    demand = 0.0
    for txn in mix:
        per_op = (txn.apache_cpu_ns + txn.php_cpu_ns
                  + sum(q.db_cpu_ns for q in txn.queries))
        demand += txn.weight * per_op
    return demand / total_weight
