"""The database's storage layer: an in-memory B-tree-ish store plus a
disk model for the on-disk configuration (§7.4 runs MariaDB on either a
hard disk or tmpfs)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.kernel.thread import Thread
from repro.sim.stats import Block

ON_DISK = "on-disk"
IN_MEMORY = "in-memory"


class Disk:
    """A single-spindle disk: FIFO queue, fixed service time.

    Requests queue behind each other (seek-dominated hard disk); the
    issuing thread blocks for queueing + service, accounted as idle/IO
    wait on its CPU — block 7 of Figure 2.
    """

    def __init__(self, kernel, service_ns: float):
        self.kernel = kernel
        self.service_ns = service_ns
        self._busy_until = 0.0
        self.requests = 0
        self.busy_ns = 0.0

    def read(self, thread: Thread):
        """Sub-generator: one random read, blocking the calling thread."""
        engine = self.kernel.engine
        now = engine.now()
        start = max(now, self._busy_until)
        done = start + self.service_ns
        self._busy_until = done
        self.requests += 1
        self.busy_ns += self.service_ns
        engine.post(done - now, lambda: self.kernel.wake(thread))
        yield thread.block("disk-read")


class StorageEngine:
    """A tiny key-value storage engine with DVDStore-ish tables."""

    def __init__(self, kernel, mode: str = IN_MEMORY, *,
                 disk_service_ns: Optional[float] = None):
        if mode not in (ON_DISK, IN_MEMORY):
            raise ValueError(f"unknown storage mode {mode}")
        self.kernel = kernel
        self.mode = mode
        service = disk_service_ns if disk_service_ns is not None \
            else kernel.costs.HDD_READ
        self.disk = Disk(kernel, service) if mode == ON_DISK else None
        self._tables: Dict[str, Dict[object, object]] = {}
        self.reads = 0
        self.disk_reads = 0

    # -- functional K/V interface -----------------------------------------------

    def put(self, table: str, key, value) -> None:
        self._tables.setdefault(table, {})[key] = value

    def get(self, table: str, key):
        return self._tables.get(table, {}).get(key)

    def scan(self, table: str) -> Dict[object, object]:
        return dict(self._tables.get(table, {}))

    # -- timed access used by the DB tier -----------------------------------------

    def access(self, thread: Thread, *, miss: bool):
        """Sub-generator: one query's storage work. ``miss`` says whether
        the buffer pool missed (decided by the workload generator so runs
        are reproducible)."""
        self.reads += 1
        if self.mode == ON_DISK and miss:
            self.disk_reads += 1
            # buffer-pool miss: a syscall into the block layer + the wait
            yield from thread.syscall(self.kernel.costs.SYSCALL_MINWORK)
            yield from self.disk.read(thread)
        # buffer-pool hit (or tmpfs): the cost is in the DB CPU demand
        yield thread.kwork(0.0, Block.USER)
