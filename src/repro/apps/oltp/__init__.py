"""The §7.4 multi-tier OLTP web server (Apache + PHP + MariaDB) with a
DVDStore-like workload, in Linux / dIPC / Ideal configurations."""

from repro.apps.oltp.harness import (CONFIGS, DEFAULT_WARMUPS,
                                     DEFAULT_WINDOWS, DIPC, IDEAL, LINUX,
                                     OltpParams, OltpResult, params_for,
                                     run_oltp, speedup_table)
from repro.apps.oltp.storage import (IN_MEMORY, ON_DISK, Disk,
                                     StorageEngine)
from repro.apps.oltp.workload import (STANDARD_MIX, Query, Transaction,
                                      WorkloadGenerator,
                                      mean_cpu_per_op_ns,
                                      mean_queries_per_op)

__all__ = [
    "CONFIGS", "DIPC", "IDEAL", "LINUX", "OltpParams", "OltpResult",
    "params_for", "run_oltp", "speedup_table",
    "DEFAULT_WINDOWS", "DEFAULT_WARMUPS",
    "IN_MEMORY", "ON_DISK", "Disk", "StorageEngine",
    "STANDARD_MIX", "Query", "Transaction", "WorkloadGenerator",
    "mean_cpu_per_op_ns", "mean_queries_per_op",
]
