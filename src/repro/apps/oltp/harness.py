"""The multi-tier OLTP web server of §7.4, in its three configurations:

* **linux** — Apache, PHP (FastCGI) and MariaDB as separate processes
  communicating over UNIX sockets (the tuned baseline);
* **dipc** — the three components as dIPC-enabled processes with
  asymmetric isolation policies ("only PHP trusts all other components");
  a request runs *in place* on the Apache worker thread, crossing
  processes through proxies — no service threads;
* **ideal** — the unsafe upper bound: everything in one process, plain
  function calls (PHP as an Apache plugin, libmariadbd embedded).

The harness runs a closed-loop client population of ``concurrency``
Apache workers for a warm-up plus a measurement window and reports
throughput (ops/min, as in Figure 8), mean operation latency and the
machine-wide user/kernel/idle breakdown (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.apps.oltp.storage import IN_MEMORY, ON_DISK, StorageEngine
from repro.apps.oltp.workload import (STANDARD_MIX, Transaction,
                                      WorkloadGenerator)
from repro.core.api import DipcManager
from repro.core.objects import EntryDescriptor, Signature
from repro.core.policies import IsolationPolicy
from repro.ipc.unixsocket import SocketNamespace
from repro.kernel import Kernel
from repro.sim.stats import Block, Breakdown, RunningStats
from repro.topo.generate import sequential_chain
from repro.topo.spec import ROOT

LINUX = "linux"
DIPC = "dipc"
IDEAL = "ideal"

CONFIGS = (LINUX, DIPC, IDEAL)

#: the 3-tier chain of §7.4 declared once as a repro.topo spec
#: (apache -> php -> mariadb). The builders below derive the shared
#: *structure* from it — process spawn order, per-edge socket wiring,
#: dIPC entry/proxy registration order — while the tier bodies keep
#: the workload's idiosyncratic CPU/FastCGI placement.
CHAIN = sequential_chain(("apache", "php", "mariadb"))

#: linux config: process name per service (PHP runs under its FastCGI
#: process manager)
_LINUX_PROC = {"php": "php-fpm"}

#: linux config: well-known inbound socket path per callee service
_SOCK_ALIAS = {"php": "php", "mariadb": "db"}


@dataclass
class OltpParams:
    """Tunables of the macro-benchmark."""

    config: str = LINUX
    storage: str = IN_MEMORY
    concurrency: int = 16
    num_cpus: int = 4
    #: closed-loop client network/think time per operation
    client_delay_ns: float = 250.0 * units.US
    #: FastCGI/protocol user-level encode or decode, per message side
    fcgi_user_ns: float = 350.0
    warmup_ns: float = 60.0 * units.MS
    window_ns: float = 250.0 * units.MS
    seed: int = 42
    mix: List[Transaction] = field(default_factory=lambda: STANDARD_MIX)


@dataclass
class OltpResult:
    config: str
    storage: str
    concurrency: int
    operations: int
    throughput_ops_min: float
    mean_latency_ns: float
    breakdown: Breakdown
    idle_fraction: float
    kernel_fraction: float
    user_fraction: float

    def __repr__(self) -> str:
        return (f"<oltp {self.config}/{self.storage} c={self.concurrency}: "
                f"{self.throughput_ops_min:.0f} ops/min, "
                f"{self.mean_latency_ns / units.MS:.2f}ms, "
                f"idle={self.idle_fraction:.0%}>")


class _Run:
    """Mutable state shared by the worker threads of one run."""

    def __init__(self, params: OltpParams):
        self.params = params
        self.kernel = Kernel(num_cpus=params.num_cpus)
        self.workload = WorkloadGenerator(params.mix, seed=params.seed)
        self.storage: Optional[StorageEngine] = None
        self.measuring = False
        self.operations = 0
        self.latency = RunningStats()

    def record(self, latency_ns: float) -> None:
        if self.measuring:
            self.operations += 1
            self.latency.add(latency_ns)


def _php_chunks(txn: Transaction) -> float:
    """PHP CPU is spent in slices between its database calls."""
    return txn.php_cpu_ns / (len(txn.queries) + 1)


def _db_work(run: _Run, t, query):
    """The database side of one query: CPU + storage."""
    yield t.compute(query.db_cpu_ns)
    yield from run.storage.access(t, miss=run.workload.disk_miss(query))


# ---------------------------------------------------------------------------
# Linux configuration
# ---------------------------------------------------------------------------

def _build_linux(run: _Run):
    kernel = run.kernel
    params = run.params
    ns = SocketNamespace()
    procs = {}
    for node_id in CHAIN.topological_order():
        name = CHAIN.nodes[node_id].name
        procs[node_id] = kernel.spawn_process(
            _LINUX_PROC.get(name, name))
    apache, php, mariadb = (procs[node_id]
                            for node_id in CHAIN.topological_order())
    run.storage = StorageEngine(kernel, params.storage)
    big = 64 * units.MB
    socks = {}
    for edge in CHAIN.edges:
        sock = ns.socket(kernel, bufsize=big)
        sock.bind(f"/oltp/{_SOCK_ALIAS[CHAIN.nodes[edge.dst].name]}")
        socks[(edge.src, edge.dst)] = sock
    php_sock = socks[(0, 1)]
    db_sock = socks[(1, 2)]
    fcgi = params.fcgi_user_ns

    def db_worker(t):
        while True:
            request, _ = yield from db_sock.recvfrom(t)
            yield t.compute(fcgi)
            yield from _db_work(run, t, request["query"])
            yield t.compute(fcgi)
            yield from db_sock.sendto(t, request["reply_to"],
                                      request["query"].result_bytes,
                                      payload={"rows": "..."})

    def php_worker(t, index):
        reply = ns.socket(kernel, bufsize=big)
        reply.bind(f"/oltp/php/worker{index}")
        while True:
            request, _ = yield from php_sock.recvfrom(t)
            txn = request["txn"]
            yield t.compute(fcgi)
            chunk = _php_chunks(txn)
            yield t.compute(chunk)
            for query in txn.queries:
                yield t.compute(fcgi)
                yield from reply.sendto(t, db_sock.path, 256, payload={
                    "query": query, "reply_to": reply.path})
                yield from reply.recvfrom(t)
                yield t.compute(chunk)
            yield t.compute(fcgi)
            yield from reply.sendto(t, request["reply_to"],
                                    txn.response_bytes,
                                    payload={"page": "..."})

    def apache_worker(t, index):
        reply = ns.socket(kernel, bufsize=big)
        reply.bind(f"/oltp/apache/worker{index}")
        while True:
            yield from t.sleep(params.client_delay_ns)
            start = t.now()
            txn = run.workload.next_transaction()
            yield t.compute(txn.apache_cpu_ns * 0.6)
            yield t.compute(fcgi)
            yield from reply.sendto(t, php_sock.path, txn.request_bytes,
                                    payload={"txn": txn,
                                             "reply_to": reply.path})
            yield from reply.recvfrom(t)
            yield t.compute(fcgi)
            yield t.compute(txn.apache_cpu_ns * 0.4)
            run.record(t.now() - start)

    for i in range(params.concurrency):
        kernel.spawn(mariadb, db_worker, name=f"db{i}")
        kernel.spawn(php, lambda t, i=i: php_worker(t, i), name=f"php{i}")
        kernel.spawn(apache, lambda t, i=i: apache_worker(t, i),
                     name=f"ap{i}")


# ---------------------------------------------------------------------------
# dIPC configuration
# ---------------------------------------------------------------------------

def _build_dipc(run: _Run):
    kernel = run.kernel
    params = run.params
    manager = DipcManager(kernel)
    order = CHAIN.topological_order()
    procs = {node_id: kernel.spawn_process(CHAIN.nodes[node_id].name,
                                           dipc=True)
             for node_id in order}
    apache_id, php_id, db_id = order
    run.storage = StorageEngine(kernel, params.storage)

    # --- the database exports 'query'; PHP exports 'handle_request'.
    # A request runs in place on the Apache worker thread, crossing
    # tiers through proxies whose addresses land in ``addresses`` ---
    def db_query(t, query):
        result = yield from _db_work(run, t, query)
        return result

    def php_handle(t, txn):
        chunk = _php_chunks(txn)
        yield t.compute(chunk)
        for query in txn.queries:
            yield from manager.call(t, addresses[(php_id, db_id)],
                                    query)
            yield t.compute(chunk)
        return {"page": "..."}

    exports = {db_id: (db_query, "query"),
               php_id: (php_handle, "handle_request")}
    #: asymmetric trust ("only PHP trusts all other components"): the
    #: database protects itself from PHP; Apache asks for integrity on
    #: its registers/stack since it does not trust PHP; PHP requests
    #: nothing in either role
    server_policy = {
        db_id: IsolationPolicy(stack_confidentiality=True,
                               dcs_integrity=True),
        php_id: IsolationPolicy(),
    }
    request_policy = {
        php_id: IsolationPolicy(),
        apache_id: IsolationPolicy(reg_integrity=True,
                                   stack_integrity=True,
                                   dcs_integrity=True),
    }

    # callee-first wiring (reversed topological order): register each
    # tier's entry, then hand a proxy to every caller on an inbound
    # edge of the chain spec
    addresses = {}
    for dst in reversed(order):
        if dst == ROOT:
            continue
        func, entry_name = exports[dst]
        entry = manager.entry_register(
            procs[dst], manager.dom_default(procs[dst]),
            [EntryDescriptor(signature=Signature(in_regs=1, out_regs=1),
                             policy=server_policy[dst],
                             func=func, name=entry_name)])
        for src in CHAIN.parents(dst):
            request = [EntryDescriptor(
                signature=Signature(in_regs=1, out_regs=1),
                policy=request_policy[src], name=entry_name)]
            proxy_handle, _ = manager.entry_request(procs[src], entry,
                                                    request)
            manager.grant_create(manager.dom_default(procs[src]),
                                 proxy_handle)
            addresses[(src, dst)] = request[0].address

    def apache_worker(t):
        while True:
            yield from t.sleep(params.client_delay_ns)
            start = t.now()
            txn = run.workload.next_transaction()
            yield t.compute(txn.apache_cpu_ns * 0.6)
            yield from manager.call(t, addresses[(apache_id, php_id)],
                                    txn)
            yield t.compute(txn.apache_cpu_ns * 0.4)
            run.record(t.now() - start)

    for i in range(params.concurrency):
        kernel.spawn(procs[apache_id], apache_worker, name=f"ap{i}")


# ---------------------------------------------------------------------------
# Ideal (unsafe) configuration
# ---------------------------------------------------------------------------

def _build_ideal(run: _Run):
    kernel = run.kernel
    params = run.params
    server = kernel.spawn_process("monolith")
    run.storage = StorageEngine(kernel, params.storage)
    call = kernel.costs.FUNC_CALL

    def worker(t):
        while True:
            yield from t.sleep(params.client_delay_ns)
            start = t.now()
            txn = run.workload.next_transaction()
            yield t.compute(txn.apache_cpu_ns * 0.6)
            yield t.compute(call)               # apache -> mod_php
            chunk = _php_chunks(txn)
            yield t.compute(chunk)
            for query in txn.queries:
                yield t.compute(call)           # php -> libmariadbd
                yield from _db_work(run, t, query)
                yield t.compute(chunk)
            yield t.compute(txn.apache_cpu_ns * 0.4)
            run.record(t.now() - start)

    for i in range(params.concurrency):
        kernel.spawn(server, worker, name=f"w{i}")


_BUILDERS = {LINUX: _build_linux, DIPC: _build_dipc, IDEAL: _build_ideal}


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_oltp(params: OltpParams) -> OltpResult:
    """Build and run one configuration; return its measurements."""
    if params.config not in _BUILDERS:
        raise ValueError(f"unknown config {params.config}")
    run = _Run(params)
    _BUILDERS[params.config](run)
    engine = run.kernel.engine
    machine = run.kernel.machine

    def start_measuring():
        machine.flush_idle()
        machine.reset_accounts()
        run.measuring = True

    engine.post(params.warmup_ns, start_measuring)
    run.kernel.run(until_ns=params.warmup_ns + params.window_ns)
    run.kernel.check()
    machine.flush_idle()
    breakdown = machine.total_account()
    modes = breakdown.by_mode()
    total = sum(modes.values()) or 1.0
    window_min = params.window_ns / units.MINUTE
    return OltpResult(
        config=params.config, storage=params.storage,
        concurrency=params.concurrency, operations=run.operations,
        throughput_ops_min=run.operations / window_min,
        mean_latency_ns=run.latency.mean,
        breakdown=breakdown,
        idle_fraction=modes["idle"] / total,
        kernel_fraction=modes["kernel"] / total,
        user_fraction=modes["user"] / total)


#: measurement windows long enough for several multiples of the highest
#: closed-loop latency at each concurrency (§7.1 runs 3 simulated minutes;
#: we scale down — throughput is a rate, longer only shrinks noise)
DEFAULT_WINDOWS = {4: 150, 16: 150, 64: 250, 256: 600, 512: 1100}
DEFAULT_WARMUPS = {4: 60, 16: 60, 64: 100, 256: 250, 512: 400}


def params_for(config: str, storage: str, concurrency: int,
               *, scale: float = 1.0) -> OltpParams:
    """Standard Figure 8 parameters with concurrency-scaled windows.

    ``scale`` shrinks the measurement window (for quick tests).
    """
    window = DEFAULT_WINDOWS.get(concurrency, 300) * units.MS * scale
    warmup = DEFAULT_WARMUPS.get(concurrency, 100) * units.MS * scale
    return OltpParams(config=config, storage=storage,
                      concurrency=concurrency,
                      window_ns=window, warmup_ns=max(warmup, 40 * units.MS))


def speedup_table(storage: str, concurrencies=(4, 16, 64, 256, 512), *,
                  scale: float = 1.0) -> Dict[str, Dict[int, float]]:
    """Figure 8: throughput of every config at every concurrency."""
    table: Dict[str, Dict[int, float]] = {c: {} for c in CONFIGS}
    for concurrency in concurrencies:
        for config in CONFIGS:
            result = run_oltp(params_for(config, storage, concurrency,
                                         scale=scale))
            table[config][concurrency] = result.throughput_ops_min
    return table
