"""Workload applications: the OLTP web stack, the Infiniband NIC model
and the netpipe benchmark."""
