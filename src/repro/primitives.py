"""First-class registry of isolation primitives.

Every IPC mechanism the reproduction models — the paper's five
(pipe/socket/rpc/l4/dipc) plus the bracketing mechanisms from the
related work (dpti, odipc) — is declared exactly once, as a
:class:`PrimitiveSpec`, in ``repro.load.transports``.  The load
harness, the topology engine, the shard cost model and the figure
drivers all query this registry instead of keeping parallel hardcoded
tuples, so a new mechanism registers once and shows up everywhere.

Capability flags replace the scattered ``primitive == "dipc"`` string
comparisons that used to gate behaviour at each call site:

``trusted``
    the mechanism runs callee code inside the trusted dIPC runtime
    (needs a :class:`~repro.core.api.DipcManager`, registered entry
    points and ``dipc=True`` processes).
``in_process``
    a call executes inline on the caller's thread — no server-side
    worker threads, no queueing station of its own.
``has_worker_threads``
    the server spawns a worker pool that the load harness must size,
    supervise and respawn.
``bounded_capacity``
    concurrent in-service requests are limited by the worker pool (the
    shard model gives such primitives a finite station capacity).

The spec also carries the analytic cut-edge leg costs the PDES shard
model uses for lookahead (``request_leg`` / ``reply_leg``), so
``repro.shard.costs`` needs no per-primitive if-chain either.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Union


@dataclass(frozen=True)
class Capabilities:
    """What a primitive needs from (and promises to) the stack."""

    trusted: bool = False
    in_process: bool = False
    has_worker_threads: bool = True
    bounded_capacity: bool = True


#: leg-cost callable: ``(costs, cache, size) -> ns`` for one direction
LegCost = Callable[[object, object, int], float]

#: a class, or a lazy ``"module:attr"`` reference resolved on first use
ClassRef = Union[type, str]


def _resolve(ref: ClassRef) -> type:
    if isinstance(ref, str):
        module_name, _, attr = ref.partition(":")
        if not attr:
            raise ValueError(f"class reference {ref!r} is not 'module:attr'")
        return getattr(importlib.import_module(module_name), attr)
    return ref


@dataclass
class PrimitiveSpec:
    """One registered isolation mechanism."""

    name: str
    transport_ref: ClassRef
    hop_ref: ClassRef
    capabilities: Capabilities
    #: analytic cost of one request crossing a shard cut edge
    request_leg: Optional[LegCost] = None
    #: analytic cost of the matching reply leg; when ``None`` the
    #: request leg is reused at the reply size
    reply_leg: Optional[LegCost] = None
    _transport_cls: Optional[type] = field(default=None, repr=False)
    _hop_cls: Optional[type] = field(default=None, repr=False)

    def transport(self) -> type:
        """The ``repro.load`` transport class (resolved lazily)."""
        if self._transport_cls is None:
            self._transport_cls = _resolve(self.transport_ref)
        return self._transport_cls

    def hop(self) -> type:
        """The ``repro.topo`` hop class (resolved lazily — hop classes
        live in ``repro.topo.instantiate``, which must stay importable
        without dragging in the load layer and vice versa)."""
        if self._hop_cls is None:
            self._hop_cls = _resolve(self.hop_ref)
        return self._hop_cls


_REGISTRY: dict = {}


def register_primitive(name: str,
                       transport_cls: Optional[ClassRef] = None,
                       hop_cls: Optional[ClassRef] = None,
                       capabilities: Optional[Capabilities] = None,
                       *,
                       request_leg: Optional[LegCost] = None,
                       reply_leg: Optional[LegCost] = None):
    """Register an isolation primitive.

    Usable directly::

        register_primitive("pipe", PipeTransport,
                           "repro.topo.instantiate:_PipeHop",
                           Capabilities(), request_leg=_pipe_leg)

    or as a class decorator (``transport_cls`` omitted)::

        @register_primitive("pipe", hop_cls=..., capabilities=...)
        class PipeTransport(Transport): ...
    """
    caps = capabilities if capabilities is not None else Capabilities()

    def _register(cls: ClassRef):
        if name in _REGISTRY:
            raise ValueError(f"primitive {name!r} is already registered")
        if isinstance(cls, type):
            for attr in ("build", "call", "rebuild_pool"):
                if not hasattr(cls, attr):
                    raise TypeError(
                        f"transport class {cls.__name__} for {name!r} "
                        f"lacks required attribute {attr!r}")
            declared = getattr(cls, "has_worker_threads", True)
            if bool(declared) != caps.has_worker_threads:
                raise ValueError(
                    f"primitive {name!r}: transport class declares "
                    f"has_worker_threads={declared!r} but capabilities "
                    f"say {caps.has_worker_threads!r}")
        _REGISTRY[name] = PrimitiveSpec(
            name=name, transport_ref=cls, hop_ref=hop_cls,
            capabilities=caps, request_leg=request_leg,
            reply_leg=reply_leg)
        return cls

    if transport_cls is None:
        return _register
    _register(transport_cls)
    return _REGISTRY[name]


def _ensure_loaded() -> None:
    """Primitives self-register when the transport module is imported;
    make sure that has happened before answering queries."""
    if not _REGISTRY:
        importlib.import_module("repro.load.transports")


def get(name: str) -> PrimitiveSpec:
    """Look up one primitive; raises ``KeyError`` naming the options."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown primitive {name!r} "
                       f"(registered: {', '.join(_REGISTRY)})") from None


def names(**flags: bool) -> tuple:
    """Registered primitive names, in registration order, optionally
    filtered by capability flags: ``names(trusted=False)`` returns the
    untrusted baselines."""
    _ensure_loaded()
    out = []
    for spec in _REGISTRY.values():
        if all(getattr(spec.capabilities, flag) == want
               for flag, want in flags.items()):
            out.append(spec.name)
    return tuple(out)


def specs() -> tuple:
    _ensure_loaded()
    return tuple(_REGISTRY.values())


def baseline_names() -> tuple:
    """The untrusted mechanisms — the comparison set the paper's
    positional claims are made against."""
    return names(trusted=False)
