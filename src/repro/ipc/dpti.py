"""DPTI — tagged-page-table domain switching (arxiv 2111.10876).

A DPTI domain call traps into the kernel, which validates a domain
descriptor and switches to the callee domain's PCID-tagged page table
*without flushing the TLB*, then runs the callee inline on the
caller's thread.  That puts it squarely between the classic baselines
and dIPC:

* unlike pipes/sockets/L4 there is **no thread switch** — the caller's
  thread executes the callee, so no context switch, no scheduler pass,
  no worker pool on the far side;
* unlike dIPC it **still traps**: syscall entry/exit, a kernel gate
  and two tagged CR3 writes per round trip, plus kernel-mediated
  argument copies (no capability passing).

Peer-death hardening follows the PR 2 pattern of the other endpoints:
the kernel keeps a table of live tagged-PT contexts
(``kernel.dpti_domains``: pcid → owner process).  When the owner dies,
the kill hook retires the PCID *before* any visitor can resume — a
dangling tagged entry would be a protection hole — and every thread
currently executing inside the domain is unwound with
:class:`~repro.errors.PeerResetError`.  Invariant A10 in
``repro.fault.auditor`` checks the table never references a dead
process.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.errors import PeerResetError
from repro.kernel.thread import Thread
from repro.sim.stats import Block


def domain_table(kernel) -> dict:
    """The kernel's live tagged-PT contexts (pcid → owner process),
    created on first use so kernels without DPTI pay nothing."""
    table = getattr(kernel, "dpti_domains", None)
    if table is None:
        table = {}
        kernel.dpti_domains = table
    return table


def copy_gate_ns(costs, cache, size: int) -> float:
    """One kernel-mediated argument copy at the domain gate: memcpy
    plus per-page mapping checks on large transfers (the kernel must
    validate both domains' mappings before touching the data)."""
    if size <= 0:
        return 0.0
    ns = cache.copy_ns(size, startup=costs.MEMCPY_STARTUP)
    if size > units.PAGE_SIZE:
        ns += units.pages_for(size) * costs.KERNEL_COPY_PAGE_CHECK
    return ns


def kernel_copy_ns(kernel, size: int) -> float:
    return copy_gate_ns(kernel.costs, kernel.machine.cache, size)


class DptiEndpoint:
    """A callable domain: a handler generator owned by a process.

    ``handler(thread, payload)`` is a sub-generator run inline on the
    *caller's* thread after the tagged-PT switch; its return value is
    copied back as the reply.
    """

    def __init__(self, kernel, handler=None):
        self.kernel = kernel
        self.handler = handler
        self.pcid: Optional[int] = None
        self.calls = 0
        self.hung_up = False
        self._owner = None
        #: threads currently executing inside the domain (list, not
        #: set: unwind order on owner death must be deterministic)
        self._visiting: list = []
        self._kill_hook_installed = False

    # -- lifecycle ---------------------------------------------------------------

    def bind_owner(self, process) -> None:
        """Tie the domain to its owner process and allocate a fresh
        PCID-tagged page-table context for it.  Re-binding (after a
        supervisor respawn) retires the old tag first — a reborn
        domain must never be reachable through its predecessor's
        PCID."""
        table = domain_table(self.kernel)
        if self.pcid is not None:
            table.pop(self.pcid, None)
        self.pcid = getattr(self.kernel, "_dpti_next_pcid", 1)
        self.kernel._dpti_next_pcid = self.pcid + 1
        self._owner = process
        self.hung_up = False
        table[self.pcid] = process
        if not self._kill_hook_installed:
            self._kill_hook_installed = True
            self.kernel.on_process_kill(self._on_process_kill)

    def _on_process_kill(self, process) -> None:
        if process is not self._owner or self.hung_up:
            return
        self.hung_up = True
        # retire the tagged-PT context first: no visitor may re-enter
        # (or resume) through a stale PCID once the owner is gone
        domain_table(self.kernel).pop(self.pcid, None)
        for thread in list(self._visiting):
            # threads of the dying process itself are unwound by
            # kill_process before hooks run; skip anything already
            # done or being torn down
            if thread.is_done or not thread.process.alive:
                continue
            thread.pending_exception = PeerResetError(
                f"dpti domain owner {process.name} died mid-call")
            self.kernel.wake(thread)
        self._visiting.clear()

    # -- the call ----------------------------------------------------------------

    def call(self, thread: Thread, payload=None, *,
             size: int = 0, reply_size: int = 0):
        """Sub-generator: one domain call round trip.

        ``size`` / ``reply_size`` bytes are copied by the kernel gate
        in each direction (DPTI has no capability passing).
        """
        costs = self.kernel.costs
        tracer = self.kernel.tracer
        span = tracer.begin("dpti.call", "ipc", thread=thread) \
            if tracer.enabled else None
        # request leg: stub, trap, gate, tagged switch
        yield thread.kwork(costs.DPTI_USER_STUB, Block.USER)
        yield thread.kwork(costs.SYSCALL_HW, Block.SYSCALL)
        yield thread.kwork(costs.DPTI_KERNEL_PATH, Block.KERNEL)
        if self.hung_up or self._owner is None or not self._owner.alive:
            if span is not None:
                tracer.end(span, args={"fault": "hangup"})
            raise PeerResetError("dpti domain owner is dead")
        if size:
            yield thread.kwork(kernel_copy_ns(self.kernel, size),
                               Block.KERNEL)
        yield thread.kwork(costs.DPTI_SWITCH, Block.PTSW)
        self.calls += 1
        self._visiting.append(thread)
        try:
            reply = yield from self.handler(thread, payload)
        finally:
            # leave the domain on *any* path — normal return, an
            # exception from the handler, or an unwind injected at a
            # yield inside it (timeout, kill, peer reset)
            if thread in self._visiting:
                self._visiting.remove(thread)
        if self.hung_up:
            # the owner died while we were inside and the handler
            # swallowed the injected unwind (e.g. a nested hop treated
            # it as a downstream fault): the domain no longer exists,
            # so there is no return gate to go through
            if span is not None:
                tracer.end(span, args={"fault": "hangup"})
            raise PeerResetError("dpti domain owner died mid-call")
        # return leg: tagged switch back, reply copy, half-gate, exit
        yield thread.kwork(costs.DPTI_SWITCH, Block.PTSW)
        if reply_size:
            yield thread.kwork(kernel_copy_ns(self.kernel, reply_size),
                               Block.KERNEL)
        yield thread.kwork(0.5 * costs.DPTI_KERNEL_PATH, Block.KERNEL)
        yield thread.kwork(costs.SYSCALL_HW, Block.SYSCALL)
        if span is not None:
            tracer.end(span)
        return reply
