"""XDR-style (de)marshalling cost model, as used by glibc's rpcgen.

Marshalling is *user* time (block 1) — the paper's Figure 2 attributes
RPC's large user-side cost to exactly this code, and §2.2 lists
"(de)marshal the arguments and results" among the application-side
overheads that dIPC eliminates by passing references.
"""

from __future__ import annotations

from repro.kernel.thread import Thread
from repro.sim.stats import Block


class XDRCodec:
    """Encode/decode with a fixed per-message cost plus a per-byte copy."""

    def __init__(self, kernel):
        self.kernel = kernel

    def _ns(self, size: int) -> float:
        costs = self.kernel.costs
        cache = self.kernel.machine.cache
        return costs.XDR_BASE + cache.copy_ns(
            size, startup=costs.MEMCPY_STARTUP)

    def encode(self, thread: Thread, size: int, payload=None):
        """Sub-generator: serialize ``size`` bytes; returns wire message."""
        yield thread.kwork(self._ns(size), Block.USER)
        return {"size": size, "payload": payload}

    def decode(self, thread: Thread, wire):
        """Sub-generator: deserialize a wire message; returns payload."""
        size = wire["size"] if wire else 0
        yield thread.kwork(self._ns(size), Block.USER)
        return wire["payload"] if wire else None
