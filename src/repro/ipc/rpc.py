"""Local RPC over UNIX sockets, rpcgen-style (§2.2's "Local RPC").

The client stub marshals arguments, sends the request datagram, and
blocks for the reply; a *service thread* in the server process
demultiplexes requests to registered handler functions. All the costs
the paper's Figure 2 decomposes are here: XDR user time, clnt/svc
library bookkeeping, socket syscalls with kernel copies, and the
context switches between the two processes.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict

from repro.errors import KernelError, PeerResetError, SocketTimeout
from repro.ipc.unixsocket import SocketNamespace, UnixSocket
from repro.ipc.xdr import XDRCodec
from repro.kernel.process import Process
from repro.kernel.thread import Thread
from repro.sim.stats import Block

_xid = itertools.count(1)

_SHUTDOWN = "__rpc_shutdown__"


class RpcServer:
    """An rpcgen-style server: bind, register programs, run svc loop."""

    def __init__(self, kernel, process: Process, namespace: SocketNamespace,
                 path: str, *, bufsize: int = None):
        self.kernel = kernel
        self.process = process
        self.codec = XDRCodec(kernel)
        self.sock = namespace.socket(kernel) if bufsize is None \
            else namespace.socket(kernel, bufsize=bufsize)
        self.sock.bind(path)
        # peer death => ECONNRESET for clients, not an infinite wait
        self.sock.bind_owner(process)
        self.path = path
        self._handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        self._stopping = False

    def register(self, name: str, handler: Callable) -> None:
        """Register a handler: a sub-generator ``handler(thread, payload)``
        returning (reply_size, reply_payload)."""
        self._handlers[name] = handler

    def serve_loop(self, thread: Thread):
        """Thread body for the service thread (svc_run)."""
        costs = self.kernel.costs
        while not self._stopping:
            request, _sender = yield from self.sock.recvfrom(thread)
            if request is None:
                return
            # svc_getreq: poll bookkeeping + request demultiplexing
            tracer = self.kernel.tracer
            span = tracer.begin("rpc.serve", "ipc", thread=thread) \
                if tracer.enabled else None
            yield thread.kwork(costs.RPC_SERVER_USER, Block.USER)
            body = yield from self.codec.decode(thread, request)
            name = body["proc"]
            if name == _SHUTDOWN:
                self._stopping = True
                return
            handler = self._handlers.get(name)
            if handler is None:
                reply_size, reply = 4, KernelError(f"no such proc {name}")
            else:
                reply_size, reply = yield from handler(thread,
                                                       body["args"])
            wire = yield from self.codec.encode(
                thread, reply_size,
                {"xid": body["xid"], "result": reply})
            yield from self.sock.sendto(thread, body["reply_to"],
                                        reply_size, wire)
            self.requests_served += 1
            if span is not None:
                tracer.end(span, args={"proc": name})

    def stop(self) -> None:
        self._stopping = True
        self.sock.close()


class RpcClient:
    """An rpcgen-style client handle (clnt_create + clnt_call)."""

    def __init__(self, kernel, process: Process, namespace: SocketNamespace,
                 server_path: str, *, bufsize: int = None,
                 retries: int = 0,
                 reply_timeout_ns: float = None,
                 client_path: str = None):
        self.kernel = kernel
        self.process = process
        self.codec = XDRCodec(kernel)
        self.namespace = namespace
        self.server_path = server_path
        self.sock = namespace.socket(kernel) if bufsize is None \
            else namespace.socket(kernel, bufsize=bufsize)
        # callers that need reproducible namespaces pass client_path
        self.sock.bind(client_path or f"{server_path}#client-{id(self)}")
        self.sock.bind_owner(process)
        self.calls = 0
        #: retransmit budget per call; 0 (the default) keeps the classic
        #: block-forever clnt_call so benchmark timings are unchanged
        self.retries = retries
        #: per-attempt reply deadline; required for retries to trigger
        self.reply_timeout_ns = reply_timeout_ns
        self.retransmits = 0

    def call(self, thread: Thread, proc: str, size: int, args=None):
        """Sub-generator: clnt_call — returns the handler's reply payload.

        With ``reply_timeout_ns`` set, each attempt waits that long for
        the reply; on expiry the same request (same xid, rpcgen-style) is
        retransmitted up to ``retries`` times with exponential backoff,
        after which :class:`SocketTimeout` propagates. Replies to earlier
        timed-out attempts are recognized by their stale xid and dropped.
        """
        costs = self.kernel.costs
        xid = next(_xid)
        tracer = self.kernel.tracer
        span = tracer.begin("rpc.call", "ipc", thread=thread,
                            args={"proc": proc, "size": size}) \
            if tracer.enabled else None
        # clnt_call bookkeeping: xid management, timeout setup, retransmit
        yield thread.kwork(costs.RPC_CLIENT_USER, Block.USER)
        wire = yield from self.codec.encode(
            thread, size,
            {"xid": xid, "proc": proc, "args": args,
             "reply_to": self.sock.path})
        attempt = 0
        while True:
            try:
                yield from self.sock.sendto(thread, self.server_path,
                                            size, wire)
                while True:
                    reply_wire, _sender = yield from self.sock.recvfrom(
                        thread, timeout_ns=self.reply_timeout_ns)
                    if reply_wire is None:
                        raise PeerResetError(
                            f"RPC server {self.server_path} hung up")
                    body = yield from self.codec.decode(thread, reply_wire)
                    if body["xid"] == xid:
                        break
                    # a straggler reply to an attempt we already gave up
                    # on: drop it and keep waiting for ours
                break
            except SocketTimeout:
                if attempt >= self.retries:
                    if span is not None:
                        tracer.end(span, args={"fault": "timeout",
                                               "attempts": attempt + 1})
                    raise
                backoff = costs.RPC_RETRY_BACKOFF * (2 ** attempt)
                attempt += 1
                self.retransmits += 1
                yield thread.kwork(costs.RPC_RETRY_WORK, Block.USER)
                yield from thread.sleep(backoff)
            except (PeerResetError, KernelError):
                if span is not None:
                    tracer.end(span, args={"fault": "reset"})
                raise
        self.calls += 1
        if span is not None:
            tracer.end(span)
        result = body["result"]
        if isinstance(result, Exception):
            raise result
        return result

    def shutdown_server(self, thread: Thread):
        """Sub-generator: deliver the shutdown sentinel to the svc loop."""
        wire = yield from self.codec.encode(
            thread, 4, {"xid": next(_xid), "proc": _SHUTDOWN, "args": None,
                        "reply_to": self.sock.path})
        yield from self.sock.sendto(thread, self.server_path, 4, wire)
