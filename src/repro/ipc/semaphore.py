"""POSIX semaphores, futex-backed — the "Sem." bars of Figures 2/5/6."""

from __future__ import annotations

from repro.kernel.futex import Futex
from repro.kernel.thread import Thread


class Semaphore:
    """sem_t: a counting semaphore whose slow path is a futex."""

    def __init__(self, kernel, value: int = 0):
        self.kernel = kernel
        self._futex = Futex(kernel, value)

    def post(self, thread: Thread):
        """Sub-generator: sem_post. glibc's fast path is a user-space
        atomic, but with a waiter present it always enters FUTEX_WAKE —
        the synchronous ping-pong of the benchmarks is all slow path."""
        yield from self._futex.wake(thread)

    def wait(self, thread: Thread):
        """Sub-generator: sem_wait (FUTEX_WAIT slow path)."""
        yield from self._futex.wait(thread)

    @property
    def value(self) -> int:
        return self._futex.value

    @property
    def waiters(self) -> int:
        return self._futex.waiter_count
