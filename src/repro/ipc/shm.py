"""Pre-shared memory buffers for semaphore-based IPC (§2.2).

The Sem. configuration of Figure 2 communicates through a buffer both
processes agreed on beforehand. §2.2 notes the catch: applications must
agree on sizes in advance, and data that arrived through a *different*
buffer must still be copied into this one — which is where Sem.'s
argument-size cost in Figure 6 comes from.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.thread import Thread
from repro.sim.stats import Block


class SharedBuffer:
    """A fixed-size buffer mapped by two (or more) processes."""

    def __init__(self, kernel, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.payload = None
        self.payload_size = 0

    def populate(self, thread: Thread, size: int, payload=None, *,
                 extra_copy: bool = True):
        """Sub-generator: the producer fills the buffer (user time).

        ``extra_copy=True`` models the common case where the data lives
        elsewhere and must be copied in, on top of writing it.
        """
        if size > self.capacity:
            raise ValueError(
                f"message of {size} exceeds pre-agreed capacity "
                f"{self.capacity} — shared buffers cannot grow on demand")
        cache = self.kernel.machine.cache
        costs = self.kernel.costs
        ns = cache.copy_ns(size, startup=costs.MEMCPY_STARTUP) if extra_copy \
            else cache.touch_ns(size)
        yield thread.kwork(ns, Block.USER)
        self.payload = payload
        self.payload_size = size

    def consume(self, thread: Thread, *, copy_out: bool = False):
        """Sub-generator: the consumer reads the buffer in place
        (or copies it out when it must outlive the exchange)."""
        cache = self.kernel.machine.cache
        costs = self.kernel.costs
        size = self.payload_size
        ns = cache.copy_ns(size, startup=costs.MEMCPY_STARTUP) if copy_out \
            else cache.touch_ns(size)
        if ns > 0:
            yield thread.kwork(ns, Block.USER)
        return self.payload
