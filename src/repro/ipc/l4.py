"""L4 Fiasco.OC-style synchronous IPC (§2.2's "L4" bars).

L4's fast path passes the message inline in registers, performs a
*direct* thread switch (no general scheduler pass) and keeps the kernel
path short — which is why it lands two orders of magnitude under POSIX
IPC yet is still 474× a function call (page-table switch + syscall
entry remain). Cross-CPU, it degrades to the IPI wake path like any
other primitive.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import KernelError, PeerResetError
from repro.kernel.effects import Handoff
from repro.kernel.thread import Thread
from repro.sim.stats import Block

#: wake value delivered to callers when the endpoint's owner dies
_HANGUP = object()


class L4Endpoint:
    """A rendezvous endpoint owned by a server thread."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._server: Optional[Thread] = None
        self._pending: Deque[Tuple[Thread, object]] = deque()
        self.calls = 0
        #: callers currently waiting for a reply (list, not set: wake
        #: order on hangup must be deterministic)
        self._outstanding: list = []
        #: per-caller call counter — bumped on every ``call`` entry, so
        #: a reply can be matched against the *specific* call it answers
        self._epoch: dict = {}
        #: the caller epoch in force when the server took each request
        self._serving: dict = {}
        self.hung_up = False
        self._owner = None
        self._kill_hook_installed = False

    def bind_owner(self, process) -> None:
        """Tie the endpoint to its server's process: if that process is
        killed, queued and in-flight callers get :class:`PeerResetError`
        instead of blocking forever."""
        self._owner = process
        if not self._kill_hook_installed:
            self._kill_hook_installed = True
            self.kernel.on_process_kill(self._on_process_kill)

    def _on_process_kill(self, process) -> None:
        if process is not self._owner or self.hung_up:
            return
        self.hung_up = True
        self._server = None
        for caller, _message in list(self._pending):
            if not caller.is_done:
                self.kernel.wake(caller, _HANGUP)
        self._pending.clear()
        for caller in list(self._outstanding):
            if not caller.is_done:
                self.kernel.wake(caller, _HANGUP)
        self._outstanding.clear()
        self._serving.clear()

    # -- cost fragments ---------------------------------------------------------

    def _entry(self, thread: Thread):
        costs = self.kernel.costs
        yield thread.kwork(costs.L4_USER_STUB, Block.USER)
        yield thread.kwork(costs.SYSCALL_HW, Block.SYSCALL)
        yield thread.kwork(costs.L4_KERNEL_PATH, Block.KERNEL)

    def _switch_cost(self, thread: Thread):
        costs = self.kernel.costs
        yield thread.kwork(costs.L4_DIRECT_SWITCH, Block.SCHED)
        # the page-table switch itself is charged by the scheduler's
        # handoff when the address space actually changes

    # -- client side ---------------------------------------------------------------

    def call(self, thread: Thread, message=None):
        """Sub-generator: l4_ipc_call — send and wait for the reply."""
        tracer = self.kernel.tracer
        span = tracer.begin("l4.call", "ipc", thread=thread) \
            if tracer.enabled else None
        yield from self._entry(thread)
        if self.hung_up:
            if span is not None:
                tracer.end(span, args={"fault": "hangup"})
            raise PeerResetError("l4 endpoint owner is dead")
        self.calls += 1
        # each call is a new epoch: a reply to an earlier, timed-out
        # call of this same thread must never satisfy this one
        epoch = self._epoch.get(thread, 0) + 1
        self._epoch[thread] = epoch
        server = self._server
        if server is not None and self._same_cpu(thread, server):
            self._server = None
            self._outstanding.append(thread)
            self._serving[thread] = epoch
            try:
                yield from self._switch_cost(thread)
                reply = yield Handoff(server, (thread, message))
            finally:
                # an exception landing on the yield (injected crash,
                # timeout, unwind) must deregister the rendezvous, or a
                # late reply would be delivered into whatever this
                # thread blocks on next
                self._unhook(thread)
            if reply is _HANGUP:
                if span is not None:
                    tracer.end(span, args={"fault": "hangup"})
                raise PeerResetError("l4 server died before replying")
            if span is not None:
                tracer.end(span)
            return reply
        # server not yet waiting, or on another CPU: queue + block
        self._pending.append((thread, message))
        self._outstanding.append(thread)
        if server is not None:
            self._server = None
            self.kernel.wake(server, self._take_pending(),
                             from_thread=thread)
        try:
            reply = yield thread.block("l4-call")
        finally:
            self._unhook(thread)
        if reply is _HANGUP:
            if span is not None:
                tracer.end(span, args={"fault": "hangup"})
            raise PeerResetError("l4 server died before replying")
        if span is not None:
            tracer.end(span)
        return reply

    # -- server side -----------------------------------------------------------------

    def wait(self, thread: Thread):
        """Sub-generator: l4_ipc_wait — returns (caller, message)."""
        yield from self._entry(thread)
        if self._pending:
            return self._take_pending()
        if self._server is not None:
            raise KernelError("endpoint already has a waiting server")
        self._server = thread
        return (yield thread.block("l4-wait"))

    def _take_pending(self) -> Tuple[Thread, object]:
        """Pop the next queued request, recording which call epoch the
        server is now answering. ``_unhook`` prunes a departed caller's
        queue entries, so anything still queued here belongs to the
        caller's *current* epoch."""
        entry = self._pending.popleft()
        caller = entry[0]
        self._serving[caller] = self._epoch.get(caller, 0)
        return entry

    def _unhook(self, thread: Thread) -> None:
        """Deregister a caller leaving ``call`` by any path — normal
        return, hangup, timeout or an exception injected at the yield."""
        if thread in self._outstanding:
            self._outstanding.remove(thread)
        if any(entry[0] is thread for entry in self._pending):
            self._pending = deque(entry for entry in self._pending
                                  if entry[0] is not thread)

    def _abandoned(self, caller: Thread) -> bool:
        """A caller that timed out (and unhooked itself from
        ``_outstanding``) or crashed has walked away from the
        rendezvous: its reply must be dropped, not delivered — the wake
        would land on whatever that thread blocks on *next* (another
        call, or a server ``wait``) and be mistaken for its value.

        Membership in ``_outstanding`` alone is not enough: the caller
        may have timed out and already *re-registered* for its next
        call, in which case it is outstanding again — but for a newer
        epoch than the one this reply answers. Comparing the epoch the
        server took the request under against the caller's current
        epoch closes that window."""
        return (caller.is_done
                or caller not in self._outstanding
                or self._serving.get(caller) != self._epoch.get(caller))

    def reply_and_wait(self, thread: Thread, caller: Thread, reply=None):
        """Sub-generator: l4_ipc_reply_and_wait — the server fast path."""
        yield from self._entry(thread)
        stale = self._abandoned(caller)
        if self._pending:
            # someone is already queued: wake the old caller normally and
            # take the next request without blocking
            if not stale:
                self.kernel.wake(caller, reply, from_thread=thread)
            return self._take_pending()
        self._server = thread
        if not stale:
            if self._same_cpu(thread, caller) and caller.state == "blocked":
                yield from self._switch_cost(thread)
                return (yield Handoff(caller, reply))
            self.kernel.wake(caller, reply, from_thread=thread)
        return (yield thread.block("l4-wait"))

    def reply(self, thread: Thread, caller: Thread, reply=None):
        """Sub-generator: plain reply, server does not re-wait."""
        yield from self._entry(thread)
        if self._abandoned(caller):
            return
        if self._same_cpu(thread, caller) and caller.state == "blocked":
            yield from self._switch_cost(thread)
            yield Handoff(caller, reply)
        else:
            self.kernel.wake(caller, reply, from_thread=thread)

    @staticmethod
    def _same_cpu(a: Thread, b: Thread) -> bool:
        if a.pin is not None and b.pin is not None:
            return a.pin == b.pin
        return False
