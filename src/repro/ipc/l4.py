"""L4 Fiasco.OC-style synchronous IPC (§2.2's "L4" bars).

L4's fast path passes the message inline in registers, performs a
*direct* thread switch (no general scheduler pass) and keeps the kernel
path short — which is why it lands two orders of magnitude under POSIX
IPC yet is still 474× a function call (page-table switch + syscall
entry remain). Cross-CPU, it degrades to the IPI wake path like any
other primitive.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import KernelError
from repro.kernel.effects import Handoff
from repro.kernel.thread import Thread
from repro.sim.stats import Block


class L4Endpoint:
    """A rendezvous endpoint owned by a server thread."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._server: Optional[Thread] = None
        self._pending: Deque[Tuple[Thread, object]] = deque()
        self.calls = 0

    # -- cost fragments ---------------------------------------------------------

    def _entry(self, thread: Thread):
        costs = self.kernel.costs
        yield thread.kwork(costs.L4_USER_STUB, Block.USER)
        yield thread.kwork(costs.SYSCALL_HW, Block.SYSCALL)
        yield thread.kwork(costs.L4_KERNEL_PATH, Block.KERNEL)

    def _switch_cost(self, thread: Thread):
        costs = self.kernel.costs
        yield thread.kwork(costs.L4_DIRECT_SWITCH, Block.SCHED)
        # the page-table switch itself is charged by the scheduler's
        # handoff when the address space actually changes

    # -- client side ---------------------------------------------------------------

    def call(self, thread: Thread, message=None):
        """Sub-generator: l4_ipc_call — send and wait for the reply."""
        tracer = self.kernel.tracer
        span = tracer.begin("l4.call", "ipc", thread=thread) \
            if tracer.enabled else None
        yield from self._entry(thread)
        self.calls += 1
        server = self._server
        if server is not None and self._same_cpu(thread, server):
            self._server = None
            yield from self._switch_cost(thread)
            reply = yield Handoff(server, (thread, message))
            if span is not None:
                tracer.end(span)
            return reply
        # server not yet waiting, or on another CPU: queue + block
        self._pending.append((thread, message))
        if server is not None:
            self._server = None
            self.kernel.wake(server, self._pending.popleft(),
                             from_thread=thread)
        reply = yield thread.block("l4-call")
        if span is not None:
            tracer.end(span)
        return reply

    # -- server side -----------------------------------------------------------------

    def wait(self, thread: Thread):
        """Sub-generator: l4_ipc_wait — returns (caller, message)."""
        yield from self._entry(thread)
        if self._pending:
            return self._pending.popleft()
        if self._server is not None:
            raise KernelError("endpoint already has a waiting server")
        self._server = thread
        return (yield thread.block("l4-wait"))

    def reply_and_wait(self, thread: Thread, caller: Thread, reply=None):
        """Sub-generator: l4_ipc_reply_and_wait — the server fast path."""
        yield from self._entry(thread)
        if self._pending:
            # someone is already queued: wake the old caller normally and
            # take the next request without blocking
            self.kernel.wake(caller, reply, from_thread=thread)
            return self._pending.popleft()
        self._server = thread
        if self._same_cpu(thread, caller) and caller.state == "blocked":
            yield from self._switch_cost(thread)
            return (yield Handoff(caller, reply))
        self.kernel.wake(caller, reply, from_thread=thread)
        return (yield thread.block("l4-wait"))

    def reply(self, thread: Thread, caller: Thread, reply=None):
        """Sub-generator: plain reply, server does not re-wait."""
        yield from self._entry(thread)
        if self._same_cpu(thread, caller) and caller.state == "blocked":
            yield from self._switch_cost(thread)
            yield Handoff(caller, reply)
        else:
            self.kernel.wake(caller, reply, from_thread=thread)

    @staticmethod
    def _same_cpu(a: Thread, b: Thread) -> bool:
        if a.pin is not None and b.pin is not None:
            return a.pin == b.pin
        return False
