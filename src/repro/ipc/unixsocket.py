"""UNIX datagram sockets with a filesystem-style name registry.

These carry the local RPC traffic (glibc rpcgen runs over UNIX sockets,
§2.2) and dIPC's default entry-point resolution handshake (§6.2.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro import units
from repro.errors import (KernelError, PeerResetError, ResourceError,
                          SocketTimeout)
from repro.kernel.thread import Thread
from repro.sim.stats import Block

SOCK_BUF_SIZE = 208 * units.KB  # net.core.rmem_default ballpark


class Datagram:
    """One queued message."""

    __slots__ = ("size", "payload", "sender")

    def __init__(self, size: int, payload, sender: Optional["UnixSocket"]):
        self.size = size
        self.payload = payload
        self.sender = sender


class UnixSocket:
    """A datagram socket; bind to a path to receive, sendto by path."""

    def __init__(self, kernel, namespace: "SocketNamespace", *,
                 bufsize: int = SOCK_BUF_SIZE):
        self.kernel = kernel
        self.namespace = namespace
        self.bufsize = bufsize
        self.path: Optional[str] = None
        self._queue: Deque[Datagram] = deque()
        self._bytes = 0
        self._receivers: Deque[Thread] = deque()
        self.closed = False
        #: set when the owning process died: the binding becomes a
        #: tombstone and peers see ECONNRESET instead of "refused"
        self.reset = False
        self._owner = None
        self._kill_hook_installed = False

    # -- naming -------------------------------------------------------------------

    def bind(self, path: str) -> None:
        self.namespace.bind(path, self)
        self.path = path

    def bind_owner(self, process) -> None:
        """Tie the socket's lifetime to ``process``.

        When the owner is killed the socket is reset in place: the name
        stays bound as a tombstone, so senders get
        :class:`PeerResetError` (ECONNRESET) rather than the
        "connection refused" a never-bound path gives, and blocked
        receivers from other processes are woken with the same error.
        """
        self._owner = process
        if not self._kill_hook_installed:
            self._kill_hook_installed = True
            self.kernel.on_process_kill(self._on_process_kill)

    def _on_process_kill(self, process) -> None:
        if process is not self._owner or self.reset:
            return
        self.reset = True
        self.closed = True
        # deliberately NOT unbound: the tombstone distinguishes a dead
        # peer (reset) from a name nobody ever bound (refused)
        waiters = list(self._receivers)
        self._receivers.clear()
        for waiter in waiters:
            if not waiter.is_done:
                self.kernel.wake(waiter)

    # -- copy cost ----------------------------------------------------------------

    def _kernel_copy_ns(self, size: int) -> float:
        cache = self.kernel.machine.cache
        costs = self.kernel.costs
        ns = cache.copy_ns(size, startup=costs.MEMCPY_STARTUP,
                           footprint=min(size, SOCK_BUF_SIZE))
        if size > units.PAGE_SIZE:
            ns += units.pages_for(size) * costs.KERNEL_COPY_PAGE_CHECK
        return ns

    # -- data path -----------------------------------------------------------------

    def sendto(self, thread: Thread, path: str, size: int, payload=None):
        """Sub-generator: sendto(2). Fails if the peer buffer is full
        (datagram semantics: no blocking on send)."""
        costs = self.kernel.costs
        yield from thread.syscall(0)
        yield thread.kwork(costs.SOCK_SEND_WORK, Block.KERNEL)
        peer = self.namespace.lookup(path)
        if peer is not None and peer.reset:
            raise PeerResetError(
                f"peer process behind {path} is dead (ECONNRESET)")
        if peer is None or peer.closed:
            raise KernelError(f"connection refused: {path}")
        if peer._bytes + size > peer.bufsize:
            raise KernelError(f"peer buffer full: {path}")
        yield thread.kwork(self._kernel_copy_ns(size), Block.KERNEL)
        peer._queue.append(Datagram(size, payload, self))
        peer._bytes += size
        while peer._receivers:
            receiver = peer._receivers.popleft()
            if not receiver.is_done:
                self.kernel.wake(receiver, from_thread=thread)
                break

    def recvfrom(self, thread: Thread, *,
                 timeout_ns: Optional[float] = None):
        """Sub-generator: recvfrom(2) — blocks while empty; returns
        (payload, sender_socket).

        With ``timeout_ns`` (SO_RCVTIMEO-style) the wait is bounded:
        :class:`SocketTimeout` is raised if no datagram arrives in time.
        The expiry removes the thread from the receiver queue before
        waking it, so a timed-out receiver never eats a later wake.
        """
        costs = self.kernel.costs
        yield from thread.syscall(0)
        yield thread.kwork(costs.SOCK_RECV_WORK, Block.KERNEL)
        timer = None
        expired = [False]
        if timeout_ns is not None:
            def _expire():
                expired[0] = True
                try:
                    self._receivers.remove(thread)
                except ValueError:
                    pass
                self.kernel.wake(thread)
            timer = self.kernel.engine.post(timeout_ns, _expire)
        try:
            while not self._queue:
                if self.reset:
                    raise PeerResetError(
                        f"socket {self.path or '?'} reset: owner died")
                if self.closed:
                    if timer is not None:
                        self.kernel.engine.cancel(timer)
                        timer = None
                    return None, None
                if expired[0]:
                    raise SocketTimeout(
                        f"recvfrom on {self.path or '?'} expired after "
                        f"{timeout_ns:.0f}ns")
                self._receivers.append(thread)
                yield thread.block("sock-recv")
        except BaseException:
            if timer is not None:
                self.kernel.engine.cancel(timer)
            raise
        if timer is not None:
            self.kernel.engine.cancel(timer)
        dgram = self._queue.popleft()
        self._bytes -= dgram.size
        yield thread.kwork(self._kernel_copy_ns(dgram.size), Block.KERNEL)
        return dgram.payload, dgram.sender

    def close(self) -> None:
        self.closed = True
        if self.path is not None:
            self.namespace.unbind(self.path)
        for receiver in self._receivers:
            self.kernel.wake(receiver)
        self._receivers.clear()

    @property
    def queued(self) -> int:
        return len(self._queue)


class SocketNamespace:
    """The abstract-socket / filesystem namespace mapping paths to sockets."""

    def __init__(self):
        self._bound: Dict[str, UnixSocket] = {}

    def socket(self, kernel, *, bufsize: int = SOCK_BUF_SIZE) -> UnixSocket:
        return UnixSocket(kernel, self, bufsize=bufsize)

    def bind(self, path: str, sock: UnixSocket) -> None:
        if path in self._bound and not self._bound[path].closed:
            raise ResourceError(f"address already in use: {path}")
        self._bound[path] = sock

    def unbind(self, path: str) -> None:
        self._bound.pop(path, None)

    def lookup(self, path: str) -> Optional[UnixSocket]:
        return self._bound.get(path)
