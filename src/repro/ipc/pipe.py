"""UNIX pipes with a bounded kernel buffer and streaming transfers.

Pipe transfers pay two kernel copies (user→pipe buffer, pipe buffer→user)
plus the per-page mapping checks of cross-process transfers (§7.2), which
is why Pipe tracks above Sem. in Figures 2/5/6. Writes larger than the
64 KB buffer stream through it in chunks, with the writer and reader
alternating — so large transfers also bounce between the two processes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro import units
from repro.errors import PeerResetError, PipeBrokenError
from repro.kernel.thread import Thread
from repro.sim.stats import Block

PIPE_BUF_SIZE = 64 * units.KB


class _Message:
    """A framed write in flight through the pipe buffer."""

    __slots__ = ("total", "written", "read", "payload", "done_writing")

    def __init__(self, total: int, payload):
        self.total = total
        self.written = 0
        self.read = 0
        self.payload = payload
        self.done_writing = False


class Pipe:
    """A unidirectional pipe (message-framed for payload convenience)."""

    def __init__(self, kernel, capacity: int = PIPE_BUF_SIZE):
        self.kernel = kernel
        self.capacity = capacity
        self._messages: Deque[_Message] = deque()
        self._bytes = 0
        self._readers: Deque[Thread] = deque()
        self._writers: Deque[Thread] = deque()
        self.closed = False
        #: process owning each end, declared via :meth:`bind_endpoints`
        self._writer_proc = None
        self._reader_proc = None
        self.reader_gone = False
        self.writer_gone = False
        self._kill_hook_installed = False

    # -- peer-death semantics (POSIX EPIPE / partial-read reset) -------------

    def bind_endpoints(self, *, writer=None, reader=None) -> None:
        """Declare which process owns each end of the pipe.

        Once bound, killing the reader's process makes further writes
        raise :class:`PipeBrokenError` (EPIPE), and killing the writer's
        process makes a read that would otherwise wait forever return
        EOF — or raise :class:`PeerResetError` if the writer died with a
        message partially in flight.
        """
        if writer is not None:
            self._writer_proc = writer
        if reader is not None:
            self._reader_proc = reader
        if not self._kill_hook_installed:
            self._kill_hook_installed = True
            self.kernel.on_process_kill(self._on_process_kill)

    def _on_process_kill(self, process) -> None:
        if process is self._reader_proc and not self.reader_gone:
            self.reader_gone = True
            # writers blocked on a full buffer must see EPIPE, not hang
            waiters = list(self._writers)
            self._writers.clear()
            for waiter in waiters:
                if not waiter.is_done:
                    self.kernel.wake(waiter)
        if process is self._writer_proc and not self.writer_gone:
            self.writer_gone = True
            waiters = list(self._readers)
            self._readers.clear()
            for waiter in waiters:
                if not waiter.is_done:
                    self.kernel.wake(waiter)

    def _kernel_copy_ns(self, size: int) -> float:
        """One kernel-side copy: bandwidth capped by the pipe-buffer
        footprint, plus per-page mapping checks on large transfers."""
        cache = self.kernel.machine.cache
        costs = self.kernel.costs
        ns = cache.copy_ns(size, startup=costs.MEMCPY_STARTUP,
                           footprint=min(size, self.capacity))
        if size > units.PAGE_SIZE:
            ns += units.pages_for(size) * costs.KERNEL_COPY_PAGE_CHECK
        return ns

    def _wake_one(self, queue: Deque[Thread], thread: Thread) -> None:
        while queue:
            waiter = queue.popleft()
            if not waiter.is_done:
                self.kernel.wake(waiter, from_thread=thread)
                return

    # -- write ---------------------------------------------------------------------

    def write(self, thread: Thread, size: int, payload=None):
        """Sub-generator: write() — streams through the buffer, blocking
        whenever it is full."""
        if size <= 0:
            raise ValueError("write of non-positive size")
        costs = self.kernel.costs
        tracer = self.kernel.tracer
        span = tracer.begin("pipe.write", "ipc", thread=thread,
                            args={"size": size}) \
            if tracer.enabled else None
        yield from thread.syscall(0)
        yield thread.kwork(costs.PIPE_WRITE_WORK, Block.KERNEL)
        if self.reader_gone:
            if span is not None:
                tracer.end(span, args={"fault": "EPIPE"})
            raise PipeBrokenError(
                "write to a pipe whose read end's process is dead")
        message = _Message(size, payload)
        self._messages.append(message)
        remaining = size
        first_chunk = True
        while remaining > 0:
            if self.reader_gone:
                if span is not None:
                    tracer.end(span, args={"fault": "EPIPE"})
                raise PipeBrokenError(
                    "reader process died mid-write (EPIPE)")
            space = self.capacity - self._bytes
            if space <= 0:
                self._writers.append(thread)
                yield thread.block("pipe-full")
                continue
            chunk = min(space, remaining)
            yield thread.kwork(self._kernel_copy_ns(chunk), Block.KERNEL)
            self._bytes += chunk
            message.written += chunk
            remaining -= chunk
            if first_chunk:
                # waitqueue wake of a sleeping reader (futex-class cost)
                yield thread.kwork(costs.FUTEX_WAKE_WORK, Block.KERNEL)
                first_chunk = False
            self._wake_one(self._readers, thread)
        message.done_writing = True
        if span is not None:
            tracer.end(span)

    # -- read -----------------------------------------------------------------------

    def read(self, thread: Thread):
        """Sub-generator: read one framed message; returns its payload,
        or None at EOF."""
        costs = self.kernel.costs
        tracer = self.kernel.tracer
        span = tracer.begin("pipe.read", "ipc", thread=thread) \
            if tracer.enabled else None
        yield from thread.syscall(0)
        yield thread.kwork(costs.PIPE_READ_WORK, Block.KERNEL)
        while not self._messages:
            if self.closed or self.writer_gone:
                if span is not None:
                    tracer.end(span, args={"eof": True})
                return None
            self._readers.append(thread)
            yield thread.block("pipe-empty")
        message = self._messages[0]
        while True:
            available = message.written - message.read
            if available > 0:
                yield thread.kwork(self._kernel_copy_ns(available),
                                   Block.KERNEL)
                self._bytes -= available
                message.read += available
                self._wake_one(self._writers, thread)
                # the writer may have streamed more bytes in while the
                # copy charged time — re-check before deciding to block,
                # otherwise its wake (sent while we were RUNNING) is lost
                continue
            if message.done_writing and message.read >= message.total:
                self._messages.popleft()
                if span is not None:
                    tracer.end(span, args={"size": message.total})
                return message.payload
            if self.writer_gone:
                # writer's process died with this message partially in
                # flight: the remaining bytes will never arrive
                if span is not None:
                    tracer.end(span, args={"fault": "reset"})
                raise PeerResetError(
                    f"pipe writer died mid-message "
                    f"({message.read}/{message.total} bytes delivered)")
            self._readers.append(thread)
            yield thread.block("pipe-partial")

    def close(self) -> None:
        self.closed = True
        for reader in self._readers:
            self.kernel.wake(reader)
        self._readers.clear()

    @property
    def buffered_bytes(self) -> int:
        return self._bytes
