"""Baseline IPC primitives the paper compares dIPC against:
shared-memory semaphores, pipes, UNIX-socket local RPC, and L4-style
synchronous IPC."""

from repro.ipc.l4 import L4Endpoint
from repro.ipc.pipe import PIPE_BUF_SIZE, Pipe
from repro.ipc.rpc import RpcClient, RpcServer
from repro.ipc.semaphore import Semaphore
from repro.ipc.shm import SharedBuffer
from repro.ipc.unixsocket import SocketNamespace, UnixSocket
from repro.ipc.xdr import XDRCodec

__all__ = [
    "L4Endpoint", "PIPE_BUF_SIZE", "Pipe", "RpcClient", "RpcServer",
    "Semaphore", "SharedBuffer", "SocketNamespace", "UnixSocket", "XDRCodec",
]
