"""Declarative service-graph specs with a canonical, hashable identity.

A :class:`TopoSpec` is the contract between the generator, the
instantiator and the runner cache: a rooted DAG of services where each
node carries its work model (CPU burned per request) and how it visits
its children (sequentially or in parallel), and each edge carries the
request size of that hop.

Identity is *content*, not construction: :meth:`TopoSpec.canonical_json`
serializes with sorted keys and fixed separators, so two specs built
from dicts with different key insertion orders hash identically
(:meth:`TopoSpec.spec_hash`), and a spec embedded in a
:class:`~repro.runner.points.PointSpec`'s kwargs keys the
content-addressed result cache exactly like every other point input.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: how a node visits its children: one call after another, or all at
#: once on helper threads joined before replying
MODES = ("seq", "par")

ROOT = 0


@dataclass(frozen=True)
class ServiceNode:
    """One service (one domain/process when instantiated)."""

    id: int
    name: str
    #: CPU burned by this service per request, before calling children
    work_ns: float = 300.0
    #: child visit order: "seq" or "par"
    mode: str = "seq"

    def to_dict(self) -> dict:
        return {"id": self.id, "name": self.name,
                "work_ns": self.work_ns, "mode": self.mode}

    @classmethod
    def from_dict(cls, d: dict) -> "ServiceNode":
        return cls(id=int(d["id"]), name=str(d["name"]),
                   work_ns=float(d["work_ns"]), mode=str(d["mode"]))


@dataclass(frozen=True)
class Edge:
    """A directed call edge: ``src`` invokes ``dst`` once per request."""

    src: int
    dst: int
    #: request bytes carried on this hop (the reply is a small ack)
    req_size: int = 128

    def to_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst,
                "req_size": self.req_size}

    @classmethod
    def from_dict(cls, d: dict) -> "Edge":
        return cls(src=int(d["src"]), dst=int(d["dst"]),
                   req_size=int(d["req_size"]))


@dataclass(frozen=True)
class TopoSpec:
    """A rooted service DAG plus the provenance that generated it."""

    pattern: str
    n: int
    seed: int
    nodes: Tuple[ServiceNode, ...]
    edges: Tuple[Edge, ...]
    #: pattern-specific generator parameters, kept for provenance
    params: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "pattern": self.pattern,
            "n": self.n,
            "seed": self.seed,
            "params": {k: v for k, v in self.params},
            "nodes": [node.to_dict() for node in self.nodes],
            "edges": [edge.to_dict() for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TopoSpec":
        return cls(
            pattern=str(d["pattern"]), n=int(d["n"]), seed=int(d["seed"]),
            nodes=tuple(ServiceNode.from_dict(nd) for nd in d["nodes"]),
            edges=tuple(Edge.from_dict(ed) for ed in d["edges"]),
            params=tuple(sorted((str(k), v)
                                for k, v in d.get("params", {}).items())))

    def canonical_json(self) -> str:
        """Byte-stable JSON: sorted keys, fixed separators — identical
        regardless of how the source dicts were ordered."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TopoSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable 16-hex content hash (feeds labels and the cache key)."""
        digest = hashlib.sha256(self.canonical_json().encode())
        return digest.hexdigest()[:16]

    # -- graph queries ------------------------------------------------------

    def children(self, node_id: int) -> List[int]:
        return [e.dst for e in self.edges if e.src == node_id]

    def parents(self, node_id: int) -> List[int]:
        return [e.src for e in self.edges if e.dst == node_id]

    def edge(self, src: int, dst: int) -> Edge:
        for e in self.edges:
            if e.src == src and e.dst == dst:
                return e
        raise KeyError(f"no edge {src}->{dst}")

    def depth_of(self) -> Dict[int, int]:
        """Longest-path depth (in hops) from the root to every node."""
        depth = {ROOT: 0}
        for node_id in self.topological_order():
            for child in self.children(node_id):
                depth[child] = max(depth.get(child, 0),
                                   depth[node_id] + 1)
        return depth

    @property
    def depth(self) -> int:
        """Hops on the longest root-to-leaf path (chain of N: N-1)."""
        return max(self.depth_of().values(), default=0)

    @property
    def width(self) -> int:
        """Most nodes sharing one depth level."""
        levels: Dict[int, int] = {}
        for d in self.depth_of().values():
            levels[d] = levels.get(d, 0) + 1
        return max(levels.values(), default=0)

    def topological_order(self) -> List[int]:
        """Node ids, parents before children (raises on a cycle)."""
        remaining = {node.id: len(self.parents(node.id))
                     for node in self.nodes}
        ready = sorted(i for i, deg in remaining.items() if deg == 0)
        order: List[int] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for child in self.children(node_id):
                remaining[child] -= 1
                if remaining[child] == 0:
                    # insert sorted to keep the order deterministic
                    lo = 0
                    while lo < len(ready) and ready[lo] < child:
                        lo += 1
                    ready.insert(lo, child)
        if len(order) != len(self.nodes):
            raise ValueError("topology contains a cycle")
        return order

    # -- validation ---------------------------------------------------------

    def validate(self) -> "TopoSpec":
        """Raise :class:`ValueError` unless this is a rooted, connected
        DAG with exactly ``n`` services; returns self for chaining."""
        if self.n != len(self.nodes):
            raise ValueError(f"spec says n={self.n} but has "
                             f"{len(self.nodes)} nodes")
        ids = [node.id for node in self.nodes]
        if ids != list(range(self.n)):
            raise ValueError(f"node ids must be 0..{self.n - 1} in "
                             f"order, got {ids}")
        for node in self.nodes:
            if node.mode not in MODES:
                raise ValueError(f"node {node.id}: unknown mode "
                                 f"{node.mode!r}")
            if node.work_ns < 0:
                raise ValueError(f"node {node.id}: negative work_ns")
        seen = set()
        for e in self.edges:
            if not (0 <= e.src < self.n and 0 <= e.dst < self.n):
                raise ValueError(f"edge {e.src}->{e.dst} out of range")
            if e.src == e.dst:
                raise ValueError(f"self-edge on node {e.src}")
            if (e.src, e.dst) in seen:
                raise ValueError(f"duplicate edge {e.src}->{e.dst}")
            if e.req_size < 1:
                raise ValueError(f"edge {e.src}->{e.dst}: req_size < 1")
            seen.add((e.src, e.dst))
        self.topological_order()  # raises on a cycle
        # connectivity: every service reachable from the root
        reached = {ROOT}
        frontier = [ROOT]
        while frontier:
            node_id = frontier.pop()
            for child in self.children(node_id):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        if len(reached) != self.n:
            missing = sorted(set(ids) - reached)
            raise ValueError(f"services unreachable from the root: "
                             f"{missing}")
        return self

    def __repr__(self) -> str:
        return (f"<TopoSpec {self.pattern} n={self.n} "
                f"depth={self.depth} width={self.width} "
                f"edges={len(self.edges)} hash={self.spec_hash()}>")
