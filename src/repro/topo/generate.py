"""Seeded, deterministic generators for the six service-graph patterns.

The patterns follow the muBench topology-scale replication: synthetic
service meshes are not arbitrary random graphs, they fall into a small
number of shapes that stress different axes of the IPC fabric —

* ``seq_fanout`` — one root calling N-1 services one after another:
  end-to-end latency is the *sum* of hop costs (aggregation tier);
* ``par_fanout`` — the same star but children called concurrently on
  helper threads: latency is the *max* of hop costs, throughput is
  thread-pool pressure (scatter-gather tier);
* ``chain_branch`` — a backbone chain with side leaves hanging off the
  trunk; with no leaves it degenerates to the pure N-stage pipeline
  (the Figure 8 OLTP chain is exactly ``chain_branch`` with n=3) —
  the *depth* axis where per-hop costs compound;
* ``tree`` — a balanced width-ary hierarchy (depth × width together);
* ``random_tree`` — a probabilistic tree grown by seeded parent
  selection, the irregular shapes real meshes have;
* ``mesh`` — a layered DAG with seeded cross-layer shortcut edges, so
  services have multiple parents (shared dependencies).

Everything is a pure function of ``(pattern, n, seed, params)``: the
same inputs produce a byte-identical :meth:`TopoSpec.canonical_json`
in any process on any platform — the generator never touches global
RNG state, dict iteration order, or wall-clock.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.topo.spec import Edge, ServiceNode, TopoSpec

PATTERNS = ("seq_fanout", "par_fanout", "chain_branch", "tree",
            "random_tree", "mesh")


def _nodes(n: int, work_ns: Union[float, Sequence[float]],
           names: Optional[Sequence[str]], par_ids=()) -> List[ServiceNode]:
    if names is not None and len(names) != n:
        raise ValueError(f"{len(names)} names for {n} services")
    out = []
    for i in range(n):
        work = work_ns[i] if isinstance(work_ns, (list, tuple)) \
            else work_ns
        out.append(ServiceNode(
            id=i, name=names[i] if names is not None else f"svc{i}",
            work_ns=float(work),
            mode="par" if i in par_ids else "seq"))
    return out


def generate(pattern: str, n: int, *, seed: int = 0,
             work_ns: Union[float, Sequence[float]] = 300.0,
             req_size: int = 128,
             names: Optional[Sequence[str]] = None,
             width: int = 2, backbone: Optional[int] = None,
             max_children: int = 3,
             extra_edges: float = 0.25) -> TopoSpec:
    """Generate one of the six patterns as a validated :class:`TopoSpec`.

    ``width`` parameterizes ``tree`` (branching factor) and ``mesh``
    (layer width); ``backbone`` is the trunk length of ``chain_branch``
    (default: all of ``n``, i.e. a pure chain); ``max_children`` caps
    the out-degree of ``random_tree``; ``extra_edges`` is the seeded
    probability of each possible cross-layer shortcut in ``mesh``.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r} "
                         f"(choose from {', '.join(PATTERNS)})")
    if n < 1:
        raise ValueError("a topology needs at least one service")
    params: List[tuple] = []
    edges: List[Edge] = []
    par_ids: tuple = ()

    if pattern in ("seq_fanout", "par_fanout"):
        edges = [Edge(0, i, req_size) for i in range(1, n)]
        if pattern == "par_fanout":
            par_ids = (0,)
    elif pattern == "chain_branch":
        trunk = n if backbone is None else backbone
        if not 1 <= trunk <= n:
            raise ValueError(f"backbone {trunk} outside 1..{n}")
        params.append(("backbone", trunk))
        edges = [Edge(i - 1, i, req_size) for i in range(1, trunk)]
        # side leaves hang off the trunk round-robin, root included
        for j, leaf in enumerate(range(trunk, n)):
            edges.append(Edge(j % trunk, leaf, req_size))
    elif pattern == "tree":
        if width < 1:
            raise ValueError("tree width must be >= 1")
        params.append(("width", width))
        edges = [Edge((i - 1) // width, i, req_size)
                 for i in range(1, n)]
    elif pattern == "random_tree":
        if max_children < 1:
            raise ValueError("max_children must be >= 1")
        params.append(("max_children", max_children))
        rng = random.Random(seed)
        out_degree = [0] * n
        for i in range(1, n):
            open_parents = [j for j in range(i)
                            if out_degree[j] < max_children]
            parent = open_parents[rng.randrange(len(open_parents))]
            out_degree[parent] += 1
            edges.append(Edge(parent, i, req_size))
    elif pattern == "mesh":
        if width < 1:
            raise ValueError("mesh width must be >= 1")
        params.append(("extra_edges", extra_edges))
        params.append(("width", width))
        rng = random.Random(seed)
        # layer 0 is the root alone; later layers hold `width` services
        layer_of = [0] + [1 + (i - 1) // width for i in range(1, n)]
        for i in range(1, n):
            above = [j for j in range(i) if layer_of[j] == layer_of[i] - 1]
            parent = above[rng.randrange(len(above))]
            edges.append(Edge(parent, i, req_size))
        # seeded shortcuts: strictly downward, so the graph stays a DAG
        present = {(e.src, e.dst) for e in edges}
        for u in range(n):
            for v in range(u + 1, n):
                if layer_of[v] <= layer_of[u] or (u, v) in present:
                    continue
                if rng.random() < extra_edges:
                    present.add((u, v))
                    edges.append(Edge(u, v, req_size))

    spec = TopoSpec(pattern=pattern, n=n, seed=seed,
                    nodes=tuple(_nodes(n, work_ns, names, par_ids)),
                    edges=tuple(edges),
                    params=tuple(sorted(params)))
    return spec.validate()


def sequential_chain(names: Sequence[str], *,
                     work_ns: Union[float, Sequence[float]] = 300.0,
                     req_size: int = 128) -> TopoSpec:
    """The pure N-stage pipeline (``chain_branch`` with no leaves) —
    Figure 8's apache → php → mariadb chain is ``sequential_chain`` of
    three names."""
    return generate("chain_branch", len(names), names=list(names),
                    work_ns=work_ns, req_size=req_size)
