"""Topology-scale scenario generation (the ``repro.topo`` subsystem).

The paper's OLTP case study (Figure 8) shows dIPC's per-hop win on one
fixed 3-tier chain. This package generalizes that fixed chain into a
*scenario engine* for service graphs of arbitrary size, so the fig10
driver can ask the topology-scale question: at what graph depth/width
does dIPC's per-hop advantage compound into order-of-magnitude
end-to-end wins?

Three layers:

* :mod:`repro.topo.spec` — :class:`TopoSpec`, a declarative service
  graph (nodes with a work model, directed call edges, seq/par child
  visit order) with canonical JSON serialization and a stable content
  hash that feeds the runner cache;
* :mod:`repro.topo.generate` — :func:`generate`, a seeded deterministic
  generator for the six muBench-style service-graph patterns
  (sequential fanout, parallel fanout, chain-with-branching,
  hierarchical tree, probabilistic tree, complex mesh);
* :mod:`repro.topo.instantiate` — :class:`TopoTransport`, which
  materializes a spec onto a kernel as one domain per service with
  every hop over a chosen primitive (dIPC vs pipe/socket/rpc/l4),
  behind the PR-4 transport ``build()``/``call()`` API so the whole
  fig9 load harness (open/closed loops, shedding, supervision,
  breakers, chaos) drives topologies unchanged.

:mod:`repro.topo.stats` adds the repetition-aware statistics (mean and
Student-t confidence intervals across seeded reps) the fig10 report
uses, following the run-table + repetitions shape of the muBench
topology-scale replication.
"""

from repro.topo.generate import PATTERNS, generate
from repro.topo.spec import Edge, ServiceNode, TopoSpec
from repro.topo.stats import mean_ci

__all__ = [
    "Edge",
    "PATTERNS",
    "ServiceNode",
    "TopoSpec",
    "generate",
    "mean_ci",
]
