"""Materialize a :class:`~repro.topo.spec.TopoSpec` onto a kernel.

:class:`TopoTransport` is a :class:`repro.load.transports.Transport`:
the fig9 load harness builds it, drives ``call()`` from its client
threads, arms breakers around it and supervises it exactly like the
five single-hop transports — but one ``call`` traverses an entire
service graph. Per spec node it spawns one process (one protection
domain); per spec edge it wires one *hop* over the chosen primitive:

* **pipe** — per-hop request pipes (one per worker, a pipe's framed
  read path is single-reader) with a fresh reply pipe per request;
* **socket** — one datagram request socket per hop drained by the
  hop's workers, a fresh uniquely-named reply socket per request;
* **rpc** — one :class:`RpcServer` per hop with ``n_workers`` service
  threads, a fresh client handle (own reply socket + timeout) per
  request;
* **l4** — one rendezvous endpoint per (hop, worker), workers sharded
  round-robin;
* **dipc** — *no worker threads anywhere in the graph*: every node
  registers an entry, every edge is an entry_request + grant, and a
  request is one thread migrating node to node through proxies. The
  baselines' end-to-end concurrency is capped by the smallest worker
  pool along the path; dIPC's only cap is CPU capacity — which is
  exactly why deep graphs compound its per-hop advantage;
* **dpti** — one :class:`~repro.ipc.dpti.DptiEndpoint` per edge: the
  caller's thread traps and runs the destination inline behind a
  PCID-tagged page-table switch (no workers, like dIPC, but every hop
  still pays trap + gate + kernel copies);
* **odipc** — dIPC hops whose argument read is offloaded to the DMA
  engine above the crossover size (below it, identical to dipc).

Which hop class serves which primitive — and whether a primitive needs
the trusted dIPC runtime, worker pools, or neither — comes from the
:mod:`repro.primitives` registry, not from string comparisons here.

A node's service body burns its ``work_ns``, then visits its children:
``seq`` nodes call them one after another (latency adds), ``par``
nodes fan them out on helper threads joined through a semaphore with a
deadline (latency maxes). Worker death anywhere must never wedge the
graph: every blocking hop wait is bounded (``with_deadline`` or native
receive timeouts), a failed downstream call is reported upstream as a
:class:`DownstreamFault` reply rather than a silent drop, and every
piece (processes, endpoints, workers, entries) can be rebuilt by the
supervisor after a kill.
"""

from __future__ import annotations

from repro import primitives
from repro.errors import KernelError, PeerResetError
from repro.ipc.l4 import L4Endpoint
from repro.ipc.pipe import Pipe
from repro.ipc.rpc import RpcClient, RpcServer
from repro.ipc.semaphore import Semaphore
from repro.ipc.unixsocket import SocketNamespace
from repro.load.queueing import LOAD_SURVIVABLE, with_deadline
from repro.load.transports import (CLIENT_PROCESS, REPLY_SIZE,
                                   SERVER_PROCESS, WORKER_PREFIX,
                                   Transport)
from repro.topo.spec import ROOT, TopoSpec

#: pseudo node id for the load-generator process (the root's caller)
CLIENT = -1

#: optional phase probe for the kill-point conformance harness
#: (:mod:`repro.recovery.conformance`): called with labels like
#: ``call:enter``, ``serve:<node>:enter`` and ``rebuild:exit`` at the
#: corresponding points of a request's life. Probes are plain Python
#: callbacks — they never post engine events or draw randomness — so an
#: armed probe cannot perturb the deterministic event order.
_probe = None


def set_probe(probe):
    """Install the module-wide probe (``None`` clears); returns the
    previously installed one so callers can restore it."""
    global _probe
    previous = _probe
    _probe = probe
    return previous


class DownstreamFault(KernelError):
    """A hop deeper in the graph failed; reported up the call path."""


# ---------------------------------------------------------------------------
# hops: one directed edge over one primitive
# ---------------------------------------------------------------------------

class _Hop:
    """One ``src -> dst`` edge: endpoints owned by ``dst``, served by
    ``dst``-side workers (except dIPC), called from ``src``-side
    threads."""

    #: True when the hop's wiring embeds the *source* process identity
    #: (pipe writer end, dIPC grants), so a reborn source also needs
    #: the hop rebuilt; path-addressed hops (socket, rpc) and L4 only
    #: care about the destination side
    rebuild_on_src = False

    def __init__(self, transport: "TopoTransport", index: int,
                 src: int, dst: int, req_size: int):
        self.transport = transport
        self.index = index
        self.src = src
        self.dst = dst
        self.req_size = req_size
        self._rr = 0          # round-robin worker shard for callers
        self._seq = 0         # unique per-request reply names

    @property
    def kernel(self):
        return self.transport.kernel

    @property
    def params(self):
        return self.transport.params

    @property
    def dst_proc(self):
        return self.transport.procs[self.dst]

    @property
    def label(self) -> str:
        return f"e{self.index}"

    def _serve(self, t, payload):
        """Run the destination node's service body."""
        return self.transport.serve(t, self.dst, payload)

    def _shard(self) -> int:
        shard = self._rr % self.params.n_workers
        self._rr += 1
        return shard

    # overridden per primitive:

    def build(self) -> None:
        """Create this hop's endpoints (idempotent: a rebuild of the
        destination node calls it again over fresh processes)."""
        raise NotImplementedError

    def worker_body(self, slot: int):
        raise NotImplementedError

    def call(self, thread, payload):
        raise NotImplementedError


class _PipeHop(_Hop):
    rebuild_on_src = True

    def build(self) -> None:
        self.req_pipes = []
        for _w in range(self.params.n_workers):
            pipe = Pipe(self.kernel)
            pipe.bind_endpoints(writer=self.transport.proc_of(self.src),
                                reader=self.dst_proc)
            self.req_pipes.append(pipe)

    def worker_body(self, slot: int):
        req_pipe = self.req_pipes[slot]

        def worker(t):
            while True:
                try:
                    message = yield from req_pipe.read(t)
                except KernelError:
                    continue          # a caller died mid-write
                if message is None:
                    return            # EOF: caller process gone
                reply_pipe, payload = message
                verdict = REPLY_SIZE, "ok"
                try:
                    yield from self._serve(t, payload)
                except LOAD_SURVIVABLE:
                    verdict = REPLY_SIZE, "err"
                try:
                    yield from reply_pipe.write(t, verdict[0],
                                                payload=verdict[1])
                except KernelError:
                    continue          # caller gave up: drop the reply

        return worker

    def call(self, thread, payload):
        req_pipe = self.req_pipes[self._shard()]
        reply_pipe = Pipe(self.kernel)
        reply_pipe.bind_endpoints(writer=self.dst_proc,
                                  reader=thread.process)

        def _round_trip():
            yield from req_pipe.write(thread, self.req_size,
                                      payload=(reply_pipe, payload))
            reply = yield from reply_pipe.read(thread)
            if reply is None:
                raise PeerResetError(f"hop {self.label}: service "
                                     f"closed the reply pipe")
            if reply == "err":
                raise DownstreamFault(f"hop {self.label}: downstream "
                                      f"failure")
            return reply

        def _cleanup():
            for queue in (req_pipe._writers, reply_pipe._readers):
                try:
                    queue.remove(thread)
                except ValueError:
                    pass

        return with_deadline(thread, _round_trip(),
                             self.params.deadline_ns, _cleanup)


class _SocketHop(_Hop):
    def build(self) -> None:
        # rebinds over a dead predecessor's tombstone on rebuild
        self.req_sock = self.transport.ns.socket(self.kernel)
        self.req_sock.bind(f"/topo/{self.label}/req")
        self.req_sock.bind_owner(self.dst_proc)

    def worker_body(self, slot: int):
        req_sock = self.req_sock

        def worker(t):
            while True:
                try:
                    request, _ = yield from req_sock.recvfrom(t)
                except KernelError:
                    return            # socket reset: our process killed
                if request is None:
                    return
                reply_to, payload = request
                verdict = "ok"
                try:
                    yield from self._serve(t, payload)
                except LOAD_SURVIVABLE:
                    verdict = "err"
                try:
                    yield from req_sock.sendto(t, reply_to, REPLY_SIZE,
                                               payload=verdict)
                except KernelError:
                    continue          # caller timed out and closed

        return worker

    def call(self, thread, payload):
        self._seq += 1
        reply_path = f"/topo/{self.label}/r{self._seq}"
        sock = self.transport.ns.socket(self.kernel)
        sock.bind(reply_path)
        sock.bind_owner(thread.process)
        try:
            yield from sock.sendto(thread, f"/topo/{self.label}/req",
                                   self.req_size,
                                   payload=(reply_path, payload))
            reply, _ = yield from sock.recvfrom(
                thread, timeout_ns=self.params.deadline_ns)
            if reply is None:
                raise PeerResetError(f"hop {self.label}: service "
                                     f"closed the reply socket")
            if reply == "err":
                raise DownstreamFault(f"hop {self.label}: downstream "
                                      f"failure")
            return reply
        finally:
            sock.close()


class _RpcHop(_Hop):
    def build(self) -> None:
        self.server = RpcServer(self.kernel, self.dst_proc,
                                self.transport.ns,
                                f"/topo/{self.label}/rpc")

        def handler(t, payload):
            try:
                yield from self._serve(t, payload)
            except LOAD_SURVIVABLE:
                return REPLY_SIZE, "err"
            return REPLY_SIZE, "ok"

        self.server.register("visit", handler)

    def worker_body(self, slot: int):
        server = self.server
        return lambda t: server.serve_loop(t)

    def call(self, thread, payload):
        self._seq += 1
        client = RpcClient(
            self.kernel, thread.process, self.transport.ns,
            f"/topo/{self.label}/rpc",
            reply_timeout_ns=self.params.deadline_ns,
            client_path=f"/topo/{self.label}/rpc#c{self._seq}")
        reply = yield from client.call(thread, "visit", self.req_size,
                                       payload)
        if reply == "err":
            raise DownstreamFault(f"hop {self.label}: downstream "
                                  f"failure")
        return reply


class _L4Hop(_Hop):
    def build(self) -> None:
        self.endpoints = []
        for _w in range(self.params.n_workers):
            endpoint = L4Endpoint(self.kernel)
            endpoint.bind_owner(self.dst_proc)
            self.endpoints.append(endpoint)

    def worker_body(self, slot: int):
        endpoint = self.endpoints[slot]

        def worker(t):
            caller, payload = yield from endpoint.wait(t)
            while True:
                verdict = "ok"
                try:
                    yield from self._serve(t, payload)
                except LOAD_SURVIVABLE:
                    verdict = "err"
                caller, payload = yield from endpoint.reply_and_wait(
                    t, caller, verdict)

        return worker

    def call(self, thread, payload):
        endpoint = self.endpoints[self._shard()]

        def _round_trip():
            reply = yield from endpoint.call(thread, payload)
            if reply == "err":
                raise DownstreamFault(f"hop {self.label}: downstream "
                                      f"failure")
            return reply

        def _cleanup():
            endpoint._pending = type(endpoint._pending)(
                entry for entry in endpoint._pending
                if entry[0] is not thread)
            if thread in endpoint._outstanding:
                endpoint._outstanding.remove(thread)

        return with_deadline(thread, _round_trip(),
                             self.params.deadline_ns, _cleanup)


class _DipcHop(_Hop):
    """An entry_request + grant: the caller migrates, so there is
    nothing to serve and nobody to spawn."""

    rebuild_on_src = True

    def build(self) -> None:
        from repro.core.objects import EntryDescriptor, Signature
        from repro.core.policies import IsolationPolicy

        transport = self.transport
        manager = transport.manager
        request = [EntryDescriptor(
            signature=Signature(in_regs=1, out_regs=1),
            policy=IsolationPolicy(reg_integrity=True,
                                   stack_integrity=True,
                                   dcs_integrity=True),
            name="visit")]
        caller_proc = transport.proc_of(self.src)
        handle, _ = manager.entry_request(
            caller_proc, transport.entries[self.dst], request)
        manager.grant_create(manager.dom_default(caller_proc), handle)
        self.address = request[0].address

    def worker_body(self, slot: int):  # pragma: no cover - never spawned
        raise NotImplementedError("dIPC hops have no workers")

    def _data_extra_ns(self) -> float:
        """CPU the callee spends reading the capability-passed argument
        buffer. Small payloads are folded into the node's ``work_ns``
        like every other hop; above the offload threshold the inline
        read is charged explicitly (the cost odipc attacks)."""
        costs = self.kernel.costs
        if self.req_size >= costs.OFFLOAD_THRESHOLD:
            return self.kernel.machine.cache.touch_ns(self.req_size)
        return 0.0

    def call(self, thread, payload):
        extra = self._data_extra_ns()
        if not extra:
            return self.transport.manager.call(thread, self.address,
                                               payload)

        def _with_read():
            yield thread.compute(extra)
            return (yield from self.transport.manager.call(
                thread, self.address, payload))

        return _with_read()


class _OdipcHop(_DipcHop):
    """A dIPC hop with the bulk-copy offload engine: above the
    crossover size the argument read becomes a DMA descriptor whose
    transfer overlaps the proxy call path; below it, exactly
    :class:`_DipcHop`."""

    def _data_extra_ns(self) -> float:
        costs = self.kernel.costs
        if self.req_size >= costs.OFFLOAD_THRESHOLD:
            return costs.offload_copy_ns(self.req_size)
        return 0.0


class _DptiHop(_Hop):
    """A kernel-mediated domain call: trap, PCID-tagged page-table
    switch into the destination domain, then the service body runs
    inline on the caller's thread — no workers anywhere in the graph,
    but every hop still pays trap + gate + kernel copies."""

    def build(self) -> None:
        from repro.ipc.dpti import DptiEndpoint

        def visit(t, payload):
            verdict = "ok"
            try:
                yield from self._serve(t, payload)
            except LOAD_SURVIVABLE:
                verdict = "err"
            return verdict

        self.endpoint = DptiEndpoint(self.kernel, visit)
        self.endpoint.bind_owner(self.dst_proc)

    def worker_body(self, slot: int):  # pragma: no cover - never spawned
        raise NotImplementedError("dpti hops have no workers")

    def call(self, thread, payload):
        reply = yield from self.endpoint.call(
            thread, payload, size=self.req_size, reply_size=REPLY_SIZE)
        if reply == "err":
            raise DownstreamFault(f"hop {self.label}: downstream "
                                  f"failure")
        return reply


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------

class TopoTransport(Transport):
    """A whole service graph behind the single-hop transport API."""

    name = "topo"
    sharded_endpoints = False

    def __init__(self, params):
        super().__init__(params)
        try:
            spec = primitives.get(params.primitive)
        except KeyError:
            raise ValueError(
                f"unknown hop primitive {params.primitive!r} (choose "
                f"from {', '.join(sorted(primitives.names()))})") \
                from None
        self.spec = TopoSpec.from_dict(params.topo).validate()
        self.primitive = params.primitive
        self._hop_spec = spec
        self.has_worker_threads = spec.capabilities.has_worker_threads
        self.procs = {}
        self.hops = {}
        self.entries = {}
        self.manager = None
        self._worker_slots = {}
        self._children = {node.id: self.spec.children(node.id)
                          for node in self.spec.nodes}
        self._nodes = {node.id: node for node in self.spec.nodes}

    def proc_of(self, node_id: int):
        return (self.client_proc if node_id == CLIENT
                else self.procs[node_id])

    def _proc_name(self, node_id: int) -> str:
        """The root keeps the load harness's well-known server name so
        chaos storms aimed at the default victim menu hit the topology
        too; the rest carry their service names."""
        if node_id == ROOT:
            return SERVER_PROCESS
        return f"svc{node_id}:{self._nodes[node_id].name}"

    # -- construction -------------------------------------------------------

    def build(self, kernel) -> None:
        self.kernel = kernel
        self.ns = SocketNamespace()
        trusted = self._hop_spec.capabilities.trusted
        if trusted:
            from repro.core.api import DipcManager
            self.manager = DipcManager(kernel)
        self.client_proc = kernel.spawn_process(CLIENT_PROCESS,
                                                dipc=trusted)
        for node in self.spec.nodes:
            self.procs[node.id] = kernel.spawn_process(
                self._proc_name(node.id), dipc=trusted)
        self.server_proc = self.procs[ROOT]
        if trusted:
            # children before parents, mirroring the OLTP chain: every
            # node exports one entry, then every edge imports a proxy
            for node_id in reversed(self.spec.topological_order()):
                self._register_entry(node_id)
        hop_cls = self._hop_spec.hop()
        for index, edge in enumerate(self._all_edges()):
            src, dst, req_size = edge
            hop = hop_cls(self, index, src, dst, req_size)
            hop.build()
            self.hops[(src, dst)] = hop
            if self.has_worker_threads:
                self._spawn_hop_workers(hop)

    def _all_edges(self):
        """Spec edges plus the synthetic client -> root edge."""
        yield (CLIENT, ROOT, self.params.req_size)
        for edge in self.spec.edges:
            yield (edge.src, edge.dst, edge.req_size)

    def _register_entry(self, node_id: int) -> None:
        """Export node ``node_id``'s service body as a dIPC entry; the
        service protects its stack/DCS from callers (mutual distrust,
        the dipc_proc_high regime of Figure 5)."""
        from repro.core.objects import EntryDescriptor, Signature
        from repro.core.policies import IsolationPolicy

        manager = self.manager
        process = self.procs[node_id]

        def visit(t, payload, node_id=node_id):
            yield from self.serve(t, node_id, payload)
            return "ok"

        self.entries[node_id] = manager.entry_register(
            process, manager.dom_default(process),
            [EntryDescriptor(
                signature=Signature(in_regs=1, out_regs=1),
                policy=IsolationPolicy(stack_confidentiality=True,
                                       dcs_integrity=True),
                func=visit, name="visit")])

    def _spawn_hop_workers(self, hop: _Hop) -> None:
        for slot in range(self.params.n_workers):
            index = len(self._worker_slots)
            self._worker_slots[index] = (hop, slot)
            self._spawn_topo_worker(index)

    def _spawn_topo_worker(self, index: int):
        hop, slot = self._worker_slots[index]
        thread = self.kernel.spawn(
            hop.dst_proc, hop.worker_body(slot),
            name=f"{WORKER_PREFIX}{index}", daemon=True)
        self.worker_threads[index] = thread
        if self.supervisor is not None:
            self.supervisor.adopt(
                f"w{index}", thread,
                lambda index=index: self.respawn_worker(index))
        return thread

    # -- the service body ---------------------------------------------------

    def serve(self, t, node_id: int, payload):
        """Burn the node's CPU, then visit its children."""
        if _probe is not None:
            _probe(f"serve:{node_id}:enter")
            try:
                yield from self._serve_body(t, node_id, payload)
            finally:
                _probe(f"serve:{node_id}:exit")
            return
        yield from self._serve_body(t, node_id, payload)

    def _serve_body(self, t, node_id: int, payload):
        node = self._nodes[node_id]
        if node.work_ns:
            yield t.compute(node.work_ns)
        children = self._children[node_id]
        if not children:
            return
        if node.mode == "par" and len(children) > 1:
            yield from self._visit_par(t, node_id, children, payload)
        else:
            for child in children:
                yield from self.hops[(node_id, child)].call(t, payload)

    def _visit_par(self, t, node_id: int, children, payload):
        """Scatter-gather: one helper thread per child, joined through
        a semaphore with a deadline so a killed helper can never wedge
        the parent."""
        sem = Semaphore(self.kernel, 0)
        failures = []
        process = self.procs[node_id]

        def helper(child):
            def body(ht):
                try:
                    yield from self.hops[(node_id, child)].call(ht,
                                                                payload)
                except LOAD_SURVIVABLE as exc:
                    failures.append(exc)
                yield from sem.post(ht)
            return body

        for child in children:
            self.kernel.spawn(process, helper(child),
                              name=f"topo/n{node_id}/par{child}")

        def _join():
            for _ in children:
                yield from sem.wait(t)

        def _cleanup():
            try:
                sem._futex._waiters.remove(t)
            except ValueError:
                pass

        # budget: every child has deadline_ns to finish; one extra
        # deadline of slack covers scheduling of the helpers themselves
        yield from with_deadline(t, _join(),
                                 2.0 * self.params.deadline_ns,
                                 _cleanup)
        if failures:
            raise DownstreamFault(
                f"node {node_id}: {len(failures)} of {len(children)} "
                f"parallel children failed")

    # -- the transport API the load harness drives --------------------------

    def call(self, thread, client_id: int):
        if _probe is None:
            return self.hops[(CLIENT, ROOT)].call(thread, client_id)
        return self._probed_call(thread, client_id)

    def _probed_call(self, thread, client_id: int):
        _probe("call:enter")
        try:
            return (yield from self.hops[(CLIENT, ROOT)].call(thread,
                                                              client_id))
        finally:
            _probe("call:exit")

    # -- recovery hooks -----------------------------------------------------

    def respawn_worker(self, index: int):
        """Supervisor hook: replace one dead worker in place."""
        return self._spawn_topo_worker(index)

    def rebuild_pool(self) -> None:
        """Supervisor hook: rebuild every dead service in the graph —
        fresh process, fresh endpoints (rebinding over tombstones),
        fresh entry registrations, fresh workers."""
        if _probe is not None:
            _probe("rebuild:enter")
        dead = [node.id for node in self.spec.nodes
                if not self.procs[node.id].alive]
        trusted = self._hop_spec.capabilities.trusted
        for node_id in dead:
            self.procs[node_id] = self.kernel.spawn_process(
                self._proc_name(node_id), dipc=trusted)
        self.server_proc = self.procs[ROOT]
        if trusted:
            # re-export entries of the reborn nodes (children first so a
            # parent's re-import below finds the fresh registration)
            for node_id in reversed(self.spec.topological_order()):
                if node_id in dead:
                    self._register_entry(node_id)
        rebuilt = set(dead)
        for (src, dst), hop in self.hops.items():
            # the destination owns a hop's endpoints; the source side
            # only matters where the wiring embeds its process identity
            # (rebuild_on_src). A live destination's workers died with
            # their pipes' writer (EOF) or with their own process, so
            # every rewired hop respawns its worker slots over the
            # fresh endpoints.
            if dst in rebuilt or (src in rebuilt and hop.rebuild_on_src):
                hop.build()
                if self.has_worker_threads:
                    for index, (h, _slot) in self._worker_slots.items():
                        if h is hop:
                            self._spawn_topo_worker(index)
        if _probe is not None:
            _probe("rebuild:exit")
