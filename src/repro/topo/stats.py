"""Repetition statistics: mean and confidence interval across reps.

The muBench topology-scale replication reports every cell of its run
table as a mean over seeded repetitions with a confidence interval, so
a "dIPC is 5x faster" verdict carries its uncertainty. Same discipline
here: :func:`mean_ci` collapses the per-rep measurements of one
(topology, size, primitive, load) cell into ``(mean, half_width)``
using the two-sided 95% Student-t critical value — the right small-n
statistic for the 2-5 reps a sweep can afford.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

#: two-sided 95% Student-t critical values by degrees of freedom
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
        30: 2.042}


def t_critical(df: int) -> float:
    """95% two-sided critical value (normal limit beyond the table)."""
    if df < 1:
        raise ValueError("need at least two samples for an interval")
    if df in _T95:
        return _T95[df]
    for bound in sorted(_T95):
        if df < bound:
            return _T95[bound]
    return 1.96


def mean_ci(values: Sequence[float]) -> Tuple[float, float]:
    """``(mean, 95% CI half-width)`` of a small sample.

    One sample has no spread estimate: the half-width is 0.0 (rendered
    as an exact value, which it is — the run is deterministic given its
    seed; reps exist to vary the seed).
    """
    n = len(values)
    if n == 0:
        return (0.0, 0.0)
    mean = sum(values) / n
    if n == 1:
        return (mean, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical(n - 1) * math.sqrt(var / n)
    return (mean, half)
