"""Exception hierarchy for the dIPC reproduction.

Every fault a simulated program can raise derives from :class:`ReproError`.
Hardware-level protection violations (the ones CODOMs raises) derive from
:class:`ProtectionFault`; OS- and dIPC-level errors have their own branches
so tests can assert on the exact failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the simulated system."""


# ---------------------------------------------------------------------------
# Hardware / CODOMs faults
# ---------------------------------------------------------------------------

class ProtectionFault(ReproError):
    """A memory or privilege check failed at the (simulated) hardware level."""


class AccessFault(ProtectionFault):
    """A load/store/fetch was denied by the APL and capability checks."""

    def __init__(self, message, *, address=None, domain=None, kind=None):
        super().__init__(message)
        self.address = address
        self.domain = domain
        self.kind = kind


class PrivilegeFault(ProtectionFault):
    """A privileged instruction was executed from non-privileged code."""


class CapabilityFault(ProtectionFault):
    """Illegal capability operation (forge, overflow, revoked use, ...)."""


class EntryAlignmentFault(ProtectionFault):
    """A cross-domain call with *call* permission missed an aligned entry."""


class PageFault(ProtectionFault):
    """Access to an unmapped page, or a write to a read-only/COW page."""

    def __init__(self, message, *, address=None, write=False):
        super().__init__(message)
        self.address = address
        self.write = write


# ---------------------------------------------------------------------------
# OS-level errors
# ---------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for OS kernel errors (simulated errno-style failures)."""


class InvalidSyscall(KernelError):
    """Unknown or malformed system call."""


class ResourceError(KernelError):
    """Out of a finite kernel resource (fds, pids, frames, ...)."""


class DeadProcessError(KernelError):
    """Operation on a process that has already exited."""


class WouldBlock(KernelError):
    """Non-blocking operation could not complete immediately."""


class PipeBrokenError(KernelError):
    """EPIPE-style: the read side of a pipe died with the writer active."""


class PeerResetError(KernelError):
    """ECONNRESET-style: the far end of a connection died with bytes in
    flight (or before replying)."""


class SocketTimeout(KernelError):
    """A timed receive expired before a datagram arrived."""


# ---------------------------------------------------------------------------
# dIPC-level errors
# ---------------------------------------------------------------------------

class DipcError(ReproError):
    """Base class for errors raised by the dIPC OS extension."""


class PermissionDenied(DipcError):
    """Handle permission insufficient for the requested operation (P1)."""


class SignatureMismatch(DipcError):
    """entry_register/entry_request signatures disagree (P4)."""


class RemoteFault(DipcError):
    """A callee crashed (or was killed) during a cross-process call.

    Delivered to the oldest live caller after the kernel unwinds the KCS
    (§5.2.1); carries the errno-style flag the proxy observes.
    """

    def __init__(self, message, *, origin=None, unwound_frames=0):
        super().__init__(message)
        self.origin = origin
        self.unwound_frames = unwound_frames


class CallTimeout(DipcError):
    """A cross-process call exceeded its time-out and the thread was split."""

    def __init__(self, message, *, elapsed_ns=None):
        super().__init__(message)
        self.elapsed_ns = elapsed_ns


class LoaderError(DipcError):
    """Binary/annotation loading failed (bad section, unresolved entry...)."""


# ---------------------------------------------------------------------------
# Simulation-engine errors
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class DeadlockError(SimulationError):
    """The event queue drained with live threads still blocked.

    Raised by the engine (when a deadlock detector is installed — see
    ``Kernel.enable_deadlock_detection``) instead of letting an
    all-blocked thread set surface as a silent hang or a ``max_events``
    overrun. ``victims`` lists ``(thread name, block reason)`` pairs in
    spawn order — the wait chain the diagnostic names.
    """

    def __init__(self, message, *, victims=()):
        super().__init__(message)
        self.victims = list(victims)


class InvariantViolation(ReproError):
    """A post-run kernel sweep found a conservation property broken.

    Raised by :class:`repro.fault.InvariantAuditor` when a chaos run
    leaves the kernel in a state the paper's P1-P5 model forbids (an
    unbalanced KCS, a runnable thread of a dead process, a usable
    revoked grant, ...).
    """
