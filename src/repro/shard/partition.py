"""Seeded min-cut-ish partitioning of a service graph across shards.

The partitioner answers one question: which services live on which
shard engine? Its objectives, in order:

1. **balance** — each shard should carry a similar share of the
   expected *event rate*, estimated from per-node visit counts (one
   request visits a node once per path from the root, and every visit
   costs an arrival, a work completion, and one send/receive pair per
   child);
2. **small cut** — every edge whose endpoints land on different shards
   pays a cross-shard message per traversal *and* drags the lookahead
   down to its leg latency, so cut weight (expected traversals/request)
   is greedily minimized after the balance pass.

The algorithm is deterministic for a given ``(spec, n_shards, seed)``:
contiguous blocks along the topological order sized by cumulative
weight, then bounded greedy refinement moves that reduce cut weight
without breaking balance, with a seeded RNG breaking ties between
equal-gain moves. The resulting :class:`Partition` hashes canonically
(:meth:`Partition.partition_hash`) so it can key the result cache —
repartitioning (a seed or algorithm change) invalidates exactly the
sharded points that used it.

Correctness never depends on partition quality: the model's event order
is content-keyed, so *any* assignment yields byte-identical results —
the partition only moves the speedup needle.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.topo.spec import ROOT, TopoSpec

#: pseudo-node id for the load generator; it always shares the root's
#: shard so the client<->root hop is never a cut edge
CLIENT = -1

#: allowed per-shard overweight during refinement (fraction of target)
_BALANCE_TOL = 0.25
#: refinement sweeps over all nodes
_REFINE_PASSES = 4


def visit_rates(spec: TopoSpec) -> Dict[int, float]:
    """Expected visits per request for every node (root = 1.0).

    Every parent visit triggers exactly one call per out-edge, so rates
    accumulate along the topological order; in a DAG with reconvergent
    paths a node is visited once per path.
    """
    rates = {node.id: 0.0 for node in spec.nodes}
    rates[ROOT] = 1.0
    for node_id in spec.topological_order():
        for child in spec.children(node_id):
            rates[child] += rates[node_id]
    return rates


def node_weights(spec: TopoSpec) -> Dict[int, float]:
    """Expected engine events per request charged to each node.

    Per visit: one call arrival, one work completion, one reply send,
    plus a send/receive pair per child visited.
    """
    rates = visit_rates(spec)
    return {node.id: rates[node.id] * (3.0 + 2.0 * len(
        spec.children(node.id))) for node in spec.nodes}


def edge_weights(spec: TopoSpec) -> Dict[Tuple[int, int], float]:
    """Expected traversals per request for every edge (both legs)."""
    rates = visit_rates(spec)
    return {(e.src, e.dst): 2.0 * rates[e.src] for e in spec.edges}


@dataclass(frozen=True)
class Partition:
    """An immutable node->shard assignment with a canonical identity."""

    n_shards: int
    #: shard of node ``i`` at index ``i``
    assign: Tuple[int, ...]
    seed: int

    def shard_of(self, node_id: int) -> int:
        if node_id == CLIENT:
            return self.assign[ROOT]
        return self.assign[node_id]

    def nodes_of(self, shard: int) -> List[int]:
        return [i for i, s in enumerate(self.assign) if s == shard]

    def cut_edges(self, spec: TopoSpec) -> List[Tuple[int, int]]:
        """Edges whose endpoints live on different shards, in spec
        order. The client pseudo-edge is co-located by construction and
        never appears."""
        return [(e.src, e.dst) for e in spec.edges
                if self.assign[e.src] != self.assign[e.dst]]

    def cut_weight(self, spec: TopoSpec) -> float:
        weights = edge_weights(spec)
        return sum(weights[edge] for edge in self.cut_edges(spec))

    def to_dict(self) -> dict:
        return {"n_shards": self.n_shards, "assign": list(self.assign),
                "seed": self.seed}

    def partition_hash(self) -> str:
        """Stable 16-hex content hash (feeds sharded cache keys)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def partition_spec(spec: TopoSpec, n_shards: int, *,
                   seed: int = 0) -> Partition:
    """Deterministically place ``spec``'s services on ``n_shards``.

    ``n_shards`` is clamped to ``[1, spec.n]`` — more shards than
    services would only add empty engines to the barrier.
    """
    n_shards = max(1, min(int(n_shards), spec.n))
    if n_shards == 1:
        return Partition(1, tuple([0] * spec.n), seed)

    weights = node_weights(spec)
    order = spec.topological_order()
    total = sum(weights.values())
    target = total / n_shards

    # pass 1: contiguous blocks along the topological order, cut when
    # the running weight crosses the proportional boundary (always
    # leaving enough nodes for the remaining shards)
    assign = [0] * spec.n
    shard, acc = 0, 0.0
    for pos, node_id in enumerate(order):
        remaining_nodes = len(order) - pos
        remaining_shards = n_shards - shard
        if shard < n_shards - 1 and (
                acc >= target * (shard + 1)
                or remaining_nodes == remaining_shards):
            shard += 1
        assign[node_id] = shard
        acc += weights[node_id]

    # pass 2: bounded greedy refinement — move a node to a neighbouring
    # shard when that strictly cuts the cut weight, stays within the
    # balance tolerance, and never empties a shard
    ew = edge_weights(spec)
    neighbours: Dict[int, List[Tuple[int, float]]] = {
        node.id: [] for node in spec.nodes}
    for (src, dst), weight in ew.items():
        neighbours[src].append((dst, weight))
        neighbours[dst].append((src, weight))
    loads = [0.0] * n_shards
    counts = [0] * n_shards
    for node_id, s in enumerate(assign):
        loads[s] += weights[node_id]
        counts[s] += 1
    cap = target * (1.0 + _BALANCE_TOL)
    rng = random.Random(seed * 7_919 + n_shards)

    for _ in range(_REFINE_PASSES):
        moved = False
        for node_id in order:
            here = assign[node_id]
            if counts[here] <= 1:
                continue
            gain: Dict[int, float] = {}
            for other, weight in neighbours[node_id]:
                s = assign[other]
                gain[s] = gain.get(s, 0.0) + weight
            stay = gain.get(here, 0.0)
            best: List[int] = []
            best_gain = 0.0
            for s, there in sorted(gain.items()):
                if s == here:
                    continue
                delta = there - stay
                if delta <= 0.0 or loads[s] + weights[node_id] > cap:
                    continue
                if delta > best_gain:
                    best, best_gain = [s], delta
                elif delta == best_gain:
                    best.append(s)
            if best:
                dest = best[0] if len(best) == 1 else rng.choice(best)
                assign[node_id] = dest
                loads[here] -= weights[node_id]
                loads[dest] += weights[node_id]
                counts[here] -= 1
                counts[dest] += 1
                moved = True
        if not moved:
            break

    # shard ids must be dense and first-seen-ordered along the
    # topological order so the hash is invariant to refinement history
    remap: Dict[int, int] = {}
    for node_id in order:
        remap.setdefault(assign[node_id], len(remap))
    dense = tuple(remap[assign[i]] for i in range(spec.n))
    return Partition(len(remap), dense, seed)
