"""Conservative time-window execution of a sharded topology point.

The coordinator owns the window protocol; shards own the simulation.
One round:

1. **exchange** — deliver every cross-shard message produced by the
   previous window to its destination shard (each is a future-time
   event at least one lookahead away, so delivery can never land in a
   shard's past — asserted by ``Engine.post_at``), then collect every
   shard's next-event time;
2. **bound** — the next window may safely end at
   ``min(horizon, global_min_next_event + lookahead)``: any message a
   shard could still send is timestamped at or after the global
   minimum and travels at least one lookahead;
3. **run** — every shard processes its local queue strictly below the
   bound (:meth:`repro.sim.engine.Engine.run_window`), buffering
   outbound messages.

Windows are *adaptive*: dense event regions produce lookahead-sized
windows, idle regions jump straight to the next event. The loop ends
when no shard holds an event below the horizon.

Two transports execute the same protocol: in-process (shards run
round-robin on one core — used for ``--chaos``/``check`` runs and for
points whose window count would swamp process messaging, e.g. dIPC's
tens-of-nanoseconds lookahead) and a multiprocessing pool (one worker
per shard over pipes — the actual parallelism). Both are driven by the
identical coordinator loop over the identical per-shard model, so the
merged result is byte-identical across transports and shard counts.

Per-shard checkpoints: every ``checkpoint_every`` windows the
coordinator snapshots all shards right after an exchange (outboxes
empty, all state local) into one JSON file keyed by the point + the
partition hash; ``resume=True`` restores mid-window after a crash.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
from typing import Dict, List, Optional, Tuple

from repro.topo.spec import TopoSpec
from repro.trace.histogram import LatencyHistogram

from repro.shard.costs import lookahead_ns
from repro.shard.model import (CLIENT, ShardModel, ShardParams,
                               storm_plan)
from repro.shard.partition import Partition, partition_spec

#: auto-mode gates for the multiprocessing transport: below either, the
#: per-window barrier (pipe round-trips) would dominate the per-shard
#: work inside one lookahead window and processes only add overhead
_MP_MIN_LOOKAHEAD_NS = 500.0
_MP_MIN_EST_EVENTS = 50_000.0

#: windows between checkpoints
DEFAULT_CHECKPOINT_EVERY = 64

#: process-global checkpoint plumbing for figure-driver points (set by
#: the experiments CLI around a sharded run): checkpoint location and
#: resume intent must not live in point kwargs, or they would pollute
#: the content-addressed cache keys
POINT_CHECKPOINT = {"dir": None, "resume": False,
                    "every": DEFAULT_CHECKPOINT_EVERY}


def build_shard_model(kwargs: dict, shards: int, shard_id: int, *,
                      chaos_seed: Optional[int] = None) -> ShardModel:
    """Deterministically rebuild one shard's model anywhere.

    Pure function of its arguments — the coordinator and every worker
    process call this with identical inputs and get identical models,
    which is what lets workers be spawned from nothing but the point
    kwargs.
    """
    spec = TopoSpec.from_dict(kwargs["topo"]).validate()
    params = ShardParams.from_kwargs(kwargs)
    partition = partition_spec(spec, shards, seed=params.seed)
    outages = (storm_plan(spec, params, chaos_seed)
               if chaos_seed is not None else None)
    return ShardModel(spec, params, partition, shard_id,
                      outages=outages)


def _route(partition: Partition, message: tuple) -> int:
    """Destination shard of a cross-shard message (coordinator side)."""
    from repro.shard.model import ARRIVAL, DOWN, REPLY, TIMEOUT, UP
    _t, rank, vid, _ok = message
    if rank in (ARRIVAL, TIMEOUT):
        return partition.shard_of(CLIENT)
    if rank == REPLY:
        caller = CLIENT if len(vid) == 3 else vid[-2]
        return partition.shard_of(caller)
    if rank in (DOWN, UP):
        # outages are primed locally by every shard; present only for
        # routing completeness
        return partition.shard_of(vid[0])
    return partition.shard_of(vid[-1])


# -- shard transports --------------------------------------------------------


class _LocalShard:
    """In-process transport: the model lives right here."""

    def __init__(self, model: ShardModel):
        self.model = model

    def init(self) -> None:
        self.model.prime()

    def restore(self, state: dict) -> None:
        self.model.restore(state)

    def exchange(self, inbound: List[tuple]) -> Optional[float]:
        for message in inbound:
            self.model.deliver(message)
        return self.model.engine.next_event_time()

    def run(self, end_ns: float) -> List[tuple]:
        self.model.engine.run_window(end_ns)
        return self.model.take_outbox()

    def snapshot(self) -> dict:
        return self.model.snapshot()

    def finish(self, horizon_ns: float) -> dict:
        self.model.engine.run_window(horizon_ns)
        return self.model.stats_state()

    def close(self) -> None:
        pass


def _shard_worker(conn, kwargs: dict, shards: int, shard_id: int,
                  chaos_seed: Optional[int]) -> None:
    """One worker process: rebuild the shard, then serve the protocol."""
    model = build_shard_model(kwargs, shards, shard_id,
                              chaos_seed=chaos_seed)
    while True:
        message = conn.recv()
        op = message[0]
        if op == "init":
            model.prime()
            conn.send(("ok",))
        elif op == "restore":
            model.restore(message[1])
            conn.send(("ok",))
        elif op == "exchange":
            for msg in message[1]:
                model.deliver(msg)
            conn.send(("next", model.engine.next_event_time()))
        elif op == "run":
            model.engine.run_window(message[1])
            conn.send(("out", model.take_outbox()))
        elif op == "snapshot":
            conn.send(("state", model.snapshot()))
        elif op == "finish":
            model.engine.run_window(message[1])
            conn.send(("stats", model.stats_state()))
        elif op == "stop":
            conn.close()
            return


class _ProcShard:
    """Multiprocessing transport: the model lives in a worker process."""

    def __init__(self, kwargs: dict, shards: int, shard_id: int,
                 chaos_seed: Optional[int]):
        parent, child = mp.Pipe()
        self.conn = parent
        self.process = mp.Process(
            target=_shard_worker,
            args=(child, kwargs, shards, shard_id, chaos_seed),
            daemon=True)
        self.process.start()
        child.close()

    def _call(self, *message):
        self.conn.send(message)
        return self.conn.recv()

    def init(self) -> None:
        self._call("init")

    def restore(self, state: dict) -> None:
        self._call("restore", state)

    def exchange(self, inbound: List[tuple]) -> Optional[float]:
        return self._call("exchange", inbound)[1]

    def run(self, end_ns: float) -> List[tuple]:
        return self._call("run", end_ns)[1]

    def snapshot(self) -> dict:
        return self._call("snapshot")[1]

    def finish(self, horizon_ns: float) -> dict:
        return self._call("finish", horizon_ns)[1]

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()


# -- checkpoints -------------------------------------------------------------


def checkpoint_key(kwargs: dict, shards: int,
                   partition: Partition) -> str:
    """Content hash binding a checkpoint to its exact point."""
    payload = json.dumps(
        {"kwargs": kwargs, "shards": shards,
         "partition": partition.partition_hash()},
        sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _checkpoint_path(directory: str, key: str) -> str:
    return os.path.join(directory, f"shard-{key}.json")


def _write_checkpoint(path: str, key: str, windows: int,
                      states: List[dict]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump({"key": key, "windows": windows, "states": states},
                  fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _read_checkpoint(path: str, key: str) -> Optional[dict]:
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("key") != key:
        return None
    return payload


# -- the merge ---------------------------------------------------------------


def merge_states(states: List[dict], params: ShardParams) -> dict:
    """Fold per-shard stats into one LoadResult-shaped point dict.

    Deterministic regardless of shard count: integer counters commute,
    and the only float sums (per-service busy time) are accumulated in
    *global node-id order*, which is the same order the single-shard
    run produces. The latency histogram lives whole on the client's
    shard — it is never merged across shards, so its float sums carry
    the exact serial accumulation order.
    """
    client = next(s["client"] for s in states if "client" in s)
    hist = LatencyHistogram.from_state(client["hist"])
    nodes: Dict[int, dict] = {}
    for state in states:
        for nid_text, entry in state["nodes"].items():
            nodes[int(nid_text)] = entry
    busy = 0.0
    crashes = restarts = fast_fails = 0
    for nid in sorted(nodes):
        busy += nodes[nid]["busy_ns"]
        crashes += nodes[nid]["crashes"]
        restarts += nodes[nid]["restarts"]
        fast_fails += nodes[nid]["rejected"]
    window_s = params.window_ns / 1e9
    offered = client["offered"]
    completed = client["completed"]
    summary = hist.summary()
    return {
        "primitive": params.primitive,
        "mode": "open",
        "policy": params.policy,
        "offered_kops": params.offered_kops,
        "n_clients": params.n_clients,
        "offered_seen": offered,
        "completed": completed,
        "shed": client["shed"],
        "failed": client["failed"],
        "throughput_kops": completed / window_s / 1e3,
        "goodput_ratio": completed / offered if offered else 0.0,
        "mean_ns": summary["mean_ns"],
        "p50_ns": summary["p50_ns"],
        "p95_ns": summary["p95_ns"],
        "p99_ns": summary["p99_ns"],
        "p999_ns": summary["p999_ns"],
        "max_ns": summary["max_ns"],
        "cpu_busy_fraction": min(
            1.0, busy / (params.horizon_ns * params.num_cpus)),
        "peak_backlog": client["peak_backlog"],
        "backlog_at_end": client["queued"],
        "worker_crashes": crashes,
        "worker_restarts": restarts,
        "pool_rebuilds": 0,
        "breaker_fast_fails": fast_fails,
        "reclamation_violations": 0,
    }


def audit_states(states: List[dict]) -> List[str]:
    """The shard conservation audit (S1–S2; S3 is asserted inline).

    * S1 — every client arrival is accounted for exactly once:
      offered = completed + shed + failed + still in flight + queued;
    * S2 — no cross-shard message was lost or duplicated:
      messages sent = messages applied, summed over shards.
    """
    violations: List[str] = []
    client = next((s["client"] for s in states if "client" in s), None)
    if client is None:
        violations.append("S1: no shard owns the client")
    else:
        accounted = (client["completed_total"] + client["shed_total"]
                     + client["failed_total"] + client["in_flight"]
                     + client["queued"])
        if client["offered_total"] != accounted:
            violations.append(
                f"S1: conservation broken: offered "
                f"{client['offered_total']} != accounted {accounted}")
    sent = sum(s["msgs_sent"] for s in states)
    applied = sum(s["msgs_applied"] for s in states)
    if sent != applied:
        violations.append(f"S2: cross-shard messages sent {sent} != "
                          f"applied {applied}")
    return violations


# -- the coordinator ---------------------------------------------------------


def _estimated_events(spec: TopoSpec, params: ShardParams) -> float:
    """Rough event count: requests x (client events + per-edge trio)."""
    requests = params.offered_kops / 1e6 * params.horizon_ns
    return requests * (3.0 + 3.0 * len(spec.edges))


def choose_mode(mode: str, shards: int, lookahead: Optional[float],
                spec: TopoSpec, params: ShardParams,
                forced_inprocess: bool) -> str:
    """Pick the transport: ``inprocess`` or ``processes``.

    ``auto`` takes processes only when the per-window work can amortize
    the barrier: a real lookahead (dIPC's ~50 ns windows would mean
    tens of thousands of pipe round-trips) and enough total events.
    An active Chaos/Check session forces in-process — sessions are
    process-local state.
    """
    override = os.environ.get("REPRO_SHARD_MODE")
    if override in ("inprocess", "processes") and not forced_inprocess:
        return override
    if forced_inprocess or shards <= 1 or mode == "inprocess":
        return "inprocess"
    if mode == "processes":
        return "processes"
    if lookahead is not None and lookahead >= _MP_MIN_LOOKAHEAD_NS \
            and _estimated_events(spec, params) >= _MP_MIN_EST_EVENTS:
        return "processes"
    return "inprocess"


def run_shard_point(kwargs: dict, *, shards: int, mode: str = "auto",
                    checkpoint_dir: Optional[str] = None,
                    resume: bool = False,
                    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                    chaos_seed: Optional[int] = None,
                    info_sink: Optional[dict] = None) -> dict:
    """Run one topology point on ``shards`` engines; return its point
    dict (byte-identical for any ``shards`` and either transport).

    While a :class:`~repro.fault.session.ChaosSession` is active, a
    seeded service-outage storm is armed and the S1–S2 conservation
    audit is registered on the session (the CLI fails on violations
    exactly like the kernel A1–A9 audit). While a
    :class:`~repro.check.session.CheckSession` is active, its
    controller is installed on every shard engine so same-timestamp
    tie-breaks become explorable decision points. Both force the
    in-process transport.

    ``info_sink`` (a dict, test/bench hook) receives run metadata:
    windows, lookahead, transport, partition hash, total events.
    """
    from repro.check.session import CheckSession
    from repro.fault.session import ChaosSession

    spec = TopoSpec.from_dict(kwargs["topo"]).validate()
    params = ShardParams.from_kwargs(kwargs)
    partition = partition_spec(spec, shards, seed=params.seed)
    eff_shards = partition.n_shards
    lookahead = lookahead_ns(spec, partition,
                             primitive=params.primitive,
                             client_req_size=params.req_size)
    horizon = params.horizon_ns

    chaos_session = ChaosSession.current()
    check_session = CheckSession.current()
    if chaos_seed is None and chaos_session is not None:
        chaos_seed = (chaos_session.seed * 1_009
                      + 500_000 + len(chaos_session.shard_runs))
    if chaos_seed is None and check_session is not None \
            and check_session.chaos:
        chaos_seed = check_session.storm_seed * 1_009 + 500_000
    forced_inprocess = (chaos_session is not None
                        or check_session is not None)
    transport = choose_mode(mode, eff_shards, lookahead, spec, params,
                            forced_inprocess)

    if transport == "processes":
        shard_handles = [
            _ProcShard(kwargs, eff_shards, sid, chaos_seed)
            for sid in range(eff_shards)]
    else:
        shard_handles = []
        for sid in range(eff_shards):
            model = build_shard_model(kwargs, eff_shards, sid,
                                      chaos_seed=chaos_seed)
            if check_session is not None:
                model.engine.controller = check_session.controller
            shard_handles.append(_LocalShard(model))

    key = checkpoint_key(kwargs, eff_shards, partition)
    ckpt_path = (None if checkpoint_dir is None
                 else _checkpoint_path(checkpoint_dir, key))
    windows = 0
    restored = None
    if resume and ckpt_path is not None:
        restored = _read_checkpoint(ckpt_path, key)

    try:
        if restored is not None:
            windows = restored["windows"]
            for handle, state in zip(shard_handles,
                                     restored["states"]):
                handle.restore(state)
        else:
            for handle in shard_handles:
                handle.init()

        inbound: List[List[tuple]] = [[] for _ in shard_handles]
        while True:
            nexts = [handle.exchange(inbound[sid])
                     for sid, handle in enumerate(shard_handles)]
            inbound = [[] for _ in shard_handles]
            live = [t for t in nexts if t is not None]
            gmin = min(live) if live else None
            if gmin is None or gmin >= horizon:
                break
            if ckpt_path is not None and windows \
                    and windows % checkpoint_every == 0:
                _write_checkpoint(
                    ckpt_path, key, windows,
                    [handle.snapshot() for handle in shard_handles])
            end = (horizon if lookahead is None
                   else min(horizon, gmin + lookahead))
            for sid, handle in enumerate(shard_handles):
                for message in handle.run(end):
                    inbound[_route(partition, message)].append(message)
            windows += 1
        states = [handle.finish(horizon) for handle in shard_handles]
    finally:
        for handle in shard_handles:
            handle.close()

    if ckpt_path is not None and os.path.exists(ckpt_path):
        os.unlink(ckpt_path)

    result = merge_states(states, params)
    violations = audit_states(states)
    if info_sink is not None:
        info_sink.update({
            "windows": windows,
            "lookahead_ns": lookahead,
            "transport": transport,
            "shards": eff_shards,
            "partition_hash": partition.partition_hash(),
            "events": sum(s["events"] for s in states),
            "violations": violations,
        })
    if chaos_session is not None:
        chaos_session.register_shard_run(
            {"shards": eff_shards, "windows": windows,
             "chaos_seed": chaos_seed,
             "crashes": result["worker_crashes"],
             "events": sum(s["events"] for s in states)},
            violations)
    elif violations:
        raise AssertionError("shard audit failed: "
                             + "; ".join(violations))
    return result
