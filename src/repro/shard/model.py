"""The hop-granularity topology model that shards without changing.

One :class:`ShardModel` owns one :class:`~repro.sim.engine.Engine` and
the services a :class:`~repro.shard.partition.Partition` assigned to
its shard, plus — on exactly one shard — the open-loop client. The
model is the *same object* whether it runs alone (``shards=1``) or as
one of N windowed peers; nothing in it knows how many shards exist
beyond where to route a message.

**Partition invariance by construction.** Byte-identical results
across shard counts fall out of three rules, not of luck:

1. every event carries a content-derived key ``(rank, vid)`` — ``vid``
   is the request-path tuple ``(client, seq, node, node, ...)`` — so
   same-timestamp events fire in an order that is a pure function of
   simulation content, never of posting order (which *does* differ
   between serial and sharded runs);
2. services interact only through messages one hop-leg in the future
   (every leg latency is strictly positive), so same-timestamp events
   at different services touch disjoint state and commute;
3. every float accumulation happens on the shard that owns its state —
   end-to-end latencies only on the client's shard, per-service busy
   time only on the service's shard — so no sum ever depends on a
   cross-shard interleaving. The merge adds disjoint pieces in
   canonical node order.

**State is a value.** Everything mutable round-trips through
:meth:`snapshot`/:meth:`restore` as plain JSON (pending events are
``(t, rank, vid, ok)`` descriptors, client RNGs serialize their
``getstate()``), which is what per-shard checkpoints, the
multiprocessing transport and ``--resume`` mid-window all ride on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import primitives
from repro.hw.cache import CacheModel
from repro.hw.costs import CostModel
from repro.load.arrivals import OpenLoopArrivals
from repro.sim.engine import Engine
from repro.topo.spec import ROOT, TopoSpec
from repro.trace.histogram import LatencyHistogram

from repro.shard.costs import edge_legs
from repro.shard.partition import CLIENT, Partition

#: event-kind ranks: the leading element of every ordering key. Client
#: arrivals sort before deliveries, completions before replies, so the
#: serial tie-break order is stable and documented.
ARRIVAL, CALL, DONE, REPLY, TIMEOUT, DOWN, UP = range(7)


@dataclass(frozen=True)
class ShardParams:
    """The open-loop harness knobs a sharded point understands."""

    primitive: str
    policy: str
    arrivals: str
    offered_kops: float
    n_clients: int
    n_conns: int
    n_workers: int
    queue_depth: int
    req_size: int
    deadline_ns: float
    warmup_ns: float
    window_ns: float
    num_cpus: int
    seed: int

    @property
    def horizon_ns(self) -> float:
        return self.warmup_ns + self.window_ns

    @classmethod
    def from_kwargs(cls, kwargs: dict) -> "ShardParams":
        if kwargs.get("mode", "open") != "open":
            raise ValueError("repro.shard models open-loop points only")
        if kwargs.get("policy", "shed") != "shed":
            raise ValueError("repro.shard models the shed policy only")
        return cls(
            primitive=kwargs["primitive"],
            policy=kwargs.get("policy", "shed"),
            arrivals=kwargs.get("arrivals", "poisson"),
            offered_kops=float(kwargs["offered_kops"]),
            n_clients=int(kwargs["n_clients"]),
            n_conns=int(kwargs["n_conns"]),
            n_workers=int(kwargs["n_workers"]),
            queue_depth=int(kwargs["queue_depth"]),
            req_size=int(kwargs["req_size"]),
            deadline_ns=float(kwargs["deadline_ns"]),
            warmup_ns=float(kwargs["warmup_ns"]),
            window_ns=float(kwargs["window_ns"]),
            num_cpus=int(kwargs.get("num_cpus", 8)),
            seed=int(kwargs["seed"]))


def _listify(value):
    """Recursively turn tuples into lists (JSON encoding)."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def _tuplify(value):
    """Recursively turn lists into tuples (JSON decoding)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


class _Station:
    """One service's worker pool: capacity, FIFO backlog, outage flag."""

    __slots__ = ("capacity", "free", "fifo", "active", "down",
                 "visits", "busy_ns", "queue_peak", "crashes",
                 "rejected", "restarts")

    def __init__(self, capacity: Optional[int]):
        self.capacity = capacity          # None = unlimited (dIPC)
        self.free = capacity
        self.fifo: List[tuple] = []
        self.active: set = set()
        self.down = False
        self.visits = 0
        self.busy_ns = 0.0
        self.queue_peak = 0
        self.crashes = 0
        self.rejected = 0
        self.restarts = 0


class ShardModel:
    """One shard's engine, services and (maybe) the client."""

    def __init__(self, spec: TopoSpec, params: ShardParams,
                 partition: Partition, shard_id: int, *,
                 costs: Optional[CostModel] = None,
                 cache: Optional[CacheModel] = None,
                 outages: Optional[List[tuple]] = None):
        self.spec = spec
        self.params = params
        self.partition = partition
        self.shard_id = shard_id
        self.engine = Engine()
        self.horizon = params.horizon_ns
        self.legs, self.reply_leg = edge_legs(
            spec, primitive=params.primitive,
            client_req_size=params.req_size, costs=costs, cache=cache)
        self.children: Dict[int, List[int]] = {
            node.id: spec.children(node.id) for node in spec.nodes}
        self.work_ns: Dict[int, float] = {
            node.id: node.work_ns for node in spec.nodes}
        self.mode: Dict[int, str] = {
            node.id: node.mode for node in spec.nodes}
        # in-process primitives (thread-migrating dIPC, inline DPTI)
        # have no worker pool: their station capacity is unbounded and
        # only CPU time limits concurrency
        caps = primitives.get(params.primitive).capabilities
        capacity = params.n_workers if caps.bounded_capacity else None
        self.stations: Dict[int, _Station] = {
            nid: _Station(capacity) for nid in sorted(partition.nodes_of(
                shard_id))}
        self.frames: Dict[tuple, list] = {}
        #: outage plan rows (node, t_down, t_up, idx) touching this shard
        self.outages = [row for row in (outages or [])
                        if row[0] in self.stations]
        #: pending local events as descriptors: (rank, vid) -> [t, ok]
        self._pending: Dict[tuple, list] = {}
        #: cross-shard messages produced since the last take_outbox()
        self.outbox: List[tuple] = []
        self.msgs_sent = 0
        self.msgs_applied = 0

        self.has_client = partition.shard_of(CLIENT) == shard_id
        if self.has_client:
            rate_per_ns = (params.offered_kops / 1e6) / params.n_clients
            self.streams = [OpenLoopArrivals(
                process=params.arrivals, rate_per_ns=rate_per_ns,
                seed=params.seed, client_id=cid)
                for cid in range(params.n_clients)]
            self.free_conns = params.n_conns
            self.queue: List[tuple] = []
            self.in_flight: Dict[tuple, list] = {}
            self.hist = LatencyHistogram()
            self.c = {"offered": 0, "offered_total": 0, "completed": 0,
                      "completed_total": 0, "shed": 0, "shed_total": 0,
                      "failed": 0, "failed_total": 0, "peak_backlog": 0}

    # -- routing -------------------------------------------------------------

    def _dest_shard(self, rank: int, vid: tuple) -> int:
        if rank in (ARRIVAL, TIMEOUT):
            return self.partition.shard_of(CLIENT)
        if rank == REPLY:
            caller = CLIENT if len(vid) == 3 else vid[-2]
            return self.partition.shard_of(caller)
        if rank in (DOWN, UP):
            return self.partition.shard_of(vid[0])
        return self.partition.shard_of(vid[-1])

    def _post(self, t: float, rank: int, vid: tuple, ok: bool = True):
        """Schedule locally or emit a cross-shard message; returns the
        engine handle for local posts (None for remote)."""
        if self._dest_shard(rank, vid) != self.shard_id:
            self.outbox.append((t, rank, vid, ok))
            self.msgs_sent += 1
            return None
        self._pending[(rank, vid)] = [t, ok]
        return self.engine.post_at(
            t, lambda: self._fire(rank, vid, ok), key=(rank, vid))

    def deliver(self, message: tuple) -> None:
        """Apply one inbound cross-shard message (S3: the window
        protocol guarantees its timestamp is at or after this shard's
        clock — Engine.post_at raises if that is ever violated)."""
        t, rank, vid, ok = message
        self.msgs_applied += 1
        self._pending[(rank, vid)] = [t, ok]
        self.engine.post_at(t, lambda: self._fire(rank, vid, ok),
                            key=(rank, vid))

    def take_outbox(self) -> List[tuple]:
        out, self.outbox = self.outbox, []
        return out

    # -- lifecycle -----------------------------------------------------------

    def prime(self) -> None:
        """Post the initial arrivals and the outage transitions."""
        if self.has_client:
            for cid, stream in enumerate(self.streams):
                t = stream.next_gap_ns()
                if t < self.horizon:
                    self._post(t, ARRIVAL, (cid, 0))
        for node, t_down, t_up, idx in self.outages:
            # the storm plan is static shared knowledge: every shard
            # holds the full list but primes only its own stations, so
            # outages never ride the message exchange
            if self.partition.shard_of(node) != self.shard_id:
                continue
            if t_down < self.horizon:
                self._post(t_down, DOWN, (node, idx))
                if t_up < self.horizon:
                    self._post(t_up, UP, (node, idx))

    def _fire(self, rank: int, vid: tuple, ok: bool) -> None:
        self._pending.pop((rank, vid), None)
        if rank == ARRIVAL:
            self._on_arrival(vid)
        elif rank == CALL:
            self._on_call(vid)
        elif rank == DONE:
            self._on_done(vid)
        elif rank == REPLY:
            self._on_reply(vid, ok)
        elif rank == TIMEOUT:
            self._on_timeout(vid)
        elif rank == DOWN:
            self._on_down(vid)
        else:
            self._on_up(vid)

    # -- client --------------------------------------------------------------

    def _on_arrival(self, vid: tuple) -> None:
        cid, seq = vid
        t = self.engine.now()
        measured = t >= self.params.warmup_ns
        self.c["offered_total"] += 1
        if measured:
            self.c["offered"] += 1
        gap = self.streams[cid].next_gap_ns()
        if t + gap < self.horizon:
            self._post(t + gap, ARRIVAL, (cid, seq + 1))
        if self.free_conns > 0:
            self._dispatch((cid, seq), t, measured, t)
        elif len(self.queue) < self.params.queue_depth:
            self.queue.append((cid, seq, t, measured))
            if len(self.queue) > self.c["peak_backlog"]:
                self.c["peak_backlog"] = len(self.queue)
        else:
            self.c["shed_total"] += 1
            if measured:
                self.c["shed"] += 1

    def _dispatch(self, rid: tuple, t_arr: float, measured: bool,
                  t_now: float) -> None:
        self.free_conns -= 1
        handle = self._post(t_now + self.params.deadline_ns,
                            TIMEOUT, rid)
        self.in_flight[rid] = [t_arr, measured, handle]
        self._post(t_now + self.legs[(CLIENT, ROOT)], CALL,
                   rid + (ROOT,))

    def _release_conn(self) -> None:
        self.free_conns += 1
        if self.queue:
            cid, seq, t_arr, measured = self.queue.pop(0)
            self._dispatch((cid, seq), t_arr, measured,
                           self.engine.now())

    def _client_reply(self, vid: tuple, ok: bool) -> None:
        rid = vid[:2]
        entry = self.in_flight.pop(rid, None)
        if entry is None:
            return  # already timed out; the late reply is dropped
        t_arr, measured, handle = entry
        self._pending.pop((TIMEOUT, rid), None)
        if handle is not None:
            self.engine.cancel(handle)
        bucket = "completed" if ok else "failed"
        self.c[bucket + "_total"] += 1
        if measured:
            self.c[bucket] += 1
            if ok:
                self.hist.add(self.engine.now() - t_arr)
        self._release_conn()

    def _on_timeout(self, rid: tuple) -> None:
        entry = self.in_flight.pop(rid, None)
        if entry is None:
            return
        _t_arr, measured, _handle = entry
        self.c["failed_total"] += 1
        if measured:
            self.c["failed"] += 1
        self._release_conn()

    # -- services ------------------------------------------------------------

    def _on_call(self, vid: tuple) -> None:
        node = vid[-1]
        station = self.stations[node]
        t = self.engine.now()
        if station.down:
            station.rejected += 1
            self._post(t + self.reply_leg, REPLY, vid, ok=False)
            return
        if station.free is None or station.free > 0:
            self._start(vid, t)
        else:
            station.fifo.append(vid)
            if len(station.fifo) > station.queue_peak:
                station.queue_peak = len(station.fifo)

    def _start(self, vid: tuple, t: float) -> None:
        node = vid[-1]
        station = self.stations[node]
        if station.free is not None:
            station.free -= 1
        station.active.add(vid)
        self.frames[vid] = [0, 0, True, t]  # next, pending, ok, t_start
        self._post(t + self.work_ns[node], DONE, vid)

    def _on_done(self, vid: tuple) -> None:
        frame = self.frames.get(vid)
        if frame is None:
            return  # the frame was aborted by an outage mid-work
        node = vid[-1]
        children = self.children[node]
        t = self.engine.now()
        if not children:
            self._finish(vid, True)
        elif self.mode[node] == "par":
            frame[1] = len(children)
            for child in children:
                self._post(t + self.legs[(node, child)], CALL,
                           vid + (child,))
        else:
            frame[0] = 1
            child = children[0]
            self._post(t + self.legs[(node, child)], CALL,
                       vid + (child,))

    def _child_reply(self, vid: tuple, ok: bool) -> None:
        fvid = vid[:-1]
        frame = self.frames.get(fvid)
        if frame is None:
            return  # parent aborted; drop the orphan reply
        node = fvid[-1]
        if self.mode[node] == "par":
            if not ok:
                frame[2] = False
            frame[1] -= 1
            if frame[1] == 0:
                self._finish(fvid, frame[2])
            return
        if not ok:
            self._finish(fvid, False)
            return
        children = self.children[node]
        nxt = frame[0]
        if nxt < len(children):
            frame[0] = nxt + 1
            child = children[nxt]
            self._post(self.engine.now() + self.legs[(node, child)],
                       CALL, vid[:-1] + (child,))
        else:
            self._finish(fvid, True)

    def _on_reply(self, vid: tuple, ok: bool) -> None:
        if len(vid) == 3:
            self._client_reply(vid, ok)
        else:
            self._child_reply(vid, ok)

    def _finish(self, vid: tuple, ok: bool) -> None:
        node = vid[-1]
        station = self.stations[node]
        frame = self.frames.pop(vid)
        station.active.discard(vid)
        t = self.engine.now()
        station.visits += 1
        station.busy_ns += t - frame[3]
        self._post(t + self.reply_leg, REPLY, vid, ok)
        if station.free is not None:
            station.free += 1
            if station.fifo and not station.down:
                self._start(station.fifo.pop(0), t)

    # -- outages (chaos) -----------------------------------------------------

    def _on_down(self, vid: tuple) -> None:
        node = vid[0]
        station = self.stations[node]
        station.down = True
        t = self.engine.now()
        for active_vid in sorted(station.active):
            frame = self.frames.pop(active_vid)
            station.busy_ns += t - frame[3]
            station.crashes += 1
            self._post(t + self.reply_leg, REPLY, active_vid, ok=False)
        station.active.clear()
        for queued_vid in station.fifo:
            station.rejected += 1
            self._post(t + self.reply_leg, REPLY, queued_vid, ok=False)
        station.fifo.clear()

    def _on_up(self, vid: tuple) -> None:
        station = self.stations[vid[0]]
        station.down = False
        station.free = station.capacity
        station.restarts += 1

    # -- stats ---------------------------------------------------------------

    def stats_state(self) -> dict:
        """JSON-able per-shard measurements for the canonical merge."""
        state = {
            "shard": self.shard_id,
            "events": self.engine.events_processed,
            "msgs_sent": self.msgs_sent,
            "msgs_applied": self.msgs_applied,
            "nodes": {str(nid): {
                "visits": st.visits,
                "busy_ns": st.busy_ns,
                "queue_peak": st.queue_peak,
                "crashes": st.crashes,
                "rejected": st.rejected,
                "restarts": st.restarts,
            } for nid, st in sorted(self.stations.items())},
        }
        if self.has_client:
            state["client"] = dict(
                self.c, in_flight=len(self.in_flight),
                queued=len(self.queue), hist=self.hist.to_state())
        return state

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> dict:
        """Everything needed to resume this shard mid-window, as JSON."""
        state = {
            "now": self.engine.now(),
            "events": self.engine.events_processed,
            "msgs_sent": self.msgs_sent,
            "msgs_applied": self.msgs_applied,
            "pending": [[t, rank, _listify(vid), ok]
                        for (rank, vid), (t, ok)
                        in sorted(self._pending.items())],
            "stations": {str(nid): {
                "free": st.free, "down": st.down,
                "fifo": [_listify(v) for v in st.fifo],
                "visits": st.visits, "busy_ns": st.busy_ns,
                "queue_peak": st.queue_peak, "crashes": st.crashes,
                "rejected": st.rejected, "restarts": st.restarts,
            } for nid, st in sorted(self.stations.items())},
            "frames": [[_listify(vid), list(frame)]
                       for vid, frame in sorted(self.frames.items())],
        }
        if self.has_client:
            state["client"] = {
                "counters": dict(self.c),
                "free_conns": self.free_conns,
                "queue": [_listify(q) for q in self.queue],
                "in_flight": [[_listify(rid), [t, m]]
                              for rid, (t, m, _h)
                              in sorted(self.in_flight.items())],
                "streams": [_listify(s.rng.getstate())
                            for s in self.streams],
                "hist": self.hist.to_state(),
            }
        return state

    def restore(self, state: dict) -> None:
        """Rebuild from :meth:`snapshot` output (fresh model only)."""
        if self.engine.events_processed or self._pending:
            raise RuntimeError("restore() needs a freshly built model")
        self.engine._now = float(state["now"])
        self.engine.events_processed = int(state["events"])
        self.msgs_sent = int(state["msgs_sent"])
        self.msgs_applied = int(state["msgs_applied"])
        for nid_text, st_state in state["stations"].items():
            station = self.stations[int(nid_text)]
            station.free = st_state["free"]
            station.down = st_state["down"]
            station.fifo = [_tuplify(v) for v in st_state["fifo"]]
            station.visits = st_state["visits"]
            station.busy_ns = st_state["busy_ns"]
            station.queue_peak = st_state["queue_peak"]
            station.crashes = st_state["crashes"]
            station.rejected = st_state["rejected"]
            station.restarts = st_state["restarts"]
        self.frames = {_tuplify(vid): list(frame)
                       for vid, frame in state["frames"]}
        # active sets: frames owned by each local station
        for station in self.stations.values():
            station.active = set()
        for vid in self.frames:
            self.stations[vid[-1]].active.add(vid)
        if self.has_client:
            client = state["client"]
            self.c = dict(client["counters"])
            self.free_conns = int(client["free_conns"])
            self.queue = [_tuplify(q) for q in client["queue"]]
            self.in_flight = {_tuplify(rid): [t, m, None]
                              for rid, (t, m) in client["in_flight"]}
            for stream, rng_state in zip(self.streams,
                                         client["streams"]):
                stream.rng.setstate(_tuplify(rng_state))
            self.hist = LatencyHistogram.from_state(client["hist"])
        for t, rank, vid_list, ok in state["pending"]:
            vid = _tuplify(vid_list)
            handle = self._post(float(t), rank, vid, ok)
            if rank == TIMEOUT and vid in self.in_flight:
                self.in_flight[vid][2] = handle


def storm_plan(spec: TopoSpec, params: ShardParams,
               chaos_seed: int) -> List[tuple]:
    """A seeded service-outage storm: ``(node, t_down, t_up, idx)``.

    The shard analogue of :meth:`repro.fault.plan.FaultPlan.storm`:
    deterministic in the seed, per-node intervals merged so DOWN/UP
    transitions strictly alternate.
    """
    rng = random.Random(chaos_seed * 1_009 + 17)
    horizon = params.horizon_ns
    n_rules = 2 + rng.randrange(3)
    raw: Dict[int, List[Tuple[float, float]]] = {}
    for _ in range(n_rules):
        node = rng.randrange(spec.n)
        t_down = rng.uniform(0.10, 0.80) * horizon
        t_up = t_down + rng.uniform(0.02, 0.15) * horizon
        raw.setdefault(node, []).append((t_down, t_up))
    plan: List[tuple] = []
    idx = 0
    for node in sorted(raw):
        merged: List[List[float]] = []
        for t_down, t_up in sorted(raw[node]):
            if merged and t_down <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], t_up)
            else:
                merged.append([t_down, t_up])
        for t_down, t_up in merged:
            plan.append((node, t_down, t_up, idx))
            idx += 1
    return plan
