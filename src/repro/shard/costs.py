"""Hop-leg latencies and conservative lookahead for ``repro.shard``.

The shard backend models a topology at *hop* granularity: one leg is
the one-way delivery of a request (or reply) across an edge, composed
from the same :class:`~repro.hw.costs.CostModel` constants the
cycle-accurate simulation charges. Two things matter here:

* **per-edge delivery latency** — every message between services (and
  between the client and the root) is a future-time event exactly one
  leg away, which is what makes the model partitionable at all: shards
  interact only through messages that cannot take effect immediately;
* **lookahead** — the *minimum* leg latency over a partition's cut
  edges. No cross-shard message sent at or after simulated time ``t``
  can be applied before ``t + L``, so every shard may safely process
  its local queue up to ``(global minimum next event) + L`` without
  waiting for the others. This is the classic conservative-PDES bound
  (Chandy/Misra lookahead), instantiated from the paper's cost model.

The compositions below intentionally mirror the per-primitive order of
the Figure 5 calibration (dIPC << L4 < pipe < socket < RPC); the shard
model is a hop-granularity abstraction, not the block-level simulation,
so the absolute values are anchored but not cycle-exact. dIPC's leg is
tens of nanoseconds — faithful to the paper, and exactly why its
lookahead window is tiny (see DESIGN.md §13 on why dIPC points prefer
the in-process execution mode).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import primitives
from repro.hw.cache import CacheModel
from repro.hw.costs import CostModel
from repro.load.transports import REPLY_SIZE
from repro.topo.spec import TopoSpec

from repro.shard.partition import CLIENT, Partition


def request_leg_ns(costs: CostModel, cache: CacheModel,
                   primitive: str, size: int) -> float:
    """One-way latency of a ``size``-byte request over ``primitive``.

    The per-primitive compositions are registered alongside the
    transports (``repro.load.transports``) as each
    :class:`~repro.primitives.PrimitiveSpec`'s ``request_leg``.
    """
    try:
        spec = primitives.get(primitive)
    except KeyError:
        raise ValueError(f"unknown primitive {primitive!r}") from None
    return spec.request_leg(costs, cache, size)


def reply_leg_ns(costs: CostModel, cache: CacheModel,
                 primitive: str) -> float:
    """One-way latency of the small fixed-size reply/ack."""
    try:
        spec = primitives.get(primitive)
    except KeyError:
        raise ValueError(f"unknown primitive {primitive!r}") from None
    if spec.reply_leg is not None:
        return spec.reply_leg(costs, cache, REPLY_SIZE)
    return spec.request_leg(costs, cache, REPLY_SIZE)


def edge_legs(spec: TopoSpec, *, primitive: str, client_req_size: int,
              costs: Optional[CostModel] = None,
              cache: Optional[CacheModel] = None,
              ) -> Tuple[Dict[Tuple[int, int], float], float]:
    """``({(src, dst): request leg}, reply leg)`` for every hop.

    Includes the pseudo-edge ``(CLIENT, ROOT)`` carrying the harness's
    request size. Computed once per model build so both the serial and
    every sharded run share the exact same float values.
    """
    costs = costs or CostModel.default()
    cache = cache or CacheModel()
    legs = {(CLIENT, 0): request_leg_ns(costs, cache, primitive,
                                        client_req_size)}
    for edge in spec.edges:
        legs[(edge.src, edge.dst)] = request_leg_ns(
            costs, cache, primitive, edge.req_size)
    return legs, reply_leg_ns(costs, cache, primitive)


def lookahead_ns(spec: TopoSpec, partition: Partition, *,
                 primitive: str, client_req_size: int,
                 costs: Optional[CostModel] = None,
                 cache: Optional[CacheModel] = None) -> Optional[float]:
    """Minimum one-way latency across the partition's cut edges.

    ``None`` means no edge crosses shards (single shard, or a partition
    that swallowed the whole graph): the lookahead is unbounded and the
    whole horizon is one window. Both directions of a cut edge carry
    messages, so the bound takes the min of the request leg and the
    reply leg.
    """
    legs, reply = edge_legs(spec, primitive=primitive,
                            client_req_size=client_req_size,
                            costs=costs, cache=cache)
    cut = partition.cut_edges(spec)
    if not cut:
        return None
    return min(min(legs[edge], reply) for edge in cut)
