"""PDES-lite: sharded single-simulation parallelism (PR 8 tentpole).

Until now parallelism existed only *across* independent sweep points;
one large topology point still ran on one core. ``repro.shard``
partitions a :class:`~repro.topo.spec.TopoSpec`'s service graph across
engines (:mod:`repro.shard.partition`), models each shard's services at
hop granularity with content-keyed event ordering
(:mod:`repro.shard.model`), and synchronizes shards with conservative
time windows whose lookahead comes from the cost model's minimum
cross-shard hop latency (:mod:`repro.shard.costs`,
:mod:`repro.shard.runner`). The merged result is byte-identical for
any shard count and either transport — see DESIGN.md §13.
"""

from repro.shard.costs import (edge_legs, lookahead_ns, reply_leg_ns,
                               request_leg_ns)
from repro.shard.model import ShardModel, ShardParams, storm_plan
from repro.shard.partition import (CLIENT, Partition, edge_weights,
                                   node_weights, partition_spec,
                                   visit_rates)
from repro.shard.runner import (audit_states, build_shard_model,
                                merge_states, run_shard_point)

__all__ = [
    "CLIENT", "Partition", "ShardModel", "ShardParams",
    "audit_states", "build_shard_model", "edge_legs", "edge_weights",
    "lookahead_ns", "merge_states", "node_weights", "partition_spec",
    "reply_leg_ns", "request_leg_ns", "run_shard_point", "storm_plan",
    "visit_rates",
]
