"""Session-scoped chaos: fault storms as an orthogonal CLI flag.

``ChaosSession`` mirrors :class:`repro.trace.tracer.TraceSession`'s
attach pattern: while a session is active (``with ChaosSession(...)``),
every :class:`repro.kernel.Kernel` constructed anywhere inside it gets
a deterministic fault storm armed against it — which is what lets the
experiments CLI compose ``--chaos`` with any figure instead of having
a separate chaos-only workload.

Each kernel's storm is seeded from ``seed`` and the kernel's build
index inside the session, so a ``run fig09_load --chaos --seed 7`` is
exactly reproducible. The default target menu is the load subsystem's
server pool (``load-server`` process, ``load-server/w*`` worker
threads); storms against kernels that never spawn those names record
their misses deterministically and otherwise leave the run alone.

Experiments that normally fail a run on any simulated-thread crash
(e.g. ``kernel.check()`` in the load harness) consult
:meth:`ChaosSession.current` and tolerate sanctioned crashes while a
session is active.
"""

from __future__ import annotations

import random
from typing import ClassVar, List, Optional, Sequence

from repro import units
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan, InjectionRecord, render_log

#: default victim menu: the repro.load server pool
DEFAULT_PROCESSES = ("load-server",)
DEFAULT_THREAD_PREFIXES = ("load-server/w",)


class ChaosSession:
    """Arm a seeded fault storm on every kernel built inside ``with``."""

    _active: ClassVar[Optional["ChaosSession"]] = None

    def __init__(self, *, seed: int = 7,
                 processes: Sequence[str] = DEFAULT_PROCESSES,
                 thread_prefixes: Sequence[str]
                 = DEFAULT_THREAD_PREFIXES,
                 horizon_ns: float = 4.0 * units.MS,
                 min_rules: int = 2, max_rules: int = 4):
        self.seed = seed
        self.processes = tuple(processes)
        self.thread_prefixes = tuple(thread_prefixes)
        self.horizon_ns = horizon_ns
        self.min_rules = min_rules
        self.max_rules = max_rules
        self.injectors: List[FaultInjector] = []
        #: sharded runs (repro.shard) that armed a seeded outage storm
        #: inside this session: (summary dict, audit violations)
        self.shard_runs: List[tuple] = []

    # -- context management ------------------------------------------------

    def __enter__(self) -> "ChaosSession":
        if ChaosSession._active is not None:
            raise RuntimeError("a ChaosSession is already active")
        ChaosSession._active = self
        return self

    def __exit__(self, *exc) -> None:
        ChaosSession._active = None

    @classmethod
    def current(cls) -> Optional["ChaosSession"]:
        return cls._active

    @classmethod
    def maybe_attach(cls, kernel) -> None:
        """Called from ``Kernel.__init__``; no-op without a session."""
        if cls._active is not None:
            cls._active.attach(kernel)

    # -- storm wiring ------------------------------------------------------

    def attach(self, kernel) -> None:
        index = len(self.injectors)
        rng = random.Random(self.seed * 1_009 + index)
        plan = FaultPlan.storm(
            rng, processes=self.processes,
            thread_prefixes=self.thread_prefixes, channels=(),
            horizon_ns=self.horizon_ns,
            min_rules=self.min_rules, max_rules=self.max_rules)
        injector = FaultInjector(kernel, plan, storm=index)
        injector.arm()
        self.injectors.append(injector)

    def register_shard_run(self, summary: dict,
                           violations: List[str]) -> None:
        """Record one sharded point's outage storm and its S1–S2
        conservation audit (called by
        :func:`repro.shard.runner.run_shard_point`); the violations
        surface through :meth:`audit_kernels` so ``--chaos --shards``
        runs fail exactly like kernel-storm runs."""
        self.shard_runs.append((summary, violations))

    # -- post-run audit ----------------------------------------------------

    def audit_kernels(self) -> List[str]:
        """Drain and audit every stormed kernel; returns violations.

        Run by the CLI after the workload finishes: kill whatever is
        still alive, let the unwind machinery settle, then sweep each
        kernel with the full A1–A9 auditor so ``--chaos`` runs can
        actually fail on an invariant breach.
        """
        from repro.fault.auditor import InvariantAuditor
        from repro.fault.chaos import ALLOWED_CRASHES
        violations: List[str] = []
        for index, injector in enumerate(self.injectors):
            kernel = injector.kernel
            for process in list(kernel.processes):
                if process.alive:
                    kernel.kill_process(process)
            kernel.run_all()
            auditor = InvariantAuditor(kernel,
                                       allowed_crashes=ALLOWED_CRASHES)
            violations.extend(f"kernel {index}: {violation}"
                              for violation in auditor.audit())
        for index, (_summary, shard_violations) in \
                enumerate(self.shard_runs):
            violations.extend(f"shard run {index}: {violation}"
                              for violation in shard_violations)
        return violations

    # -- results -----------------------------------------------------------

    @property
    def records(self) -> List[InjectionRecord]:
        return [record for injector in self.injectors
                for record in injector.records]

    @property
    def total_injections(self) -> int:
        return len(self.records)

    def render_log(self) -> str:
        return render_log(self.records)

    def summary(self) -> str:
        line = (f"chaos: {len(self.injectors)} kernel(s) stormed, "
                f"{self.total_injections} injection(s) fired "
                f"(seed {self.seed})")
        if self.shard_runs:
            crashes = sum(summary.get("crashes", 0)
                          for summary, _v in self.shard_runs)
            line += (f"; {len(self.shard_runs)} sharded run(s) "
                     f"stormed, {crashes} service crash(es)")
        return line
