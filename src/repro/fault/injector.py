"""The fault injector: arms a :class:`FaultPlan` against a live kernel.

Each rule becomes one engine trigger (``post_at`` for simulated-time
rules, ``at_event_count`` for event-order rules). When a trigger fires,
the injector performs the action against the *current* kernel state,
appends an :class:`InjectionRecord` with the observed outcome, and — when
tracing is on — drops a trace instant on the ``faults`` track so storms
are visible in Perfetto next to the work they disrupt.

Injection decisions never consult wall-clock time or object identity:
victims are selected by name/prefix in deterministic kernel iteration
order, indexed by the rule's ``param``. Same plan + same workload =
same injections, byte for byte.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AccessFault, SimulationError
from repro.fault.plan import FaultPlan, FaultRule, InjectionRecord


class FaultInjector:
    """Performs a plan's injections against one kernel."""

    def __init__(self, kernel, plan: FaultPlan, *, storm: int = 0):
        self.kernel = kernel
        self.plan = plan
        self.storm = storm
        self.records: List[InjectionRecord] = []
        #: name -> UnixSocket, for drop/delay targets
        self._channels: Dict[str, object] = {}
        self._armed = False

    # -- wiring ---------------------------------------------------------------

    def register_channel(self, name: str, sock) -> None:
        """Expose a :class:`UnixSocket` to drop/delay rules as ``name``."""
        self._channels[name] = sock

    def arm(self) -> None:
        """Schedule every rule on the engine. Idempotent-hostile on
        purpose: arming twice would double-inject, so it raises."""
        if self._armed:
            raise SimulationError("fault plan already armed")
        self._armed = True
        for rule in self.plan:
            self._arm_rule(rule)

    def _arm_rule(self, rule: FaultRule) -> None:
        def fire():
            self._fire(rule)
        if rule.at_event is not None:
            try:
                self.kernel.engine.at_event_count(rule.at_event, fire)
            except SimulationError:
                # the count already passed before arming: record the miss
                # (deterministically) rather than dying
                self._record(rule, "trigger-in-past")
        else:
            self.kernel.engine.post_at(rule.at_ns, fire)

    # -- firing ----------------------------------------------------------------

    def _record(self, rule: FaultRule, outcome: str) -> None:
        engine = self.kernel.engine
        record = InjectionRecord(
            storm=self.storm, time_ns=engine.now(),
            event_index=engine.events_processed,
            action=rule.action, target=rule.target, outcome=outcome)
        self.records.append(record)
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(f"fault:{rule.action}", "fault", track="faults",
                           args={"target": rule.target, "outcome": outcome})
            tracer.count("fault.injections")

    def _fire(self, rule: FaultRule) -> None:
        handler = getattr(self, f"_do_{rule.action}")
        self._record(rule, handler(rule))

    # -- actions ----------------------------------------------------------------

    def _do_kill_process(self, rule: FaultRule) -> str:
        # a supervised pool rebuild spawns a *new* process under the old
        # name, so kill the first still-alive match rather than giving
        # up on the first (possibly long-dead) one
        matched = False
        for process in self.kernel.processes:
            if process.name == rule.target:
                matched = True
                if process.alive:
                    self.kernel.kill_process(process)
                    return "killed"
        return "already-dead" if matched else "no-such-process"

    def _do_crash_thread(self, rule: FaultRule) -> str:
        matches = []
        for process in self.kernel.processes:
            if not process.alive:
                continue
            for thread in process.threads:
                if thread.is_done:
                    continue
                if thread.name.startswith(rule.target):
                    matches.append(thread)
        if not matches:
            return "no-match"
        victim = matches[rule.param % len(matches)]
        victim.pending_exception = AccessFault(
            "injected wild access", kind="fault-injection")
        self.kernel.wake(victim)
        return f"faulted {victim.name}"

    def _do_revoke_grant(self, rule: FaultRule) -> str:
        dipc = self.kernel.dipc
        if dipc is None:
            return "no-dipc"
        live = [g for g in dipc.grants if not g.revoked]
        if not live:
            return "no-live-grant"
        grant = live[rule.param % len(live)]
        dipc.grant_revoke(grant)
        return f"revoked {grant.src_tag}->{grant.dst_tag}"

    def _do_drop_message(self, rule: FaultRule) -> str:
        sock = self._channels.get(rule.target)
        if sock is None:
            return "no-such-channel"
        if not sock._queue:
            return "empty"
        dgram = sock._queue.popleft()
        sock._bytes -= dgram.size
        return f"dropped {dgram.size}B"

    def _do_delay_message(self, rule: FaultRule) -> str:
        sock = self._channels.get(rule.target)
        if sock is None:
            return "no-such-channel"
        if not sock._queue:
            return "empty"
        dgram = sock._queue.popleft()
        sock._bytes -= dgram.size

        def redeliver():
            if sock.closed or sock.reset:
                return  # the socket died while the datagram was in limbo
            sock._queue.appendleft(dgram)
            sock._bytes += dgram.size
            while sock._receivers:
                receiver = sock._receivers.popleft()
                if not receiver.is_done:
                    self.kernel.wake(receiver)
                    break

        self.kernel.engine.post(float(rule.param), redeliver)
        return f"delayed {dgram.size}B by {rule.param}ns"
