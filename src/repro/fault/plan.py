"""Seeded, declarative fault plans and the injection log they produce.

A :class:`FaultPlan` is data, not behaviour: a list of :class:`FaultRule`
rows saying *what* to break and *when*. Plans are sampled by
:meth:`FaultPlan.storm` from a caller-provided :class:`random.Random`
and a menu of targets, so the same seed always yields the same plan.

Triggers come in two deterministic flavours:

* ``at_ns`` — an absolute simulated-time trigger (``Engine.post_at``);
* ``at_event`` — a position in the engine's event order
  (``Engine.at_event_count``), which is invariant under cost-model
  changes and therefore survives recalibration.

:class:`InjectionRecord` rows render to a stable text format — no object
ids, no wall-clock, fixed float formatting — so two runs with the same
seed produce **byte-identical** logs (asserted by the chaos harness and
the CI smoke job).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: every action the injector knows how to perform
ACTIONS = (
    "kill_process",   # SIGKILL a process mid-flight (multi-frame unwinds)
    "crash_thread",   # inject a ProtectionFault at the next yield point
    "revoke_grant",   # revoke a dIPC capability grant in flight (P1)
    "drop_message",   # lose a queued datagram (exercises RPC retransmit)
    "delay_message",  # hold a queued datagram back for param nanoseconds
)


@dataclass(frozen=True)
class FaultRule:
    """One planned injection: action + target + trigger."""

    action: str
    #: process name, thread-name prefix, or registered channel name
    target: str
    #: simulated-time trigger (exclusive with ``at_event``)
    at_ns: Optional[float] = None
    #: event-count trigger; never fires if the run drains earlier
    at_event: Optional[int] = None
    #: action-specific selector: victim index for crash/revoke, delay
    #: nanoseconds for delay_message
    param: int = 0

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if (self.at_ns is None) == (self.at_event is None):
            raise ValueError(
                "exactly one of at_ns / at_event must be set")

    def trigger_desc(self) -> str:
        if self.at_event is not None:
            return f"ev={self.at_event}"
        return f"t={self.at_ns:.1f}"

    def to_dict(self) -> dict:
        """JSON-representable form (repro bundles, shrink candidates)."""
        entry = {"action": self.action, "target": self.target,
                 "param": self.param}
        if self.at_event is not None:
            entry["at_event"] = self.at_event
        else:
            entry["at_ns"] = self.at_ns
        return entry

    @classmethod
    def from_dict(cls, entry: dict) -> "FaultRule":
        return cls(entry["action"], entry["target"],
                   at_ns=entry.get("at_ns"),
                   at_event=entry.get("at_event"),
                   param=entry.get("param", 0))


@dataclass
class InjectionRecord:
    """What one fired rule actually did, at the moment it fired."""

    storm: int
    time_ns: float
    event_index: int
    action: str
    target: str
    outcome: str

    def render(self) -> str:
        return (f"[storm {self.storm:03d}] t={self.time_ns:12.1f} "
                f"ev={self.event_index:8d} {self.action:<14} "
                f"{self.target:<18} -> {self.outcome}")


def render_log(records: Iterable[InjectionRecord]) -> str:
    """The canonical injection-log text: one stable line per record."""
    return "".join(record.render() + "\n" for record in records)


class FaultPlan:
    """An ordered list of fault rules, optionally sampled from a seed."""

    def __init__(self, rules: Sequence[FaultRule]):
        self.rules: List[FaultRule] = list(rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    #: sampling weights: kills and crashes dominate (they exercise the
    #: §5.2.1 unwind machinery), the rest keep the other paths honest
    _WEIGHTS = (
        ("kill_process", 30),
        ("crash_thread", 25),
        ("revoke_grant", 15),
        ("drop_message", 15),
        ("delay_message", 15),
    )

    @classmethod
    def storm(cls, rng: random.Random, *,
              processes: Sequence[str],
              thread_prefixes: Sequence[str],
              channels: Sequence[str],
              horizon_ns: float,
              min_rules: int = 2,
              max_rules: int = 5) -> "FaultPlan":
        """Sample a storm plan from ``rng`` and a target menu.

        All decisions flow from ``rng`` and the (ordered) menus — no
        wall-clock, no object identity — so a given seed reproduces the
        identical plan every time.
        """
        actions = [name for name, _w in cls._WEIGHTS]
        weights = [w for _name, w in cls._WEIGHTS]
        rules: List[FaultRule] = []
        for _ in range(rng.randint(min_rules, max_rules)):
            action = rng.choices(actions, weights=weights)[0]
            if action == "kill_process":
                target = rng.choice(list(processes))
            elif action == "crash_thread":
                target = rng.choice(list(thread_prefixes))
            elif action == "revoke_grant":
                target = "grant"
            else:
                if not channels:
                    action, target = "kill_process", \
                        rng.choice(list(processes))
                else:
                    target = rng.choice(list(channels))
            param = rng.randint(0, 7) if action != "delay_message" \
                else rng.randint(5_000, 60_000)
            if rng.random() < 0.7:
                at_ns = rng.uniform(0.02, 0.85) * horizon_ns
                rule = FaultRule(action, target, at_ns=at_ns, param=param)
            else:
                rule = FaultRule(action, target,
                                 at_event=rng.randint(500, 20_000),
                                 param=param)
            rules.append(rule)
        return cls(rules)

    def describe(self) -> str:
        lines = [f"  {r.action:<14} {r.target:<18} {r.trigger_desc()}"
                 for r in self.rules]
        return "\n".join(lines)

    def to_list(self) -> List[dict]:
        """JSON-representable rules (repro bundles, shrink candidates)."""
        return [rule.to_dict() for rule in self.rules]

    @classmethod
    def from_list(cls, entries: Iterable[dict]) -> "FaultPlan":
        return cls([FaultRule.from_dict(entry) for entry in entries])
